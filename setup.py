"""Setup shim: enables legacy editable installs (`pip install -e .`) in
offline environments that lack the `wheel` package needed by PEP 517
editable builds. All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
