# Developer entry points.  `make lint` is the pre-commit-suitable check:
# incremental-cached reprolint over src/ (warm runs are ~ms), nonzero
# exit on any unsuppressed finding.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint lint-cold test bench-smoke

lint:
	$(PYTHON) -m repro.cli lint --cache src

lint-cold:  ## full re-analysis, ignoring and not writing the cache
	$(PYTHON) -m repro.cli lint --no-cache src

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest -q -m bench_smoke
