# Developer entry points.  `make check` is the pre-commit gate: the
# tier-1 test suite plus incremental-cached reprolint over src/ (warm
# lint runs are ~ms), nonzero exit on any failure or unsuppressed
# finding.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint lint-cold test bench-smoke

check: test lint

lint:
	$(PYTHON) -m repro.cli lint --cache src

lint-cold:  ## full re-analysis, ignoring and not writing the cache
	$(PYTHON) -m repro.cli lint --no-cache src

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest -q -m bench_smoke
