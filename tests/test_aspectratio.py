"""Tests for the fixed-aspect-ratio PFs A_{a,b} (Section 3.2.1)."""

from __future__ import annotations

import pytest

from repro.core.aspectratio import AspectRatioPairing
from repro.errors import ConfigurationError, DomainError

RATIOS = [(1, 1), (1, 2), (2, 1), (2, 3), (3, 2), (1, 4), (5, 1)]


class TestConstruction:
    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(ConfigurationError):
            AspectRatioPairing(0, 1)
        with pytest.raises(ConfigurationError):
            AspectRatioPairing(1, -2)

    def test_name_encodes_ratio(self):
        assert AspectRatioPairing(2, 3).name == "aspect-2x3"


@pytest.mark.parametrize("a,b", RATIOS)
class TestBijectivity:
    def test_roundtrip(self, a, b):
        AspectRatioPairing(a, b).check_roundtrip_window(14, 14)

    def test_prefix(self, a, b):
        AspectRatioPairing(a, b).check_bijective_prefix(300)


@pytest.mark.parametrize("a,b", RATIOS)
class TestShellStructure:
    def test_shell_sizes(self, a, b):
        p = AspectRatioPairing(a, b)
        for k in range(1, 8):
            assert p.shell_size(k) == a * b * (2 * k - 1)

    def test_cumulative_is_array_size(self, a, b):
        p = AspectRatioPairing(a, b)
        for k in range(0, 8):
            assert p.cumulative_through(k) == a * b * k * k

    def test_shell_of_consistent_with_membership(self, a, b):
        p = AspectRatioPairing(a, b)
        for x in range(1, 12):
            for y in range(1, 12):
                k = p.shell_of(x, y)
                assert x <= a * k and y <= b * k  # inside the ak x bk array
                assert x > a * (k - 1) or y > b * (k - 1)  # not inside previous

    def test_shell_addresses_contiguous(self, a, b):
        p = AspectRatioPairing(a, b)
        for k in range(1, 5):
            members = [
                (x, y)
                for x in range(1, a * k + 1)
                for y in range(1, b * k + 1)
                if p.shell_of(x, y) == k
            ]
            addresses = sorted(p.pair(x, y) for x, y in members)
            low = a * b * (k - 1) * (k - 1) + 1
            assert addresses == list(range(low, low + a * b * (2 * k - 1)))


@pytest.mark.parametrize("a,b", RATIOS)
class TestPerfectCompactness:
    def test_favored_arrays_stored_perfectly(self, a, b):
        # Guarantee (3.2): the ak x bk array occupies exactly 1..abk**2.
        p = AspectRatioPairing(a, b)
        for k in range(1, 6):
            addresses = sorted(
                p.pair(x, y)
                for x in range(1, a * k + 1)
                for y in range(1, b * k + 1)
            )
            assert addresses == list(range(1, a * b * k * k + 1))

    def test_spread_favored_formula(self, a, b):
        p = AspectRatioPairing(a, b)
        for n in (1, 7, 36, 100):
            k = 0
            while a * b * (k + 1) ** 2 <= n:
                k += 1
            expected = a * b * k * k
            assert p.spread_favored(n) == expected


class TestUnfavoredShapes:
    def test_wrong_ratio_pays(self):
        # A_{1,2} on a square: spread exceeds the cell count.
        p = AspectRatioPairing(1, 2)
        side = 6
        max_addr = p.spread_for_shape(side, side)
        assert max_addr > side * side

    def test_degenerate_row_pays_quadratically(self):
        # Under the L-shaped in-shell order, (1, n) is the first position
        # of shell n's right strip: address (n-1)**2 + 1 -- still
        # quadratic in n, like every square-shell-family PF on a 1 x n row.
        p = AspectRatioPairing(1, 1)
        n = 30
        assert p.spread_for_shape(1, n) == (n - 1) ** 2 + 1
        assert p.spread_for_shape(1, n) > 10 * n  # far above the n cells


class TestDomain:
    def test_rejects_bad_input(self):
        p = AspectRatioPairing(2, 3)
        with pytest.raises(DomainError):
            p.pair(0, 1)
        with pytest.raises(DomainError):
            p.unpair(0)
        with pytest.raises(DomainError):
            p.shell_size(0)
