"""Tests for repro.numbertheory.divisors."""

from __future__ import annotations

import math

import pytest

from repro.errors import DomainError
from repro.numbertheory.divisors import (
    divisor_count,
    divisor_count_sieve,
    divisor_pairs,
    divisors,
    divisors_descending,
    factorize,
)


class TestDivisors:
    @pytest.mark.parametrize("n", range(1, 200))
    def test_every_listed_divides(self, n):
        for d in divisors(n):
            assert n % d == 0

    @pytest.mark.parametrize("n", range(1, 200))
    def test_complete(self, n):
        listed = set(divisors(n))
        brute = {d for d in range(1, n + 1) if n % d == 0}
        assert listed == brute

    @pytest.mark.parametrize("n", range(1, 200))
    def test_sorted_ascending(self, n):
        ds = divisors(n)
        assert ds == sorted(ds)

    def test_one(self):
        assert divisors(1) == [1]

    def test_prime(self):
        assert divisors(97) == [1, 97]

    def test_square(self):
        assert divisors(36) == [1, 2, 3, 4, 6, 9, 12, 18, 36]

    def test_rejects_zero(self):
        with pytest.raises(DomainError):
            divisors(0)


class TestDivisorsDescending:
    @pytest.mark.parametrize("n", range(1, 100))
    def test_is_reverse(self, n):
        assert divisors_descending(n) == list(reversed(divisors(n)))


class TestDivisorCount:
    @pytest.mark.parametrize("n", range(1, 300))
    def test_matches_enumeration(self, n):
        assert divisor_count(n) == len(divisors(n))

    def test_known_values(self):
        # delta(k) for k = 1..12 -- the shell sizes of Figure 4.
        expected = [1, 2, 2, 3, 2, 4, 2, 4, 3, 4, 2, 6]
        assert [divisor_count(k) for k in range(1, 13)] == expected

    def test_highly_composite(self):
        assert divisor_count(360) == 24

    def test_matches_factorization_formula(self):
        for n in range(1, 300):
            expected = math.prod(e + 1 for e in factorize(n).values())
            assert divisor_count(n) == expected


class TestDivisorCountSieve:
    def test_matches_pointwise(self):
        sieve = divisor_count_sieve(500)
        for n in range(1, 501):
            assert sieve[n] == divisor_count(n)

    def test_zero_limit(self):
        assert divisor_count_sieve(0) == [0]

    def test_rejects_negative(self):
        with pytest.raises(DomainError):
            divisor_count_sieve(-1)


class TestDivisorPairs:
    @pytest.mark.parametrize("n", range(1, 100))
    def test_products(self, n):
        for x, y in divisor_pairs(n):
            assert x * y == n

    @pytest.mark.parametrize("n", range(1, 100))
    def test_descending_x(self, n):
        xs = [x for x, _ in divisor_pairs(n)]
        assert xs == sorted(xs, reverse=True)

    def test_count(self):
        for n in range(1, 100):
            assert len(list(divisor_pairs(n))) == divisor_count(n)

    def test_shell_order_of_figure_4(self):
        # Shell xy = 6 in Figure 4 reads H(6,1)=11 < H(3,2)=12 < H(2,3)=13
        # < H(1,6)=14: descending x.
        assert list(divisor_pairs(6)) == [(6, 1), (3, 2), (2, 3), (1, 6)]


class TestFactorize:
    @pytest.mark.parametrize("n", range(1, 300))
    def test_reconstruction(self, n):
        product = 1
        for p, e in factorize(n).items():
            product *= p**e
        assert product == n

    @pytest.mark.parametrize("n", range(2, 300))
    def test_factors_are_prime(self, n):
        for p in factorize(n):
            assert p >= 2
            assert all(p % q != 0 for q in range(2, int(math.isqrt(p)) + 1))

    def test_one(self):
        assert factorize(1) == {}

    def test_large_prime(self):
        assert factorize(10**9 + 7) == {10**9 + 7: 1}

    def test_known(self):
        assert factorize(2**5 * 3**2 * 7) == {2: 5, 3: 2, 7: 1}
