"""Tests for the PF framework (repro.core.base) across the whole zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DomainError
from repro.core.diagonal import DiagonalPairing


class TestDomainValidation:
    def test_pair_rejects_zero(self, any_pairing):
        with pytest.raises(DomainError):
            any_pairing.pair(0, 1)
        with pytest.raises(DomainError):
            any_pairing.pair(1, 0)

    def test_pair_rejects_negative(self, any_pairing):
        with pytest.raises(DomainError):
            any_pairing.pair(-3, 2)

    def test_pair_rejects_non_int(self, any_pairing):
        with pytest.raises(DomainError):
            any_pairing.pair(1.5, 2)
        with pytest.raises(DomainError):
            any_pairing.pair("1", 2)

    def test_pair_rejects_bool(self, any_pairing):
        with pytest.raises(DomainError):
            any_pairing.pair(True, 2)

    def test_unpair_rejects_nonpositive(self, any_pairing):
        with pytest.raises(DomainError):
            any_pairing.unpair(0)
        with pytest.raises(DomainError):
            any_pairing.unpair(-7)

    def test_accepts_numpy_integers(self, any_pairing):
        assert any_pairing.pair(np.int64(2), np.int64(3)) == any_pairing.pair(2, 3)


class TestBijectivity:
    def test_roundtrip_window(self, any_pairing):
        any_pairing.check_roundtrip_window(16, 16)

    def test_bijective_prefix(self, any_pairing):
        any_pairing.check_bijective_prefix(200)

    def test_values_positive(self, any_pairing):
        for x in range(1, 10):
            for y in range(1, 10):
                assert any_pairing.pair(x, y) >= 1

    def test_callable_alias(self, any_pairing):
        assert any_pairing(4, 5) == any_pairing.pair(4, 5)


class TestTable:
    def test_shape(self, any_pairing):
        t = any_pairing.table(3, 5)
        assert len(t) == 3 and all(len(row) == 5 for row in t)

    def test_matches_pair(self, any_pairing):
        t = any_pairing.table(4, 4)
        for x in range(1, 5):
            for y in range(1, 5):
                assert t[x - 1][y - 1] == any_pairing.pair(x, y)

    def test_rejects_bad_shape(self, any_pairing):
        with pytest.raises(DomainError):
            any_pairing.table(0, 3)


class TestBatchPaths:
    def test_pair_array_matches_scalar(self, any_pairing):
        xs = np.arange(1, 13)
        ys = np.arange(1, 13)[::-1].copy()
        batch = any_pairing.pair_array(xs, ys)
        for x, y, z in zip(xs, ys, np.asarray(batch).reshape(-1)):
            assert int(z) == any_pairing.pair(int(x), int(y))

    def test_unpair_array_matches_scalar(self, any_pairing):
        zs = np.arange(1, 40)
        bx, by = any_pairing.unpair_array(zs)
        for z, x, y in zip(zs, np.asarray(bx).reshape(-1), np.asarray(by).reshape(-1)):
            assert (int(x), int(y)) == any_pairing.unpair(int(z))

    def test_pair_array_broadcasts(self):
        d = DiagonalPairing()
        out = d.pair_array(np.array([[1], [2]]), np.array([1, 2, 3]))
        assert out.shape == (2, 3)
        assert out[1][2] == d.pair(2, 3)

    def test_pair_array_rejects_nonpositive(self, any_pairing):
        with pytest.raises(DomainError):
            any_pairing.pair_array([1, 0], [1, 1])


class TestSpreadGeneric:
    def test_spread_is_max_over_hyperbola(self, any_pairing):
        # Definition (3.1), checked against brute force.
        for n in (1, 4, 10):
            brute = max(
                any_pairing.pair(x, y)
                for x in range(1, n + 1)
                for y in range(1, n // x + 1)
            )
            assert any_pairing.spread(n) == brute

    def test_spread_monotone(self, any_pairing):
        values = [any_pairing.spread(n) for n in (1, 2, 4, 8, 16)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_spread_at_least_n(self, any_pairing):
        # Injectivity: n positions need n distinct addresses.
        for n in (1, 5, 12):
            assert any_pairing.spread(n) >= n

    def test_spread_for_shape_matches_brute(self, any_pairing):
        for rows, cols in ((1, 7), (7, 1), (3, 4), (5, 5)):
            brute = max(
                any_pairing.pair(x, y)
                for x in range(1, rows + 1)
                for y in range(1, cols + 1)
            )
            assert any_pairing.spread_for_shape(rows, cols) == brute

    def test_spread_rejects_nonpositive(self, any_pairing):
        with pytest.raises(DomainError):
            any_pairing.spread(0)


class TestEnumeration:
    def test_enumerate_positions_matches_unpair(self, any_pairing):
        positions = list(any_pairing.enumerate_positions(30))
        assert positions == [any_pairing.unpair(z) for z in range(1, 31)]

    def test_enumeration_covers_distinct_positions(self, any_pairing):
        positions = list(any_pairing.enumerate_positions(100))
        assert len(set(positions)) == 100

    def test_image_prefix_surjective(self, any_pairing):
        assert any_pairing.image_prefix(10) == list(range(1, 11))


class TestRepr:
    def test_repr_contains_name(self, any_pairing):
        assert any_pairing.name in repr(any_pairing)


class TestNonSurjectiveImagePrefix:
    def test_dovetail_image_prefix_skips_unused(self):
        from repro.core.aspectratio import AspectRatioPairing
        from repro.core.dovetail import DovetailMapping

        dt = DovetailMapping([AspectRatioPairing(1, 2), AspectRatioPairing(2, 1)])
        prefix = dt.image_prefix(10)
        assert len(prefix) == 10
        assert prefix == sorted(prefix)
        # Every listed address decodes; at least one address below the max
        # was skipped (non-surjectivity made visible).
        for z in prefix:
            assert dt.pair(*dt.unpair(z)) == z
        assert prefix != list(range(prefix[0], prefix[0] + 10))


class TestValidatorsCatchBrokenMappings:
    """The bijectivity validators must actually *fail* on broken PFs --
    otherwise every green check in this suite is meaningless."""

    def _make_broken(self, pair_fn, unpair_fn):
        from repro.core.base import PairingFunction

        class Broken(PairingFunction):
            @property
            def name(self):
                return "broken"

            def _pair(self, x, y):
                return pair_fn(x, y)

            def _unpair(self, z):
                return unpair_fn(z)

        return Broken()

    def test_collision_detected(self):
        broken = self._make_broken(lambda x, y: x + y, lambda z: (1, z - 1))
        with pytest.raises(AssertionError, match="collision"):
            broken.check_roundtrip_window(4, 4)

    def test_bad_inverse_detected(self):
        from repro.core.diagonal import DiagonalPairing

        d = DiagonalPairing()
        broken = self._make_broken(d._pair, lambda z: (1, 1))
        with pytest.raises(AssertionError, match="unpair"):
            broken.check_roundtrip_window(4, 4)

    def test_duplicate_decode_detected(self):
        broken = self._make_broken(lambda x, y: 1, lambda z: (1, 1))
        with pytest.raises(AssertionError):
            broken.check_bijective_prefix(5)

    def test_non_reencoding_decode_detected(self):
        from repro.core.diagonal import DiagonalPairing

        d = DiagonalPairing()
        # unpair shifts by one: decodes are distinct but re-encode wrong.
        broken = self._make_broken(d._pair, lambda z: d._unpair(z + 1))
        with pytest.raises(AssertionError, match="pair\\(unpair"):
            broken.check_bijective_prefix(10)

    def test_apf_stride_violation_detected(self):
        from repro.apf.base import AdditivePairingFunction

        class BadAPF(AdditivePairingFunction):
            @property
            def name(self):
                return "bad-apf"

            def base(self, x):
                return 10 * x

            def stride(self, x):
                return 1  # B_x >= S_x: violates (4.2)

            def row_of(self, z):
                return 1

        with pytest.raises(AssertionError, match="not <"):
            BadAPF().check_base_below_stride(3)
