"""Tests for the naive row-major baseline."""

from __future__ import annotations

import pytest

from repro.arrays.extendible import ExtendibleArray
from repro.arrays.naive import NaiveRowMajorArray
from repro.core.squareshell import SquareShellPairing
from repro.errors import DomainError


class TestAddressing:
    def test_row_major_layout(self):
        arr = NaiveRowMajorArray(3, 4, fill=0)
        assert arr.address_of(1, 1) == 1
        assert arr.address_of(1, 4) == 4
        assert arr.address_of(2, 1) == 5
        assert arr.address_of(3, 4) == 12

    def test_perfect_compactness(self):
        arr = NaiveRowMajorArray(5, 6, fill=0)
        assert arr.space.high_water_mark == 30
        assert arr.space.utilization == 1.0


class TestValuesPreservedAcrossReshapes:
    def test_append_col_preserves(self):
        arr = NaiveRowMajorArray(3, 3, fill=0)
        arr[2, 2] = "keep"
        arr[3, 3] = "also"
        arr.append_col()
        assert arr[2, 2] == "keep"
        assert arr[3, 3] == "also"
        assert arr.shape == (3, 4)

    def test_delete_col_preserves_survivors(self):
        arr = NaiveRowMajorArray(3, 4, fill=0)
        arr[3, 2] = "keep"
        arr[1, 4] = "dropped"
        arr.delete_col()
        assert arr[3, 2] == "keep"
        assert arr.shape == (3, 3)

    def test_row_ops_cheap_and_correct(self):
        arr = NaiveRowMajorArray(2, 3, fill=0)
        arr[2, 3] = 7
        arr.append_row()
        assert arr.space.traffic.moves == 0
        arr.delete_row()
        assert arr[2, 3] == 7
        assert arr.space.traffic.moves == 0

    def test_long_mixed_sequence_matches_extendible(self):
        # The two implementations must agree on logical content always.
        naive = NaiveRowMajorArray(2, 2, fill=0)
        ext = ExtendibleArray(SquareShellPairing(), 2, 2, fill=0)
        script = [
            "ac", "ar", "set:2,3,11", "ac", "set:3,1,5", "dr", "ac",
            "set:1,5,9", "dc", "ar", "set:3,2,8", "dc", "dc",
        ]
        for step in script:
            for arr in (naive, ext):
                if step == "ar":
                    arr.append_row()
                elif step == "ac":
                    arr.append_col()
                elif step == "dr":
                    arr.delete_row()
                elif step == "dc":
                    arr.delete_col()
                else:
                    _, coords = step.split(":")
                    x, y, v = (int(t) for t in coords.split(","))
                    arr[x, y] = v
            assert naive.shape == ext.shape
            assert naive.to_lists() == ext.to_lists()


class TestRemappingCost:
    def test_append_col_moves_everything_past_row_one(self):
        rows, cols = 10, 10
        arr = NaiveRowMajorArray(rows, cols, fill=0)
        before = arr.space.traffic.moves
        arr.append_col()
        moved = arr.space.traffic.moves - before
        # All cells in rows 2..10 move (row 1 keeps its addresses).
        assert moved == (rows - 1) * cols

    def test_quadratic_total_work(self):
        # n column-appends on an n-row array: Theta(n^2) moves total --
        # the paper's Omega(n^2) work for O(n) changes.
        n = 20
        arr = NaiveRowMajorArray(n, 1, fill=0)
        arr_pf = ExtendibleArray(SquareShellPairing(), n, 1, fill=0)
        for _ in range(n):
            arr.append_col()
            arr_pf.append_col()
        assert arr.space.traffic.moves > n * n // 2
        assert arr_pf.space.traffic.moves == 0

    def test_delete_col_also_remaps(self):
        arr = NaiveRowMajorArray(6, 6, fill=0)
        before = arr.space.traffic.moves
        arr.delete_col()
        assert arr.space.traffic.moves > before


class TestEdgeCases:
    def test_cannot_delete_last(self):
        arr = NaiveRowMajorArray(1, 2, fill=0)
        with pytest.raises(DomainError):
            arr.delete_row()
        arr2 = NaiveRowMajorArray(2, 1, fill=0)
        with pytest.raises(DomainError):
            arr2.delete_col()

    def test_sparse_cells_survive_reshape(self):
        # Unwritten cells must stay logically empty after remaps.
        arr = NaiveRowMajorArray(3, 3)  # no fill
        arr[2, 2] = "only"
        arr.append_col()
        assert arr[2, 2] == "only"
        assert arr[1, 1] is None
        assert arr[3, 4] is None

    def test_resize(self):
        arr = NaiveRowMajorArray(1, 1, fill=0)
        arr.resize(4, 5)
        assert arr.shape == (4, 5)
        arr.resize(2, 2)
        assert arr.shape == (2, 2)

    def test_storage_report_shape(self):
        report = NaiveRowMajorArray(2, 2, fill=0).storage_report()
        assert report["mapping"] == "naive-row-major"
        assert report["theoretical_spread"] == 4
