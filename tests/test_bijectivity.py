"""Tests for the polynomial (non-)bijectivity certificates, plus the
registry-wide finite certificate: every *registered* mapping -- not just
the polynomial ones the certificate machinery can analyze symbolically --
must pass the two-sided window check, so a newly registered PF is
covered the moment it lands in the registry."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.base import PairingFunction
from repro.core.registry import available_names, get_pairing
from repro.errors import DomainError
from repro.polynomial.bijectivity import (
    analyze_window,
    image_density,
    is_pf_on_window,
)
from repro.polynomial.poly2d import Polynomial2D


class TestCantorCertificates:
    def test_cantor_is_pf_on_window(self):
        assert is_pf_on_window(Polynomial2D.cantor(), 45)

    def test_twin_is_pf_on_window(self):
        assert is_pf_on_window(Polynomial2D.cantor_twin(), 45)

    def test_report_fields(self):
        report = analyze_window(Polynomial2D.cantor(), bound=30)
        assert report.pf_consistent
        assert report.complete
        assert report.gaps == ()
        assert report.collisions == ()
        assert report.non_positive == 0 and report.non_integer == 0


class TestRegistryCertificates:
    """The finite bijectivity certificate over the whole registry (the
    symbolic ``analyze_window`` path only covers polynomial mappings;
    this is the brute-force twin for everything else, parameterized over
    ``available_names()`` so new registrations are covered for free)."""

    @pytest.mark.parametrize("name", available_names())
    def test_window_certificate(self, name):
        pf = get_pairing(name)
        pf.check_roundtrip_window(12, 12)
        if isinstance(pf, PairingFunction):
            pf.check_bijective_prefix(144)


class TestViolationDetection:
    def test_collision_detected(self):
        # x + y is famously non-injective.
        p = Polynomial2D({(1, 0): 1, (0, 1): 1})
        report = analyze_window(p, bound=10)
        assert report.collisions
        assert not report.pf_consistent

    def test_gap_detected_in_sparse_polynomial(self):
        # 2xy is even-valued only: all odd integers are gaps.
        p = Polynomial2D({(1, 1): 2})
        report = analyze_window(p, bound=10)
        assert 1 in report.gaps and 3 in report.gaps
        assert report.complete
        assert not report.pf_consistent

    def test_non_integer_detected(self):
        p = Polynomial2D({(1, 0): Fraction(1, 2), (0, 1): Fraction(1, 3)})
        report = analyze_window(p, bound=10)
        assert report.non_integer > 0

    def test_non_positive_detected(self):
        p = Polynomial2D({(1, 0): 1, (0, 0): -3})
        report = analyze_window(p, bound=10)
        assert report.non_positive > 0
        assert not report.pf_consistent

    def test_scaled_cantor_has_gaps(self):
        # 2*D(x, y) covers only even integers.
        p = Polynomial2D.cantor().scale(2)
        assert not is_pf_on_window(p, 20)


class TestCompleteness:
    def test_incomplete_scan_flagged(self):
        # A tiny window cannot certify gaps for values up to 1000.
        report = analyze_window(Polynomial2D.cantor(), bound=1000, window=3)
        assert not report.complete

    def test_complete_scan_with_sufficient_window(self):
        report = analyze_window(Polynomial2D.cantor(), bound=15, window=20)
        assert report.complete


class TestDensity:
    def test_cantor_density_is_one(self):
        # [7]: a PF has unit density.
        for n in (10, 36, 55):
            assert image_density(Polynomial2D.cantor(), n) == 1

    def test_cubic_density_below_one(self):
        cube = Polynomial2D({(3, 0): 1, (0, 3): 1, (1, 1): 1})
        assert image_density(cube, 100, window=20) < Fraction(1, 2)

    def test_rejects_bad_n(self):
        with pytest.raises(DomainError):
            image_density(Polynomial2D.cantor(), 0)
