"""Tests for the compactness toolkit (repro.core.spread)."""

from __future__ import annotations

import pytest

from repro.core.diagonal import DiagonalPairing
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.spread import (
    SpreadCurve,
    SpreadPoint,
    compare_spreads,
    spread_curve,
    utilization,
    worst_shape,
)
from repro.core.squareshell import SquareShellPairing
from repro.errors import DomainError


class TestSpreadPoint:
    def test_utilization(self):
        p = SpreadPoint(n=10, spread=40, lower_bound=20)
        assert p.utilization == 0.25
        assert p.overhead_vs_bound == 2.0


class TestSpreadCurve:
    def test_rows(self):
        curve = spread_curve(DiagonalPairing(), [4, 16])
        assert curve.rows()[0] == (4, 10, 8, 0.4)

    def test_growth_exponents_quadratic_family(self):
        # Diagonal spread is (n^2+n)/2: log-log slope -> 2.
        curve = spread_curve(DiagonalPairing(), [2**k for k in range(3, 10)])
        slopes = curve.growth_exponents()
        assert all(1.9 < s <= 2.05 for s in slopes)

    def test_growth_exponents_nlogn_family(self):
        # Hyperbolic spread is Theta(n log n): slopes near 1, strictly
        # between 1 and the quadratic families' 2.
        curve = spread_curve(HyperbolicPairing(), [2**k for k in range(5, 13)])
        slopes = curve.growth_exponents()
        assert all(1.0 < s < 1.3 for s in slopes)

    def test_growth_exponents_tolerates_duplicate_n(self):
        # Regression: consecutive samples at the same n used to divide by
        # log(n/n) == 0.  Duplicates must be merged, not crash.
        curve = spread_curve(DiagonalPairing(), [4, 4, 16])
        assert curve.growth_exponents() == spread_curve(
            DiagonalPairing(), [4, 16]
        ).growth_exponents()

    def test_growth_exponents_all_duplicates(self):
        curve = spread_curve(DiagonalPairing(), [8, 8, 8])
        assert curve.growth_exponents() == []

    def test_use_cache_matches_scalar_path(self):
        ns = [3, 9, 27, 9]
        cached = spread_curve(DiagonalPairing(), ns, use_cache=True)
        plain = spread_curve(DiagonalPairing(), ns)
        assert [p.spread for p in cached.points] == [p.spread for p in plain.points]

    def test_rejects_empty_grid(self):
        with pytest.raises(DomainError):
            spread_curve(DiagonalPairing(), [])

    def test_rejects_nonpositive_n(self):
        with pytest.raises(DomainError):
            spread_curve(DiagonalPairing(), [4, 0])


class TestCompareSpreads:
    def test_keyed_by_name(self):
        curves = compare_spreads(
            [DiagonalPairing(), SquareShellPairing(), HyperbolicPairing()], [16, 64]
        )
        assert set(curves) == {"diagonal", "square-shell", "hyperbolic"}

    def test_hyperbolic_wins_asymptotically(self):
        n = 2048
        curves = compare_spreads(
            [DiagonalPairing(), SquareShellPairing(), HyperbolicPairing()], [n]
        )
        h = curves["hyperbolic"].points[0].spread
        assert h < curves["diagonal"].points[0].spread
        assert h < curves["square-shell"].points[0].spread


class TestUtilization:
    def test_square_shell_on_any_n(self):
        # S(n) = n**2 so utilization = 1/n.
        for n in (2, 10, 50):
            assert utilization(SquareShellPairing(), n) == pytest.approx(1 / n)

    def test_rejects_nonpositive(self):
        with pytest.raises(DomainError):
            utilization(DiagonalPairing(), 0)


class TestWorstShape:
    def test_diagonal_worst_is_degenerate_row(self):
        x, y, z = worst_shape(DiagonalPairing(), 8)
        assert (x, y) == (1, 8)
        assert z == 36

    def test_square_shell_worst_is_degenerate_row(self):
        x, y, z = worst_shape(SquareShellPairing(), 12)
        assert (x, y) == (1, 12)
        assert z == 144

    def test_witness_attains_spread(self):
        for pf in (DiagonalPairing(), SquareShellPairing(), HyperbolicPairing()):
            for n in (5, 20):
                x, y, z = worst_shape(pf, n)
                assert x * y <= n
                assert z == pf.spread(n)
