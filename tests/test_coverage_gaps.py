"""Targeted tests for code paths not exercised elsewhere: report
dataclass properties, error branches, and small API conveniences."""

from __future__ import annotations

import pytest

from repro.errors import DomainError


class TestWorkloadResultProperties:
    def test_moves_per_step_zero_steps(self):
        from repro.arrays.metrics import WorkloadResult

        r = WorkloadResult(
            implementation="x",
            steps=0,
            final_shape=(1, 1),
            cells=1,
            moves=0,
            writes=0,
            erases=0,
            high_water_mark=1,
            utilization=1.0,
        )
        assert r.moves_per_step == 0.0


class TestReplicationOutcomeProperties:
    def test_zero_tasks_edge(self):
        from repro.webcompute.replication import ReplicationOutcome

        o = ReplicationOutcome(
            replication_factor=3,
            tasks_decided=0,
            computations_performed=0,
            bad_results_produced=0,
            bad_results_accepted=0,
            reissues=0,
        )
        assert o.work_overhead == 0.0
        assert o.acceptance_error_rate == 0.0


class TestProbeStatsProperties:
    def test_mean_probes_empty(self):
        from repro.arrays.hashed import ProbeStats

        assert ProbeStats().mean_probes == 0.0


class TestLedgerReportProperties:
    def test_catch_rate_vacuous(self):
        from repro.webcompute.ledger import LedgerReport

        report = LedgerReport(
            tasks_issued=0,
            tasks_returned=0,
            tasks_verified=0,
            bad_results_returned=0,
            bad_results_caught=0,
            volunteers_banned=0,
            honest_volunteers_banned=0,
        )
        assert report.catch_rate == 1.0


class TestSimulationOutcomeDensityEdge:
    def test_zero_index_density(self):
        from repro.webcompute.simulation import SimulationOutcome

        o = SimulationOutcome(
            apf_name="x",
            ticks=1,
            volunteers_total=0,
            tasks_completed=0,
            bad_results_returned=0,
            bad_results_caught=0,
            faulty_banned=0,
            honest_banned=0,
            departures=0,
            max_task_index=0,
            attribution_checks=0,
            attribution_failures=0,
        )
        assert o.density == 0.0


class TestVolunteerRecordProperties:
    def test_observed_error_rate(self):
        from repro.webcompute.ledger import VolunteerRecord

        rec = VolunteerRecord(volunteer_id=1)
        assert rec.observed_error_rate == 0.0
        rec.verified = 4
        rec.strikes = 1
        assert rec.observed_error_rate == 0.25


class TestEpochCovers:
    def test_open_and_closed(self):
        from repro.webcompute.frontend import Epoch

        open_epoch = Epoch(row=1, volunteer_id=7, first_serial=3)
        assert not open_epoch.covers(2)
        assert open_epoch.covers(3) and open_epoch.covers(10**9)
        closed = Epoch(row=1, volunteer_id=7, first_serial=3, last_serial=5)
        assert closed.covers(5) and not closed.covers(6)


class TestAspectRatioAccessors:
    def test_shell_of_rejects_bad(self):
        from repro.core.aspectratio import AspectRatioPairing

        with pytest.raises(DomainError):
            AspectRatioPairing(1, 2).shell_of(0, 1)

    def test_cumulative_rejects_negative(self):
        from repro.core.aspectratio import AspectRatioPairing

        with pytest.raises(DomainError):
            AspectRatioPairing(1, 2).cumulative_through(-1)

    def test_spread_favored_tiny_n(self):
        from repro.core.aspectratio import AspectRatioPairing

        # No favored array fits in n < a*b cells: spread over the favored
        # family is vacuously 0.
        assert AspectRatioPairing(2, 3).spread_favored(5) == 0


class TestJumpProfileFromJumps:
    def test_rejects_empty(self):
        from repro.core.locality import JumpProfile

        with pytest.raises(DomainError):
            JumpProfile.from_jumps("row", [])


class TestIteratedPairingRepr:
    def test_repr_and_1d_name(self):
        from repro.core.ndim import IteratedPairing
        from repro.core.diagonal import DiagonalPairing

        p1 = IteratedPairing(1, [])
        assert "identity-1d" in repr(p1)
        p3 = IteratedPairing(3, DiagonalPairing())
        assert "diagonal" in p3.name


class TestRegistryExponentialName:
    def test_apf_exponential_resolvable(self):
        from repro.core.registry import get_pairing

        apf = get_pairing("apf-exponential")
        assert apf.name == "apf-exponential"
        assert apf.unpair(apf.pair(3, 4)) == (3, 4)


class TestStringCodecReprAndProps:
    def test_accessors(self):
        from repro.encoding import StringCodec

        codec = StringCodec("xyz")
        assert codec.alphabet == "xyz"
        assert codec.radix == 3
        assert "xyz" in repr(codec)


class TestTupleCodecRepr:
    def test_repr_names_base(self):
        from repro.encoding import TupleCodec

        assert "square-shell" in repr(TupleCodec())


class TestAddressSpaceRepr:
    def test_repr_mentions_state(self):
        from repro.arrays.address_space import AddressSpace

        mem = AddressSpace()
        mem.write(3, 1)
        text = repr(mem)
        assert "live=1" in text and "hwm=3" in text


class TestExtendibleReprs:
    def test_array_reprs(self):
        from repro.arrays.extendible import ExtendibleArray
        from repro.arrays.naive import NaiveRowMajorArray
        from repro.core.squareshell import SquareShellPairing

        arr = ExtendibleArray(SquareShellPairing(), 2, 3, fill=0)
        assert "2x3" in repr(arr)
        naive = NaiveRowMajorArray(2, 3, fill=0)
        assert "2x3" in repr(naive)


class TestServerRepr:
    def test_server_repr(self):
        from repro.apf.families import TSharp
        from repro.webcompute.server import WBCServer

        server = WBCServer(TSharp())
        assert "apf-sharp" in repr(server)


class TestSpreadFavoredDomain:
    def test_rejects_nonpositive(self):
        from repro.core.aspectratio import AspectRatioPairing

        with pytest.raises(DomainError):
            AspectRatioPairing(1, 1).spread_favored(0)


class TestHashedStoreRepr:
    def test_repr(self):
        from repro.arrays.hashed import HashedArrayStore

        store = HashedArrayStore()
        store.put(1, 1, "v")
        assert "live=1" in repr(store)
