"""Tests for repro.polynomial.poly2d."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.errors import ConfigurationError, DomainError
from repro.polynomial.poly2d import Polynomial2D


class TestConstruction:
    def test_zero_coefficients_dropped(self):
        p = Polynomial2D({(1, 0): 0, (0, 1): 2})
        assert p.coefficients == {(0, 1): Fraction(2)}

    def test_rejects_negative_exponents(self):
        with pytest.raises(ConfigurationError):
            Polynomial2D({(-1, 0): 1})

    def test_fraction_coercion(self):
        p = Polynomial2D({(1, 0): Fraction(1, 2)})
        assert p.coefficient(1, 0) == Fraction(1, 2)


class TestCantor:
    def test_expansion_matches_pairing(self):
        from repro.core.diagonal import DiagonalPairing

        p = Polynomial2D.cantor()
        d = DiagonalPairing()
        for x in range(1, 15):
            for y in range(1, 15):
                assert p.eval_int(x, y) == d.pair(x, y)

    def test_twin_swaps(self):
        p, t = Polynomial2D.cantor(), Polynomial2D.cantor_twin()
        for x in range(1, 8):
            for y in range(1, 8):
                assert t(x, y) == p(y, x)

    def test_degree(self):
        assert Polynomial2D.cantor().degree == 2

    def test_half_integer_coefficients(self):
        p = Polynomial2D.cantor()
        assert p.coefficient(2, 0) == Fraction(1, 2)
        assert p.coefficient(1, 1) == 1
        assert p.coefficient(1, 0) == Fraction(-3, 2)


class TestStructure:
    def test_degree_conventions(self):
        assert Polynomial2D.zero().degree == -1
        assert Polynomial2D({(0, 0): 3}).degree == 0
        assert Polynomial2D({(2, 3): 1}).degree == 5

    def test_leading_form(self):
        p = Polynomial2D({(2, 0): 1, (1, 1): 2, (0, 1): 5})
        assert p.leading_form() == {(2, 0): Fraction(1), (1, 1): Fraction(2)}

    def test_positive_coefficients_predicate(self):
        assert Polynomial2D({(1, 0): 1, (0, 1): 2}).has_all_positive_coefficients()
        assert not Polynomial2D.cantor().has_all_positive_coefficients()
        assert not Polynomial2D.zero().has_all_positive_coefficients()

    def test_super_quadratic_predicate(self):
        assert Polynomial2D({(3, 0): 1}).is_super_quadratic()
        assert not Polynomial2D.cantor().is_super_quadratic()


class TestEvaluation:
    def test_integrality_check(self):
        p = Polynomial2D({(1, 0): Fraction(1, 2)})
        assert p.eval_int(2, 1) == 1
        with pytest.raises(DomainError):
            p.eval_int(1, 1)

    def test_is_integer_valued_on_window(self):
        assert Polynomial2D.cantor().is_integer_valued_on_window(6)
        assert not Polynomial2D({(1, 0): Fraction(1, 2)}).is_integer_valued_on_window(3)

    def test_eval_array_matches_scalar(self):
        p = Polynomial2D.cantor()
        xs = np.arange(1, 10, dtype=np.float64)
        ys = np.arange(9, 0, -1).astype(np.float64)
        out = p.eval_array(xs, ys)
        for x, y, v in zip(xs, ys, out):
            assert v == pytest.approx(float(p(int(x), int(y))))


class TestArithmetic:
    def test_add(self):
        a = Polynomial2D({(1, 0): 1})
        b = Polynomial2D({(1, 0): 2, (0, 1): 1})
        assert (a + b).coefficients == {(1, 0): Fraction(3), (0, 1): Fraction(1)}

    def test_sub_cancels(self):
        p = Polynomial2D.cantor()
        assert (p - p) == Polynomial2D.zero()

    def test_scale(self):
        p = Polynomial2D({(1, 1): 3}).scale(Fraction(1, 3))
        assert p.coefficients == {(1, 1): Fraction(1)}

    def test_equality_and_hash(self):
        assert Polynomial2D.cantor() == Polynomial2D.cantor()
        assert hash(Polynomial2D.cantor()) == hash(Polynomial2D.cantor())
        assert Polynomial2D.cantor() != Polynomial2D.cantor_twin()

    def test_repr_mentions_terms(self):
        assert "x" in repr(Polynomial2D({(1, 0): 1}))
        assert repr(Polynomial2D.zero()) == "Polynomial2D(0)"
