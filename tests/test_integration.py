"""Cross-module integration scenarios: the paper's two applications run
end-to-end on the full stack."""

from __future__ import annotations

import pytest

from repro.apf.families import TSharp, TStar
from repro.arrays.extendible import ExtendibleArray
from repro.arrays.hashed import HashedArrayStore
from repro.arrays.metrics import run_comparison
from repro.arrays.workloads import random_walk, staircase_growth
from repro.core.dovetail import DovetailMapping
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.registry import get_pairing
from repro.core.shells import ShellConstructedPairing, ShellOrder, SquareShells
from repro.core.squareshell import SquareShellPairing
from repro.webcompute.simulation import SimulationConfig, WBCSimulation


class TestExtendibleTableScenario:
    """Section 3's motivating scenario: a relational table that grows and
    shrinks in both dimensions, stored through different mappings."""

    def test_database_table_lifecycle(self):
        # A "table" gains attribute columns and record rows, then drops a
        # column -- values survive everywhere, no data movement.
        table = ExtendibleArray(HyperbolicPairing(), 1, 2, fill=None)
        table[1, 1] = ("id", 1)
        table[1, 2] = ("name", "a")
        for i in range(2, 30):
            table.append_row()
            table[i, 1] = ("id", i)
        table.append_col()
        table[1, 3] = ("email", "x")
        table.delete_col()
        assert table[17, 1] == ("id", 17)
        assert table.space.traffic.moves == 0

    def test_spread_hierarchy_on_realistic_workload(self):
        # On a mixed random workload: hyperbolic spread < diagonal spread,
        # and the naive baseline pays in moves what the PFs pay in spread.
        results = run_comparison(
            [get_pairing("hyperbolic"), get_pairing("diagonal")],
            random_walk(400, seed=11, max_side=64),
        )
        by_name = {r.implementation: r for r in results}
        assert by_name["naive-row-major"].moves > 0
        assert by_name["hyperbolic"].moves == 0
        assert by_name["diagonal"].moves == 0

    def test_dovetail_backed_array(self):
        # A dovetail (non-surjective mapping) works as an array store too.
        dt = DovetailMapping(
            [get_pairing("aspect-1x2"), get_pairing("aspect-2x1")]
        )
        arr = ExtendibleArray(dt, 2, 4, fill=0)
        arr[2, 4] = "v"
        arr.append_row()
        arr.append_col()
        assert arr[2, 4] == "v"
        assert arr.space.traffic.moves == 0

    def test_custom_shell_pf_backed_array(self):
        # A freshly-designed PF from Procedure PF-Constructor drops
        # straight into the array substrate (Theorem 3.1 in action).
        pf = ShellConstructedPairing(SquareShells(), ShellOrder.BY_ROWS)
        arr = ExtendibleArray(pf, 1, 1, fill=0)
        from repro.arrays.workloads import apply_workload

        apply_workload(arr, staircase_growth(20))
        assert arr.space.traffic.moves == 0
        arr.mapping.check_roundtrip_window(8, 8)

    def test_hash_store_vs_pf_array_space(self):
        # The Aside's tradeoff, end to end: for by-position access the hash
        # store uses < 2n slots while the square-shell PF on a degenerate
        # 1 x n row spreads to n**2 addresses.
        n = 200
        pf_arr = ExtendibleArray(SquareShellPairing(), 1, n, fill=0)
        hashed = HashedArrayStore()
        for y in range(1, n + 1):
            hashed.put(1, y, 0)
        assert pf_arr.space.high_water_mark == n * n
        assert hashed.capacity < 2 * n


class TestWebComputingScenario:
    """Section 4 end-to-end: allocation, accountability, compactness."""

    def test_full_project_with_bans_and_departures(self):
        config = SimulationConfig(
            ticks=400,
            initial_volunteers=25,
            malicious_fraction=0.2,
            careless_fraction=0.1,
            verification_rate=0.5,
            ban_after_strikes=2,
            departure_rate=0.01,
            arrival_rate=0.2,
            seed=31,
        )
        outcome = WBCSimulation(TSharp(), config).run()
        assert outcome.attribution_failures == 0
        assert outcome.honest_banned == 0
        assert outcome.faulty_banned >= 1
        assert outcome.departures >= 1
        assert outcome.tasks_completed > 500

    def test_star_allocation_denser_than_sharp_at_scale(self):
        config = SimulationConfig(
            ticks=200, initial_volunteers=120, seed=5, departure_rate=0.0
        )
        sharp = WBCSimulation(TSharp(), config).run()
        star = WBCSimulation(TStar(), config).run()
        assert sharp.tasks_completed == star.tasks_completed
        assert star.max_task_index < sharp.max_task_index

    def test_audit_trail_reconstructs_history(self):
        # Run a project, then audit every returned task against its
        # volunteer via the APF inverse alone.
        config = SimulationConfig(ticks=100, initial_volunteers=10, seed=13)
        sim = WBCSimulation(TSharp(), config)
        outcome = sim.run()
        server = sim.server
        checked = 0
        for vid_record_row in range(1, server.frontend.highest_row_minted + 1):
            for epoch in server.frontend.epochs_of_row(vid_record_row):
                last = (
                    epoch.last_serial
                    if epoch.last_serial is not None
                    else server.allocator.contract(vid_record_row).next_serial - 1
                    if server.allocator.is_registered(vid_record_row)
                    else epoch.first_serial - 1
                )
                for serial in range(epoch.first_serial, last + 1):
                    task_index = server.allocator.apf.pair(vid_record_row, serial)
                    assert server.attribute(task_index) == epoch.volunteer_id
                    checked += 1
        assert checked >= outcome.tasks_completed


class TestRegistryRoundtrip:
    def test_every_registered_mapping_runs_the_array_substrate(self):
        from repro.core.registry import available_names

        for name in available_names():
            mapping = get_pairing(name)
            arr = ExtendibleArray(mapping, 2, 2, fill=0)
            arr[2, 2] = name
            arr.append_row()
            arr.append_col()
            assert arr[2, 2] == name
            assert arr.space.traffic.moves == 0
