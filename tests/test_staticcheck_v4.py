"""The v4 upgrades, two-half style (like ``test_staticcheck_flow_rules``
and ``test_staticcheck_interprocedural``): first demonstrate the v3
blind spot or mis-flag with the surviving v3 primitive (or an isolation
run), then assert the v4 pass gets it right.

* Receiver-typed call resolution, against ``typed_project``: two
  classes share a method name with opposite determinism verdicts.
  Name-based resolution conflated them (mis-flagging the deterministic
  twin) and could not resolve ``obj.method()`` / ``self._attr.method()``
  / annotated-parameter calls at all.
* Typed edges also shrink invalidation: editing ``Alpha.fresh_seed``
  re-analyzes Alpha's consumers and flips their verdicts while Beta's
  driver stays a cache hit.
* R006 message-grammar conformance, against ``grammar_project``: a
  seeded drift (op tag emitted by the router, handled and replayed
  nowhere) that every v3 rule provably misses, flagged with a
  cross-file trace naming all three dispatcher sites.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.staticcheck import ReprolintConfig, analyze_paths
from repro.staticcheck.cache import CACHE_FILENAME
from repro.staticcheck.checkers.message_grammar import grammar_conformance
from repro.staticcheck.config import GrammarSpec
from repro.staticcheck.dataflow import ENTROPY
from repro.staticcheck.loader import load_module

FIXTURES = Path(__file__).resolve().parent / "staticcheck_fixtures"
TYPED = FIXTURES / "typed_project"
GRAMMAR = FIXTURES / "grammar_project"

ISOLATION_CONFIG = ReprolintConfig(deterministic_modules=("*",))

V3_RULES = ["R001", "R002", "R003", "R004", "R005"]


def _typed_run(rules=None):
    return analyze_paths([TYPED], rules=rules or ["R002"], cache=False)


class TestSameNameMethodConflation:
    """``self.fresh_seed()`` inside Beta.rng: v3 resolved it by *name*
    to the alphabetically first ``fresh_seed`` in the module -- Alpha's,
    which reads entropy -- flagging the deterministic twin."""

    def test_v3_name_conflation_picks_the_wrong_summary(self):
        module = load_module(TYPED / "pkg" / "engines.py")
        dataflow = module.dataflow()
        # The v3 primitive (surviving only as the inherited-method
        # fallback): first same-named method in the module wins.
        conflated = next(
            summary
            for (owner, name), summary in dataflow.summaries.items()
            if owner and name == "fresh_seed"
        )
        assert any(t.kind == ENTROPY for t in conflated), (
            "name-based resolution hands Beta.rng Alpha's entropy summary"
        )

    def test_v4_resolves_each_class_to_its_own_method(self):
        result = _typed_run()
        engine_findings = [
            f for f in result.findings if f.path.endswith("engines.py")
        ]
        assert [f.line for f in engine_findings] == [14]  # Alpha.rng only
        assert "os.getpid" in engine_findings[0].message
        assert not any(f.line == 24 for f in engine_findings), (
            "Beta.rng's constant seed must not be flagged"
        )


class TestReceiverTypedResolution:
    """``engine = Alpha(); engine.fresh_seed()`` and friends: v3 had no
    receiver types, so the call was unresolvable and the entropy seed
    invisible."""

    def test_per_file_analysis_misses_it(self):
        for name in ("drive_a.py", "holder.py", "annot.py"):
            result = analyze_paths(
                [TYPED / "pkg" / name],
                config=ISOLATION_CONFIG,
                rules=["R002"],
                cache=False,
            )
            assert result.findings == [], f"{name}: the call is opaque alone"

    def test_local_constructor_typing(self):
        result = _typed_run()
        flagged = [f for f in result.findings if f.path.endswith("drive_a.py")]
        assert [f.line for f in flagged] == [10]
        assert "os.getpid via pkg.engines" in flagged[0].message
        assert "os.getpid (pkg.engines:11)" in flagged[0].trace[0]

    def test_the_deterministic_twin_stays_clean(self):
        result = _typed_run()
        assert not any(f.path.endswith("drive_b.py") for f in result.findings)

    def test_attribute_binding_typing(self):
        result = _typed_run()
        flagged = [f for f in result.findings if f.path.endswith("holder.py")]
        assert [f.line for f in flagged] == [13]

    def test_parameter_annotation_typing(self):
        result = _typed_run()
        flagged = [f for f in result.findings if f.path.endswith("annot.py")]
        assert [f.line for f in flagged] == [9]


class TestTypedInvalidation:
    """Typed edges make invalidation exact: a summary-changing edit to
    Alpha.fresh_seed re-analyzes Alpha's consumers (flipping their
    verdicts) while Beta's driver stays a cache hit."""

    def test_alpha_edit_spares_the_beta_driver(self, tmp_path):
        project = tmp_path / "typed_project"
        shutil.copytree(TYPED, project)
        run = lambda: analyze_paths(
            [project], rules=["R002"], cache=True,
            cache_path=project / CACHE_FILENAME,
        )
        cold = run()
        assert len(cold.findings) == 4  # engines(Alpha.rng), drive_a, holder, annot
        engines = project / "pkg" / "engines.py"
        engines.write_text(
            engines.read_text().replace("return os.getpid()", "return 7")
        )
        warm = run()
        # engines changed; drive_a, holder, annot consume Alpha's moved
        # summary; drive_b (Beta-typed) and __init__ are hits.
        assert warm.cache_stats.misses == 4
        assert warm.cache_stats.invalidated == 3
        assert warm.cache_stats.hits == 2
        assert warm.findings == [], "every verdict flips with the seed"


class TestMessageGrammarR006:
    """The seeded drift: the router emits ``promote``, nobody handles
    or replays it.  R001-R005 all pass; only the grammar sees it."""

    def test_v3_rules_see_nothing(self):
        result = analyze_paths([GRAMMAR], rules=V3_RULES, cache=False)
        assert result.findings == []

    def test_v4_flags_the_drift_with_a_cross_file_trace(self):
        result = analyze_paths([GRAMMAR], cache=False)
        assert [f.rule for f in result.findings] == ["R006"]
        finding = result.findings[0]
        assert finding.path.endswith("router.py")
        assert finding.line == 19
        assert "'promote' is emitted but neither handled nor replayed" in (
            finding.message
        )
        # The trace names all three dispatcher sites.
        joined = "\n".join(finding.trace)
        assert "emitted at" in joined and "router.py:19" in joined
        assert "no handle branch in dispatcher at" in joined
        assert "worker.py:4" in joined
        assert "no replay branch in dispatcher at" in joined
        assert "replay.py:4" in joined

    def test_pure_tags_sanction_live_only_ops(self):
        # probe is handled live and never replayed; pure-tags is the
        # only thing keeping it legal.  Re-judge the harvested facts
        # with the sanction removed and the torn-replay check fires.
        result = analyze_paths([GRAMMAR], cache=False)
        assert not any("probe" in f.message for f in result.findings)
        spec = GrammarSpec(
            name="ops",
            emit=("pkg.router.Router._journal",),
            handle=("pkg.worker.apply_live",),
            replay=("pkg.replay.apply_op",),
            pure=(),
        )
        stripped = ReprolintConfig(grammars=(spec,))
        refacts = {}
        from repro.staticcheck.checkers.message_grammar import harvest_grammar

        for name in ("router.py", "worker.py", "replay.py"):
            module = load_module(GRAMMAR / "pkg" / name)
            refacts[name] = (module.name, harvest_grammar(module, stripped))
        findings = grammar_conformance(stripped, refacts)
        probe = [f for f in findings if "probe" in f.message]
        assert len(probe) == 1
        assert "handled live but has no replay branch" in probe[0].message

    def test_fixing_the_drift_goes_clean(self, tmp_path):
        project = tmp_path / "grammar_project"
        shutil.copytree(GRAMMAR, project)
        router = project / "pkg" / "router.py"
        router.write_text(
            router.read_text().replace(
                '        self._journal(["promote", item])\n', "        pass\n"
            )
        )
        result = analyze_paths([project], cache=False)
        assert result.findings == []

    def test_dead_replay_branch_is_flagged(self, tmp_path):
        project = tmp_path / "grammar_project"
        shutil.copytree(GRAMMAR, project)
        replay = project / "pkg" / "replay.py"
        replay.write_text(
            replay.read_text().replace(
                '    elif kind == "add":',
                '    elif kind == "drop":\n        state.clear()\n'
                '    elif kind == "add":',
            )
        )
        result = analyze_paths([project], cache=False)
        dead = [f for f in result.findings if "drop" in f.message]
        assert len(dead) == 1
        assert "has a replay branch but is never emitted" in dead[0].message
        assert dead[0].path.endswith("replay.py")
