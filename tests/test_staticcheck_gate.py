"""The tier-1 reprolint gate: the shipped tree is clean.

Three guarantees:

* ``analyze_paths(src/)`` with the repo's own ``[tool.reprolint]``
  config reports zero unsuppressed findings;
* every ``allow[...]`` suppression in the tree is load-bearing -- the
  R000 meta-rule turns any stale one into a finding, so deleting a
  violation without deleting its waiver (or vice versa) fails this gate;
* the CLI entry points (``python -m repro.staticcheck``, ``repro-pf
  lint``) agree with the library call.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.staticcheck import ReprolintConfig, analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
ENGINE = SRC / "repro" / "webcompute" / "engine.py"


class TestGate:
    def test_src_tree_is_clean(self):
        result = analyze_paths([SRC])
        assert result.files >= 80, "analyzer scope shrank suspiciously"
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_suppressions_are_present_and_counted(self):
        # The cleanup pass shipped a reviewed waiver set; if this number
        # drifts, either a violation was silently added under an existing
        # waiver's wing or a waiver disappeared without this test knowing.
        result = analyze_paths([SRC])
        sites = {(f.path, line) for f, line in result.suppressed}
        assert len(sites) >= 15, sorted(sites)
        assert len(result.suppressed) >= 20

    def test_every_suppression_is_load_bearing(self):
        # Strip every allow comment from a copy of engine.py: the
        # violations they waive must resurface.  This is the acceptance
        # criterion "deleting any single suppression makes the gate fail"
        # run in reverse -- R000 covers the forward direction tree-wide.
        stripped = "\n".join(
            line.split("# reprolint: allow[")[0].rstrip()
            for line in ENGINE.read_text().splitlines()
        )
        config = ReprolintConfig(event_classes=("AllocationEngine",))
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            copy = Path(tmp) / "engine.py"
            copy.write_text(stripped + "\n")
            bare = analyze_paths([copy], config=config, rules=["R003", "R005"])
            intact = analyze_paths([ENGINE], config=config, rules=["R003", "R005"])
        assert len(bare.findings) >= 4  # codec, bus, tick, restore_state
        assert intact.ok
        assert len(intact.suppressed) == len(bare.findings)

    def test_module_cli_agrees(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.staticcheck", "src", "--json"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["ok"] is True
        assert payload["counts_by_rule"] == {}
        assert payload["files"] >= 80

    def test_repro_cli_lint_subcommand(self, capsys):
        from repro.cli import main

        assert main(["lint", str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out
