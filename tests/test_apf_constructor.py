"""Tests for Procedure APF-Constructor (repro.apf.constructor)."""

from __future__ import annotations

import pytest

from repro.apf.constructor import ConstructedAPF, CopyIndex, GroupLayout
from repro.apf.families import (
    ConstantCopyIndex,
    ExponentialCopyIndex,
    HalfSquareCopyIndex,
    LinearCopyIndex,
    PowerCopyIndex,
)
from repro.errors import ConfigurationError, DomainError
from repro.numbertheory.bits import two_adic_valuation

ALL_COPY_INDICES = [
    ("const-1", lambda: ConstantCopyIndex(1)),
    ("const-3", lambda: ConstantCopyIndex(3)),
    ("linear", LinearCopyIndex),
    ("power-2", lambda: PowerCopyIndex(2)),
    ("half-square", HalfSquareCopyIndex),
    ("exponential", ExponentialCopyIndex),
]


class BadCopyIndex(CopyIndex):
    @property
    def name(self):
        return "bad"

    def kappa(self, g):
        return -1


class TestCopyIndexValidation:
    def test_rejects_negative_group(self):
        with pytest.raises(DomainError):
            LinearCopyIndex()(-1)

    def test_rejects_negative_kappa(self):
        with pytest.raises(ConfigurationError):
            BadCopyIndex()(0)

    def test_rejects_bool_group(self):
        with pytest.raises(DomainError):
            LinearCopyIndex()(True)


class TestGroupLayout:
    @pytest.mark.parametrize("name,make", ALL_COPY_INDICES)
    def test_relation_4_3(self, name, make):
        # Rows of group g are c(g)+1 .. c(g)+2**kappa(g), consecutive and
        # non-overlapping.  Groups can be astronomically large (kappa=2^g
        # gives group 5 a size of 2**32), so probe the first, an interior,
        # and the last row of each group instead of iterating.
        layout = GroupLayout(make())
        row = 1
        for g in range(6):
            start = layout.group_start(g)
            assert start == row - 1
            size = layout.group_size(g)
            assert size == 1 << layout.copy_index(g)
            for x in {row, row + size // 2, row + size - 1}:
                assert layout.group_of_row(x) == g
                assert layout.index_within_group(x) == x - start
            row += size

    def test_group_rows_range(self):
        layout = GroupLayout(LinearCopyIndex())
        assert list(layout.group_rows(0)) == [1]
        assert list(layout.group_rows(1)) == [2, 3]
        assert list(layout.group_rows(2)) == [4, 5, 6, 7]

    def test_sharp_layout_matches_4_5(self):
        # kappa(g) = g: group of row x is floor(log2 x).
        layout = GroupLayout(LinearCopyIndex())
        for x in range(1, 200):
            assert layout.group_of_row(x) == x.bit_length() - 1

    def test_rejects_bad_row(self):
        layout = GroupLayout(LinearCopyIndex())
        with pytest.raises(DomainError):
            layout.group_of_row(0)

    def test_rejects_non_copy_index(self):
        with pytest.raises(ConfigurationError):
            GroupLayout(lambda g: g)  # type: ignore[arg-type]


@pytest.mark.parametrize("name,make", ALL_COPY_INDICES)
class TestTheorem42:
    """Theorem 4.2: every constructed function is a valid APF with
    B_x < S_x = 2**(1 + g + kappa(g))."""

    def test_is_bijection(self, name, make):
        apf = ConstructedAPF(make())
        apf.check_roundtrip_window(12, 12)
        apf.check_bijective_prefix(400)

    def test_stride_law(self, name, make):
        copy_index = make()
        apf = ConstructedAPF(copy_index)
        for x in range(1, 40):
            g = apf.layout.group_of_row(x)
            assert apf.stride(x) == 1 << (1 + g + copy_index(g))

    def test_base_below_stride(self, name, make):
        ConstructedAPF(make()).check_base_below_stride(64)

    def test_additive_form(self, name, make):
        apf = ConstructedAPF(make())
        for x in range(1, 15):
            base, stride = apf.base(x), apf.stride(x)
            for y in range(1, 8):
                assert apf.pair(x, y) == base + (y - 1) * stride

    def test_signature_is_two_adic_valuation(self, name, make):
        # The inverse's key step: trailing zeros of T(x, y) recover g.
        apf = ConstructedAPF(make())
        for x in range(1, 30):
            g = apf.group_of(x)
            for y in (1, 2, 5):
                assert two_adic_valuation(apf.pair(x, y)) == g

    def test_rows_tile_n(self, name, make):
        # Addresses 1..N are covered exactly once by the row progressions.
        apf = ConstructedAPF(make())
        seen = {}
        for z in range(1, 300):
            x, y = apf.unpair(z)
            assert apf.pair(x, y) == z
            assert (x, y) not in seen.values()
            seen[z] = (x, y)


class TestGroupTable:
    def test_figure6_presentation(self):
        apf = ConstructedAPF(LinearCopyIndex())
        table = apf.group_table(4, 3)
        assert table[0] == (1, 0, [1, 3, 5])
        assert table[2][1] == 1  # row 3 is in group 1

    def test_rejects_bad_shape(self):
        with pytest.raises(DomainError):
            ConstructedAPF(LinearCopyIndex()).group_table(0, 3)


class TestNaming:
    def test_default_name_mentions_kappa(self):
        assert "kappa=g" in ConstructedAPF(LinearCopyIndex()).name

    def test_display_name_override(self):
        apf = ConstructedAPF(LinearCopyIndex(), display_name="custom")
        assert apf.name == "custom"
