"""The incremental cache and the parallel runner: correctness first
(cached results are byte-identical to cold results), then the
invalidation semantics (content hash, config hash, reverse-import
closure), then the escape hatches (``--no-cache``, corrupt cache files,
deleted files)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.staticcheck import analyze_paths
from repro.staticcheck.cache import (
    CACHE_FILENAME,
    CACHE_SCHEMA,
    AnalysisCache,
    config_hash,
    dirty_closure,
)
from repro.staticcheck.config import ReprolintConfig
from repro.staticcheck.model import ANALYZER_VERSION, Finding
from repro.staticcheck.reporters import JSON_SCHEMA, render_json
from repro.staticcheck.runner import run_cli


@pytest.fixture()
def project(tmp_path: Path) -> Path:
    """A miniature package with a known import chain (a -> b -> c), a
    standalone module, and one real R002 finding (in ``c``, so edits to
    it exercise finding re-computation through the closure)."""
    (tmp_path / "pyproject.toml").write_text(
        "[tool.reprolint.r002]\n"
        'deterministic-modules = ["pkg.*"]\n'
    )
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text(
        "from pkg.b import helper_b\n\n\ndef helper_a():\n    return helper_b() + 1\n"
    )
    (pkg / "b.py").write_text(
        "from pkg.c import base\n\n\ndef helper_b():\n    return base() + 1\n"
    )
    (pkg / "c.py").write_text(
        "import time\n\n\ndef base():\n    return time.time()\n"
    )
    (tmp_path / "solo.py").write_text("def solo():\n    return 0\n")
    return tmp_path


def run(project: Path, **kwargs):
    return analyze_paths(
        [project], cache=True, cache_path=project / CACHE_FILENAME, **kwargs
    )


class TestWarmRuns:
    def test_cold_then_warm_identical_results(self, project: Path):
        cold = run(project)
        assert cold.cache_stats is not None
        assert cold.cache_stats.misses == 5 and cold.cache_stats.hits == 0
        warm = run(project)
        assert warm.cache_stats.hits == 5 and warm.cache_stats.misses == 0
        assert [f.render() for f in warm.findings] == [
            f.render() for f in cold.findings
        ]
        assert len(cold.findings) == 1  # the time.time() read in pkg.c
        assert cold.findings[0].rule == "R002"

    def test_cache_file_is_written_and_versioned(self, project: Path):
        run(project)
        raw = json.loads((project / CACHE_FILENAME).read_text())
        assert raw["schema"] == CACHE_SCHEMA
        assert raw["key"] == config_hash(_config_of(project), None)
        assert len(raw["files"]) == 5

    def test_suppressed_findings_survive_the_cache(self, project: Path):
        (project / "pkg" / "c.py").write_text(
            "import time\n\n\ndef base():\n"
            "    return time.time()  # reprolint: allow[R002] test clock\n"
        )
        cold = run(project)
        warm = run(project)
        assert cold.findings == [] and warm.findings == []
        assert len(warm.suppressed) == len(cold.suppressed) == 1


class TestInvalidation:
    def test_editing_a_leaf_reanalyzes_only_it(self, project: Path):
        run(project)
        (project / "solo.py").write_text("def solo():\n    return 42\n")
        result = run(project)
        assert result.cache_stats.misses == 1
        assert result.cache_stats.invalidated == 0
        assert result.cache_stats.hits == 4

    def test_summary_neutral_edit_skips_the_reverse_closure(
        self, project: Path
    ):
        run(project)
        # Wrapping the entropy read in int() changes the body but not
        # the function's summary (same ENTROPY taint, same line): v4
        # re-analyzes only c itself where the v3 reverse-call closure
        # walked b and a too.
        (project / "pkg" / "c.py").write_text(
            "import time\n\n\ndef base():\n    return int(time.time())\n"
        )
        result = run(project)
        assert result.cache_stats.misses == 1
        assert result.cache_stats.invalidated == 0
        assert result.cache_stats.hits == 4
        assert result.cache_stats.skipped_by_summary == 2  # base's b and a callers
        assert result.cache_stats.closure_files == 3  # what v3 would have re-analyzed
        # The closure skip must not lose findings: the R002 finding in
        # c recomputes, and the hits replay theirs unchanged.
        assert [f.rule for f in result.findings] == ["R002"]

    def test_summary_changing_edit_invalidates_the_reverse_closure(
        self, project: Path
    ):
        run(project)
        # Removing the entropy read moves base's summary (its ENTROPY
        # taint disappears), so both consumers re-analyze and their
        # R002 findings dissolve.
        (project / "pkg" / "c.py").write_text(
            "def base():\n    return 7\n"
        )
        result = run(project)
        assert result.cache_stats.misses == 3
        assert result.cache_stats.invalidated == 2
        assert result.cache_stats.hits == 2
        assert result.cache_stats.skipped_by_summary == 0
        assert result.findings == []

    def test_config_change_invalidates_everything(self, project: Path):
        run(project)
        (project / "pyproject.toml").write_text(
            "[tool.reprolint.r002]\n"
            'deterministic-modules = ["pkg.*", "solo"]\n'
        )
        result = run(project)
        assert result.cache_stats.misses == 5 and result.cache_stats.hits == 0

    def test_rules_selection_is_part_of_the_key(self, project: Path):
        run(project)
        narrowed = run(project, rules=["R004"])
        assert narrowed.cache_stats.misses == 5
        full_again = run(project)
        assert full_again.cache_stats.misses == 5  # narrowed run replaced the key

    def test_new_analyzer_version_invalidates(self, project: Path):
        run(project)
        cache_file = project / CACHE_FILENAME
        raw = json.loads(cache_file.read_text())
        raw["key"] = "0" * 16  # what an older analyzer would have written
        cache_file.write_text(json.dumps(raw))
        result = run(project)
        assert result.cache_stats.misses == 5

    def test_deleted_file_drops_its_entry(self, project: Path):
        run(project)
        (project / "solo.py").unlink()
        result = run(project)
        assert result.files == 4
        assert result.cache_stats.hits == 4
        raw = json.loads((project / CACHE_FILENAME).read_text())
        assert not any(path.endswith("solo.py") for path in raw["files"])

    def test_dirty_closure_is_transitive(self):
        clean = {
            "a": ("pkg.a", ("pkg.b",)),
            "b": ("pkg.b", ("pkg.c",)),
            "d": ("pkg.d", ()),
        }
        assert dirty_closure({"pkg.c"}, clean) == {"a", "b"}
        assert dirty_closure({"pkg.d"}, clean) == set()


class TestEscapeHatches:
    def test_no_cache_mode_writes_nothing(self, project: Path):
        result = analyze_paths([project], cache=False)
        assert result.cache_stats is None
        assert not (project / CACHE_FILENAME).exists()

    def test_corrupt_cache_degrades_to_cold(self, project: Path):
        (project / CACHE_FILENAME).write_text("{ not json")
        result = run(project)
        assert result.cache_stats.misses == 5
        assert len(result.findings) == 1  # analysis is unharmed

    def test_load_rejects_foreign_schema(self, tmp_path: Path):
        target = tmp_path / CACHE_FILENAME
        target.write_text(json.dumps({"schema": "other/1", "key": "k", "files": {}}))
        cache = AnalysisCache.load(target, "k")
        assert cache.entries == {}


class TestParallelAndCli:
    def test_pool_results_match_serial(self, project: Path):
        serial = analyze_paths([project], cache=False, jobs=1)
        pooled = analyze_paths([project], cache=False, jobs=2)
        assert [f.render() for f in pooled.findings] == [
            f.render() for f in serial.findings
        ]
        assert sorted(
            (f.render(), line) for f, line in pooled.suppressed
        ) == sorted((f.render(), line) for f, line in serial.suppressed)

    def test_cli_defaults_to_cache_and_no_cache_opts_out(
        self, project: Path, capsys, monkeypatch
    ):
        monkeypatch.chdir(project)
        assert run_cli([str(project), "--no-cache"]) == 1
        assert not (project / CACHE_FILENAME).exists()
        assert run_cli([str(project)]) == 1
        assert (project / CACHE_FILENAME).exists()
        out = capsys.readouterr().out
        assert "cache: 0 hit / 5 analyzed" in out

    def test_cli_jobs_flag(self, project: Path, capsys, monkeypatch):
        monkeypatch.chdir(project)
        assert run_cli([str(project), "--no-cache", "--jobs", "2"]) == 1
        assert "finding(s)" in capsys.readouterr().out

    def test_changed_outside_git_degrades_to_full_report(
        self, project: Path, capsys, monkeypatch
    ):
        """``--changed`` with no git repo warns and reports everything
        (the analysis is identical either way); it must not exit 2."""
        monkeypatch.chdir(project)
        assert run_cli([str(project), "--no-cache", "--changed"]) == 1
        captured = capsys.readouterr()
        assert "--changed unavailable" in captured.err
        assert "c.py" in captured.out  # the R002 finding is reported unfiltered


class TestJsonSchemaV4:
    def test_round_trip(self, project: Path):
        result = run(project)
        payload = json.loads(render_json(result))
        assert payload["schema"] == JSON_SCHEMA == "repro.reprolint/4"
        assert payload["analyzer_version"] == ANALYZER_VERSION
        assert payload["config_hash"] == result.config_hash != ""
        assert payload["cache"]["hits"] + payload["cache"]["misses"] == 5
        assert 0.0 <= payload["cache"]["hit_rate"] <= 1.0
        assert payload["cache"]["skipped_by_summary"] == 0  # cold run skips nothing
        assert "closure_files" in payload["cache"]
        rebuilt = [Finding.from_dict(f) for f in payload["findings"]]
        assert rebuilt == result.findings

    def test_cache_block_is_null_when_disabled(self, project: Path):
        result = analyze_paths([project], cache=False)
        payload = json.loads(render_json(result))
        assert payload["cache"] is None


def _config_of(project: Path) -> ReprolintConfig:
    from repro.staticcheck.config import load_config

    return load_config(project)[0]
