"""Tests for row/column/block views over extendible arrays."""

from __future__ import annotations

import pytest

from repro.apf.families import TSharp
from repro.arrays.extendible import ExtendibleArray
from repro.arrays.views import block_view, col_view, row_view, traversal_cost
from repro.core.squareshell import SquareShellPairing
from repro.errors import DomainError


def apf_array(rows=4, cols=5):
    arr = ExtendibleArray(TSharp(), rows, cols, fill=0)
    for x in range(1, rows + 1):
        for y in range(1, cols + 1):
            arr[x, y] = 100 * x + y
    return arr


def pf_array(rows=4, cols=5):
    arr = ExtendibleArray(SquareShellPairing(), rows, cols, fill=0)
    for x in range(1, rows + 1):
        for y in range(1, cols + 1):
            arr[x, y] = 100 * x + y
    return arr


class TestRowView:
    @pytest.mark.parametrize("make", [apf_array, pf_array])
    def test_values_in_order(self, make):
        arr = make()
        cells = list(row_view(arr, 2))
        assert [c.value for c in cells] == [201, 202, 203, 204, 205]
        assert [c.y for c in cells] == [1, 2, 3, 4, 5]

    @pytest.mark.parametrize("make", [apf_array, pf_array])
    def test_addresses_match_mapping(self, make):
        arr = make()
        for cell in row_view(arr, 3):
            assert cell.address == arr.mapping.pair(cell.x, cell.y)

    def test_apf_fast_path_is_progression(self):
        arr = apf_array()
        addresses = [c.address for c in row_view(arr, 2)]
        diffs = {b - a for a, b in zip(addresses, addresses[1:])}
        assert diffs == {TSharp().stride(2)}

    def test_rejects_bad_row(self):
        with pytest.raises(DomainError):
            list(row_view(apf_array(), 9))


class TestColView:
    @pytest.mark.parametrize("make", [apf_array, pf_array])
    def test_values_in_order(self, make):
        arr = make()
        assert [c.value for c in col_view(arr, 4)] == [104, 204, 304, 404]

    def test_rejects_bad_col(self):
        with pytest.raises(DomainError):
            list(col_view(apf_array(), 6))


class TestBlockView:
    @pytest.mark.parametrize("make", [apf_array, pf_array])
    def test_block_contents(self, make):
        arr = make()
        cells = list(block_view(arr, 2, 3, 2, 2))
        assert [c.value for c in cells] == [203, 204, 303, 304]
        for cell in cells:
            assert cell.address == arr.mapping.pair(cell.x, cell.y)

    def test_full_array_block(self):
        arr = pf_array()
        cells = list(block_view(arr, 1, 1, 4, 5))
        assert len(cells) == 20

    def test_rejects_out_of_bounds(self):
        with pytest.raises(DomainError):
            list(block_view(apf_array(), 3, 3, 3, 3))
        with pytest.raises(DomainError):
            list(block_view(apf_array(), 1, 1, 0, 2))


class TestTraversalCost:
    def test_apf_row_is_one_evaluation(self):
        assert traversal_cost(apf_array(), "row") == 1

    def test_pf_row_is_per_cell(self):
        assert traversal_cost(pf_array(), "row") == 5

    def test_columns_always_per_cell(self):
        assert traversal_cost(apf_array(), "col") == 4
        assert traversal_cost(pf_array(), "col") == 4

    def test_whole_array(self):
        assert traversal_cost(apf_array(), "all") == 4
        assert traversal_cost(pf_array(), "all") == 20

    def test_rejects_unknown_mode(self):
        with pytest.raises(DomainError):
            traversal_cost(apf_array(), "diagonal")

    def test_rejects_non_array(self):
        with pytest.raises(DomainError):
            traversal_cost("array", "row")  # type: ignore[arg-type]
