"""R003 fixture: a complete snapshot the checker must NOT flag."""


class Engine:
    def __init__(self, seed):
        self.clock = 0
        self.next_index = 1
        self._outstanding = {}

    def snapshot_state(self):
        return {
            "clock": self.clock,
            "next_index": self.next_index,
            "outstanding": dict(self._outstanding),
        }

    def restore_state(self, state):
        self.clock = state["clock"]
        self.next_index = state["next_index"]
        self._outstanding = dict(state["outstanding"])


class NotASnapshotter:
    """No snapshot protocol at all: R003 has nothing to say here."""

    def __init__(self):
        self.anything = 1
