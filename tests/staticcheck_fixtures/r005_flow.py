"""R005 flow fixture: mutation through an aliased mutator call.

The PR 4 syntactic pass saw only direct stores (``self.X = ...``);
``table = self._profiles; table.clear()`` mutates the same dict through
a local alias and analyzed clean under v1.  ``rebuild_copy`` mutates a
*copy* -- the alias taint deliberately dies at the ``dict(...)`` call
boundary, so it must stay legal.
"""


class AllocationEngine:
    def __init__(self, bus):
        self.bus = bus
        self._profiles = {}

    def reset_profiles(self):  # line 16: v2 flags this method
        table = self._profiles
        table.clear()

    def rebuild_copy(self):
        snapshot = dict(self._profiles)
        snapshot.clear()  # a copy, not engine state: legal
        return snapshot
