"""R002 fixture: deterministic idioms the checker must NOT flag."""

import random


def seeded_draw(seed):
    return random.Random(seed).random()


def injected_rng(rng):
    return rng.random()


def ordered_set_iteration(items):
    pool = {x for x in items}
    return [item for item in sorted(pool)]


def membership_only(items, probe):
    pool = set(items)
    return probe in pool
