"""Measurement-side utilities: floats are legal *here* (the module is
not exact), and ``purge`` mutates whatever table it is handed."""

import math


def scale(x):
    return math.sqrt(x) * 2


def purge(table):
    table.clear()
