"""Event-discipline blind spot: ``reset`` mutates ``self._profiles``
through a stored alias handed to another module's mutating helper --
no direct store, no in-file mutator-method call."""

from pkg import util


class Engine:
    def __init__(self, bus):
        self._bus = bus
        self._profiles = {}
        self._t = self._profiles

    def reset(self):
        util.purge(self._t)
