"""Deterministic module whose RNG seed transits ``pkg.helpers`` --
in-file dataflow sees only an opaque call, so v2 reports it clean."""

import random

from pkg.helpers import seed_for


def make_rng(shard):
    seed = seed_for(shard)
    return random.Random(seed)
