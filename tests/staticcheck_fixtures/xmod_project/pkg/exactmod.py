"""Exact module with no float syntax of its own: the contamination
arrives through ``pkg.util.scale``'s return value."""

from pkg.util import scale


def pair(x, y):
    return scale(x) + y
