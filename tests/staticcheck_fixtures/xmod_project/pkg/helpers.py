"""Innocent-looking helper module: nothing here is config-restricted,
so every rule passes -- but ``seed_for`` launders OS entropy into a
return value that ``pkg.det`` will feed a replay RNG."""

import os


def seed_for(shard):
    return os.getpid() * 31 + shard
