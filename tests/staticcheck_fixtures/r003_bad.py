"""R003 fixture: the PR 3 regression, in miniature.

``Engine.snapshot_state`` captures the scalars but forgets the in-flight
task table -- exactly the bug where a restored shard re-issued task
indices because ``_outstanding`` came back empty.
"""


class Engine:
    def __init__(self, seed):
        self.clock = 0
        self.next_index = 1
        self._outstanding = {}  # forgotten by snapshot/restore below

    def snapshot_state(self):
        return {"clock": self.clock, "next_index": self.next_index}

    def restore_state(self, state):
        self.clock = state["clock"]
        self.next_index = state["next_index"]
