"""R005 fixture: a watched engine class mutating state with no event."""


class AllocationEngine:
    def __init__(self, bus):
        self.bus = bus  # __init__ is exempt: construction is not a transition
        self.seated = {}

    def seat(self, volunteer_id, row):
        self.seated[volunteer_id] = row  # line 10: mutation, no publish

    def read_only(self, volunteer_id):
        return self.seated.get(volunteer_id)  # no mutation: exempt
