"""R002 flow fixture: entropy laundered through a local seed variable.

The PR 4 syntactic pass treated *any* ``random.Random(arg)`` as a
legitimately seeded stream, and its source tables never listed
``os.getpid`` -- so this whole file analyzed clean under v1.  The seed
here demonstrably derives from process entropy: a replayed run gets a
different pid and therefore a different stream.
"""

import os
import random


def pid_stream():
    seed = os.getpid() ^ 0x5EED  # line 15: entropy enters the seed
    return random.Random(seed)  # line 16: v2 flags via the taint trace


def config_stream(settings):
    seed = settings["seed"]  # a configured seed is the sanctioned pattern
    return random.Random(seed)
