"""Suppression fixture: all three placements of an allow comment."""


def trailing(n, d):
    return n / d  # reprolint: allow[R001] fixture: trailing placement


def block_above(n, d):
    # reprolint: allow[R001] fixture: block comment anchors to next line
    return n / d


# reprolint: allow[R001] fixture: def-line placement covers the body
def whole_function(n, d):
    half = n / 2
    return half / d
