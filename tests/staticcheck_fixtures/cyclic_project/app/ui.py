"""The other half of the cycle; see ``core.py``."""

__all__ = ["upper"]


def upper():
    return 1
