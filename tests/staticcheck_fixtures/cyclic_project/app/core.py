"""Each import below is individually sanctioned by the cyclic table."""

from app.ui import upper

__all__ = ["lower"]


def lower():
    return upper() - 1
