"""R003 flow fixture: ``snapshot_state`` reads an attribute but drops it.

The PR 4 syntactic pass counted any ``self.X`` *mention* inside
``snapshot_state`` as persisted, so the read below -- whose value never
reaches the returned dict -- made the file analyze clean under v1.  A
restored instance still silently loses ``_outstanding``.
"""


class Engine:
    def __init__(self, seed):
        self.clock = 0
        self._outstanding = {}  # line 13: read below, never returned

    def snapshot_state(self):
        pending = len(self._outstanding)  # read ...
        assert pending >= 0
        return {"clock": self.clock}  # ... but dropped from the state

    def restore_state(self, state):
        self.clock = state["clock"]
