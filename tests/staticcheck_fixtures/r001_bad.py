"""R001 fixture: every float-contamination shape the checker must flag."""

import math

import numpy as np


def true_division(n, d):
    return n / d  # line 9: BinOp Div


def aug_division(n, d):
    n /= d  # line 13: AugAssign Div
    return n


def float_call(n):
    return float(n)  # line 18: float() conversion


def math_sqrt(n):
    return math.sqrt(n)  # line 22: float-valued math function


def numpy_promotion(z):
    return np.sqrt(z.astype(np.float64))  # line 26: np.sqrt and np.float64
