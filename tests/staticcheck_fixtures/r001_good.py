"""R001 fixture: exact arithmetic the checker must NOT flag."""

import math

import numpy as np


def floor_division(n, d):
    return n // d


def integer_sqrt(n):
    return math.isqrt(8 * n + 1)


def exact_helpers(a, b, k):
    return math.gcd(a, b) + math.comb(a + b, k)


def int64_lattice(n):
    return np.arange(1, n + 1, dtype=np.int64)
