"""R002 fixture: nondeterminism shapes the checker must flag."""

import datetime
import os
import random
import time
import uuid


def unseeded_draw():
    return random.random()  # line 11: module-level RNG, seed unknowable


def default_rng():
    return random.Random()  # line 15: no-arg Random seeds from entropy


def wall_clock():
    return time.time()  # line 19: wall clock


def timestamp():
    return datetime.datetime.now()  # line 23: wall clock


def entropy():
    return os.urandom(8)  # line 27: OS entropy


def random_uuid():
    return uuid.uuid4()  # line 31: entropy-backed UUID


def set_iteration_order(items):
    pool = {x for x in items}
    out = []
    for item in pool:  # line 37: unordered set iteration
        out.append(item)
    return out
