"""Parameter-annotation receiver typing."""

import random

from pkg.engines import Alpha


def run(engine: Alpha):
    return random.Random(engine.fresh_seed())
