"""Two engines sharing a method name with opposite verdicts."""

import os
import random


class Alpha:
    """Clock-seeded: fresh_seed reads process entropy."""

    def fresh_seed(self):
        return os.getpid()

    def rng(self):
        return random.Random(self.fresh_seed())


class Beta:
    """Fixed-seed twin of Alpha: same method names, zero entropy."""

    def fresh_seed(self):
        return 12345

    def rng(self):
        return random.Random(self.fresh_seed())
