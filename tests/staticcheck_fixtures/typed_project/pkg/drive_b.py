"""The deterministic twin of drive_a: Beta's seed is a constant."""

import random

from pkg.engines import Beta


def seeded_rng():
    engine = Beta()
    return random.Random(engine.fresh_seed())
