"""Attribute receiver typing: self._engine = Alpha() in __init__."""

import random

from pkg.engines import Alpha


class Holder:
    def __init__(self):
        self._engine = Alpha()

    def rng(self):
        return random.Random(self._engine.fresh_seed())
