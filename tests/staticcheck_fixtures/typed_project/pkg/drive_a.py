"""Local-constructor receiver typing: the Alpha seed is entropy."""

import random

from pkg.engines import Alpha


def seeded_rng():
    engine = Alpha()
    return random.Random(engine.fresh_seed())
