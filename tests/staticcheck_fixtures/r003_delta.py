"""R003 delta fixture: a *complete* full snapshot hiding a broken
incremental protocol.

``snapshot_state`` / ``restore_state`` cover every attribute, so the
pre-delta R003 (full-snapshot pass only) analyzes this file clean.  The
delta pair is broken in both directions:

* ``snapshot_delta`` emits ``_strikes`` (line 20) but ``apply_delta``
  never applies it -- an incrementally restored replica silently loses
  every strike recorded since its base checkpoint.
* ``apply_delta`` writes ``_leases`` (line 21) but ``snapshot_delta``
  never emits it -- no delta produced by this class can ever carry a
  lease, so that apply branch is dead and the replica's leases go stale.
"""


class Engine:
    def __init__(self, seed):
        self.clock = 0
        self._strikes = {}  # emitted by snapshot_delta, never applied
        self._leases = {}  # applied by apply_delta, never emitted

    def snapshot_state(self):
        return {
            "clock": self.clock,
            "strikes": dict(self._strikes),
            "leases": dict(self._leases),
        }

    def restore_state(self, state):
        self.clock = state["clock"]
        self._strikes = dict(state["strikes"])
        self._leases = dict(state["leases"])

    def snapshot_delta(self, since):
        return {"clock": self.clock, "strikes": dict(self._strikes)}

    def apply_delta(self, delta):
        self.clock = delta["clock"]
        for vid, expiry in delta.get("leases", {}).items():
            self._leases[vid] = expiry
