"""R005 fixture: every mutation publishes a typed event."""


class RowSeated:
    def __init__(self, volunteer_id, row):
        self.volunteer_id = volunteer_id
        self.row = row


class AllocationEngine:
    def __init__(self, bus):
        self.bus = bus
        self.seated = {}

    def seat(self, volunteer_id, row):
        self.seated[volunteer_id] = row
        self.bus.publish(RowSeated(volunteer_id, row))


class UnwatchedHelper:
    """Not in ``event-classes``: mutations here are nobody's business."""

    def bump(self):
        self.count = getattr(self, "count", 0) + 1
