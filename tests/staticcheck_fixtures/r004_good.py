"""R004 fixture: allowed imports, self-access, live imports only."""

from repro.errors import DomainError


class Ledger:
    def __init__(self):
        self._records = {}

    def record_count(self):
        return len(self._records)  # self-access is fine


def raise_domain_error(message):
    raise DomainError(message)
