"""Declared exact by miniproj's pyproject: the division must be flagged."""


def halve(n):
    return n / 2
