"""Per-module override: R001 is disabled for pkg.waived, so the same
division that is flagged in exact_mod passes here."""


def halve(n):
    return n / 2
