"""R004 fixture: an import outside the layer allowance, a reach into
another module's private state, and a dead import."""

import os

from repro.webcompute import engine


def peek(ledger):
    return ledger._records  # line 10: ledger-private table
