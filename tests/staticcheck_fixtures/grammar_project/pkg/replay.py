"""Replay half: tick and add restore from the journal."""


def apply_op(state, op):
    kind = op[0]
    if kind == "tick":
        state["clock"] = state.get("clock", 0) + 1
    elif kind == "add":
        state.setdefault("items", []).append(op[1])
    else:
        raise ValueError(f"unknown journal op {kind!r}")
