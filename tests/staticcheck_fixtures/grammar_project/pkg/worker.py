"""Live dispatch half: handles tick/add/probe (probe is read-only)."""


def apply_live(state, op):
    kind = op[0]
    if kind == "tick":
        state["clock"] = state.get("clock", 0) + 1
        return None
    if kind == "add":
        state.setdefault("items", []).append(op[1])
        return None
    if kind == "probe":
        return state.get("clock", 0)
    raise ValueError(f"unknown op {kind!r}")
