"""Emit half of the op grammar (with one drifted tag: promote)."""


class Router:
    def __init__(self):
        self.log = []

    def _journal(self, op):
        self.log.append(op)

    def tick(self):
        self._journal(["tick"])

    def add(self, item):
        self._journal(["add", item])

    def promote(self, item):
        # The seeded drift: emitted here, handled and replayed nowhere.
        self._journal(["promote", item])
