"""Stale-suppression fixture: the allow below waives nothing, so the
analyzer must report it as R000."""


def exact(n, d):
    return n // d  # reprolint: allow[R001] nothing here to waive
