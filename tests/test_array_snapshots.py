"""Tests for extendible-array snapshot/restore."""

from __future__ import annotations

import pytest

from repro.arrays.extendible import ExtendibleArray
from repro.arrays.snapshots import (
    dumps_array,
    loads_array,
    restore_array,
    snapshot_array,
)
from repro.core.dovetail import DovetailMapping
from repro.core.registry import get_pairing
from repro.core.squareshell import SquareShellPairing
from repro.errors import ConfigurationError


def sample_array():
    arr = ExtendibleArray(get_pairing("hyperbolic"), 3, 4, fill=0)
    arr[1, 1] = 11
    arr[3, 4] = "corner"
    arr[2, 2] = None  # explicit None is a value, fill is 0
    arr.append_row()
    arr[4, 1] = [1, 2, 3]
    return arr


class TestRoundTrip:
    def test_json_roundtrip_stable(self):
        arr = sample_array()
        text = dumps_array(arr)
        assert dumps_array(loads_array(text)) == text

    def test_logical_content_preserved(self):
        arr = sample_array()
        restored = loads_array(dumps_array(arr))
        assert restored.shape == arr.shape
        assert restored.to_lists() == arr.to_lists()

    def test_addresses_recomputed_identically(self):
        arr = sample_array()
        restored = loads_array(dumps_array(arr))
        for x in range(1, arr.rows + 1):
            for y in range(1, arr.cols + 1):
                assert restored.address_of(x, y) == arr.address_of(x, y)

    def test_restored_array_still_reshapes_with_zero_moves(self):
        restored = loads_array(dumps_array(sample_array()))
        restored.append_col()
        restored.delete_row()
        assert restored.space.traffic.moves == 0

    def test_unwritten_cells_stay_fill(self):
        arr = ExtendibleArray(SquareShellPairing(), 2, 2)  # no fill
        arr[1, 2] = "only"
        restored = restore_array(snapshot_array(arr))
        assert restored[1, 2] == "only"
        assert restored[2, 1] is None

    def test_parameterized_mapping_roundtrips(self):
        arr = ExtendibleArray(get_pairing("aspect-2x3"), 2, 3, fill=9)
        restored = loads_array(dumps_array(arr))
        assert restored.mapping.name == "aspect-2x3"
        assert restored.to_lists() == arr.to_lists()


class TestValidation:
    def test_rejects_unregistered_mapping(self):
        dt = DovetailMapping([get_pairing("aspect-1x2"), get_pairing("aspect-2x1")])
        arr = ExtendibleArray(dt, 2, 2, fill=0)
        with pytest.raises(ConfigurationError):
            snapshot_array(arr)

    def test_rejects_bad_version(self):
        data = snapshot_array(sample_array())
        data["version"] = 0
        with pytest.raises(ConfigurationError):
            restore_array(data)

    def test_rejects_non_array(self):
        with pytest.raises(ConfigurationError):
            snapshot_array({"not": "an array"})  # type: ignore[arg-type]
