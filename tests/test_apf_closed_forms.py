"""Tests for the verbatim display formulas (repro.apf.closed_forms) as
independent oracles against the class implementations."""

from __future__ import annotations

import pytest

from repro.apf.closed_forms import (
    cantor_binomial,
    hyperbolic_formula,
    square_shell_formula,
    stride_bracket,
    stride_sharp,
    t_bracket,
    t_sharp,
)
from repro.apf.families import TBracket, TSharp
from repro.core.diagonal import DiagonalPairing
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.squareshell import SquareShellPairing
from repro.errors import DomainError


class TestTBracketFormula:
    @pytest.mark.parametrize("c", [1, 2, 3, 4])
    def test_matches_class(self, c):
        t = TBracket(c)
        for x in range(1, 40):
            for y in range(1, 6):
                assert t_bracket(c, x, y) == t.pair(x, y)

    def test_figure6_values(self):
        assert t_bracket(1, 14, 1) == 8192
        assert t_bracket(3, 29, 1) == 128

    def test_rejects_bad_args(self):
        with pytest.raises(DomainError):
            t_bracket(0, 1, 1)
        with pytest.raises(DomainError):
            t_bracket(1, 0, 1)


class TestTSharpFormula:
    def test_matches_class(self):
        t = TSharp()
        for x in range(1, 100):
            for y in range(1, 5):
                assert t_sharp(x, y) == t.pair(x, y)

    def test_figure6_values(self):
        assert t_sharp(28, 1) == 400
        assert t_sharp(29, 5) == 2480


class TestStrideFormulas:
    @pytest.mark.parametrize("c", [1, 2, 3])
    def test_bracket(self, c):
        t = TBracket(c)
        for x in range(1, 50):
            assert stride_bracket(c, x) == t.stride(x)

    def test_sharp(self):
        t = TSharp()
        for x in range(1, 100):
            assert stride_sharp(x) == t.stride(x)


class TestCoreFormulas:
    def test_cantor_binomial(self):
        d = DiagonalPairing()
        for x in range(1, 15):
            for y in range(1, 15):
                assert cantor_binomial(x, y) == d.pair(x, y)

    def test_square_shell(self):
        a = SquareShellPairing()
        for x in range(1, 15):
            for y in range(1, 15):
                assert square_shell_formula(x, y) == a.pair(x, y)

    def test_hyperbolic_naive(self):
        h = HyperbolicPairing()
        for x in range(1, 7):
            for y in range(1, 7):
                assert hyperbolic_formula(x, y) == h.pair(x, y)

    def test_domain_checks(self):
        with pytest.raises(DomainError):
            cantor_binomial(0, 1)
        with pytest.raises(DomainError):
            square_shell_formula(1, -1)
        with pytest.raises(DomainError):
            hyperbolic_formula(1, 0)
