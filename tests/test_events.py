"""Tests for the structured event layer (repro.webcompute.events)."""

from __future__ import annotations

from repro.apf.families import TSharp
from repro.webcompute.events import (
    EventBus,
    EventCounters,
    EventLog,
    ResultReturned,
    RowRecycled,
    RowSeated,
    TaskIssued,
    VolunteerBanned,
    VolunteerDeparted,
    VolunteerRegistered,
)
from repro.webcompute.server import WBCServer
from repro.webcompute.volunteer import Behavior, VolunteerProfile


class TestEventBus:
    def test_publish_reaches_subscribers_in_order(self):
        bus = EventBus()
        seen: list[str] = []
        bus.subscribe(lambda e: seen.append("first"))
        bus.subscribe(lambda e: seen.append("second"))
        bus.publish(RowRecycled(tick=0, row=1, resume_serial=5))
        assert seen == ["first", "second"]

    def test_type_filtered_subscription(self):
        bus = EventBus()
        bans: list[VolunteerBanned] = []
        bus.subscribe(bans.append, [VolunteerBanned])
        bus.publish(RowRecycled(tick=0, row=1, resume_serial=5))
        bus.publish(VolunteerBanned(tick=2, volunteer_id=7, strikes=2))
        assert len(bans) == 1
        assert bans[0].volunteer_id == 7

    def test_unsubscribe(self):
        bus = EventBus()
        seen: list[object] = []
        unsubscribe = bus.subscribe(seen.append)
        bus.publish(RowRecycled(tick=0, row=1, resume_serial=1))
        unsubscribe()
        bus.publish(RowRecycled(tick=1, row=2, resume_serial=1))
        assert len(seen) == 1
        assert bus.subscriber_count == 0
        unsubscribe()  # idempotent

    def test_clock_source(self):
        bus = EventBus()
        assert bus.now() == 0  # no clock yet
        bus.set_clock(lambda: 42)
        assert bus.now() == 42

    def test_forward_to_stamps_shard(self):
        local = EventBus()
        global_bus = EventBus()
        log = EventLog.attach(global_bus)
        local.forward_to(global_bus, shard=3)
        local.publish(VolunteerBanned(tick=1, volunteer_id=5, strikes=2))
        assert len(log) == 1
        forwarded = log.events[0]
        assert forwarded.shard == 3
        assert forwarded.volunteer_id == 5
        # The original event is immutable; forwarding made a stamped copy.

    def test_forward_to_preserves_existing_shard(self):
        local = EventBus()
        global_bus = EventBus()
        log = EventLog.attach(global_bus)
        local.forward_to(global_bus, shard=3)
        local.publish(VolunteerBanned(tick=1, volunteer_id=5, strikes=2, shard=9))
        assert log.events[0].shard == 9


class TestEventCounters:
    def test_counts_and_tick_span(self):
        bus = EventBus()
        counters = EventCounters.attach(bus)
        for tick in (2, 4, 6):
            bus.publish(TaskIssued(tick=tick, volunteer_id=1, task_index=tick, row=1, serial=tick))
        assert counters.count(TaskIssued) == 3
        assert counters.tick_span(TaskIssued) == (2, 6)
        assert counters.per_tick_rate(TaskIssued) == 3 / 5
        assert counters.count(VolunteerBanned) == 0
        assert counters.tick_span(VolunteerBanned) is None
        assert counters.per_tick_rate(VolunteerBanned) == 0.0
        assert counters.total == 3

    def test_summary_is_json_able(self):
        bus = EventBus()
        counters = EventCounters.attach(bus)
        bus.publish(RowSeated(tick=1, row=1, volunteer_id=1, start_serial=1, recycled=False))
        summary = counters.summary()
        assert summary == {
            "RowSeated": {
                "count": 1,
                "first_tick": 1,
                "last_tick": 1,
                "per_tick_rate": 1.0,
            }
        }


class TestEventLog:
    def test_bounded_capture(self):
        bus = EventBus()
        log = EventLog.attach(bus, maxlen=2)
        for tick in (1, 2, 3):
            bus.publish(RowRecycled(tick=tick, row=tick, resume_serial=1))
        assert [e.tick for e in log.events] == [2, 3]

    def test_of_type(self):
        bus = EventBus()
        log = EventLog.attach(bus)
        bus.publish(RowRecycled(tick=1, row=1, resume_serial=1))
        bus.publish(VolunteerBanned(tick=2, volunteer_id=1, strikes=2))
        assert len(log.of_type(VolunteerBanned)) == 1
        assert len(log.of_type(RowRecycled)) == 1


class TestServerEventStream:
    """The full lifecycle, observed purely through the bus."""

    def test_lifecycle_events(self):
        server = WBCServer(TSharp(), verification_rate=1.0, ban_after_strikes=1)
        log = EventLog.attach(server.bus)
        counters = EventCounters.attach(server.bus)

        vid = server.register(VolunteerProfile("alice", speed=2.0))
        server.tick()
        task = server.request_task(vid)
        server.submit_result(vid, task.index, task.expected_result)
        server.depart(vid)

        assert counters.count(VolunteerRegistered) == 1
        assert counters.count(RowSeated) == 1
        assert counters.count(TaskIssued) == 1
        assert counters.count(ResultReturned) == 1
        assert counters.count(VolunteerDeparted) == 1
        assert counters.count(RowRecycled) == 1
        assert counters.count(VolunteerBanned) == 0

        registered = log.of_type(VolunteerRegistered)[0]
        issued = log.of_type(TaskIssued)[0]
        assert registered.volunteer_id == vid
        assert issued.row == registered.row
        assert issued.tick == 1  # stamped with the engine clock
        returned = log.of_type(ResultReturned)[0]
        assert returned.bad is False and returned.verified is True
        departed = log.of_type(VolunteerDeparted)[0]
        assert departed.banned is False
        assert departed.resume_serial == 2  # one task issued on serial 1

    def test_ban_event_carries_strikes(self):
        server = WBCServer(TSharp(), verification_rate=1.0, ban_after_strikes=2)
        bans: list[VolunteerBanned] = []
        server.bus.subscribe(bans.append, [VolunteerBanned])
        vid = server.register(
            VolunteerProfile("mallory", behavior=Behavior.MALICIOUS, error_rate=1.0)
        )
        for _ in range(2):
            server.tick()
            task = server.request_task(vid)
            server.submit_result(vid, task.index, task.expected_result ^ 1)
        assert len(bans) == 1
        assert bans[0].volunteer_id == vid
        assert bans[0].strikes == 2
        assert bans[0].tick == server.clock

    def test_recycled_flag_on_reseated_row(self):
        server = WBCServer(TSharp())
        seats: list[RowSeated] = []
        server.bus.subscribe(seats.append, [RowSeated])
        first = server.register(VolunteerProfile("a"))
        server.depart(first)
        server.register(VolunteerProfile("b"))
        assert [s.recycled for s in seats] == [False, True]
        assert seats[0].row == seats[1].row
