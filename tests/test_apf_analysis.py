"""Tests for the APF analysis toolkit -- including the paper's crossover
claims at x = 5, 11, 25 (the x = 25 claim has a measured one-point
exception at x = 32; see EXPERIMENTS.md)."""

from __future__ import annotations

import pytest

from repro.apf.analysis import (
    StrideComparison,
    compare_families,
    dominance_crossover,
    growth_exponent,
    max_task_index,
    stride_table,
)
from repro.apf.families import TBracket, TSharp, TStar
from repro.errors import DomainError


class TestStrideTable:
    def test_structure(self):
        table = stride_table([TSharp(), TStar()], [1, 2, 4, 8])
        assert set(table) == {"apf-sharp", "apf-star"}
        assert table["apf-sharp"] == [2, 8, 32, 128]

    def test_rejects_empty(self):
        with pytest.raises(DomainError):
            stride_table([TSharp()], [])


class TestPaperCrossovers:
    """Section 4.2.2's explicit claims, measured."""

    def test_t1_vs_sharp_crossover_is_5(self):
        # "it is not until x = 5 that T^<1>'s strides are always at least
        # as large as T#'s" -- holds exactly.
        assert dominance_crossover(TBracket(1), TSharp(), 500) == 5

    def test_t2_vs_sharp_crossover_is_11(self):
        # "the corresponding number for T^<2> is x = 11" -- holds exactly.
        assert dominance_crossover(TBracket(2), TSharp(), 500) == 11

    def test_t3_vs_sharp_measured_crossover(self):
        # The paper says x = 25; measured under the strict "for all
        # x >= x0" reading, dominance first holds from x = 33, because
        # T#'s stride jumps to 2048 at x = 32 (a power of two) while
        # T^<3> is still at 1024.  Both facts pinned here.
        assert dominance_crossover(TBracket(3), TSharp(), 500) == 33
        t3, sharp = TBracket(3), TSharp()
        violations = [
            x for x in range(25, 501) if t3.stride(x) < sharp.stride(x)
        ]
        assert violations == list(range(32, 33))  # exactly x = 32

    def test_paper_claim_holds_at_25_to_31(self):
        t3, sharp = TBracket(3), TSharp()
        for x in range(25, 32):
            assert t3.stride(x) >= sharp.stride(x)
        assert t3.stride(24) < sharp.stride(24)

    def test_no_dominance_below_crossovers(self):
        t1, sharp = TBracket(1), TSharp()
        assert t1.stride(4) < sharp.stride(4)

    def test_star_eventually_beats_sharp(self):
        # "T*'s strides will eventually be dramatically smaller than T#'s".
        star, sharp = TStar(), TSharp()
        x0 = dominance_crossover(sharp, star, 100_000)
        assert x0 is not None
        assert sharp.stride(100_000) > 50 * star.stride(100_000)

    def test_dominance_none_when_big_is_small(self):
        # T* never dominates T# out to the horizon (it's the smaller one).
        assert dominance_crossover(TStar(), TSharp(), 10_000) is None


class TestGrowthExponent:
    def test_sharp_is_quadratic(self):
        slopes = growth_exponent(TSharp(), [1 << k for k in range(3, 14)])
        assert all(abs(s - 2.0) < 0.01 for s in slopes)

    def test_bracket_is_superquadratic(self):
        slopes = growth_exponent(TBracket(1), [8, 16, 32])
        assert all(s > 3 for s in slopes)

    def test_star_is_subquadratic_asymptotically(self):
        # T*'s stride staircase flattens between group boundaries, so the
        # exponent must be sampled over wide spans; far out it sits well
        # below 2 (the quadratic benchmark).
        slopes = growth_exponent(TStar(), [1 << k for k in (16, 24, 32, 40)])
        assert all(s < 1.5 for s in slopes)

    def test_rejects_bad_grid(self):
        with pytest.raises(DomainError):
            growth_exponent(TSharp(), [8])
        with pytest.raises(DomainError):
            growth_exponent(TSharp(), [8, 4])


class TestMaxTaskIndex:
    def test_small_case_by_hand(self):
        # T#: rows 1..3, 2 tasks each: indices {1,3}, {2,10}, {6,14}.
        assert max_task_index(TSharp(), 3, 2) == 14

    def test_monotone_in_both_arguments(self):
        for apf in (TSharp(), TStar(), TBracket(2)):
            assert max_task_index(apf, 10, 5) <= max_task_index(apf, 11, 5)
            assert max_task_index(apf, 10, 5) <= max_task_index(apf, 10, 6)

    def test_compactness_ordering_at_scale(self):
        # For 200 volunteers x 100 tasks, T^<1> is astronomically worse;
        # T* beats T# (the Section 4.2.3 payoff).
        v, t = 200, 100
        t1 = max_task_index(TBracket(1), v, t)
        sharp = max_task_index(TSharp(), v, t)
        star = max_task_index(TStar(), v, t)
        assert t1 > 10**9 * sharp
        assert star < sharp

    def test_rejects_bad_args(self):
        with pytest.raises(DomainError):
            max_task_index(TSharp(), 0, 5)


class TestCompareFamilies:
    def test_all_ordered_pairs(self):
        comps = compare_families([TBracket(1), TSharp(), TStar()], 100)
        assert len(comps) == 6
        by_pair = {(c.big_name, c.small_name): c for c in comps}
        assert by_pair[("apf-bracket-1", "apf-sharp")].crossover == 5

    def test_holds_flag(self):
        comp = StrideComparison("a", "b", 10, None)
        assert not comp.holds()
        comp2 = StrideComparison("a", "b", 10, 3)
        assert comp2.holds()
