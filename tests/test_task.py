"""Tests for the WBC task model."""

from __future__ import annotations

import pytest

from repro.errors import DomainError
from repro.webcompute.task import Task, TaskStatus, correct_result


class TestCorrectResult:
    def test_deterministic(self):
        assert correct_result(42) == correct_result(42)

    def test_distinct_across_indices(self):
        values = {correct_result(i) for i in range(1, 5000)}
        assert len(values) == 4999  # no collisions in range

    def test_avalanche(self):
        # Adjacent indices differ in many bits (uncorrelated results).
        diff = correct_result(1000) ^ correct_result(1001)
        assert bin(diff).count("1") > 10

    def test_rejects_bad_index(self):
        with pytest.raises(DomainError):
            correct_result(0)


class TestTaskLifecycle:
    def make(self):
        return Task(index=10, volunteer_id=3, serial=2, issued_at=5)

    def test_initial_state(self):
        t = self.make()
        assert t.status is TaskStatus.ISSUED
        assert t.reported_result is None

    def test_return_then_verify_ok(self):
        t = self.make()
        t.mark_returned(t.expected_result, at_tick=9)
        assert t.status is TaskStatus.RETURNED
        assert t.returned_at == 9
        assert t.verify()
        assert t.status is TaskStatus.VERIFIED_OK

    def test_return_then_verify_bad(self):
        t = self.make()
        t.mark_returned(t.expected_result ^ 1, at_tick=9)
        assert not t.verify()
        assert t.status is TaskStatus.VERIFIED_BAD

    def test_double_return_rejected(self):
        t = self.make()
        t.mark_returned(0, at_tick=1)
        with pytest.raises(DomainError):
            t.mark_returned(0, at_tick=2)

    def test_verify_before_return_rejected(self):
        with pytest.raises(DomainError):
            self.make().verify()

    def test_rejects_bad_fields(self):
        with pytest.raises(DomainError):
            Task(index=0, volunteer_id=1, serial=1, issued_at=0)
        with pytest.raises(DomainError):
            Task(index=1, volunteer_id=1, serial=0, issued_at=0)
