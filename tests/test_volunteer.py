"""Tests for volunteer behavior models."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.webcompute.task import correct_result
from repro.webcompute.volunteer import Behavior, VolunteerProfile


class TestValidation:
    def test_honest_default(self):
        v = VolunteerProfile("a")
        assert v.behavior is Behavior.HONEST and not v.is_faulty

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            VolunteerProfile("")

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ConfigurationError):
            VolunteerProfile("a", speed=0.0)

    def test_rejects_honest_with_error_rate(self):
        with pytest.raises(ConfigurationError):
            VolunteerProfile("a", error_rate=0.1)

    def test_rejects_faulty_without_error_rate(self):
        with pytest.raises(ConfigurationError):
            VolunteerProfile("a", behavior=Behavior.MALICIOUS)

    def test_rejects_out_of_range_error_rate(self):
        with pytest.raises(ConfigurationError):
            VolunteerProfile("a", behavior=Behavior.CARELESS, error_rate=1.5)


class TestCompute:
    def test_honest_always_correct(self):
        v = VolunteerProfile("h", speed=1.0)
        rng = random.Random(0)
        for i in range(1, 200):
            assert v.compute(i, rng) == correct_result(i)

    def test_malicious_rate(self):
        v = VolunteerProfile("m", behavior=Behavior.MALICIOUS, error_rate=0.8)
        rng = random.Random(1)
        bad = sum(1 for i in range(1, 1001) if v.compute(i, rng) != correct_result(i))
        assert 700 < bad < 900  # ~0.8 of 1000

    def test_careless_rate(self):
        v = VolunteerProfile("c", behavior=Behavior.CARELESS, error_rate=0.1)
        rng = random.Random(2)
        bad = sum(1 for i in range(1, 2001) if v.compute(i, rng) != correct_result(i))
        assert 140 < bad < 260  # ~0.1 of 2000

    def test_bad_results_never_accidentally_correct(self):
        # The corruption mask is forced odd-nonzero, so a "bad" return can
        # never equal ground truth.
        v = VolunteerProfile("m", behavior=Behavior.MALICIOUS, error_rate=1.0)
        rng = random.Random(3)
        for i in range(1, 500):
            assert v.compute(i, rng) != correct_result(i)

    def test_deterministic_under_seed(self):
        v = VolunteerProfile("c", behavior=Behavior.CARELESS, error_rate=0.5)
        a = [v.compute(i, random.Random(42)) for i in range(1, 50)]
        b = [v.compute(i, random.Random(42)) for i in range(1, 50)]
        assert a == b
