"""Tests for repro.numbertheory.bits."""

from __future__ import annotations

import pytest

from repro.errors import DomainError
from repro.numbertheory.bits import (
    bit_length,
    ilog2,
    is_power_of_two,
    next_power_of_two,
    odd_part,
    two_adic_valuation,
)


class TestBitLength:
    def test_small_values(self):
        assert [bit_length(n) for n in (1, 2, 3, 4, 7, 8)] == [1, 2, 2, 3, 3, 4]

    def test_large_value(self):
        assert bit_length(2**100) == 101

    def test_rejects_zero(self):
        with pytest.raises(DomainError):
            bit_length(0)

    def test_rejects_negative(self):
        with pytest.raises(DomainError):
            bit_length(-5)

    def test_rejects_bool(self):
        with pytest.raises(DomainError):
            bit_length(True)

    def test_rejects_float(self):
        with pytest.raises(DomainError):
            bit_length(2.0)


class TestIlog2:
    def test_exact_powers(self):
        for k in range(20):
            assert ilog2(1 << k) == k

    def test_between_powers(self):
        assert ilog2(3) == 1
        assert ilog2(5) == 2
        assert ilog2(1023) == 9
        assert ilog2(1025) == 10

    def test_one(self):
        assert ilog2(1) == 0

    def test_rejects_zero(self):
        with pytest.raises(DomainError):
            ilog2(0)

    def test_matches_paper_group_index_for_sharp(self):
        # (4.5): g = floor(log2 x); Figure 6 shows g = 4 for x = 28, 29.
        assert ilog2(28) == 4
        assert ilog2(29) == 4


class TestIsPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(1 << k) for k in range(30))

    def test_non_powers(self):
        assert not any(is_power_of_two(n) for n in (3, 5, 6, 7, 9, 12, 100))

    def test_rejects_nonpositive(self):
        with pytest.raises(DomainError):
            is_power_of_two(0)


class TestNextPowerOfTwo:
    def test_idempotent_on_powers(self):
        for k in range(10):
            assert next_power_of_two(1 << k) == 1 << k

    def test_rounds_up(self):
        assert next_power_of_two(5) == 8
        assert next_power_of_two(1000) == 1024

    @pytest.mark.parametrize("n", range(1, 200))
    def test_is_smallest(self, n):
        p = next_power_of_two(n)
        assert p >= n and is_power_of_two(p)
        if p > 1:
            assert p // 2 < n


class TestTwoAdicValuation:
    def test_odd_numbers_have_zero(self):
        assert all(two_adic_valuation(n) == 0 for n in (1, 3, 5, 99, 12345))

    def test_pure_powers(self):
        for k in range(25):
            assert two_adic_valuation(1 << k) == k

    @pytest.mark.parametrize("n", range(1, 300))
    def test_definition(self, n):
        v = two_adic_valuation(n)
        assert n % (1 << v) == 0
        assert (n >> v) % 2 == 1

    def test_rejects_zero(self):
        with pytest.raises(DomainError):
            two_adic_valuation(0)


class TestOddPart:
    @pytest.mark.parametrize("n", range(1, 300))
    def test_reconstruction(self, n):
        assert odd_part(n) << two_adic_valuation(n) == n

    def test_odd_part_is_odd(self):
        assert all(odd_part(n) % 2 == 1 for n in range(1, 200))

    def test_unique_decomposition_is_injective(self):
        # (valuation, odd part) pairs are distinct across 1..512 -- the
        # uniqueness the APF constructor's bijectivity rests on.
        seen = set()
        for n in range(1, 513):
            key = (two_adic_valuation(n), odd_part(n))
            assert key not in seen
            seen.add(key)
