"""Chaos harness: the stateful accountability machine under faults.

:class:`ChaosServerMachine` reuses the rules and invariants of
``tests/test_stateful.py``'s :class:`AccountableServerMachine` -- same
register / request / submit / depart / tick vocabulary, same invariants
-- but drives a :class:`~repro.webcompute.sharding.ShardedWBCServer`
with leases and periodic checkpoints, and mixes in the fault rules:
crash a shard, restore it from checkpoint + journal replay (blocking or
as a *streaming* restore driven a few items per step, with registration
rounds landing on the shard mid-replay), run the lease reaper, and let
a reissue target return someone else's task.

After *every* step, Hypothesis re-checks the inherited invariants:

* attribution round-trips exactly -- ``attribute(index)`` names the
  ORIGINAL assignee for every index ever issued, including reissued
  tasks returned by their reissue target;
* no global task index is ever double-issued (the model's issued-set is
  exactly the ledgers' union), across any crash/restore interleaving;
* bans stay sticky and honest volunteers are never banned.

Plus the chaos-specific ones below (restored shards rejoin the global
clock; a restore never resurrects a departed volunteer).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import invariant, precondition, rule
import hypothesis.strategies as st

from repro.apf.families import TSharp
from repro.webcompute.sharding import ShardedWBCServer
from repro.webcompute.task import Task

from tests.test_stateful import AccountableServerMachine

SHARDS = 3


class ChaosServerMachine(AccountableServerMachine):
    def __init__(self):
        super().__init__()
        # task index -> current reissue target (latest reap wins)
        self.reissued_to: dict[int, int] = {}

    # -- seams ---------------------------------------------------------

    def make_server(self):
        return ShardedWBCServer(
            TSharp(),
            shards=SHARDS,
            verification_rate=1.0,
            ban_after_strikes=2,
            seed=7,
            lease_ticks=3,
            checkpoint_every=4,
        )

    def volunteer_available(self, vid: int) -> bool:
        return self.server.is_shard_alive(self.server.shard_of(vid))

    def index_available(self, index: int) -> bool:
        shard_no, _local = self.server.composer.unpair(index)
        return self.server.is_shard_alive(shard_no - 1)

    def all_shards_available(self) -> bool:
        return len(self.server.alive_shards()) == SHARDS

    def task_record(self, index: int) -> Task:
        return self.server.task(index)

    # -- fault rules ---------------------------------------------------

    @rule(shard=st.integers(0, SHARDS - 1))
    def crash(self, shard):
        # Keep at least one shard up so registration stays possible.
        if self.server.is_shard_alive(shard) and len(self.server.alive_shards()) > 1:
            self.server.crash_shard(shard)

    @rule(shard=st.integers(0, SHARDS - 1))
    def restore(self, shard):
        if not self.server.is_shard_alive(shard) and not self.server.is_shard_restoring(shard):
            # restore_shard itself audits the no-double-issue property
            # (checkpoint + #request ops) and raises RecoveryError on
            # any divergence -- reaching the invariants below means the
            # audit passed.
            self.server.restore_shard(shard)

    @rule(shard=st.integers(0, SHARDS - 1))
    def begin_streaming_restore(self, shard):
        if not self.server.is_shard_alive(shard) and not self.server.is_shard_restoring(shard):
            self.server.begin_restore(shard)

    @rule(items=st.integers(1, 4))
    def step_streaming_restores(self, items):
        # The same audit as the blocking restore runs when a stream's
        # queue drains; interleaved registers/ticks keep extending it.
        for shard in range(SHARDS):
            if self.server.is_shard_restoring(shard):
                self.server.restore_step(shard, max_items=items)

    @rule()
    def reap(self):
        for task in self.server.reap_expired():
            self.reissued_to[task.index] = task.reissued_to

    @precondition(lambda self: self.reissued_to)
    @rule(idx=st.integers(0, 10**6))
    def submit_as_reissue_target(self, idx):
        index = sorted(self.reissued_to)[idx % len(self.reissued_to)]
        target = self.reissued_to[index]
        if (
            not self.index_available(index)
            or not self.task_open(index)
            or not self.volunteer_available(target)
            or self.server.is_banned(target)
            or self.task_record(index).reissued_to != target
        ):
            return
        task = self.task_record(index)
        self.server.submit_result(target, index, task.expected_result)
        # The return lands on the TARGET's record, but attribution of
        # the index (checked by the inherited attribution_exact
        # invariant after this step) still names the original assignee.

    # -- chaos-specific invariants -------------------------------------

    @invariant()
    def live_shards_share_the_clock(self):
        for shard in self.server.alive_shards():
            assert self.server.engines[shard].clock == self.server.clock

    @invariant()
    def restoring_shards_stay_routable(self):
        # Degraded service: a mid-restore shard is not alive, but it is
        # in the registration routing set (and nowhere else).
        for shard in range(SHARDS):
            if self.server.is_shard_restoring(shard):
                assert not self.server.is_shard_alive(shard)
                assert shard in self.server.routable_shards()

    @invariant()
    def restores_never_resurrect(self):
        # Every seated volunteer on a live shard is one the model still
        # considers active: replay re-applies departures, so a restored
        # shard cannot bring a departed volunteer back.
        active = set(self.active)
        for shard in self.server.alive_shards():
            engine = self.server.engines[shard]
            for vid in engine.frontend.seated_volunteers():
                assert vid in active


ChaosServerMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=40, deadline=None
)
TestChaosServerMachine = ChaosServerMachine.TestCase


def _codec_chaos_case(codec_name: str):
    """The full chaos vocabulary -- crash, blocking and streaming restore,
    lease reaping, reissue-target returns -- on a server whose global
    indices are minted by *codec_name* instead of the default square-shell
    composer.  The inherited ``attribution_exact`` invariant re-checks
    after every step that ``attribute(index)`` names the ORIGINAL assignee
    for every index ever issued, so a codec whose inverse drifts from its
    forward map under any crash/restore interleaving misnames a volunteer
    and fails here."""

    class _CodecChaosMachine(ChaosServerMachine):
        def make_server(self):
            return ShardedWBCServer(
                TSharp(),
                shards=SHARDS,
                codec=codec_name,
                verification_rate=1.0,
                ban_after_strikes=2,
                seed=7,
                lease_ticks=3,
                checkpoint_every=4,
            )

    _CodecChaosMachine.__name__ = f"CodecChaosMachine[{codec_name}]"
    _CodecChaosMachine.__qualname__ = _CodecChaosMachine.__name__
    _CodecChaosMachine.TestCase.settings = settings(
        max_examples=7, stateful_step_count=35, deadline=None
    )
    return _CodecChaosMachine.TestCase


TestSzudzikCodecChaos = _codec_chaos_case("szudzik")
TestRosenbergStrongCodecChaos = _codec_chaos_case("rosenberg-strong")
TestBinprop16CodecChaos = _codec_chaos_case("binprop-16")


class ParallelChaosServerMachine(ChaosServerMachine):
    """The same chaos vocabulary and invariants, but the shards live in
    worker processes: every crash/restore/reissue interleaving Hypothesis
    finds must hold with engine state crossing the pipe.  Fewer examples
    than the in-process machine -- each step is an IPC round trip -- but
    the step mix is identical."""

    def make_server(self):
        return ShardedWBCServer(
            TSharp(),
            shards=SHARDS,
            workers=2,
            verification_rate=1.0,
            ban_after_strikes=2,
            seed=7,
            lease_ticks=3,
            checkpoint_every=4,
        )

    def teardown(self):
        self.server.close()
        super().teardown()


ParallelChaosServerMachine.TestCase.settings = settings(
    max_examples=5, stateful_step_count=30, deadline=None
)
TestParallelChaosServerMachine = ParallelChaosServerMachine.TestCase
