"""Tests for the hashing scheme of the Section 3 Aside ([14])."""

from __future__ import annotations

import random

import pytest

from repro.arrays.hashed import HashedArrayStore
from repro.errors import DomainError


class TestBasicOperations:
    def test_put_get(self):
        store = HashedArrayStore()
        store.put(3, 7, "v")
        assert store.get(3, 7) == "v"
        assert store.get(7, 3) is None  # position, not unordered pair

    def test_overwrite(self):
        store = HashedArrayStore()
        store.put(1, 1, "a")
        store.put(1, 1, "b")
        assert store.get(1, 1) == "b"
        assert len(store) == 1

    def test_delete(self):
        store = HashedArrayStore()
        store.put(2, 2, 1)
        assert store.delete(2, 2)
        assert not store.delete(2, 2)
        assert store.get(2, 2) is None

    def test_contains(self):
        store = HashedArrayStore()
        assert not store.contains(1, 1)
        store.put(1, 1, None)  # storing None is legal
        assert store.contains(1, 1)

    def test_rejects_bad_coordinates(self):
        store = HashedArrayStore()
        with pytest.raises(DomainError):
            store.put(0, 1, "x")
        with pytest.raises(DomainError):
            store.get(1, -1)


class TestBulkCorrectness:
    def test_model_based_random_ops(self):
        rng = random.Random(123)
        store = HashedArrayStore()
        model: dict[tuple[int, int], int] = {}
        for step in range(4000):
            x, y = rng.randint(1, 60), rng.randint(1, 60)
            op = rng.random()
            if op < 0.6:
                v = rng.randint(0, 10**9)
                store.put(x, y, v)
                model[(x, y)] = v
            elif op < 0.85:
                assert store.get(x, y, -1) == model.get((x, y), -1)
            else:
                assert store.delete(x, y) == ((x, y) in model)
                model.pop((x, y), None)
        assert len(store) == len(model)
        for (x, y), v in model.items():
            assert store.get(x, y) == v
        assert dict(store.items()) == {pos: v for pos, v in model.items()}


class TestSpaceBound:
    def test_capacity_below_2n_during_growth(self):
        # The [14] claim: < 2n memory locations, checked at every insert
        # (beyond the constant-size floor).
        store = HashedArrayStore()
        for i in range(1, 3000):
            store.put(i, 1, i)
            if len(store) > 16:
                assert store.capacity < 2 * len(store), (
                    f"capacity {store.capacity} >= 2 * {len(store)}"
                )

    def test_load_factor_bounded(self):
        store = HashedArrayStore()
        for i in range(1, 2000):
            store.put(1, i, i)
            assert store.load_factor <= 0.62

    def test_shrinks_after_mass_deletion(self):
        store = HashedArrayStore()
        for i in range(1, 1001):
            store.put(i, i, i)
        for i in range(1, 996):
            store.delete(i, i)
        assert store.capacity < 200  # rebuilt small again
        for i in range(996, 1001):
            assert store.get(i, i) == i


class TestProbeBehavior:
    def test_expected_probes_stay_bounded(self):
        # O(1) expected access: mean probes must not grow with n.
        store = HashedArrayStore()
        rng = random.Random(7)
        checkpoints = {}
        for n in (1000, 10_000):
            while len(store) < n:
                store.put(rng.randint(1, 10**6), rng.randint(1, 10**6), 0)
            # measure fresh reads
            before_ops, before_probes = store.stats.operations, store.stats.probes
            for _ in range(2000):
                store.get(rng.randint(1, 10**6), rng.randint(1, 10**6))
            ops = store.stats.operations - before_ops
            probes = store.stats.probes - before_probes
            checkpoints[n] = probes / ops
        assert checkpoints[10_000] < 2 * checkpoints[1000] + 1.0

    def test_space_report_fields(self):
        store = HashedArrayStore()
        for i in range(1, 100):
            store.put(i, 2 * i, i)
        report = store.space_report()
        assert report["live_cells"] == 99
        assert 1.0 < report["capacity_per_cell"] < 2.0
        assert report["mean_probes"] >= 1.0
        assert report["rebuilds"] >= 1
