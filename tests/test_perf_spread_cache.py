"""Tests for the memoized/incremental spread evaluator (repro.perf.spread_cache)."""

from __future__ import annotations

import time

import pytest

from repro.core.aspectratio import AspectRatioPairing
from repro.core.base import StorageMapping
from repro.core.diagonal import DiagonalPairing
from repro.core.dovetail import DovetailMapping
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.squareshell import SquareShellPairing
from repro.errors import DomainError
from repro.perf.spread_cache import SpreadCache


class TestCorrectness:
    def test_matches_generic_definition(self, any_pairing):
        cache = SpreadCache(any_pairing, prefer_closed_form=False)
        for n in (1, 2, 3, 7, 12, 30):
            assert cache.spread(n) == StorageMapping.spread(any_pairing, n)

    def test_out_of_order_and_duplicate_queries(self):
        pf = AspectRatioPairing(1, 2)
        cache = SpreadCache(pf)
        ns = [16, 4, 25, 4, 16, 9]
        got = [cache.spread(n) for n in ns]
        want = [StorageMapping.spread(pf, n) for n in ns]
        assert got == want

    def test_incremental_extension_equals_fresh_computation(self):
        # Growing 10 -> 100 through many anchors must equal computing at
        # 100 directly (the band-union identity).
        pf = AspectRatioPairing(2, 3)
        cache = SpreadCache(pf, prefer_closed_form=False)
        for n in range(10, 101, 7):
            assert cache.spread(n) == StorageMapping.spread(pf, n)

    def test_dovetail_supported(self):
        # Dovetail's spread comes from the generic enumeration; the cache
        # must agree with it (injective-not-surjective mapping).
        dm = DovetailMapping([DiagonalPairing(), SquareShellPairing()])
        cache = SpreadCache(dm)
        for n in (1, 5, 12):
            assert cache.spread(n) == dm.spread(n)

    def test_spread_many_order_and_duplicates(self):
        pf = AspectRatioPairing(1, 1)
        got = SpreadCache(pf).spread_many([9, 4, 9, 25])
        assert got == [pf.spread(9), pf.spread(4), pf.spread(9), pf.spread(25)]


class TestClosedForm:
    def test_short_circuit_used_when_available(self):
        cache = SpreadCache(DiagonalPairing())
        assert cache.stats()["closed_form"] is True
        assert cache.spread(10**6) == DiagonalPairing().spread(10**6)

    def test_prefer_closed_form_false_forces_enumeration(self):
        cache = SpreadCache(SquareShellPairing(), prefer_closed_form=False)
        assert cache.stats()["closed_form"] is False
        assert cache.spread(30) == SquareShellPairing().spread(30)

    def test_hyperbolic_flagged_closed_form(self):
        assert SpreadCache(HyperbolicPairing()).stats()["closed_form"] is True


class TestStatsAndValidation:
    def test_hit_miss_accounting(self):
        cache = SpreadCache(AspectRatioPairing(1, 2))
        cache.spread(8)
        cache.spread(8)
        cache.spread(16)
        stats = cache.stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 1

    def test_clear_resets(self):
        cache = SpreadCache(AspectRatioPairing(1, 2))
        cache.spread(8)
        cache.clear()
        stats = cache.stats()
        assert stats == {**stats, "hits": 0, "misses": 0, "anchors": 0}

    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "7"])
    def test_rejects_bad_n(self, bad):
        with pytest.raises(DomainError):
            SpreadCache(DiagonalPairing()).spread(bad)

    def test_mapping_accessor_is_cached(self):
        pf = AspectRatioPairing(2, 3)
        assert pf.spread_cache() is pf.spread_cache()


class TestSpeedup:
    def test_batch_grid_at_least_5x_faster_than_generic(self):
        # Acceptance criterion: spread_many over a 50-point geometric grid
        # beats 50 independent generic spread() calls by >= 5x (measured
        # ~9x; bands overlap heavily on a geometric grid, so the cache's
        # incremental extension does a small fraction of the lattice work).
        lo, hi, k = 10, 2000, 50
        ratio = (hi / lo) ** (1 / (k - 1))
        ns = [max(1, round(lo * ratio**i)) for i in range(k)]

        t0 = time.perf_counter()
        generic = [StorageMapping.spread(AspectRatioPairing(2, 3), n) for n in ns]
        generic_s = time.perf_counter() - t0

        # Best-of-3 on a fresh cache each time: the fast side is ~20ms, so
        # one scheduler hiccup could otherwise sink the ratio.
        cached_s = float("inf")
        for _ in range(3):
            pf = AspectRatioPairing(2, 3)
            t0 = time.perf_counter()
            cached = pf.spread_many(ns)
            cached_s = min(cached_s, time.perf_counter() - t0)

        assert cached == generic
        assert generic_s / cached_s >= 5.0
