"""Tests for the diagonal PF D (Section 2, Figure 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.diagonal import DiagonalPairing, DiagonalPairingTwin
from repro.numbertheory.integers import binomial

FIGURE_2 = [
    [1, 3, 6, 10, 15, 21, 28, 36],
    [2, 5, 9, 14, 20, 27, 35, 44],
    [4, 8, 13, 19, 26, 34, 43, 53],
    [7, 12, 18, 25, 33, 42, 52, 63],
    [11, 17, 24, 32, 41, 51, 62, 74],
    [16, 23, 31, 40, 50, 61, 73, 86],
    [22, 30, 39, 49, 60, 72, 85, 99],
    [29, 38, 48, 59, 71, 84, 98, 113],
]


class TestFigure2:
    def test_exact_table(self):
        assert DiagonalPairing().table(8, 8) == FIGURE_2

    def test_highlighted_shell(self):
        # The paper highlights shell x + y = 6: values 15, 14, 13, 12, 11.
        d = DiagonalPairing()
        shell = [d.pair(x, 6 - x) for x in range(1, 6)]
        assert sorted(shell) == [11, 12, 13, 14, 15]


class TestFormula:
    def test_matches_binomial_form(self):
        # (2.1): D(x, y) = C(x+y-1, 2) + y.
        d = DiagonalPairing()
        for x in range(1, 20):
            for y in range(1, 20):
                assert d.pair(x, y) == binomial(x + y - 1, 2) + y

    def test_walks_shells_upward(self):
        # Within shell x+y = s, increasing y means increasing address.
        d = DiagonalPairing()
        for s in range(2, 15):
            addresses = [d.pair(s - y, y) for y in range(1, s)]
            assert addresses == sorted(addresses)

    def test_consecutive_shells_are_contiguous(self):
        d = DiagonalPairing()
        for s in range(2, 15):
            last_of_shell = d.pair(1, s - 1)
            first_of_next = d.pair(s, 1)
            assert first_of_next == last_of_shell + 1


class TestInverse:
    @pytest.mark.parametrize("z", range(1, 2000))
    def test_roundtrip_dense(self, z):
        d = DiagonalPairing()
        x, y = d.unpair(z)
        assert d.pair(x, y) == z

    def test_huge_roundtrip(self):
        d = DiagonalPairing()
        x, y = 10**15 + 3, 10**14 + 7
        assert d.unpair(d.pair(x, y)) == (x, y)


class TestSpread:
    def test_one_by_n_claim(self):
        # Section 3.2: D(1, n) = (n**2 + n)/2.
        d = DiagonalPairing()
        for n in range(1, 50):
            assert d.pair(1, n) == (n * n + n) // 2

    def test_n_by_n_claim(self):
        # Section 3.2: D spreads the n x n array over ~2n**2 addresses
        # (exactly 2n**2 - 2n + 1).
        d = DiagonalPairing()
        for n in range(1, 30):
            assert d.pair(n, n) == 2 * n * n - 2 * n + 1

    def test_closed_form_spread(self):
        d = DiagonalPairing()
        for n in (1, 2, 5, 16, 100):
            brute = max(
                d.pair(x, y) for x in range(1, n + 1) for y in range(1, n // x + 1)
            )
            assert d.spread(n) == brute == n * (n + 1) // 2

    def test_spread_for_shape_closed_form(self):
        d = DiagonalPairing()
        for rows, cols in ((1, 9), (9, 1), (4, 7), (6, 6)):
            brute = max(
                d.pair(x, y)
                for x in range(1, rows + 1)
                for y in range(1, cols + 1)
            )
            assert d.spread_for_shape(rows, cols) == brute


class TestVectorized:
    def test_pair_array_int64(self):
        d = DiagonalPairing()
        xs = np.arange(1, 1000)
        ys = np.arange(1000, 1, -1)
        out = d.pair_array(xs, ys)
        assert out.dtype == np.int64
        idx = 137
        assert out[idx] == d.pair(int(xs[idx]), int(ys[idx]))

    def test_unpair_array_large_dense(self):
        d = DiagonalPairing()
        zs = np.arange(1, 100_000, 97)
        xs, ys = d.unpair_array(zs)
        back = d.pair_array(xs, ys)
        assert np.array_equal(back, zs)


class TestTwin:
    def test_twin_swaps_arguments(self):
        d, t = DiagonalPairing(), DiagonalPairingTwin()
        for x in range(1, 12):
            for y in range(1, 12):
                assert t.pair(x, y) == d.pair(y, x)

    def test_twin_is_bijection(self):
        DiagonalPairingTwin().check_bijective_prefix(500)

    def test_twin_spread_equals_original(self):
        # Spread is symmetric in the shape constraint xy <= n.
        d, t = DiagonalPairing(), DiagonalPairingTwin()
        for n in (4, 10, 36):
            assert t.spread(n) == d.spread(n)

    def test_twin_differs_from_original(self):
        d, t = DiagonalPairing(), DiagonalPairingTwin()
        assert any(
            t.pair(x, y) != d.pair(x, y) for x in range(1, 5) for y in range(1, 5)
        )

    def test_twin_vectorized(self):
        t = DiagonalPairingTwin()
        zs = np.arange(1, 500)
        xs, ys = t.unpair_array(zs)
        for z, x, y in zip(zs, xs, ys):
            assert t.pair(int(x), int(y)) == int(z)
