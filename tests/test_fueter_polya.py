"""Tests for the Fueter-Polya grid search.

The full documented grid (span 4, 59049 candidates) runs in the benchmark;
here we use a reduced grid that still contains the Cantor coefficients
(span 3) to keep the suite fast while testing the same machinery.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.polynomial.fueter_polya import (
    candidate_grid_size,
    default_grid,
    search_quadratic_pfs,
)
from repro.polynomial.poly2d import Polynomial2D


class TestGrid:
    def test_default_grid_contents(self):
        grid = default_grid(4)
        assert len(grid) == 9
        from fractions import Fraction

        for needed in (
            Fraction(1, 2),
            Fraction(1),
            Fraction(-3, 2),
            Fraction(-1, 2),
        ):
            assert needed in grid

    def test_grid_size_formula(self):
        assert candidate_grid_size(default_grid(4)) == 9**5
        assert candidate_grid_size(default_grid(3)) == 7**5

    def test_rejects_bad_span(self):
        with pytest.raises(ConfigurationError):
            default_grid(0)


class TestSearch:
    @pytest.fixture(scope="class")
    def result(self):
        # span 3 includes every Cantor coefficient; ~16.8k candidates.
        return search_quadratic_pfs(default_grid(3), bound=21)

    def test_finds_exactly_cantor_and_twin(self, result):
        assert result.found_exactly_cantor_pair()

    def test_survivor_polynomials_verified(self, result):
        assert set(result.pfs_found) == {
            Polynomial2D.cantor(),
            Polynomial2D.cantor_twin(),
        }

    def test_stage1_prunes_heavily(self, result):
        assert result.stage1_survivors < result.grid_points / 10

    def test_grid_points_reported(self, result):
        assert result.grid_points == 7**5


class TestNegativeControl:
    def test_grid_without_cantor_coefficients_finds_nothing(self):
        # Integer-only grid (excludes the half-integer Cantor coefficients):
        # Fueter-Polya says nothing else can survive.
        from fractions import Fraction

        grid = [Fraction(k) for k in range(-2, 3)]
        result = search_quadratic_pfs(grid, bound=21)
        assert result.pfs_found == ()
