"""Stateful (model-based) hypothesis tests.

Two rule-based machines drive long arbitrary operation sequences:

* :class:`ArrayMachine` -- an :class:`ExtendibleArray` (square-shell PF)
  against the naive remapping baseline *and* a pure-dict model; after any
  prefix of operations all three agree, and the PF side has never moved a
  cell.
* :class:`AccountableServerMachine` -- a :class:`WBCServer` against
  invariants: every issued task attributes to its owner; serials per row
  never repeat; banned volunteers stay banned; honest volunteers are
  never banned.  The machine is written against the surface both server
  flavors share, with availability hooks a subclass can override --
  ``tests/test_chaos.py`` reuses it over a :class:`ShardedWBCServer`
  with crash / restore / lease-reissue rules mixed in.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.apf.families import TSharp
from repro.arrays.extendible import ExtendibleArray
from repro.arrays.naive import NaiveRowMajorArray
from repro.core.squareshell import SquareShellPairing
from repro.webcompute.server import WBCServer
from repro.webcompute.task import Task, TaskStatus
from repro.webcompute.volunteer import Behavior, VolunteerProfile


class ArrayMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ext = ExtendibleArray(SquareShellPairing(), 1, 1, fill=0)
        self.naive = NaiveRowMajorArray(1, 1, fill=0)
        self.model: dict[tuple[int, int], int] = {}

    @rule()
    def append_row(self):
        self.ext.append_row()
        self.naive.append_row()

    @rule()
    def append_col(self):
        self.ext.append_col()
        self.naive.append_col()

    @rule()
    def delete_row(self):
        if self.ext.rows > 1:
            dropped = self.ext.rows
            self.ext.delete_row()
            self.naive.delete_row()
            self.model = {
                (x, y): v for (x, y), v in self.model.items() if x != dropped
            }

    @rule()
    def delete_col(self):
        if self.ext.cols > 1:
            dropped = self.ext.cols
            self.ext.delete_col()
            self.naive.delete_col()
            self.model = {
                (x, y): v for (x, y), v in self.model.items() if y != dropped
            }

    @rule(x=st.integers(1, 12), y=st.integers(1, 12), v=st.integers(0, 10**9))
    def write(self, x, y, v):
        rows, cols = self.ext.shape
        if 1 <= x <= rows and 1 <= y <= cols:
            self.ext[x, y] = v
            self.naive[x, y] = v
            self.model[(x, y)] = v

    @invariant()
    def shapes_agree(self):
        assert self.ext.shape == self.naive.shape

    @invariant()
    def values_agree_with_model(self):
        rows, cols = self.ext.shape
        for (x, y), v in self.model.items():
            if x <= rows and y <= cols:
                assert self.ext[x, y] == v
                assert self.naive[x, y] == v

    @invariant()
    def pf_side_never_moves(self):
        assert self.ext.space.traffic.moves == 0


ArrayMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestArrayMachine = ArrayMachine.TestCase


class AccountableServerMachine(RuleBasedStateMachine):
    """Model-based accountability check, shared by both server flavors.

    Subclasses override :meth:`make_server` (and the availability hooks
    when some shards can be down) and may add rules of their own; the
    invariants here -- exact attribution, unique task indices, sticky
    bans, no honest bans -- must hold for *any* interleaving either
    machine can produce.
    """

    def __init__(self):
        super().__init__()
        self.server = self.make_server()
        self.active: list[int] = []
        self.outstanding: dict[int, Task] = {}
        self.issued: dict[int, int] = {}  # task index -> ORIGINAL volunteer
        self.ever_banned: set[int] = set()
        self.honest: set[int] = set()
        self.counter = 0

    # -- seams a sharded/chaos subclass overrides ----------------------

    def make_server(self):
        return WBCServer(
            TSharp(), verification_rate=1.0, ban_after_strikes=2, seed=7
        )

    def volunteer_available(self, vid: int) -> bool:
        """Whether *vid* can be reached right now (a shard may be down)."""
        return True

    def index_available(self, index: int) -> bool:
        """Whether *index*'s shard can be reached right now."""
        return True

    def all_shards_available(self) -> bool:
        return True

    def task_record(self, index: int) -> Task:
        return self.server.ledger.task(index)

    def task_open(self, index: int) -> bool:
        """Whether the task is still issued-and-unreturned (a reissue
        race may have closed it from the other side)."""
        return self.task_record(index).status is TaskStatus.ISSUED

    # -- rules ---------------------------------------------------------

    @rule(speed=st.floats(0.1, 5.0), faulty=st.booleans())
    def register(self, speed, faulty):
        self.counter += 1
        profile = (
            VolunteerProfile(
                f"m{self.counter}",
                speed=speed,
                behavior=Behavior.MALICIOUS,
                error_rate=1.0,
            )
            if faulty
            else VolunteerProfile(f"h{self.counter}", speed=speed)
        )
        vid = self.server.register(profile)
        self.active.append(vid)
        if not faulty:
            self.honest.add(vid)

    @precondition(lambda self: self.active)
    @rule(idx=st.integers(0, 10**6))
    def request_and_submit(self, idx):
        vid = self.active[idx % len(self.active)]
        if not self.volunteer_available(vid) or self.server.is_banned(vid):
            return
        task = self.outstanding.pop(vid, None)
        if task is None:
            task = self.server.request_task(vid)
            self.issued[task.index] = vid
        if not self.index_available(task.index) or not self.task_open(task.index):
            # Racing a down shard or a reissue that already returned;
            # the computed result is simply lost.
            return
        result = (
            task.expected_result
            if vid in self.honest
            else task.expected_result ^ 0xDEAD
        )
        self.server.submit_result(vid, task.index, result)
        if self.server.is_banned(vid):
            self.ever_banned.add(vid)

    @precondition(lambda self: self.active)
    @rule(idx=st.integers(0, 10**6))
    def request_only(self, idx):
        vid = self.active[idx % len(self.active)]
        if (
            not self.volunteer_available(vid)
            or self.server.is_banned(vid)
            or vid in self.outstanding
        ):
            return
        task = self.server.request_task(vid)
        self.outstanding[vid] = task
        self.issued[task.index] = vid

    @precondition(lambda self: len(self.active) > 1)
    @rule(idx=st.integers(0, 10**6))
    def depart(self, idx):
        vid = self.active[idx % len(self.active)]
        if vid in self.outstanding or not self.volunteer_available(vid):
            return  # keep it simple: only idle, reachable volunteers leave
        self.server.depart(vid)
        self.active.remove(vid)

    @rule()
    def tick(self):
        self.server.tick()

    # -- invariants ----------------------------------------------------

    @invariant()
    def attribution_exact(self):
        for index, vid in self.issued.items():
            if self.index_available(index):
                assert self.server.attribute(index) == vid

    @invariant()
    def no_honest_bans(self):
        for vid in self.honest:
            if self.volunteer_available(vid):
                assert not self.server.is_banned(vid)

    @invariant()
    def bans_are_sticky(self):
        for vid in self.ever_banned:
            if self.volunteer_available(vid):
                assert self.server.is_banned(vid)

    @invariant()
    def task_indices_unique(self):
        if self.all_shards_available():
            assert len(self.issued) == self.server.report().tasks_issued


AccountableServerMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestServerMachine = AccountableServerMachine.TestCase
