"""Tests for the exact-safe batch layer (repro.perf.batch) and the guarded
vectorized kernels behind it.

The load-bearing property: ``pair_many``/``unpair_many`` agree with the
scalar bignum path *everywhere*, including across the 2**53 (float64
mantissa) and 2**63 (int64) boundaries where naive float kernels go
silently inexact.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apf.families import TSharp
from repro.core.base import (
    EXACT_SAFE_ADDRESS_LIMIT,
    EXACT_SAFE_COORD_LIMIT,
)
from repro.core.diagonal import DiagonalPairing, DiagonalPairingTwin
from repro.core.squareshell import SquareShellPairing, SquareShellPairingTwin
from repro.errors import ConfigurationError, DomainError
from repro.perf.batch import pair_many, spread_many, unpair_many, vectorization_window

FAST_MAPPINGS = [
    DiagonalPairing,
    DiagonalPairingTwin,
    SquareShellPairing,
    SquareShellPairingTwin,
]

BOUNDARY_ZS = [
    EXACT_SAFE_ADDRESS_LIMIT - 1,  # 2**53 - 2
    EXACT_SAFE_ADDRESS_LIMIT,      # 2**53 - 1: last kernel-safe address
    EXACT_SAFE_ADDRESS_LIMIT + 1,  # 2**53: first scalar-routed address
    EXACT_SAFE_ADDRESS_LIMIT + 2,
    2**63 - 1,
    2**63,
    2**63 + 1,
    2**100 + 12345,
]


@pytest.fixture(params=FAST_MAPPINGS, ids=lambda cls: cls.__name__)
def fast_pairing(request):
    return request.param()


class TestPairMany:
    def test_in_window_matches_scalar_and_stays_int64(self, fast_pairing):
        xs = np.arange(1, 200, dtype=np.int64)
        ys = xs[::-1].copy()
        got = pair_many(fast_pairing, xs, ys)
        assert got.dtype == np.int64
        for x, y, z in zip(xs, ys, got):
            assert int(z) == fast_pairing.pair(int(x), int(y))

    def test_out_of_window_coords_fall_back_exactly(self, fast_pairing):
        xs = [1, EXACT_SAFE_COORD_LIMIT, EXACT_SAFE_COORD_LIMIT + 1, 2**40]
        ys = [2**40, 3, EXACT_SAFE_COORD_LIMIT + 1, 1]
        got = pair_many(fast_pairing, xs, ys)
        for x, y, z in zip(xs, ys, got.reshape(-1)):
            assert int(z) == fast_pairing.pair(x, y)

    def test_broadcasting(self, fast_pairing):
        got = pair_many(fast_pairing, [3], [1, 2, 3])
        assert [int(z) for z in got.reshape(-1)] == [
            fast_pairing.pair(3, y) for y in (1, 2, 3)
        ]

    def test_rejects_nonpositive(self, fast_pairing):
        with pytest.raises(DomainError):
            pair_many(fast_pairing, [1, 0], [1, 1])

    def test_empty_batch(self, fast_pairing):
        got = pair_many(fast_pairing, np.array([], dtype=np.int64), [])
        assert got.size == 0

    def test_apf_uses_object_path(self):
        pf = TSharp()
        got = pair_many(pf, [1, 2, 3], [3, 2, 1])
        assert [int(z) for z in got.reshape(-1)] == [
            pf.pair(x, y) for x, y in [(1, 3), (2, 2), (3, 1)]
        ]

    def test_rejects_non_mapping(self):
        with pytest.raises(ConfigurationError):
            pair_many(object(), [1], [1])


class TestUnpairMany:
    def test_boundary_addresses_match_scalar(self, fast_pairing):
        xs, ys = unpair_many(fast_pairing, BOUNDARY_ZS)
        for z, x, y in zip(BOUNDARY_ZS, xs.reshape(-1), ys.reshape(-1)):
            assert (int(x), int(y)) == fast_pairing.unpair(z)
            assert fast_pairing.pair(int(x), int(y)) == z  # exact roundtrip

    def test_in_window_int64_batch_stays_int64(self, fast_pairing):
        zs = np.arange(1, 500, dtype=np.int64)
        xs, ys = unpair_many(fast_pairing, zs)
        assert xs.dtype == np.int64 and ys.dtype == np.int64
        for z, x, y in zip(zs, xs, ys):
            assert (int(x), int(y)) == fast_pairing.unpair(int(z))

    def test_int64_uint64_mix_does_not_promote_to_float(self, fast_pairing):
        # Regression: np.asarray([1, 2**63]) promotes to float64 (int64 +
        # uint64 have no common integer dtype), which would round 2**63+1
        # down to 2**63 *before* dispatch -- a silent wrong answer.  The
        # dispatcher must re-read such lists exactly.
        zs = [1, 2**63, 2**63 + 1]
        xs, ys = unpair_many(fast_pairing, zs)
        for z, x, y in zip(zs, xs.reshape(-1), ys.reshape(-1)):
            assert (int(x), int(y)) == fast_pairing.unpair(z)
            assert fast_pairing.pair(int(x), int(y)) == z

    def test_mixed_bignum_batch_splits_correctly(self, fast_pairing):
        zs = [5, 2**60, 17, 2**90]
        xs, ys = unpair_many(fast_pairing, zs)
        for z, x, y in zip(zs, xs.reshape(-1), ys.reshape(-1)):
            assert (int(x), int(y)) == fast_pairing.unpair(z)

    def test_rejects_invalid_elements(self, fast_pairing):
        with pytest.raises(DomainError):
            unpair_many(fast_pairing, [1, 0, 3])
        with pytest.raises(DomainError):
            unpair_many(fast_pairing, [1, 2.5])

    def test_empty_batch(self, fast_pairing):
        xs, ys = unpair_many(fast_pairing, [])
        assert xs.size == 0 and ys.size == 0

    @given(
        st.lists(
            st.one_of(
                st.integers(min_value=1, max_value=10**6),
                st.integers(
                    min_value=EXACT_SAFE_ADDRESS_LIMIT - 2,
                    max_value=EXACT_SAFE_ADDRESS_LIMIT + 2,
                ),
                st.integers(min_value=1, max_value=2**70),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_property_agrees_with_scalar(self, zs):
        for cls in (DiagonalPairing, SquareShellPairing):
            pf = cls()
            xs, ys = unpair_many(pf, zs)
            for z, x, y in zip(zs, xs.reshape(-1), ys.reshape(-1)):
                assert (int(x), int(y)) == pf.unpair(z)


class TestSpreadManyAndWindow:
    def test_spread_many_delegates_to_cache(self):
        pf = DiagonalPairing()
        assert spread_many(pf, [4, 9, 4]) == [pf.spread(4), pf.spread(9), pf.spread(4)]

    def test_window_reported_for_fast_mappings(self, fast_pairing):
        window = vectorization_window(fast_pairing)
        assert window["max_coord"] == EXACT_SAFE_COORD_LIMIT
        assert window["max_address"] == EXACT_SAFE_ADDRESS_LIMIT

    def test_window_none_for_apf(self):
        window = vectorization_window(TSharp())
        assert window == {"max_coord": None, "max_address": None}
