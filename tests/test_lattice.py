"""Tests for repro.numbertheory.lattice."""

from __future__ import annotations

import pytest

from repro.errors import DomainError
from repro.numbertheory.divisor_sums import divisor_summatory
from repro.numbertheory.lattice import (
    count_lattice_points_under_hyperbola,
    hyperbola_staircase,
    lattice_points_under_hyperbola,
    spread_lower_bound,
)


class TestLatticeEnumeration:
    @pytest.mark.parametrize("n", range(1, 60))
    def test_all_points_satisfy_constraint(self, n):
        for x, y in lattice_points_under_hyperbola(n):
            assert x >= 1 and y >= 1 and x * y <= n

    @pytest.mark.parametrize("n", range(1, 60))
    def test_no_point_missing(self, n):
        points = set(lattice_points_under_hyperbola(n))
        for x in range(1, n + 1):
            for y in range(1, n + 1):
                assert ((x, y) in points) == (x * y <= n)

    @pytest.mark.parametrize("n", range(1, 60))
    def test_count_matches_enumeration(self, n):
        assert (
            len(list(lattice_points_under_hyperbola(n)))
            == count_lattice_points_under_hyperbola(n)
        )

    def test_count_equals_divisor_summatory(self):
        for n in range(1, 100):
            assert count_lattice_points_under_hyperbola(n) == divisor_summatory(n)

    def test_figure5(self):
        assert count_lattice_points_under_hyperbola(16) == 50

    def test_rejects_nonpositive(self):
        with pytest.raises(DomainError):
            list(lattice_points_under_hyperbola(0))


class TestStaircase:
    def test_figure5_staircase(self):
        assert hyperbola_staircase(16) == [16, 8, 5, 4, 3, 2, 2, 2] + [1] * 8

    @pytest.mark.parametrize("n", range(1, 60))
    def test_row_widths(self, n):
        widths = hyperbola_staircase(n)
        assert len(widths) == n
        assert widths == [n // x for x in range(1, n + 1)]

    def test_sum_is_count(self):
        for n in range(1, 60):
            assert sum(hyperbola_staircase(n)) == count_lattice_points_under_hyperbola(n)

    def test_nonincreasing(self):
        for n in (10, 100, 999):
            widths = hyperbola_staircase(n)
            assert all(a >= b for a, b in zip(widths, widths[1:]))


class TestSpreadLowerBound:
    def test_equals_lattice_count(self):
        for n in (1, 10, 100, 1000):
            assert spread_lower_bound(n) == count_lattice_points_under_hyperbola(n)

    def test_every_pf_respects_it(self):
        # Injectivity pigeonhole: D(n) distinct positions need D(n)
        # distinct addresses, so the max address over xy <= n is >= D(n).
        from repro.core.diagonal import DiagonalPairing
        from repro.core.hyperbolic import HyperbolicPairing
        from repro.core.squareshell import SquareShellPairing

        for pf in (DiagonalPairing(), SquareShellPairing(), HyperbolicPairing()):
            for n in (4, 16, 64):
                assert pf.spread(n) >= spread_lower_bound(n)

    def test_hyperbolic_meets_it_exactly(self):
        from repro.core.hyperbolic import HyperbolicPairing

        h = HyperbolicPairing()
        for n in (1, 7, 16, 100, 500):
            assert h.spread(n) == spread_lower_bound(n)
