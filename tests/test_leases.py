"""Property tests for task leases and reissue (the accountability side).

The lease mechanism must never weaken Section 4's central claim: the
task *index* is minted once, so ``T^-1`` attribution of any serial names
the ORIGINAL assignee forever -- a reissue only adds a second accountable
party (the target, charged for the return it actually makes).  These
tests drive :class:`~repro.webcompute.engine.AllocationEngine` with
Hypothesis-chosen lease lengths, population sizes, and expiry gaps and
check:

* reissue never changes ``attribute(index)``;
* a late return by the original assignee is recorded as late and charged
  to the original, never the target;
* the target's return is charged to the target while attribution still
  names the original;
* third-party returns are forgeries and rejected;
* the ledger's reissue validation (unknown task, wrong status).
"""

from __future__ import annotations

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.apf.families import TSharp
from repro.errors import AllocationError, DomainError
from repro.webcompute.engine import AllocationEngine
from repro.webcompute.events import EventLog, TaskReissued
from repro.webcompute.task import TaskStatus
from repro.webcompute.volunteer import VolunteerProfile


def make_engine(lease_ticks, volunteers=2, seed=11):
    """An engine with *volunteers* seated honest volunteers; returns
    (engine, vids).  verification_rate=1.0 so every return is audited."""
    engine = AllocationEngine(
        TSharp(),
        verification_rate=1.0,
        ban_after_strikes=2,
        seed=seed,
        lease_ticks=lease_ticks,
    )
    vids = engine.register_round(
        [VolunteerProfile(f"v{i}", speed=1.0 + i * 0.1) for i in range(volunteers)]
    )
    return engine, vids


def expire_lease(engine, ticks):
    """Advance the clock past a just-issued lease of length *ticks*."""
    for _ in range(ticks + 1):
        engine.tick()


class TestLeaseStamping:
    def test_lease_ticks_validation(self):
        from repro.errors import ConfigurationError

        for bad in (0, -3, True, 1.5, "4"):
            with pytest.raises(ConfigurationError):
                AllocationEngine(TSharp(), lease_ticks=bad)

    def test_no_lease_means_no_expiry(self):
        engine, (a, b) = make_engine(lease_ticks=None)
        task = engine.request_task(a)
        assert task.lease_expires_at is None
        expire_lease(engine, 50)
        assert engine.reap_expired() == []
        assert not task.lease_expired(engine.clock)

    def test_lease_is_stamped_at_issue(self):
        engine, (a, _b) = make_engine(lease_ticks=4)
        engine.tick()
        task = engine.request_task(a)
        assert task.lease_expires_at == engine.clock + 4


@settings(max_examples=30, deadline=None)
@given(
    lease=st.integers(1, 8),
    extra=st.integers(0, 5),
    volunteers=st.integers(2, 5),
    seed=st.integers(0, 10**6),
)
def test_reissue_never_changes_attribution(lease, extra, volunteers, seed):
    """For any lease length and expiry overshoot, every reissued task
    still attributes -- via the APF inverse and the epoch table -- to the
    volunteer the index was minted for."""
    engine, vids = make_engine(lease, volunteers=volunteers, seed=seed)
    original = vids[0]
    task = engine.request_task(original)
    before = engine.attribute(task.index)
    assert before == original
    expire_lease(engine, lease + extra)
    reissued = engine.reap_expired()
    assert [t.index for t in reissued] == [task.index]
    assert task.reissued_to in vids[1:]
    assert task.volunteer_id == original  # the record itself is immutable
    assert engine.attribute(task.index) == original  # and so is T^-1


@settings(max_examples=30, deadline=None)
@given(lease=st.integers(1, 8), late_by=st.integers(1, 10), seed=st.integers(0, 10**6))
def test_late_return_stays_on_the_original_record(lease, late_by, seed):
    """The original assignee returning after expiry: counted late,
    charged (return + verification) to the ORIGINAL assignee, and the
    target's record is untouched."""
    engine, (original, target) = make_engine(lease, seed=seed)
    task = engine.request_task(original)
    for _ in range(lease + late_by):
        engine.tick()
    assert task.lease_expired(engine.clock)
    engine.reap_expired()
    assert task.reissued_to == target
    target_before = engine.ledger.record_of(target).returned
    engine.submit_result(original, task.index, task.expected_result)
    assert engine.ledger.late_returns == 1
    assert task.returned_by == original
    rec = engine.ledger.record_of(original)
    assert rec.returned == 1
    assert engine.ledger.record_of(target).returned == target_before
    assert engine.attribute(task.index) == original


def test_target_return_charged_to_target_attribution_unchanged():
    engine, (original, target) = make_engine(lease_ticks=3)
    task = engine.request_task(original)
    expire_lease(engine, 3)
    engine.reap_expired()
    engine.submit_result(target, task.index, task.expected_result)
    assert task.returned_by == target
    assert engine.ledger.record_of(target).returned == 1
    assert engine.ledger.record_of(original).returned == 0
    # Both parties are accountable: the original was issued the index,
    # the target was issued the reissue.
    assert engine.ledger.record_of(original).issued == 1
    assert engine.ledger.record_of(target).issued == 1
    # T^-1 still names the original.
    assert engine.attribute(task.index) == original

    # A bad return by the target strikes the TARGET, not the original.
    task2 = engine.request_task(original)
    expire_lease(engine, 3)
    engine.reap_expired()
    assert task2.reissued_to == target
    engine.submit_result(target, task2.index, task2.expected_result ^ 0xBAD)
    assert engine.ledger.record_of(target).strikes == 1
    assert engine.ledger.record_of(original).strikes == 0


def test_third_party_return_is_a_forgery():
    engine, vids = make_engine(lease_ticks=3, volunteers=3)
    original, target, outsider = vids
    task = engine.request_task(original)
    expire_lease(engine, 3)
    engine.reap_expired()
    assert task.reissued_to == target
    with pytest.raises(AllocationError):
        engine.submit_result(outsider, task.index, task.expected_result)
    # Ledger-level too: the submitter check is in the ledger itself.
    with pytest.raises(DomainError):
        engine.ledger.record_return(
            task.index, task.expected_result, engine.clock, submitter=outsider
        )


def test_reissue_race_first_return_wins():
    """Both the original and the target compute the result; whoever lands
    second is rejected (the task is no longer ISSUED), and the recorded
    return stays with the first submitter."""
    engine, (original, target) = make_engine(lease_ticks=2)
    task = engine.request_task(original)
    expire_lease(engine, 2)
    engine.reap_expired()
    engine.submit_result(target, task.index, task.expected_result)
    with pytest.raises(DomainError):
        engine.submit_result(original, task.index, task.expected_result)
    assert task.returned_by == target
    assert task.status is not TaskStatus.ISSUED


class TestReissueMechanics:
    def test_record_reissue_unknown_task(self):
        engine, (a, b) = make_engine(lease_ticks=2)
        with pytest.raises(DomainError):
            engine.ledger.record_reissue(12345, b, at_tick=0)

    def test_record_reissue_requires_issued_status(self):
        engine, (a, b) = make_engine(lease_ticks=2)
        task = engine.request_task(a)
        engine.submit_result(a, task.index, task.expected_result)
        with pytest.raises(DomainError):
            engine.ledger.record_reissue(task.index, b, at_tick=engine.clock)

    def test_reaper_skips_banned_and_busy_targets(self):
        engine, vids = make_engine(lease_ticks=2, volunteers=4)
        a, b, c, d = vids
        # Ban b outright (two bad returns).
        for _ in range(2):
            t = engine.request_task(b)
            engine.submit_result(b, t.index, t.expected_result ^ 1)
        assert engine.is_banned(b)
        task = engine.request_task(a)
        expire_lease(engine, 2)
        # c takes a task with a FRESH (unexpired) lease: busy, not
        # reapable itself.
        engine.request_task(c)
        reissued = engine.reap_expired()
        targets = {t.reissued_to for t in reissued if t.index == task.index}
        assert targets == {d}  # not a (previous), not b (banned), not c (busy)

    def test_no_eligible_target_leaves_task_with_assignee(self):
        engine, (a,) = make_engine(lease_ticks=2, volunteers=1)
        task = engine.request_task(a)
        expire_lease(engine, 2)
        assert engine.reap_expired() == []
        assert task.reissued_to is None
        # Still open; the original can return it (late).
        engine.submit_result(a, task.index, task.expected_result)
        assert engine.ledger.late_returns == 1

    def test_reissue_renews_the_lease_and_publishes(self):
        engine, (a, b) = make_engine(lease_ticks=3)
        log = EventLog.attach(engine.bus)
        task = engine.request_task(a)
        expire_lease(engine, 3)
        engine.reap_expired()
        assert task.lease_expires_at == engine.clock + 3
        events = log.of_type(TaskReissued)
        assert len(events) == 1
        assert events[0].task_index == task.index
        assert events[0].from_volunteer == a
        assert events[0].to_volunteer == b
        # row/serial in the event are the true inverse-chain coordinates.
        assert (events[0].row, events[0].serial) == engine.locate(task.index)

    def test_report_counts_reissues_and_late_returns(self):
        engine, (a, b) = make_engine(lease_ticks=1)
        task = engine.request_task(a)
        expire_lease(engine, 1)
        engine.reap_expired()
        engine.submit_result(a, task.index, task.expected_result)  # late, original
        report = engine.report()
        assert report.tasks_reissued == 1
        assert report.late_returns == 1
        # The index was never re-minted: issues count tasks, not leases.
        assert report.tasks_issued == 1
