"""Tests for accountability forensics (repro.webcompute.metrics)."""

from __future__ import annotations

import pytest

from repro.apf.families import TSharp
from repro.errors import DomainError
from repro.webcompute.metrics import compute_metrics, volunteer_forensics
from repro.webcompute.server import WBCServer
from repro.webcompute.simulation import SimulationConfig, WBCSimulation
from repro.webcompute.volunteer import Behavior, VolunteerProfile


def scripted_server():
    """Deterministic history: one honest, one offender caught on the
    second bad return."""
    server = WBCServer(TSharp(), verification_rate=1.0, ban_after_strikes=2)
    good = server.register(VolunteerProfile("good"))
    bad = server.register(
        VolunteerProfile("bad", behavior=Behavior.MALICIOUS, error_rate=1.0)
    )
    server.tick()  # t=1
    t = server.request_task(good)
    server.submit_result(good, t.index, t.expected_result)
    t = server.request_task(bad)
    server.submit_result(bad, t.index, t.expected_result ^ 1)  # first bad @1
    server.tick()  # t=2
    t = server.request_task(bad)
    server.tick()  # t=3
    server.submit_result(bad, t.index, t.expected_result ^ 1)  # ban @3
    return server, good, bad


class TestVolunteerForensics:
    def test_offender_timeline(self):
        server, _good, bad = scripted_server()
        f = volunteer_forensics(server, bad)
        assert f.bad_returns == 2
        assert f.first_bad_tick == 1
        assert f.banned_at == 3
        assert f.detection_latency == 2
        assert f.tasks_after_first_bad == 1  # the second task, issued @2

    def test_honest_timeline(self):
        server, good, _bad = scripted_server()
        f = volunteer_forensics(server, good)
        assert f.bad_returns == 0
        assert f.first_bad_tick is None
        assert f.banned_at is None
        assert f.detection_latency is None

    def test_unknown_volunteer_rejected(self):
        server, _good, _bad = scripted_server()
        with pytest.raises(DomainError):
            volunteer_forensics(server, 99)


class TestTimelineSemantics:
    """``bad_returns`` counts every bad return; the timeline quantities
    use only tick-stamped ones.  An un-ticked bad return (possible only in
    externally reconstructed ledger state) is pollution, not timeline."""

    def test_unticked_bad_return_is_pollution_but_not_first_bad(self):
        server, _good, bad = scripted_server()
        state = server.ledger.snapshot_state()
        # Reconstructed-state scenario: the first bad return (tick 1)
        # lost its return tick.  Task rows are the compact 11-tuples:
        # [index, volunteer_id, serial, issued_at, status, returned_at, ...].
        for t in state["tasks"]:
            if t[1] == bad and t[5] == 1:
                t[5] = None
        server.ledger.restore_state(state)
        f = volunteer_forensics(server, bad)
        assert f.bad_returns == 2  # both bad returns still count as pollution
        assert f.first_bad_tick == 3  # timeline starts at the stamped one
        assert f.tasks_after_first_bad == 0  # nothing issued after tick 3
        assert f.detection_latency == 0  # banned the same tick

    def test_all_unticked_bad_returns_leave_timeline_empty(self):
        server, _good, bad = scripted_server()
        state = server.ledger.snapshot_state()
        for t in state["tasks"]:
            if t[1] == bad:
                t[5] = None
        server.ledger.restore_state(state)
        f = volunteer_forensics(server, bad)
        assert f.bad_returns == 2
        assert f.first_bad_tick is None
        assert f.tasks_after_first_bad == 0
        assert f.detection_latency is None  # no timeline, no latency


class TestAggregateMetrics:
    def test_scripted_aggregate(self):
        server, _good, _bad = scripted_server()
        m = compute_metrics(server)
        assert m.offenders == 1
        assert m.offenders_banned == 1
        assert m.ban_coverage == 1.0
        assert m.mean_detection_latency == 2.0
        assert m.total_pollution == 2
        assert m.total_exposure == 1

    def test_no_offenders_is_full_coverage(self):
        server = WBCServer(TSharp())
        vid = server.register(VolunteerProfile("a"))
        t = server.request_task(vid)
        server.submit_result(vid, t.index, t.expected_result)
        m = compute_metrics(server)
        assert m.offenders == 0
        assert m.ban_coverage == 1.0

    def test_simulation_metrics_consistency(self):
        config = SimulationConfig(
            ticks=250,
            initial_volunteers=20,
            malicious_fraction=0.25,
            careless_fraction=0.0,
            verification_rate=1.0,
            ban_after_strikes=2,
            seed=13,
            departure_rate=0.0,
            arrival_rate=0.0,
        )
        sim = WBCSimulation(TSharp(), config)
        outcome = sim.run()
        m = compute_metrics(sim.server)
        assert m.total_pollution == outcome.bad_results_returned
        assert m.offenders_banned == outcome.faulty_banned
        # Full verification + persistent (100%-error) offenders: everyone
        # caught, quickly.
        assert m.ban_coverage == 1.0
        assert m.mean_detection_latency is not None
        assert m.mean_detection_latency < 20

    def test_sharded_server_metrics_aggregate_across_shards(self):
        config = SimulationConfig(
            ticks=120,
            initial_volunteers=16,
            malicious_fraction=0.25,
            careless_fraction=0.0,
            verification_rate=1.0,
            ban_after_strikes=2,
            seed=13,
            departure_rate=0.0,
            arrival_rate=0.0,
            shards=4,
        )
        sim = WBCSimulation(TSharp(), config)
        outcome = sim.run()
        m = compute_metrics(sim.server)
        assert m.total_pollution == outcome.bad_results_returned
        assert m.offenders_banned == outcome.faulty_banned
        assert m.ban_coverage == 1.0
        # Forensics resolve through the right shard's ledger.
        for vid in (1, 2, 3):
            f = volunteer_forensics(sim.server, vid)
            assert f.volunteer_id == vid
