"""Tests for the sharded WBC server (repro.webcompute.sharding).

The load-bearing property: global attribution is the composition of exact
inverses -- ``unpair`` then the shard's APF inverse then the epoch table --
so it round-trips at *any* magnitude, including global indices far beyond
2**53 where float arithmetic would corrupt every step.
"""

from __future__ import annotations

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.apf.families import TSharp, TStar
from repro.core.aspectratio import AspectRatioPairing
from repro.core.squareshell import SquareShellPairing
from repro.errors import AllocationError, ConfigurationError, ShardDownError
from repro.webcompute.events import EventCounters, TaskIssued, VolunteerRegistered
from repro.webcompute.sharding import (
    LeastLoadedPolicy,
    RoundRobinPolicy,
    ShardedWBCServer,
    ShardPolicy,
)
from repro.webcompute.volunteer import VolunteerProfile


def make_server(shards: int = 4, **kwargs) -> ShardedWBCServer:
    return ShardedWBCServer(TSharp(), shards=shards, **kwargs)


class TestConstruction:
    def test_rejects_bad_shard_counts(self):
        for bad in (0, -1, True, 1.5, "2"):
            with pytest.raises(ConfigurationError):
                ShardedWBCServer(TSharp(), shards=bad)

    def test_single_shard_is_valid(self):
        server = make_server(shards=1)
        vid = server.register(VolunteerProfile("solo"))
        task = server.request_task(vid)
        assert server.attribute(task.index) == vid

    def test_default_composer_is_square_shell(self):
        assert make_server().composer.name == SquareShellPairing().name


class TestRouting:
    def test_round_robin_assignment(self):
        server = make_server(shards=4)
        ids = server.register_round(
            [VolunteerProfile(f"v{i}") for i in range(8)]
        )
        assert [server.shard_of(v) for v in ids] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_round_robin_is_deterministic_across_servers(self):
        a, b = make_server(), make_server()
        ids_a = a.register_round([VolunteerProfile(f"v{i}") for i in range(10)])
        ids_b = b.register_round([VolunteerProfile(f"v{i}") for i in range(10)])
        assert ids_a == ids_b
        assert [a.shard_of(v) for v in ids_a] == [b.shard_of(v) for v in ids_b]

    def test_least_loaded_rebalances_after_departure(self):
        server = make_server(shards=2, policy=LeastLoadedPolicy())
        a, b = server.register_round([VolunteerProfile("a"), VolunteerProfile("b")])
        assert {server.shard_of(a), server.shard_of(b)} == {0, 1}
        server.depart(a)
        c = server.register(VolunteerProfile("c"))
        # Shard of `a` is now empty, so `c` lands there.
        assert server.shard_of(c) == server.shard_of(a)

    def test_policy_routing_out_of_range_rejected(self):
        class BrokenPolicy(ShardPolicy):
            def shard_for(self, sequence, profile, engines):
                return len(engines)  # one past the end

        server = make_server(shards=2, policy=BrokenPolicy())
        with pytest.raises(ConfigurationError):
            server.register(VolunteerProfile("x"))

    def test_unknown_volunteer_rejected(self):
        server = make_server()
        with pytest.raises(AllocationError):
            server.shard_of(99)
        with pytest.raises(AllocationError):
            server.request_task(99)
        assert server.is_banned(99) is False

    def test_policy_slot_maps_to_live_shard(self):
        """Regression for the ``shard_for`` contract drift: the policy
        returns a *slot* into the live-shard load views (not an absolute
        shard id), and the router maps it back -- so a policy that always
        picks the last slot routes around a crashed tail shard instead of
        raising or routing into it."""

        class LastSlotPolicy(ShardPolicy):
            def shard_for(self, sequence, profile, loads):
                return len(loads) - 1

        server = make_server(shards=3, policy=LastSlotPolicy())
        a = server.register(VolunteerProfile("a"))
        assert server.shard_of(a) == 2
        server.crash_shard(2)
        b = server.register(VolunteerProfile("b"))
        # Live shards are [0, 1]: the last *slot* is absolute shard 1.
        assert server.shard_of(b) == 1

    def test_least_loaded_ignores_down_shards(self):
        """The stock policies only ever see live shards: with the empty
        shard down, least-loaded routes to the emptiest *live* shard."""
        server = make_server(shards=2, policy=LeastLoadedPolicy())
        a, b = server.register_round(
            [VolunteerProfile("a"), VolunteerProfile("b")]
        )
        empty = server.shard_of(a)
        server.depart(a)
        server.crash_shard(empty)
        c = server.register(VolunteerProfile("c"))
        assert server.shard_of(c) == 1 - empty

    def test_queries_on_down_shard_raise_shard_down(self):
        """Regression: ``is_banned`` / ``profile_of`` for a volunteer on
        a crashed shard raise :class:`ShardDownError` (transient, retry
        after restore) -- not ``KeyError`` or a silent wrong answer."""
        server = make_server(shards=2)
        a, b = server.register_round(
            [VolunteerProfile("a"), VolunteerProfile("b")]
        )
        server.crash_shard(server.shard_of(a))
        with pytest.raises(ShardDownError):
            server.is_banned(a)
        with pytest.raises(ShardDownError):
            server.profile_of(a)
        # The other shard is untouched: queries there still answer.
        assert server.is_banned(b) is False
        assert server.profile_of(b).name == "b"


class TestGlobalIndexSpace:
    def test_task_indices_unique_across_shards(self):
        server = make_server(shards=4)
        ids = server.register_round([VolunteerProfile(f"v{i}") for i in range(8)])
        seen: set[int] = set()
        for _ in range(5):
            server.tick()
            for vid in ids:
                task = server.request_task(vid)
                assert task.index not in seen
                seen.add(task.index)
                assert server.attribute(task.index) == vid
                server.submit_result(vid, task.index, task.expected_result)

    def test_attribution_path_chain(self):
        server = make_server(shards=3)
        ids = server.register_round([VolunteerProfile(f"v{i}") for i in range(3)])
        for vid in ids:
            task = server.request_task(vid)
            path = server.attribution_path(task.index)
            assert path.global_index == task.index
            assert path.shard == server.shard_of(vid)
            assert path.volunteer_id == vid
            # The chain recomposes: composer then the shard's APF.
            engine = server.engine_of(vid)
            assert engine.apf.pair(path.row, path.serial) == path.local_index
            assert server.composer.pair(path.shard + 1, path.local_index) == task.index

    def test_cross_shard_forged_submission_rejected(self):
        server = make_server(shards=2)
        a, b = server.register_round([VolunteerProfile("a"), VolunteerProfile("b")])
        assert server.shard_of(a) != server.shard_of(b)
        task_a = server.request_task(a)
        with pytest.raises(AllocationError):
            server.submit_result(b, task_a.index, task_a.expected_result)
        # The honest owner can still submit.
        server.submit_result(a, task_a.index, task_a.expected_result)

    def test_index_outside_any_shard_rejected(self):
        server = make_server(shards=2)
        server.register_round([VolunteerProfile("a"), VolunteerProfile("b")])
        # Shard row 5 of the composer exists geometrically, but only
        # shards 0..1 are configured.
        orphan = server.composer.pair(5, 1)
        with pytest.raises(AllocationError):
            server.attribute(orphan)
        for bad in (0, -3, True, "7"):
            with pytest.raises(AllocationError):
                server.attribute(bad)

    def test_aspect_ratio_composer_supported(self):
        server = make_server(shards=2, composer=AspectRatioPairing(1, 64))
        ids = server.register_round([VolunteerProfile("a"), VolunteerProfile("b")])
        for vid in ids:
            task = server.request_task(vid)
            assert server.attribute(task.index) == vid


class TestEventAggregation:
    def test_global_bus_sees_stamped_shard_ids(self):
        server = make_server(shards=3)
        counters = EventCounters.attach(server.bus)
        shards_seen: set[int] = set()
        server.bus.subscribe(lambda e: shards_seen.add(e.shard))
        ids = server.register_round([VolunteerProfile(f"v{i}") for i in range(6)])
        for vid in ids:
            server.request_task(vid)
        assert counters.count(VolunteerRegistered) == 6
        assert counters.count(TaskIssued) == 6
        assert shards_seen == {0, 1, 2}


class TestAggregateViews:
    def test_report_sums_across_shards(self):
        server = make_server(shards=2, verification_rate=1.0)
        ids = server.register_round([VolunteerProfile("a"), VolunteerProfile("b")])
        for vid in ids:
            server.tick()
            task = server.request_task(vid)
            server.submit_result(vid, task.index, task.expected_result)
        report = server.report()
        assert report.tasks_issued == 2
        assert report.tasks_returned == 2
        assert report.tasks_verified == 2
        assert report.bad_results_returned == 0

    def test_lockstep_clock(self):
        server = make_server(shards=3)
        for _ in range(5):
            server.tick()
        assert server.clock == 5
        assert all(engine.clock == 5 for engine in server.engines)


# ---------------------------------------------------------------------------
# The bignum round-trip property.
#
# Rows stay seated with *open* epochs (no departure closes them), so any
# serial >= the epoch's start attributes to the current tenant -- including
# astronomically large serials never actually issued.  That lets the
# property drive the full inverse chain
#     global -> (shard, local) -> (row, serial) -> volunteer
# at magnitudes where every arithmetic step must be integer-exact.
# ---------------------------------------------------------------------------

APFS = [TSharp(), TStar()]


@settings(max_examples=60)
@given(
    shards=st.integers(1, 5),
    volunteers=st.integers(1, 8),
    departures=st.integers(0, 3),
    pick=st.integers(0, 10**6),
    serial=st.integers(2**53, 2**90),
    apf_idx=st.integers(0, len(APFS) - 1),
)
def test_sharded_attribution_roundtrip_beyond_2_53(
    shards, volunteers, departures, pick, serial, apf_idx
):
    server = ShardedWBCServer(APFS[apf_idx], shards=shards, seed=7)
    ids = list(
        server.register_round([VolunteerProfile(f"v{i}") for i in range(volunteers)])
    )
    # Churn: some volunteers leave and are replaced, exercising epoch
    # transitions (recycled rows, resumed serials) under the codec.
    for d in range(min(departures, len(ids) - 1)):
        victim = ids[d % len(ids)]
        server.depart(victim)
        ids.remove(victim)
        replacement = server.register(VolunteerProfile(f"r{d}"))
        ids.append(replacement)

    vid = ids[pick % len(ids)]
    shard = server.shard_of(vid)
    engine = server.engine_of(vid)
    row = engine.frontend.row_of(vid)

    # Forward-compose a task index this volunteer *would* eventually be
    # issued: its open epoch covers every serial from its start onward.
    local = engine.apf.pair(row, serial)
    global_index = server.composer.pair(shard + 1, local)
    assert global_index > 2**53  # the regime floats cannot survive

    path = server.attribution_path(global_index)
    assert path.shard == shard
    assert path.local_index == local
    assert path.row == row
    assert path.serial == serial
    assert path.volunteer_id == vid
    assert server.attribute(global_index) == vid


@settings(max_examples=30)
@given(serial=st.integers(2**53, 2**70))
def test_epoch_succession_at_bignum_scale(serial):
    """After a departure, the recycled row's *successor* owns the huge
    never-issued serials -- the open epoch moved tenants."""
    server = ShardedWBCServer(TSharp(), shards=2, seed=1)
    first, other = server.register_round(
        [VolunteerProfile("first"), VolunteerProfile("other")]
    )
    shard = server.shard_of(first)
    engine = server.engine_of(first)
    row = engine.frontend.row_of(first)
    server.depart(first)
    successor = server.register(VolunteerProfile("successor"))
    assert server.shard_of(successor) == shard  # round-robin wraps back
    assert engine.frontend.row_of(successor) == row  # recycled row

    local = engine.apf.pair(row, serial)
    global_index = server.composer.pair(shard + 1, local)
    assert server.attribute(global_index) == successor
