"""The v3 interprocedural upgrades, each against the ``xmod_project``
fixture whose defects *span a module boundary* -- per-file analysis (all
v2 had) provably reports every file clean.

Same two-half pattern as ``test_staticcheck_flow_rules``: first run the
v2 predicate (a single-file ``analyze_paths`` call, whose project
oracle contains only that one module, or the v2 in-file helpers
directly) and assert it sees nothing; then run the project-wide pass
and assert the finding, its anchor line, and the cross-module trace.

Also here: the per-function invalidation semantics (a comment edit
ripples to nobody; a body edit to a helper re-analyzes its cross-module
callers *and recomputes their findings*), the E999 warm-replay
regression, and the ``--changed`` reporting filter.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
from pathlib import Path

from repro.staticcheck import ReprolintConfig, analyze_paths
from repro.staticcheck.cache import CACHE_FILENAME
from repro.staticcheck.checkers.event_discipline import (
    _direct_mutation,
    _mutating_call,
    _publishes,
)
from repro.staticcheck.loader import load_module
from repro.staticcheck.runner import run_cli

FIXTURES = Path(__file__).resolve().parent / "staticcheck_fixtures"
XMOD = FIXTURES / "xmod_project"

ISOLATION_CONFIG = ReprolintConfig(
    exact_modules=("*",),
    deterministic_modules=("*",),
    event_classes=("Engine",),
)


def _project_run(rules: list[str]):
    return analyze_paths([XMOD], rules=rules, cache=False)


class TestCrossModuleR002:
    """``Random(seed_for(shard))`` where ``seed_for`` bottoms out in
    ``os.getpid`` one module away."""

    def test_per_file_analysis_misses_it(self):
        result = analyze_paths(
            [XMOD / "pkg" / "det.py"],
            config=ISOLATION_CONFIG,
            rules=["R002"],
            cache=False,
        )
        assert result.findings == [], "v2 saw only an opaque call"

    def test_v3_flags_the_laundered_seed(self):
        result = _project_run(["R002"])
        assert [f.line for f in result.findings] == [11]
        finding = result.findings[0]
        assert "seeded from entropy (os.getpid via pkg.helpers)" in finding.message
        assert "os.getpid (pkg.helpers:9)" in finding.trace[0]
        assert any("seed_for() return" in hop for hop in finding.trace)


class TestCrossModuleR001:
    """An exact module with no float syntax of its own, contaminated
    through ``pkg.util.scale``'s return value."""

    def test_per_file_analysis_misses_it(self):
        result = analyze_paths(
            [XMOD / "pkg" / "exactmod.py"],
            config=ISOLATION_CONFIG,
            rules=["R001"],
            cache=False,
        )
        assert result.findings == [], "no float op appears in the file"

    def test_v3_flags_the_transiting_float(self):
        result = _project_run(["R001"])
        assert [f.line for f in result.findings] == [8]
        finding = result.findings[0]
        assert "float-tainted data from pkg.util (math.sqrt)" in finding.message
        assert "math.sqrt (pkg.util:8)" in finding.trace[0]
        assert finding.trace[-1] == "-> scale() return (line 8)"

    def test_floats_stay_legal_where_minted(self):
        # pkg.util itself is not exact: zero R001 findings there.
        result = _project_run(["R001"])
        assert all(f.path.endswith("exactmod.py") for f in result.findings)


class TestStoredAliasR005:
    """``self._t = self._profiles`` in ``__init__`` plus
    ``util.purge(self._t)`` in ``reset`` -- no direct store, no in-file
    mutator-method call."""

    def test_v2_predicates_miss_it(self):
        module = load_module(XMOD / "pkg" / "evt.py")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == "Engine":
                reset = next(
                    item
                    for item in node.body
                    if isinstance(item, ast.FunctionDef) and item.name == "reset"
                )
                assert _direct_mutation(reset) is None
                assert not _publishes(reset)
                # Project-less dataflow: the v2 mutator-receiver rule.
                assert _mutating_call(reset, module.dataflow()) is None
                return
        raise AssertionError("no Engine class in fixture")

    def test_v3_flags_the_delegated_mutation(self):
        result = _project_run(["R005"])
        assert [f.line for f in result.findings] == [14]
        message = result.findings[0].message
        assert "pkg.util.purge(self._t, ...) which mutates it" in message
        assert "(self._t aliases self._profiles)" in message


class TestPerFunctionInvalidation:
    """The v3 cache plans per function: a comment edit ripples to
    nobody; a body edit to ``seed_for`` re-analyzes its cross-module
    caller and *changes its verdict*."""

    def _copy(self, tmp_path: Path) -> Path:
        target = tmp_path / "xmod"
        shutil.copytree(XMOD, target)
        return target

    def _run(self, project: Path):
        return analyze_paths(
            [project], cache=True, cache_path=project / CACHE_FILENAME
        )

    def test_comment_edit_invalidates_nothing(self, tmp_path: Path):
        project = self._copy(tmp_path)
        self._run(project)
        helpers = project / "pkg" / "helpers.py"
        helpers.write_text(helpers.read_text() + "# trailing comment\n")
        result = self._run(project)
        stats = result.cache_stats
        assert stats.misses == 1  # only helpers.py itself re-analyzes
        assert stats.invalidated == 0
        assert stats.changed_functions == 0  # structure hashes unmoved
        assert stats.invalidated_functions == 0

    def test_body_edit_reanalyzes_cross_module_callers(self, tmp_path: Path):
        project = self._copy(tmp_path)
        cold = self._run(project)
        assert any(f.rule == "R002" for f in cold.findings)
        helpers = project / "pkg" / "helpers.py"
        helpers.write_text(
            helpers.read_text().replace(
                "return os.getpid() * 31 + shard", "return 1031 + shard"
            )
        )
        result = self._run(project)
        stats = result.cache_stats
        assert stats.misses == 2  # helpers.py + the invalidated det.py
        assert stats.invalidated == 1
        assert stats.changed_functions >= 1
        assert stats.invalidated_functions >= 1
        # The verdict actually flips: the seed no longer derives from
        # entropy, so det.py's cached R002 finding must NOT survive.
        assert not any(f.rule == "R002" for f in result.findings)


class TestE999WarmReplay:
    """Regression: a syntax-error file must re-report E999 on warm runs
    instead of poisoning the cache with a clean record."""

    def test_parse_error_survives_the_cache(self, tmp_path: Path):
        (tmp_path / "pyproject.toml").write_text("[tool.reprolint]\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text("def broken(:\n")
        run = lambda: analyze_paths(  # noqa: E731
            [tmp_path], cache=True, cache_path=tmp_path / CACHE_FILENAME
        )
        cold = run()
        assert [f.rule for f in cold.findings] == ["E999"]
        warm = run()
        assert [f.rule for f in warm.findings] == ["E999"]
        assert warm.findings[0].path.endswith("bad.py")
        assert not warm.ok


class TestChangedFlag:
    """``--changed`` filters *reporting* to git-changed files while the
    analysis stays project-wide."""

    def _git(self, cwd: Path, *argv: str) -> None:
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
            cwd=cwd,
            check=True,
            capture_output=True,
        )

    def _project(self, tmp_path: Path) -> Path:
        (tmp_path / "pyproject.toml").write_text(
            "[tool.reprolint.r002]\ndeterministic-modules = [\"*\"]\n"
        )
        (tmp_path / "a.py").write_text(
            "import time\n\n\ndef a():\n    return time.time()\n"
        )
        (tmp_path / "b.py").write_text(
            "import time\n\n\ndef b():\n    return time.time()\n"
        )
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        return tmp_path

    def test_reports_only_changed_files(self, tmp_path, capsys, monkeypatch):
        project = self._project(tmp_path)
        monkeypatch.chdir(project)
        (project / "a.py").write_text(
            "import time\n\n\ndef a():\n    return time.time()  # touched\n"
        )
        assert run_cli([str(project), "--no-cache", "--changed"]) == 1
        out = capsys.readouterr().out
        assert "a.py" in out
        assert "b.py:" not in out

    def test_outside_a_repo_degrades_to_full_report(
        self, tmp_path, capsys, monkeypatch
    ):
        """No git means nothing to filter by: warn on stderr and report
        everything rather than fail (v3 exited 2 here)."""
        (tmp_path / "clean.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert run_cli([str(tmp_path), "--no-cache", "--changed"]) == 0
        err = capsys.readouterr().err
        assert "--changed unavailable" in err
