"""Tests for text rendering (repro.render.tables)."""

from __future__ import annotations

import pytest

from repro.core.diagonal import DiagonalPairing
from repro.errors import DomainError
from repro.render.tables import render_grid, render_pf_table, render_rows_table


class TestRenderGrid:
    def test_alignment(self):
        out = render_grid([[1, 100], [22, 3]], trailing_ellipsis=False)
        lines = out.splitlines()
        assert lines[0] == " 1  100"
        assert lines[1] == "22    3"

    def test_highlight_brackets(self):
        out = render_grid(
            [[1, 2], [3, 4]],
            highlight=lambda x, y: x == y,
            trailing_ellipsis=False,
        )
        assert "[1]" in out and "[4]" in out
        assert "[2]" not in out

    def test_trailing_ellipsis(self):
        out = render_grid([[1, 2]], trailing_ellipsis=True)
        assert out.splitlines()[0].endswith("...")
        assert out.splitlines()[-1].startswith("...")

    def test_rejects_ragged(self):
        with pytest.raises(DomainError):
            render_grid([[1, 2], [3]])

    def test_rejects_empty(self):
        with pytest.raises(DomainError):
            render_grid([])


class TestRenderPfTable:
    def test_contains_values_and_title(self):
        out = render_pf_table(DiagonalPairing(), 3, 3, title="demo title")
        assert out.startswith("demo title")
        assert "6" in out

    def test_default_title(self):
        out = render_pf_table(DiagonalPairing(), 2, 2)
        assert "diagonal" in out


class TestRenderRowsTable:
    def test_structure(self):
        out = render_rows_table(["x", "value"], [[1, 10], [2, 400]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "x" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "400" in lines[4]

    def test_rejects_width_mismatch(self):
        with pytest.raises(DomainError):
            render_rows_table(["a"], [[1, 2]])

    def test_rejects_empty_headers(self):
        with pytest.raises(DomainError):
            render_rows_table([], [])
