"""The layering lint gate.

The AllocationEngine refactor established two tree-wide rules, configured
for ruff in ``pyproject.toml`` (``F401`` + ``SLF001``):

* no dead imports in the library;
* no module reaches into another object's private state -- specifically,
  nothing outside ``ledger.py`` touches the ledger's ``_records`` /
  ``_tasks`` (the ledger is the system of record; neighbors use its
  public read API).

The gate runs ``ruff check`` when ruff is installed.  The environment the
suite must pass in does not ship ruff, so the same two rules are also
enforced by a small AST checker -- scoped to the webcompute package,
where the layering contract lives.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
WEBCOMPUTE = REPO_ROOT / "src" / "repro" / "webcompute"

# The ledger's system-of-record internals: only ledger.py may touch them.
LEDGER_PRIVATE = {"_records", "_tasks"}


def webcompute_modules() -> list[Path]:
    return sorted(WEBCOMPUTE.glob("*.py"))


# ---------------------------------------------------------------------------
# AST fallback: private-member access
# ---------------------------------------------------------------------------


def private_ledger_accesses(path: Path) -> list[str]:
    """``X._records`` / ``X._tasks`` sites where ``X`` is not ``self``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    hits: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute) or node.attr not in LEDGER_PRIVATE:
            continue
        value = node.value
        if isinstance(value, ast.Name) and value.id in ("self", "cls"):
            continue
        hits.append(f"{path.name}:{node.lineno}: .{node.attr}")
    return hits


# ---------------------------------------------------------------------------
# AST fallback: unused imports (F401, simplified)
# ---------------------------------------------------------------------------


def unused_imports(path: Path) -> list[str]:
    """Imported names never referenced in the module body.

    Conservative approximation of F401: a name counts as used if it
    appears in any ``Name``/``Attribute`` context or is re-exported via
    ``__all__``.  ``__init__.py`` re-export hubs are skipped (every import
    there is intentionally a re-export).
    """
    if path.name == "__init__.py":
        return []
    tree = ast.parse(path.read_text(), filename=str(path))
    imported: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = (alias.asname or alias.name).split(".")[0]
                imported[name] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imported[alias.asname or alias.name] = node.lineno

    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
    # __all__ strings count as usage (re-export).
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    for elt in ast.walk(node.value):
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                            used.add(elt.value)
    return [
        f"{path.name}:{lineno}: unused import {name!r}"
        for name, lineno in sorted(imported.items(), key=lambda kv: kv[1])
        if name not in used
    ]


# ---------------------------------------------------------------------------
# The gate
# ---------------------------------------------------------------------------


class TestLintGate:
    def test_no_private_ledger_access_outside_ledger(self):
        violations: list[str] = []
        for path in webcompute_modules():
            if path.name == "ledger.py":
                continue
            violations.extend(private_ledger_accesses(path))
        assert not violations, "\n".join(violations)

    def test_no_unused_imports_in_webcompute(self):
        violations: list[str] = []
        for path in webcompute_modules():
            violations.extend(unused_imports(path))
        assert not violations, "\n".join(violations)

    def test_ruff_clean_when_available(self):
        if shutil.which("ruff") is None:
            pytest.skip("ruff not installed; AST fallback tests carry the gate")
        result = subprocess.run(
            ["ruff", "check", "src/repro", "tests", "benchmarks"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestFallbackCheckerItself:
    """The AST fallback must actually catch what it claims to catch."""

    def test_flags_foreign_private_access(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(ledger):\n    return ledger._records\n")
        assert private_ledger_accesses(bad)

    def test_allows_self_access(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "class L:\n    def f(self):\n        return self._records\n"
        )
        assert not private_ledger_accesses(ok)

    def test_flags_unused_import(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import os\nimport sys\nprint(sys.argv)\n")
        assert unused_imports(bad) == ["bad.py:1: unused import 'os'"]

    def test_all_reexport_counts_as_use(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text("from os import path\n__all__ = ['path']\n")
        assert not unused_imports(ok)


def test_gate_runs_on_this_interpreter():
    # The gate is only meaningful if it parsed real files; sanity-check the
    # scope is non-trivial.
    modules = webcompute_modules()
    assert len(modules) >= 10, [m.name for m in modules]
    assert sys.version_info >= (3, 10)
