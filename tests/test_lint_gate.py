"""The layering lint gate.

The AllocationEngine refactor established two tree-wide rules: no dead
imports, and no module reaches into another object's private state --
specifically, nothing outside ``ledger.py`` touches the ledger's
``_records`` / ``_tasks`` (the ledger is the system of record; neighbors
use its public read API).

Both rules now live in reprolint's R004 checker
(:mod:`repro.staticcheck.checkers.layering`), which replaced this
module's ad-hoc AST fallback and extended the contract from the
webcompute package to the whole tree, plus the import DAG.  This gate
runs R004 through the real analyzer, and still runs ``ruff check`` as an
independent second opinion when ruff is installed (the suite's required
environment does not ship it).
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.staticcheck import analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
WEBCOMPUTE = SRC / "repro" / "webcompute"


class TestLintGate:
    def test_r004_clean_over_src(self):
        """Dead imports, private-state reach-ins, and import-DAG breaks:
        all R004, all zero over the library tree."""
        result = analyze_paths([SRC], rules=["R004"])
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_r004_covers_the_old_webcompute_scope(self):
        # The old fallback only watched src/repro/webcompute; make sure
        # the R004 run actually visited it (scope did not silently shrink).
        modules = sorted(WEBCOMPUTE.glob("*.py"))
        assert len(modules) >= 10, [m.name for m in modules]
        result = analyze_paths([WEBCOMPUTE], rules=["R004"])
        assert result.files == len(modules)
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_ruff_clean_when_available(self):
        if shutil.which("ruff") is None:
            pytest.skip("ruff not installed; reprolint R004 carries the gate")
        result = subprocess.run(
            ["ruff", "check", "src/repro", "tests", "benchmarks"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr


def test_gate_runs_on_this_interpreter():
    # The gate is only meaningful if it parsed real files; sanity-check the
    # scope is non-trivial.
    result = analyze_paths([SRC], rules=["R004"])
    assert result.files >= 50
    assert sys.version_info >= (3, 10)
