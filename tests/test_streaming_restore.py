"""Streaming restore: the log-structured recovery path under live load.

The contract being pinned:

* **Differential vs blocking replay** -- a shard rebuilt step-by-step
  with :meth:`begin_restore` / :meth:`restore_step` (serving degraded
  registrations mid-replay) converges to *bit-identical* engine state
  with a fresh engine rebuilt the blocking way from the same store
  (base checkpoint + folded delta segments + journal replay).
* **Degraded service** -- while a shard is RESTORING it accepts
  registration rounds (server-minted ids ride the replay queue) and
  rejects every other call with the transient ``ShardDownError``.
* **Incremental checkpoints** -- folding a store's delta segments onto
  its base reproduces the live engine's full snapshot exactly, and
  ``compact_every`` rewrites a fresh base on schedule.
* **Serial / worker equivalence** -- all of the above bit-identical
  between in-process shards and worker-process shards.
"""

from __future__ import annotations

import json

import pytest

from repro.apf.families import TSharp
from repro.errors import RecoveryError, ShardDownError
from repro.webcompute.events import CheckpointTaken, ShardRestored, ShardRestoring
from repro.webcompute.recovery import replay
from repro.webcompute.sharding import ShardedWBCServer
from repro.webcompute.volunteer import VolunteerProfile

SHARDS = 3


def make_server(workers=None, checkpoint_every=2, compact_every=3):
    return ShardedWBCServer(
        TSharp(),
        shards=SHARDS,
        verification_rate=1.0,
        ban_after_strikes=2,
        seed=7,
        lease_ticks=4,
        checkpoint_every=checkpoint_every,
        compact_every=compact_every,
        workers=workers,
    )


def drive(server, vids, rounds=6):
    """Some epochs of honest work across every shard."""
    for _ in range(rounds):
        server.tick()
        for vid in vids:
            task = server.request_task(vid)
            server.submit_result(vid, task.index, task.expected_result)


def canonical(state) -> str:
    return json.dumps(state, sort_keys=True)


def bounce_mid_epoch(server):
    """Crash shard 1 mid-epoch, stream it back while a registration
    round lands during replay.  Returns the new volunteer ids."""
    vids = server.register_round(
        [VolunteerProfile(f"v{i}") for i in range(9)]
    )
    drive(server, vids)
    # Mid-epoch: half the volunteers are holding unreturned tasks.
    server.tick()
    inflight = [server.request_task(vid) for vid in vids[::2]]
    server.crash_shard(1)
    server.tick()  # downtime tick rides the journal
    server.begin_restore(1)
    degraded = server.register_round(
        [VolunteerProfile(f"mid{i}") for i in range(6)]
    )
    while not server.restore_step(1, max_items=2):
        pass
    for task in inflight:
        vid = task.volunteer_id
        if server.is_shard_alive(server.shard_of(vid)):
            server.submit_result(vid, task.index, task.expected_result)
    return vids, degraded


class TestStreamingDifferential:
    def test_streaming_converges_to_blocking_replay(self):
        server = make_server()
        bounce_mid_epoch(server)
        # Blocking rebuild from the same store: base + folded segments
        # (store.latest()) + journal replay.  The degraded round's
        # register op is journaled, so both paths contain it.
        store = server._stores[1]
        blocking = server._fresh_engine(1)
        blocking.restore_state(store.latest().state)
        replay(blocking, store.ops())
        assert canonical(blocking.snapshot_state()) == canonical(
            server.engines[1].snapshot_state()
        )

    def test_serial_and_worker_streaming_agree(self):
        states = {}
        for workers in (None, 2):
            server = make_server(workers=workers)
            bounce_mid_epoch(server)
            states[workers] = canonical(
                {s: server.engines[s].snapshot_state() for s in range(SHARDS)}
            )
        assert states[None] == states[2]

    def test_same_tick_bounce_still_identical(self):
        # The original differential (no degraded traffic): crash and
        # stream back within one tick, no registrations mid-replay.
        server = make_server()
        vids = server.register_round(
            [VolunteerProfile(f"v{i}") for i in range(6)]
        )
        drive(server, vids)
        before = canonical(server.engines[1].snapshot_state())
        server.crash_shard(1)
        server.restore_shard(1)  # blocking wrapper over the stream
        assert canonical(server.engines[1].snapshot_state()) == before

    def test_degraded_volunteers_are_seated_and_serviceable(self):
        server = make_server()
        _vids, degraded = bounce_mid_epoch(server)
        on_bounced = [v for v in degraded if server.shard_of(v) == 1]
        assert on_bounced, "routing never used the restoring shard"
        for vid in on_bounced:
            task = server.request_task(vid)
            server.submit_result(vid, task.index, task.expected_result)


class TestDegradedService:
    def test_restoring_shard_serves_only_registration(self):
        server = make_server()
        vids = server.register_round(
            [VolunteerProfile(f"v{i}") for i in range(9)]
        )
        drive(server, vids)
        on1 = [v for v in vids if server.shard_of(v) == 1]
        server.crash_shard(1)
        server.begin_restore(1)
        assert server.is_shard_restoring(1)
        assert not server.is_shard_alive(1)
        assert 1 in server.routable_shards()
        with pytest.raises(ShardDownError):
            server.request_task(on1[0])
        with pytest.raises(ShardDownError):
            server.depart(on1[0])
        while not server.restore_step(1):
            pass
        assert server.is_shard_alive(1)
        assert not server.is_shard_restoring(1)
        server.request_task(on1[0])

    def test_restore_events_published(self):
        server = make_server()
        vids = server.register_round(
            [VolunteerProfile(f"v{i}") for i in range(6)]
        )
        drive(server, vids)
        events = []
        server.bus.subscribe(events.append)
        server.crash_shard(1)
        server.begin_restore(1)
        while not server.restore_step(1, max_items=1):
            pass
        restoring = [e for e in events if isinstance(e, ShardRestoring)]
        restored = [e for e in events if isinstance(e, ShardRestored)]
        assert len(restoring) == 1 and len(restored) == 1
        assert restoring[0].segments + restoring[0].pending_ops > 0
        assert restored[0].replayed_ops >= restoring[0].pending_ops

    def test_ticks_during_restore_rejoin_the_clock(self):
        server = make_server()
        vids = server.register_round(
            [VolunteerProfile(f"v{i}") for i in range(6)]
        )
        drive(server, vids)
        server.crash_shard(1)
        server.begin_restore(1)
        server.tick()  # lands on the replay queue mid-restore
        server.tick()
        while not server.restore_step(1, max_items=1):
            pass
        assert server.engines[1].clock == server.clock

    def test_replay_divergence_aborts_to_plain_down(self):
        server = make_server()
        vids = server.register_round(
            [VolunteerProfile(f"v{i}") for i in range(6)]
        )
        drive(server, vids)
        server.crash_shard(1)
        # Poison the journal: a submit for a task the shard never issued.
        server._stores[1].journal(["submit", 99, 1, 0])
        server.begin_restore(1)
        with pytest.raises(RecoveryError, match="journal replay diverged"):
            while not server.restore_step(1):
                pass
        assert not server.is_shard_restoring(1)
        assert not server.is_shard_alive(1)

    def test_double_begin_rejected(self):
        server = make_server()
        vids = server.register_round(
            [VolunteerProfile(f"v{i}") for i in range(6)]
        )
        drive(server, vids)
        server.crash_shard(1)
        server.begin_restore(1)
        with pytest.raises(RecoveryError, match="already restoring"):
            server.begin_restore(1)
        with pytest.raises(RecoveryError, match="is not down"):
            server.restore_shard(0)


class TestIncrementalCheckpoints:
    def test_deltas_fold_to_live_snapshot(self):
        server = make_server(checkpoint_every=None, compact_every=None)
        vids = server.register_round(
            [VolunteerProfile(f"v{i}") for i in range(9)]
        )
        server.checkpoint_all()  # first delta over the construction base
        for _ in range(2):
            drive(server, vids, rounds=2)
            server.checkpoint_all()
        for shard in range(SHARDS):
            store = server._stores[shard]
            assert store.segment_count == 3
            assert canonical(store.latest().state) == canonical(
                server.engines[shard].snapshot_state()
            )

    def test_compaction_rewrites_the_base(self):
        server = make_server(checkpoint_every=None, compact_every=2)
        vids = server.register_round(
            [VolunteerProfile(f"v{i}") for i in range(6)]
        )
        events = []
        server.bus.subscribe(events.append)
        for _ in range(4):
            drive(server, vids, rounds=1)
            server.checkpoint_shard(0)
        kinds = [
            e.incremental for e in events if isinstance(e, CheckpointTaken)
        ]
        # Two deltas over the construction-time base, then the log hits
        # compact_every and the next checkpoint rewrites a full base.
        assert kinds == [True, True, False, True]
        assert server._stores[0].segment_count == 1

    def test_incremental_is_smaller_than_full(self):
        server = make_server(checkpoint_every=None, compact_every=None)
        vids = server.register_round(
            [VolunteerProfile(f"v{i}") for i in range(9)]
        )
        drive(server, vids, rounds=4)
        server.checkpoint_shard(0, full=True)  # rebase on real history
        drive(server, vids, rounds=1)
        server.checkpoint_shard(0)
        store = server._stores[0]
        assert store.segment_count == 1
        assert store.segment_bytes[0] < store.base_bytes
