"""Property-based tests for the extension modules (ndim, encoding, radix,
views, snapshots)."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.apf.families import ConstantCopyIndex, LinearCopyIndex
from repro.apf.radix import RadixConstructedAPF
from repro.arrays.extendible import ExtendibleArray
from repro.arrays.snapshots import loads_array, dumps_array
from repro.arrays.views import block_view, col_view, row_view
from repro.core.diagonal import DiagonalPairing
from repro.core.ndim import IteratedPairing
from repro.core.squareshell import SquareShellPairing
from repro.encoding import StringCodec, TupleCodec
from repro.numbertheory.valuations import decompose_radix

# ----------------------------------------------------------------------
# ndim
# ----------------------------------------------------------------------


@given(
    d=st.integers(2, 5),
    z=st.integers(1, 10**7),
)
def test_ndim_backward_roundtrip(d, z):
    p = IteratedPairing(d, SquareShellPairing())
    point = p.unpair(z)
    assert len(point) == d
    assert all(c >= 1 for c in point)
    assert p.pair(point) == z


@given(
    d=st.integers(2, 4),
    coords=st.lists(st.integers(1, 500), min_size=4, max_size=4),
)
def test_ndim_forward_roundtrip(d, coords):
    p = IteratedPairing(d, DiagonalPairing())
    point = tuple(coords[:d])
    assert p.unpair(p.pair(point)) == point


@given(z=st.integers(1, 10**6))
def test_ndim_nesting_identity(z):
    # Iterating at d then flattening the head must agree with a manual
    # two-step decode.
    p3 = IteratedPairing(3, SquareShellPairing())
    base = SquareShellPairing()
    a, rest = base.unpair(z)
    b, c = base.unpair(rest)
    assert p3.unpair(z) == (a, b, c)


# ----------------------------------------------------------------------
# radix
# ----------------------------------------------------------------------


@given(
    radix=st.integers(2, 9),
    x=st.integers(1, 300),
    y=st.integers(1, 50),
)
def test_radix_roundtrip(radix, x, y):
    apf = RadixConstructedAPF(radix, LinearCopyIndex())
    z = apf.pair(x, y)
    assert apf.unpair(z) == (x, y)
    assert decompose_radix(z, radix)[0] == apf.group_of(x)


@given(radix=st.integers(2, 9), z=st.integers(1, 10**9))
def test_radix_backward_roundtrip(radix, z):
    apf = RadixConstructedAPF(radix, ConstantCopyIndex(2))
    x, y = apf.unpair(z)
    assert apf.pair(x, y) == z


@given(radix=st.integers(2, 7), x=st.integers(1, 500))
def test_radix_base_below_stride(radix, x):
    apf = RadixConstructedAPF(radix, LinearCopyIndex())
    assert apf.base(x) < apf.stride(x)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------


@given(
    texts=st.lists(st.text(alphabet="abcd", max_size=8), max_size=5),
)
@settings(deadline=None)
def test_string_sequences_roundtrip(texts):
    codec = StringCodec("abcd")
    assert codec.decode_sequence(codec.encode_sequence(texts)) == tuple(texts)


@given(z=st.integers(1, 10**5))
def test_tuple_codes_partition(z):
    # decode is a *bijection*: z and z+1 decode to different tuples.
    codec = TupleCodec()
    assert codec.decode(z) != codec.decode(z + 1)


# ----------------------------------------------------------------------
# views
# ----------------------------------------------------------------------


@given(
    rows=st.integers(2, 8),
    cols=st.integers(2, 8),
)
@settings(deadline=None)
def test_views_cover_array_exactly(rows, cols):
    arr = ExtendibleArray(SquareShellPairing(), rows, cols, fill=0)
    by_rows = [(c.x, c.y) for x in range(1, rows + 1) for c in row_view(arr, x)]
    by_cols = [(c.x, c.y) for y in range(1, cols + 1) for c in col_view(arr, y)]
    by_block = [(c.x, c.y) for c in block_view(arr, 1, 1, rows, cols)]
    expected = {(x, y) for x in range(1, rows + 1) for y in range(1, cols + 1)}
    assert set(by_rows) == set(by_cols) == set(by_block) == expected
    assert len(by_rows) == len(by_block) == rows * cols


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------

cellops = st.lists(
    st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(0, 10**6)),
    max_size=20,
)


@given(rows=st.integers(1, 6), cols=st.integers(1, 6), ops=cellops)
@settings(deadline=None, max_examples=60)
def test_array_snapshot_roundtrip_property(rows, cols, ops):
    arr = ExtendibleArray(SquareShellPairing(), rows, cols, fill=0)
    for x, y, v in ops:
        if x <= rows and y <= cols:
            arr[x, y] = v
    restored = loads_array(dumps_array(arr))
    assert restored.to_lists() == arr.to_lists()
    assert restored.shape == arr.shape
