"""Tests for the WBC discrete-time simulation."""

from __future__ import annotations

import pytest

from repro.apf.families import TBracket, TSharp, TStar
from repro.errors import ConfigurationError
from repro.webcompute.simulation import (
    SimulationConfig,
    WBCSimulation,
    run_family_comparison,
)


def small_config(**overrides):
    defaults = dict(ticks=120, initial_volunteers=12, seed=99)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfig:
    def test_rejects_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(careless_fraction=0.7, malicious_fraction=0.5)

    def test_rejects_bad_speeds(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(min_speed=2.0, max_speed=1.0)

    def test_rejects_nonpositive_ticks(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(ticks=0)


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        a = WBCSimulation(TSharp(), small_config()).run()
        b = WBCSimulation(TSharp(), small_config()).run()
        assert a == b

    def test_different_seed_different_outcome(self):
        a = WBCSimulation(TSharp(), small_config(seed=1)).run()
        b = WBCSimulation(TSharp(), small_config(seed=2)).run()
        assert a != b


class TestInvariants:
    @pytest.fixture(scope="class")
    def outcome(self):
        return WBCSimulation(TSharp(), small_config(ticks=250)).run()

    def test_attribution_never_fails(self, outcome):
        assert outcome.attribution_checks == outcome.tasks_completed
        assert outcome.attribution_failures == 0

    def test_no_false_bans(self, outcome):
        assert outcome.honest_banned == 0

    def test_work_happened(self, outcome):
        assert outcome.tasks_completed > 100
        assert outcome.max_task_index > 0

    def test_catches_are_subset_of_bad(self, outcome):
        assert 0 <= outcome.bad_results_caught <= outcome.bad_results_returned


class TestBanning:
    def test_full_verification_bans_persistent_offenders(self):
        config = small_config(
            ticks=300,
            verification_rate=1.0,
            ban_after_strikes=2,
            malicious_fraction=0.3,
            careless_fraction=0.0,
            departure_rate=0.0,
            arrival_rate=0.0,
        )
        outcome = WBCSimulation(TSharp(), config).run()
        assert outcome.faulty_banned >= 2
        assert outcome.honest_banned == 0
        assert outcome.bad_results_caught == outcome.bad_results_returned


class TestFamilyComparison:
    def test_identical_workload_across_families(self):
        outcomes = run_family_comparison(
            [TBracket(1), TBracket(3), TSharp(), TStar()], small_config()
        )
        signature = {
            (o.tasks_completed, o.volunteers_total, o.departures, o.bad_results_returned)
            for o in outcomes
        }
        assert len(signature) == 1  # only the APF differs

    def test_compactness_ordering(self):
        outcomes = run_family_comparison(
            [TBracket(1), TSharp(), TStar()], small_config(ticks=250)
        )
        by_name = {o.apf_name: o for o in outcomes}
        # Exponential strides blow the index space; quadratic families are
        # orders of magnitude denser.
        assert (
            by_name["apf-bracket-1"].max_task_index
            > 20 * by_name["apf-sharp"].max_task_index
        )
        assert by_name["apf-sharp"].density > 20 * by_name["apf-bracket-1"].density

    def test_density_definition(self):
        outcomes = run_family_comparison([TSharp()], small_config())
        o = outcomes[0]
        assert o.density == pytest.approx(o.tasks_completed / o.max_task_index)
