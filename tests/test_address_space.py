"""Tests for the simulated address space."""

from __future__ import annotations

import pytest

from repro.arrays.address_space import AddressSpace
from repro.errors import CapacityError, DomainError


class TestBasicOperations:
    def test_write_read(self):
        mem = AddressSpace()
        mem.write(5, "v")
        assert mem.read(5) == "v"

    def test_read_unoccupied_raises(self):
        with pytest.raises(KeyError):
            AddressSpace().read(1)

    def test_read_or_default(self):
        mem = AddressSpace()
        assert mem.read_or(3, "d") == "d"
        mem.write(3, "x")
        assert mem.read_or(3, "d") == "x"

    def test_overwrite(self):
        mem = AddressSpace()
        mem.write(1, "a")
        mem.write(1, "b")
        assert mem.read(1) == "b"
        assert mem.live_count == 1

    def test_erase(self):
        mem = AddressSpace()
        mem.write(2, 1)
        mem.erase(2)
        assert not mem.occupied(2)
        mem.erase(2)  # idempotent

    def test_move(self):
        mem = AddressSpace()
        mem.write(1, "v")
        mem.move(1, 9)
        assert not mem.occupied(1)
        assert mem.read(9) == "v"

    def test_move_from_empty_raises(self):
        with pytest.raises(DomainError):
            AddressSpace().move(1, 2)

    def test_move_to_self_is_noop(self):
        mem = AddressSpace()
        mem.write(4, "v")
        mem.move(4, 4)
        assert mem.traffic.moves == 0


class TestMetrics:
    def test_high_water_mark_tracks_writes(self):
        mem = AddressSpace()
        mem.write(10, 1)
        mem.write(3, 1)
        assert mem.high_water_mark == 10
        mem.write(20, 1)
        assert mem.high_water_mark == 20

    def test_high_water_mark_survives_erase(self):
        mem = AddressSpace()
        mem.write(10, 1)
        mem.erase(10)
        assert mem.high_water_mark == 10  # history, not state

    def test_move_raises_high_water(self):
        mem = AddressSpace()
        mem.write(1, "v")
        mem.move(1, 50)
        assert mem.high_water_mark == 50

    def test_utilization(self):
        mem = AddressSpace()
        assert mem.utilization == 0.0
        mem.write(4, 1)
        mem.write(2, 1)
        assert mem.utilization == 0.5

    def test_traffic_counters(self):
        mem = AddressSpace()
        mem.write(1, 1)
        mem.write(2, 2)
        mem.read(1)
        mem.read_or(9)
        mem.erase(2)
        mem.move(1, 3)
        snap = mem.traffic.snapshot()
        assert snap == {"reads": 2, "writes": 2, "erases": 1, "moves": 1}

    def test_occupied_addresses_sorted(self):
        mem = AddressSpace()
        for a in (9, 1, 5):
            mem.write(a, a)
        assert list(mem.occupied_addresses()) == [1, 5, 9]

    def test_len_and_clear(self):
        mem = AddressSpace()
        mem.write(1, 1)
        mem.write(2, 2)
        assert len(mem) == 2
        mem.clear()
        assert len(mem) == 0
        assert mem.high_water_mark == 2


class TestBounds:
    def test_capacity_enforced(self):
        mem = AddressSpace(capacity=10)
        mem.write(10, "edge")
        with pytest.raises(CapacityError):
            mem.write(11, "over")

    def test_capacity_applies_to_reads_too(self):
        mem = AddressSpace(capacity=5)
        with pytest.raises(CapacityError):
            mem.read_or(6)

    def test_rejects_nonpositive_address(self):
        mem = AddressSpace()
        with pytest.raises(DomainError):
            mem.write(0, 1)
        with pytest.raises(DomainError):
            mem.read_or(-1)

    def test_rejects_bad_capacity(self):
        with pytest.raises(DomainError):
            AddressSpace(capacity=0)
