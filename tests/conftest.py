"""Shared fixtures: the mapping zoo.

Most correctness properties (roundtrip, bijectivity, spread consistency)
hold for *every* mapping in the library, so tests parametrize over these
lists.  Factories (not instances) are shared so each test gets fresh state.
"""

from __future__ import annotations

import pytest

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis ships with the dev extra
    pass
else:
    # Bignum-heavy strategies (2**53.. boundary cases) can blow the default
    # 200ms deadline on a slow CI node; these are correctness tests, not
    # perf tests, so disable the deadline rather than flake.
    settings.register_profile("repro", deadline=None)
    settings.load_profile("repro")

from repro.apf.families import (
    ExponentialKappaAPF,
    LinearCopyIndex,
    TBracket,
    TPower,
    TSharp,
    TStar,
)
from repro.apf.radix import RadixConstructedAPF
from repro.core.aspectratio import AspectRatioPairing
from repro.core.diagonal import DiagonalPairing, DiagonalPairingTwin
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.squareshell import SquareShellPairing, SquareShellPairingTwin


def all_pairing_factories():
    """Every bijective PF in the library (name, zero-arg factory)."""
    return [
        ("diagonal", DiagonalPairing),
        ("diagonal-twin", DiagonalPairingTwin),
        ("square-shell", SquareShellPairing),
        ("square-shell-twin", SquareShellPairingTwin),
        ("hyperbolic", HyperbolicPairing),
        ("aspect-1x1", lambda: AspectRatioPairing(1, 1)),
        ("aspect-1x2", lambda: AspectRatioPairing(1, 2)),
        ("aspect-2x3", lambda: AspectRatioPairing(2, 3)),
        ("apf-bracket-1", lambda: TBracket(1)),
        ("apf-bracket-2", lambda: TBracket(2)),
        ("apf-bracket-3", lambda: TBracket(3)),
        ("apf-sharp", TSharp),
        ("apf-star", TStar),
        ("apf-power-2", lambda: TPower(2)),
        ("apf-exponential", ExponentialKappaAPF),
        ("apf-radix3", lambda: RadixConstructedAPF(3, LinearCopyIndex())),
    ]


def apf_factories():
    """Every additive PF (name, factory)."""
    return [
        ("apf-bracket-1", lambda: TBracket(1)),
        ("apf-bracket-2", lambda: TBracket(2)),
        ("apf-bracket-3", lambda: TBracket(3)),
        ("apf-sharp", TSharp),
        ("apf-star", TStar),
        ("apf-power-2", lambda: TPower(2)),
        ("apf-power-3", lambda: TPower(3)),
        ("apf-exponential", ExponentialKappaAPF),
        ("apf-radix3", lambda: RadixConstructedAPF(3, LinearCopyIndex())),
        ("apf-radix5", lambda: RadixConstructedAPF(5, LinearCopyIndex())),
    ]


def pytest_generate_tests(metafunc):
    if "any_pairing" in metafunc.fixturenames:
        pairs = all_pairing_factories()
        metafunc.parametrize(
            "any_pairing",
            [factory for _, factory in pairs],
            ids=[name for name, _ in pairs],
            indirect=True,
        )
    if "any_apf" in metafunc.fixturenames:
        pairs = apf_factories()
        metafunc.parametrize(
            "any_apf",
            [factory for _, factory in pairs],
            ids=[name for name, _ in pairs],
            indirect=True,
        )


@pytest.fixture
def any_pairing(request):
    return request.param()


@pytest.fixture
def any_apf(request):
    return request.param()
