"""Tests for repro.numbertheory.progressions (incl. Lemma 4.1)."""

from __future__ import annotations

import pytest

from repro.errors import DomainError
from repro.numbertheory.progressions import (
    ArithmeticProgression,
    decompose_odd,
    odd_residues,
    recompose_odd,
)


class TestArithmeticProgression:
    def test_term_indexing(self):
        ap = ArithmeticProgression(5, 3)
        assert [ap.term(t) for t in range(1, 5)] == [5, 8, 11, 14]

    def test_index_of_roundtrip(self):
        ap = ArithmeticProgression(7, 4)
        for t in range(1, 50):
            assert ap.index_of(ap.term(t)) == t

    def test_index_of_rejects_non_members(self):
        ap = ArithmeticProgression(7, 4)
        with pytest.raises(DomainError):
            ap.index_of(8)
        with pytest.raises(DomainError):
            ap.index_of(3)  # below base

    def test_contains(self):
        ap = ArithmeticProgression(2, 5)
        assert 2 in ap and 7 in ap and 52 in ap
        assert 3 not in ap and 1 not in ap
        assert "7" not in ap

    def test_terms_iterator(self):
        assert list(ArithmeticProgression(1, 2).terms(5)) == [1, 3, 5, 7, 9]

    def test_rejects_nonpositive_base_or_stride(self):
        with pytest.raises(DomainError):
            ArithmeticProgression(0, 1)
        with pytest.raises(DomainError):
            ArithmeticProgression(1, 0)
        with pytest.raises(DomainError):
            ArithmeticProgression(-2, 3)

    def test_rejects_nonpositive_term_index(self):
        with pytest.raises(DomainError):
            ArithmeticProgression(1, 1).term(0)

    def test_frozen(self):
        ap = ArithmeticProgression(1, 2)
        with pytest.raises(AttributeError):
            ap.base = 5  # type: ignore[misc]


class TestOddResidues:
    def test_counts(self):
        # Lemma 4.1: exactly 2**(c-1) forms.
        for c in range(1, 10):
            assert len(odd_residues(c)) == 1 << (c - 1)

    def test_all_odd_and_below_modulus(self):
        for c in range(1, 8):
            for r in odd_residues(c):
                assert r % 2 == 1 and 1 <= r < (1 << c)

    def test_rejects_nonpositive(self):
        with pytest.raises(DomainError):
            odd_residues(0)


class TestLemma41:
    @pytest.mark.parametrize("c", [1, 2, 3, 4, 5])
    def test_every_odd_has_unique_form(self, c):
        # Lemma 4.1 verbatim: every odd integer is 2**c * n + r for exactly
        # one admissible (n, r).
        for odd in range(1, 400, 2):
            n, r = decompose_odd(odd, c)
            assert r in odd_residues(c)
            assert n >= 0
            assert recompose_odd(n, r, c) == odd

    @pytest.mark.parametrize("c", [1, 2, 3, 4])
    def test_forms_partition_the_odds(self, c):
        # Distinct (n, r) pairs give distinct odd integers.
        seen = {}
        for odd in range(1, 400, 2):
            key = decompose_odd(odd, c)
            assert key not in seen
            seen[key] = odd

    def test_rejects_even(self):
        with pytest.raises(DomainError):
            decompose_odd(4, 2)

    def test_recompose_rejects_bad_residue(self):
        with pytest.raises(DomainError):
            recompose_odd(1, 4, 3)  # even residue
        with pytest.raises(DomainError):
            recompose_odd(1, 9, 3)  # residue >= 2**c
