"""Each reprolint rule against its fixture pair: the bad fixture must be
flagged at the expected lines, the good fixture must pass clean.  The
fixtures live in ``tests/staticcheck_fixtures/`` and are analyzed with a
purpose-built config (not the repo's), so these tests pin checker
behavior independent of ``pyproject.toml`` churn."""

from __future__ import annotations

from pathlib import Path

from repro.staticcheck import ReprolintConfig, analyze_paths

FIXTURES = Path(__file__).resolve().parent / "staticcheck_fixtures"


def run(fixture: str, config: ReprolintConfig, rules: list[str]):
    return analyze_paths([FIXTURES / fixture], config=config, rules=rules)


class TestR001FloatContamination:
    CONFIG = ReprolintConfig(exact_modules=("*",))

    def test_flags_every_contamination_shape(self):
        result = run("r001_bad.py", self.CONFIG, ["R001"])
        lines = sorted(f.line for f in result.findings)
        # /, /=, float(), math.sqrt, then np.sqrt AND np.float64 on line 26.
        assert lines == [9, 13, 18, 22, 26, 26]
        assert all(f.rule == "R001" for f in result.findings)

    def test_exact_idioms_pass(self):
        result = run("r001_good.py", self.CONFIG, ["R001"])
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_inexact_module_is_out_of_scope(self):
        # Same bad file, but the module is not declared exact: no findings.
        result = run("r001_bad.py", ReprolintConfig(), ["R001"])
        assert result.ok


class TestR002Determinism:
    CONFIG = ReprolintConfig(deterministic_modules=("*",))

    def test_flags_every_nondeterminism_shape(self):
        result = run("r002_bad.py", self.CONFIG, ["R002"])
        lines = sorted(f.line for f in result.findings)
        # unseeded draw, no-arg Random, time.time, datetime.now,
        # os.urandom, uuid4, set iteration.
        assert lines == [11, 15, 19, 23, 27, 31, 37]
        assert all(f.rule == "R002" for f in result.findings)

    def test_deterministic_idioms_pass(self):
        result = run("r002_good.py", self.CONFIG, ["R002"])
        assert result.ok, "\n".join(f.render() for f in result.findings)


class TestR003SnapshotCompleteness:
    """The PR 3 regression in miniature: a snapshot that captures the
    scalars but forgets the in-flight task table."""

    def test_flags_the_forgotten_attribute(self):
        result = run("r003_bad.py", ReprolintConfig(), ["R003"])
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "R003"
        assert "_outstanding" in finding.message
        assert finding.line == 13  # the __init__ assignment that gets lost

    def test_complete_snapshot_passes(self):
        result = run("r003_good.py", ReprolintConfig(), ["R003"])
        assert result.ok, "\n".join(f.render() for f in result.findings)


class TestR004Layering:
    CONFIG = ReprolintConfig(
        allowed_imports={
            "r004_bad": ("repro.errors",),
            "r004_good": ("repro.errors",),
        },
        private_attrs={"_records": "repro.webcompute.ledger"},
    )

    def test_flags_dag_break_private_reach_and_dead_imports(self):
        result = run("r004_bad.py", self.CONFIG, ["R004"])
        messages = {f.line: f.message for f in result.findings}
        assert any("repro.webcompute" in m for m in messages.values())  # DAG
        assert any("_records" in m for m in messages.values())  # private state
        assert any("unused import `os`" in m for m in messages.values())
        # `engine` is imported off-DAG *and* never used: both findings fire.
        assert len(result.findings) == 4

    def test_clean_layering_passes(self):
        result = run("r004_good.py", self.CONFIG, ["R004"])
        assert result.ok, "\n".join(f.render() for f in result.findings)


class TestR005EventDiscipline:
    CONFIG = ReprolintConfig(event_classes=("AllocationEngine",))

    def test_flags_silent_mutation(self):
        result = run("r005_bad.py", self.CONFIG, ["R005"])
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "R005"
        assert "seat" in finding.message
        assert finding.line == 9  # the def line of the mutating method

    def test_publishing_mutation_and_unwatched_classes_pass(self):
        result = run("r005_good.py", self.CONFIG, ["R005"])
        assert result.ok, "\n".join(f.render() for f in result.findings)
