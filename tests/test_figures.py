"""Tests for the regenerated paper figures (repro.render.figures).

These are the definitive table checks: every number printed in the paper's
Figures 2-6 is asserted here against the regeneration pipeline.
"""

from __future__ import annotations

import pytest

from repro.render.figures import (
    figure2,
    figure2_data,
    figure3,
    figure3_data,
    figure4,
    figure4_data,
    figure5,
    figure5_data,
    figure6,
    figure6_data,
)

PAPER_FIG2 = [
    [1, 3, 6, 10, 15, 21, 28, 36],
    [2, 5, 9, 14, 20, 27, 35, 44],
    [4, 8, 13, 19, 26, 34, 43, 53],
    [7, 12, 18, 25, 33, 42, 52, 63],
    [11, 17, 24, 32, 41, 51, 62, 74],
    [16, 23, 31, 40, 50, 61, 73, 86],
    [22, 30, 39, 49, 60, 72, 85, 99],
    [29, 38, 48, 59, 71, 84, 98, 113],
]

PAPER_FIG3 = [
    [1, 4, 9, 16, 25, 36, 49, 64],
    [2, 3, 8, 15, 24, 35, 48, 63],
    [5, 6, 7, 14, 23, 34, 47, 62],
    [10, 11, 12, 13, 22, 33, 46, 61],
    [17, 18, 19, 20, 21, 32, 45, 60],
    [26, 27, 28, 29, 30, 31, 44, 59],
    [37, 38, 39, 40, 41, 42, 43, 58],
    [50, 51, 52, 53, 54, 55, 56, 57],
]

PAPER_FIG4 = [
    [1, 3, 5, 8, 10, 14, 16],
    [2, 7, 13, 19, 26, 34, 40],
    [4, 12, 22, 33, 44, 56, 69],
    [6, 18, 32, 48, 64, 81, 99],
    [9, 25, 43, 63, 86, 108, 130],
    [11, 31, 55, 80, 107, 136, 165],
    [15, 39, 68, 98, 129, 164, 200],
    [17, 47, 79, 116, 154, 193, 235],
]

PAPER_FIG6 = {
    "T^<1>": [
        (14, 13, [8192, 24576, 40960, 57344, 73728]),
        (15, 14, [16384, 49152, 81920, 114688, 147456]),
    ],
    "T^<3>": [
        (14, 3, [24, 88, 152, 216, 280]),
        (15, 3, [40, 104, 168, 232, 296]),
        (28, 6, [448, 960, 1472, 1984, 2496]),
        (29, 7, [128, 1152, 2176, 3200, 4224]),
    ],
    "T^#": [
        (28, 4, [400, 912, 1424, 1936, 2448]),
        (29, 4, [432, 944, 1456, 1968, 2480]),
    ],
    "T^*": [
        (28, 3, [328, 840, 1352, 1864, 2376]),
        (29, 3, [344, 856, 1368, 1880, 2392]),
    ],
}


class TestFigure2:
    def test_data_is_paper_exact(self):
        assert figure2_data() == PAPER_FIG2

    def test_render_highlights_shell_6(self):
        out = figure2()
        assert "[15]" in out and "[11]" in out  # shell x+y=6 endpoints
        assert "[21]" not in out


class TestFigure3:
    def test_data_is_paper_exact(self):
        assert figure3_data() == PAPER_FIG3

    def test_render_highlights_shell_5(self):
        out = figure3()
        assert "[17]" in out and "[25]" in out
        assert "[36]" not in out


class TestFigure4:
    def test_data_is_paper_exact(self):
        assert figure4_data() == PAPER_FIG4

    def test_render_highlights_shell_6(self):
        out = figure4()
        for v in (11, 12, 13, 14):
            assert f"[{v}]" in out


class TestFigure5:
    def test_staircase_is_paper_shape(self):
        assert figure5_data() == [16, 8, 5, 4, 3, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1]

    def test_render_mentions_total(self):
        out = figure5()
        assert "50 lattice points" in out
        assert out.count("#") == 50

    def test_parameterized_n(self):
        out = figure5(4)
        assert out.count("#") == 8  # D(4) = 8


class TestFigure6:
    def test_data_is_paper_exact(self):
        assert figure6_data() == PAPER_FIG6

    def test_render_contains_all_values(self):
        out = figure6()
        for rows in PAPER_FIG6.values():
            for _x, _g, values in rows:
                for v in values:
                    assert str(v) in out

    def test_render_block_per_family(self):
        out = figure6()
        for family in PAPER_FIG6:
            assert family in out
