"""Crash/recovery tests (repro.webcompute.recovery + sharding faults).

The headline property is the *differential* one: because the fault
injector's RNG stream is separate from the simulation's arrival/work
streams, a seeded run that crashes a shard and restores it **in the same
tick** (a lossless bounce through checkpoint + journal replay) must
produce ledger forensics -- culprit sets, pollution counts, attribution
round-trips, per-volunteer records -- *identical* to the fault-free run.
If recovery lost or duplicated anything, some forensic number would
move.

Alongside it: the regression test for the engine snapshot seam (an
earlier version round-tripped only scalars, so a restored engine would
re-issue an in-flight task's index), the CheckpointStore/replay
contracts, direct shard crash/restore behavior, the Backoff schedule,
and the retry-with-backoff path for returns that race a crashed shard.
"""

from __future__ import annotations

import json

import pytest

from repro.apf.families import TSharp
from repro.errors import (
    AllocationError,
    RecoveryError,
    ShardDownError,
)
from repro.webcompute.engine import AllocationEngine
from repro.webcompute.recovery import Backoff, CheckpointStore, apply_op, replay
from repro.webcompute.sharding import ShardedWBCServer
from repro.webcompute.simulation import SimulationConfig, WBCSimulation
from repro.webcompute.volunteer import VolunteerProfile

BASE = dict(
    ticks=120,
    initial_volunteers=16,
    shards=4,
    lease_ticks=6,
    checkpoint_every=10,
    seed=77,
)

# Outcome fields that must be identical between a fault-free run and a
# same-tick crash+restore run.  The fault-accounting fields
# (shard_crashes / shard_restores / checkpoints_taken / retries) are the
# *only* ones allowed to differ.
FORENSIC_FIELDS = (
    "apf_name",
    "ticks",
    "volunteers_total",
    "tasks_completed",
    "bad_results_returned",
    "bad_results_caught",
    "faulty_banned",
    "honest_banned",
    "departures",
    "max_task_index",
    "attribution_checks",
    "attribution_failures",
    "tasks_reissued",
    "late_returns",
)


def run_sim(faults: str = "", **overrides):
    cfg = SimulationConfig(**{**BASE, **overrides}, faults=faults)
    sim = WBCSimulation(TSharp(), cfg)
    outcome = sim.run()
    return sim, outcome


def ledger_forensics(sim):
    """Every forensic fact the ledgers hold, normalized for comparison:
    per-task attribution tuples, per-volunteer records, and the culprit
    (banned) set, across all shards."""
    server = sim.server
    tasks = {}
    records = {}
    culprits = set()
    for shard in server.alive_shards():
        ledger = server.engines[shard].ledger
        for task in ledger.tasks():
            tasks[task.index] = (
                task.volunteer_id,
                task.status.name,
                task.returned_by,
                task.reissued_to,
            )
        for record in ledger.records():
            records[record.volunteer_id] = (
                record.issued,
                record.returned,
                record.verified,
                record.strikes,
                record.banned,
                record.banned_at,
            )
            if record.banned:
                culprits.add(record.volunteer_id)
    return tasks, records, culprits


class TestDifferentialRecovery:
    """Same seed, with and without a mid-run crash+restore: the final
    ledger forensics must be indistinguishable."""

    def test_same_tick_bounce_is_forensically_invisible(self):
        baseline_sim, baseline = run_sim()
        faulted_sim, faulted = run_sim(
            faults="crash@30:0,restore@30:0,crash@60:2,restore@60:2"
        )
        for name in FORENSIC_FIELDS:
            assert getattr(faulted, name) == getattr(baseline, name), name
        assert faulted.shard_crashes == 2
        assert faulted.shard_restores == 2
        assert ledger_forensics(faulted_sim) == ledger_forensics(baseline_sim)

    @pytest.mark.parametrize("shard", range(BASE["shards"]))
    def test_every_shard_survives_a_bounce(self, shard):
        _, baseline = run_sim()
        faulted_sim, faulted = run_sim(faults=f"crash@40:{shard},restore@40:{shard}")
        for name in FORENSIC_FIELDS:
            assert getattr(faulted, name) == getattr(baseline, name), name
        # Culprit sets specifically: recovery must not lose a strike.
        _, _, culprits = ledger_forensics(faulted_sim)
        baseline_sim, _ = run_sim()
        _, _, baseline_culprits = ledger_forensics(baseline_sim)
        assert culprits == baseline_culprits

    def test_downtime_crash_keeps_attribution_exact(self):
        """A crash that spans ticks (real downtime: dropped traffic,
        degraded routing) is allowed to change throughput numbers -- but
        never attribution or index uniqueness."""
        sim, outcome = run_sim(faults="crash@30:1,restore@45:1")
        assert outcome.shard_crashes == 1
        assert outcome.shard_restores == 1
        assert outcome.attribution_checks > 0
        assert outcome.attribution_failures == 0
        # No global index double-issued across the crash: per-shard
        # ledgers partition the global space, so the union is exact.
        server = sim.server
        per_shard = [
            {t.index for t in server.engines[s].ledger.tasks()}
            for s in server.alive_shards()
        ]
        total = sum(len(indices) for indices in per_shard)
        assert len(set().union(*per_shard)) == total == server.report().tasks_issued


class TestEngineSnapshotRegression:
    """The satellite bug: engine-level snapshot_state used to capture only
    scalars, so restoring mid-epoch lost the allocator/frontend/ledger
    state and the restored engine re-issued an in-flight task's index."""

    def make_engine(self, seed: int = 3) -> AllocationEngine:
        return AllocationEngine(
            TSharp(), verification_rate=1.0, ban_after_strikes=2, seed=seed
        )

    def test_restored_engine_issues_next_index_not_a_duplicate(self):
        engine = self.make_engine()
        vid = engine.register(VolunteerProfile("a", speed=1.0))
        done = engine.request_task(vid)
        engine.submit_result(vid, done.index, done.expected_result)
        inflight = engine.request_task(vid)  # issued, not yet returned

        blob = json.dumps(engine.snapshot_state(), sort_keys=True)
        restored = self.make_engine(seed=99)  # seed must not matter:
        restored.restore_state(json.loads(blob))  # the RNG rides in the state

        nxt = restored.request_task(vid)
        assert nxt.index not in {done.index, inflight.index}
        # Bit-identical continuation: the original engine's next issue is
        # the same index the restored one just minted.
        assert nxt.index == engine.request_task(vid).index
        # The in-flight task is still open and returnable on the restored
        # engine, attributed to its original owner.
        restored.submit_result(vid, inflight.index, inflight.expected_result)
        assert restored.attribute(inflight.index) == vid
        assert restored.attribute(done.index) == vid

    def test_snapshot_roundtrip_is_lossless(self):
        engine = self.make_engine()
        vids = engine.register_round(
            [VolunteerProfile(f"v{i}", speed=1.0 + i) for i in range(3)]
        )
        for vid in vids:
            task = engine.request_task(vid)
            engine.submit_result(vid, task.index, task.expected_result)
        engine.tick()
        engine.request_task(vids[0])  # leave one in flight
        state = engine.snapshot_state()
        restored = self.make_engine(seed=1234)
        restored.restore_state(json.loads(json.dumps(state)))
        assert restored.snapshot_state() == state

    def test_scalar_only_state_still_restores(self):
        """Backward compat: the pre-fix scalar dict (no component keys)
        must still be accepted -- component state is simply left as-is."""
        engine = self.make_engine()
        engine.restore_state(
            {
                "clock": 7,
                "max_task_index": 0,
                "next_volunteer_id": 5,
                "profiles": {},
            }
        )
        assert engine.clock == 7
        assert engine.next_volunteer_id == 5


class TestCheckpointStore:
    def test_latest_without_checkpoint_raises(self):
        with pytest.raises(RecoveryError):
            CheckpointStore().latest()

    def test_checkpoint_truncates_journal_and_counts_issued(self):
        engine = AllocationEngine(TSharp(), seed=1)
        vid = engine.register(VolunteerProfile("a"))
        engine.request_task(vid)
        store = CheckpointStore()
        store.journal(["tick"])
        assert store.pending_ops == 1
        cp = store.checkpoint(engine)
        assert store.pending_ops == 0
        assert cp.tasks_issued == 1
        assert store.checkpoint_issued == 1
        assert store.checkpoint_tick == engine.clock

    def test_checkpoint_state_is_isolated_from_the_live_engine(self):
        engine = AllocationEngine(TSharp(), seed=1)
        store = CheckpointStore()
        store.checkpoint(engine)
        engine.tick()
        engine.register(VolunteerProfile("late"))
        cp = store.latest()
        assert cp.state["clock"] == 0
        assert cp.state["profiles"] == {}
        # And two reads never share structure.
        assert store.latest().state is not cp.state

    def test_unknown_journal_op_raises(self):
        engine = AllocationEngine(TSharp(), seed=1)
        with pytest.raises(RecoveryError):
            apply_op(engine, ["frobnicate", 1])

    def test_replay_divergence_fails_loudly(self):
        engine = AllocationEngine(TSharp(), seed=1)
        ops = [["tick"], ["submit", 1, 999, 0]]  # no such task
        with pytest.raises(RecoveryError, match="diverged at op 1"):
            replay(engine, ops)

    def test_replay_reproduces_the_lost_engine(self):
        """checkpoint + journal = current state, bit for bit."""
        live = AllocationEngine(TSharp(), verification_rate=1.0, seed=5)
        store = CheckpointStore()
        a, b = live.register_round(
            [VolunteerProfile("a", speed=2.0), VolunteerProfile("b")]
        )
        store.checkpoint(live)
        ops = []

        def do(op):
            apply_op(live, op)
            ops.append(op)

        do(["tick"])
        do(["request", a])
        do(["request", b])
        task = live.ledger.outstanding_tasks()[0]
        do(["submit", task.volunteer_id, task.index, task.expected_result])
        do(["tick"])

        rebuilt = AllocationEngine(TSharp(), verification_rate=1.0, seed=999)
        rebuilt.restore_state(store.latest().state)
        assert replay(rebuilt, ops) == len(ops)
        assert rebuilt.snapshot_state() == live.snapshot_state()

    def test_bulk_ops_replay_as_their_singular_forms(self):
        """The batched router journals ``requests``/``submits`` entries;
        replaying them must restore the exact state the equivalent
        singular journal would have."""
        live = AllocationEngine(TSharp(), verification_rate=1.0, seed=5)
        a, b = live.register_round(
            [VolunteerProfile("a", speed=2.0), VolunteerProfile("b")]
        )
        store = CheckpointStore()
        store.checkpoint(live)
        apply_op(live, ["tick"])
        apply_op(live, ["requests", [a, b]])
        triples = [
            [t.volunteer_id, t.index, t.expected_result]
            for t in live.ledger.outstanding_tasks()
        ]
        apply_op(live, ["submits", triples])

        bulk = AllocationEngine(TSharp(), verification_rate=1.0, seed=999)
        bulk.restore_state(store.latest().state)
        replay(bulk, [["tick"], ["requests", [a, b]], ["submits", triples]])
        singular = AllocationEngine(TSharp(), verification_rate=1.0, seed=999)
        singular.restore_state(store.latest().state)
        replay(
            singular,
            [["tick"], ["request", a], ["request", b]]
            + [["submit", *t] for t in triples],
        )
        assert (
            bulk.snapshot_state()
            == singular.snapshot_state()
            == live.snapshot_state()
        )


class TestShardCrashRestore:
    def make_server(self, **kwargs) -> ShardedWBCServer:
        kwargs.setdefault("shards", 3)
        kwargs.setdefault("verification_rate", 1.0)
        kwargs.setdefault("seed", 7)
        kwargs.setdefault("lease_ticks", 5)
        kwargs.setdefault("checkpoint_every", 4)
        return ShardedWBCServer(TSharp(), **kwargs)

    def seeded_server(self):
        server = self.make_server()
        vids = server.register_round(
            [VolunteerProfile(f"v{i}", speed=1.0 + i * 0.3) for i in range(6)]
        )
        issued = []
        for _ in range(3):
            server.tick()
            for vid in vids:
                task = server.request_task(vid)
                issued.append(task.index)
                server.submit_result(vid, task.index, task.expected_result)
        return server, vids, issued

    def test_dead_shard_refuses_all_traffic_transiently(self):
        server, vids, issued = self.seeded_server()
        victim = next(v for v in vids if server.shard_of(v) == 1)
        dead_index = next(
            i for i in issued if server.composer.unpair(i)[0] - 1 == 1
        )
        server.crash_shard(1)
        with pytest.raises(ShardDownError):
            server.request_task(victim)
        with pytest.raises(ShardDownError):
            server.submit_result(victim, dead_index, 0)
        with pytest.raises(ShardDownError):
            server.attribute(dead_index)
        with pytest.raises(ShardDownError):
            server.engine_of(victim)
        with pytest.raises(ShardDownError):
            server.checkpoint_shard(1)
        # Transient means retryable: it is an AllocationError subclass,
        # not a hard failure.
        assert issubclass(ShardDownError, AllocationError)

    def test_crash_and_restore_guards(self):
        server = self.make_server()
        with pytest.raises(RecoveryError):
            server.restore_shard(0)  # not down
        server.crash_shard(0)
        with pytest.raises(RecoveryError):
            server.crash_shard(0)  # already down

    def test_restore_rebuilds_the_exact_engine(self):
        server, _vids, _issued = self.seeded_server()
        before = server.engines[2].snapshot_state()
        server.crash_shard(2)
        server.tick()  # downtime tick, journaled for the dead shard too
        server.restore_shard(2)
        after = server.engines[2].snapshot_state()
        # Identical except the replayed downtime tick.
        assert after["clock"] == before["clock"] + 1
        assert {**after, "clock": 0} == {**before, "clock": 0}
        assert server.engines[2].clock == server.clock

    def test_no_duplicate_indices_across_a_crash(self):
        server, vids, issued = self.seeded_server()
        server.crash_shard(1)
        server.tick()
        server.restore_shard(1)
        for _ in range(2):
            server.tick()
            for vid in vids:
                task = server.request_task(vid)
                issued.append(task.index)
                server.submit_result(vid, task.index, task.expected_result)
        assert len(issued) == len(set(issued))
        assert server.report().tasks_issued == len(issued)

    def test_registration_routes_around_a_dead_shard(self):
        server = self.make_server()
        server.crash_shard(1)
        vids = server.register_round([VolunteerProfile(f"n{i}") for i in range(6)])
        assert {server.shard_of(v) for v in vids} == {0, 2}
        for shard in range(3):
            if server.is_shard_alive(shard):
                server.crash_shard(shard)
        with pytest.raises(AllocationError):
            server.register(VolunteerProfile("nowhere"))

    def test_alive_shards_tracks_state(self):
        server = self.make_server()
        assert server.alive_shards() == [0, 1, 2]
        server.crash_shard(1)
        assert server.alive_shards() == [0, 2]
        assert not server.is_shard_alive(1)
        server.restore_shard(1)
        assert server.alive_shards() == [0, 1, 2]


class TestBackoff:
    def test_schedule_doubles_to_the_cap(self):
        b = Backoff()
        assert [b.delay(a) for a in range(6)] == [1, 2, 4, 8, 16, 16]

    def test_next_retry_tick_advances_attempts(self):
        b = Backoff()
        assert b.next_retry_tick(10) == 11
        assert b.next_retry_tick(11) == 13
        assert b.next_retry_tick(13) == 17
        assert b.attempts == 3
        assert not b.exhausted

    def test_exhaustion(self):
        b = Backoff(max_attempts=2)
        b.next_retry_tick(0)
        assert not b.exhausted
        b.next_retry_tick(1)
        assert b.exhausted


class TestRetryPath:
    def test_returns_racing_a_crash_are_retried_not_lost(self):
        """Delayed returns land while shard 1 is down, fail with
        ShardDownError, and drain through the backoff queue after the
        restore -- attribution stays exact throughout."""
        _, outcome = run_sim(faults="crash@20:1,restore@26:1,delay=0.6:4")
        assert outcome.returns_retried > 0
        assert outcome.attribution_failures == 0
        assert outcome.shard_crashes == 1
        assert outcome.shard_restores == 1
