"""Tests for the locality analyzer (repro.core.locality)."""

from __future__ import annotations

import pytest

from repro.apf.families import TBracket, TSharp
from repro.core.diagonal import DiagonalPairing
from repro.core.locality import block_span, col_jump_profile, row_jump_profile
from repro.core.squareshell import SquareShellPairing
from repro.errors import DomainError


class TestRowJumps:
    def test_apf_rows_are_constant(self):
        for apf in (TSharp(), TBracket(2)):
            for row in (1, 3, 9):
                profile = row_jump_profile(apf, row, 12)
                assert profile.constant
                assert profile.mean == apf.stride(row)

    def test_diagonal_rows_grow_linearly(self):
        # D(x, y+1) - D(x, y) = x + y: jumps increase by 1 each step.
        profile = row_jump_profile(DiagonalPairing(), 2, 10)
        assert not profile.constant
        assert profile.maximum == 2 + 9  # last jump: x + y at y = 9

    def test_square_shell_rows_mostly_shell_jumps(self):
        profile = row_jump_profile(SquareShellPairing(), 1, 10)
        # Row 1 is the squares: jumps 3, 5, 7, ... (odd numbers).
        assert profile.maximum == 19
        assert not profile.constant

    def test_rejects_bad_args(self):
        with pytest.raises(DomainError):
            row_jump_profile(TSharp(), 0, 5)
        with pytest.raises(DomainError):
            row_jump_profile(TSharp(), 1, 1)


class TestColJumps:
    def test_apf_columns_are_not_constant(self):
        # The asymmetry: APF rows are progressions, columns are not.
        profile = col_jump_profile(TSharp(), 1, 12)
        assert not profile.constant

    def test_diagonal_column_jumps(self):
        profile = col_jump_profile(DiagonalPairing(), 1, 10)
        # D(x+1, 1) - D(x, 1) = x: growing jumps.
        assert profile.maximum == 9


class TestBlockSpan:
    def test_square_shell_corner_blocks_are_dense(self):
        # The k x k corner block under A_{1,1} is exactly addresses 1..k^2.
        for k in (2, 4, 7):
            low, high, density = block_span(SquareShellPairing(), 1, 1, k)
            assert (low, high, density) == (1, k * k, 1.0)

    def test_off_corner_blocks_are_sparser(self):
        _low, _high, density = block_span(SquareShellPairing(), 5, 5, 3)
        assert density < 1.0

    def test_diagonal_corner_block(self):
        low, high, density = block_span(DiagonalPairing(), 1, 1, 3)
        assert low == 1
        assert high == DiagonalPairing().pair(3, 3)  # the far corner's shell
        assert 0 < density <= 1.0

    def test_rejects_bad_block(self):
        with pytest.raises(DomainError):
            block_span(DiagonalPairing(), 0, 1, 2)
