"""Tests for repro.numbertheory.integers."""

from __future__ import annotations

import math

import pytest

from repro.errors import DomainError
from repro.numbertheory.integers import (
    binomial,
    ceil_div,
    ceil_sqrt,
    is_perfect_square,
    isqrt_exact,
    triangular,
    triangular_root,
)


class TestIsqrt:
    @pytest.mark.parametrize("n", list(range(0, 200)) + [10**12, 10**12 + 1])
    def test_floor_property(self, n):
        r = isqrt_exact(n)
        assert r * r <= n < (r + 1) * (r + 1)

    def test_huge_exact(self):
        big = (10**30 + 7) ** 2
        assert isqrt_exact(big) == 10**30 + 7

    def test_rejects_negative(self):
        with pytest.raises(DomainError):
            isqrt_exact(-1)

    def test_rejects_float(self):
        with pytest.raises(DomainError):
            isqrt_exact(4.0)


class TestCeilSqrt:
    @pytest.mark.parametrize("n", range(0, 200))
    def test_ceiling_property(self, n):
        r = ceil_sqrt(n)
        assert (r - 1) * (r - 1) < n <= r * r or (n == 0 and r == 0)

    def test_perfect_squares_fixed(self):
        for k in range(20):
            assert ceil_sqrt(k * k) == k


class TestIsPerfectSquare:
    def test_squares(self):
        assert all(is_perfect_square(k * k) for k in range(50))

    def test_non_squares(self):
        squares = {k * k for k in range(50)}
        for n in range(200):
            assert is_perfect_square(n) == (n in squares)


class TestBinomial:
    def test_matches_math_comb(self):
        for n in range(15):
            for k in range(n + 1):
                assert binomial(n, k) == math.comb(n, k)

    def test_k_greater_than_n_is_zero(self):
        assert binomial(1, 2) == 0
        assert binomial(0, 5) == 0

    def test_cantor_form(self):
        # D(x, y) = C(x+y-1, 2) + y -> C(2, 2) = 1 for (1, 2).
        assert binomial(2, 2) + 2 == 3

    def test_rejects_negative(self):
        with pytest.raises(DomainError):
            binomial(-1, 0)
        with pytest.raises(DomainError):
            binomial(3, -1)


class TestTriangular:
    def test_sequence(self):
        assert [triangular(s) for s in range(8)] == [0, 1, 3, 6, 10, 15, 21, 28]

    def test_is_binomial(self):
        for s in range(1, 40):
            assert triangular(s) == binomial(s + 1, 2)

    def test_rejects_negative(self):
        with pytest.raises(DomainError):
            triangular(-1)


class TestTriangularRoot:
    @pytest.mark.parametrize("z", range(0, 500))
    def test_defining_property(self, z):
        s = triangular_root(z)
        assert triangular(s) <= z < triangular(s + 1)

    def test_exact_at_triangulars(self):
        for s in range(1, 60):
            assert triangular_root(triangular(s)) == s
            assert triangular_root(triangular(s) - 1) == s - 1

    def test_huge(self):
        s = 10**15
        assert triangular_root(triangular(s)) == s

    def test_rejects_negative(self):
        with pytest.raises(DomainError):
            triangular_root(-1)


class TestCeilDiv:
    @pytest.mark.parametrize("a", range(0, 50))
    @pytest.mark.parametrize("b", [1, 2, 3, 7])
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)

    def test_negative_numerator(self):
        assert ceil_div(-3, 2) == -1

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(DomainError):
            ceil_div(5, 0)
        with pytest.raises(DomainError):
            ceil_div(5, -2)
