"""Tests for the mapping registry."""

from __future__ import annotations

import pytest

from repro.core.registry import available_names, get_pairing, register
from repro.errors import ConfigurationError


class TestLookup:
    def test_all_fixed_names_instantiate(self):
        for name in available_names():
            mapping = get_pairing(name)
            assert mapping.pair(2, 3) >= 1
            assert mapping.name  # non-empty

    def test_fresh_instances(self):
        a = get_pairing("hyperbolic")
        b = get_pairing("hyperbolic")
        assert a is not b

    def test_expected_names_present(self):
        names = available_names()
        for expected in (
            "diagonal",
            "square-shell",
            "hyperbolic",
            "apf-sharp",
            "apf-star",
            "apf-bracket-1",
        ):
            assert expected in names

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ConfigurationError) as err:
            get_pairing("no-such-mapping")
        assert "diagonal" in str(err.value)


class TestParameterizedForms:
    def test_aspect(self):
        p = get_pairing("aspect-3x2")
        assert p.name == "aspect-3x2"
        p.check_roundtrip_window(6, 6)

    def test_bracket_any_c(self):
        p = get_pairing("apf-bracket-7")
        assert p.c == 7
        p.check_roundtrip_window(6, 6)

    def test_power(self):
        p = get_pairing("apf-power-2")
        assert p.name == "apf-power-2"

    def test_malformed_parameter_raises(self):
        with pytest.raises(ConfigurationError):
            get_pairing("aspect-0x2")  # zero ratio rejected downstream

    def test_garbage_suffix_raises(self):
        with pytest.raises(ConfigurationError):
            get_pairing("aspect-axb")


class TestRegister:
    def test_duplicate_name_rejected(self):
        from repro.core.diagonal import DiagonalPairing

        with pytest.raises(ConfigurationError):
            register("diagonal", DiagonalPairing)

    def test_custom_registration(self):
        from repro.core.diagonal import DiagonalPairingTwin

        register("test-only-custom", DiagonalPairingTwin)
        assert get_pairing("test-only-custom").name == "diagonal-twin"
