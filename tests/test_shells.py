"""Tests for Procedure PF-Constructor (repro.core.shells)."""

from __future__ import annotations

import pytest

from repro.core.aspectratio import AspectRatioPairing
from repro.core.diagonal import DiagonalPairing
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.shells import (
    AspectRatioShells,
    DiagonalShells,
    HyperbolicShells,
    ShellConstructedPairing,
    ShellOrder,
    SquareShells,
)
from repro.core.squareshell import SquareShellPairing
from repro.errors import ConfigurationError, DomainError

ALL_PARTITIONS = [
    DiagonalShells,
    SquareShells,
    HyperbolicShells,
    lambda: AspectRatioShells(1, 2),
    lambda: AspectRatioShells(2, 3),
]

ALL_ORDERS = list(ShellOrder)


class TestPartitionContracts:
    @pytest.mark.parametrize("make", ALL_PARTITIONS)
    def test_membership_consistency(self, make):
        part = make()
        for c in range(1, 8):
            for pos in part.members(c):
                assert part.shell_index(*pos) == c

    @pytest.mark.parametrize("make", ALL_PARTITIONS)
    def test_sizes_match_members(self, make):
        part = make()
        for c in range(1, 10):
            assert part.size(c) == len(part.members(c))

    @pytest.mark.parametrize("make", ALL_PARTITIONS)
    def test_cumulative_closed_forms(self, make):
        part = make()
        for c in range(1, 10):
            assert part.cumulative_before(c) == sum(part.size(j) for j in range(1, c))

    @pytest.mark.parametrize("make", ALL_PARTITIONS)
    def test_members_have_no_duplicates(self, make):
        part = make()
        for c in range(1, 8):
            members = part.members(c)
            assert len(set(members)) == len(members)

    @pytest.mark.parametrize("make", ALL_PARTITIONS)
    def test_shells_partition_the_window(self, make):
        part = make()
        covered = set()
        c = 1
        while len(covered) < 100:
            for pos in part.members(c):
                assert pos not in covered
                covered.add(pos)
            c += 1
        # Every small window position got covered by some shell.
        for x in range(1, 6):
            for y in range(1, 6):
                assert (x, y) in covered or part.shell_index(x, y) >= c

    @pytest.mark.parametrize("make", ALL_PARTITIONS)
    def test_locate_inverts_cumulative(self, make):
        part = make()
        for z in range(1, 120):
            c = part.locate(z)
            assert part.cumulative_before(c) < z <= part.cumulative_before(c) + part.size(c)


class TestTheorem31:
    """Theorem 3.1: any shell-constructed function is a valid PF --
    for every built-in partition under every Step 2b order."""

    @pytest.mark.parametrize("make", ALL_PARTITIONS)
    @pytest.mark.parametrize("order", ALL_ORDERS)
    def test_is_bijection(self, make, order):
        pf = ShellConstructedPairing(make(), order)
        pf.check_roundtrip_window(9, 9)
        pf.check_bijective_prefix(100)


class TestReproducesClosedForms:
    def test_diagonal(self):
        pf = ShellConstructedPairing(DiagonalShells(), ShellOrder.BY_COLUMNS)
        d = DiagonalPairing()
        for x in range(1, 12):
            for y in range(1, 12):
                assert pf.pair(x, y) == d.pair(x, y)

    def test_square_shell_native_order(self):
        pf = ShellConstructedPairing(SquareShells(), ShellOrder.NATIVE)
        a = SquareShellPairing()
        for x in range(1, 12):
            for y in range(1, 12):
                assert pf.pair(x, y) == a.pair(x, y)

    def test_hyperbolic_native_order(self):
        pf = ShellConstructedPairing(HyperbolicShells(), ShellOrder.NATIVE)
        h = HyperbolicPairing()
        for x in range(1, 10):
            for y in range(1, 10):
                assert pf.pair(x, y) == h.pair(x, y)

    def test_aspect_ratio_native_order(self):
        pf = ShellConstructedPairing(AspectRatioShells(2, 3), ShellOrder.NATIVE)
        p = AspectRatioPairing(2, 3)
        for x in range(1, 10):
            for y in range(1, 10):
                assert pf.pair(x, y) == p.pair(x, y)


class TestOrderIndependentProperties:
    @pytest.mark.parametrize("order", ALL_ORDERS)
    def test_spread_is_order_independent_for_square_shells(self, order):
        # The in-shell order permutes addresses *within* shells only, so the
        # spread (a max over complete shells' worth of positions) can differ
        # only within the final shell; on square arrays it is identical.
        pf = ShellConstructedPairing(SquareShells(), order)
        base = SquareShellPairing()
        for k in (2, 4, 6):
            assert pf.spread_for_shape(k, k) == base.spread_for_shape(k, k)

    def test_orders_produce_distinct_pfs(self):
        by_cols = ShellConstructedPairing(SquareShells(), ShellOrder.BY_COLUMNS)
        by_rows = ShellConstructedPairing(SquareShells(), ShellOrder.BY_ROWS)
        assert any(
            by_cols.pair(x, y) != by_rows.pair(x, y)
            for x in range(1, 6)
            for y in range(1, 6)
        )


class TestValidation:
    def test_rejects_non_partition(self):
        with pytest.raises(ConfigurationError):
            ShellConstructedPairing("diagonal", ShellOrder.NATIVE)  # type: ignore[arg-type]

    def test_rejects_non_order(self):
        with pytest.raises(ConfigurationError):
            ShellConstructedPairing(DiagonalShells(), "by-columns")  # type: ignore[arg-type]

    def test_partition_domain_errors(self):
        part = DiagonalShells()
        with pytest.raises(DomainError):
            part.members(0)
        with pytest.raises(DomainError):
            part.shell_index(0, 1)
        with pytest.raises(DomainError):
            part.locate(0)
