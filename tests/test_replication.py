"""Tests for the majority-vote replication baseline."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.webcompute.replication import ReplicationSimulation
from repro.webcompute.volunteer import Behavior, VolunteerProfile


def honest_pool(n: int) -> list[VolunteerProfile]:
    return [VolunteerProfile(f"h{i}", speed=1.0) for i in range(n)]


def mixed_pool(honest: int, malicious: int, error_rate: float = 1.0):
    pool = honest_pool(honest)
    pool += [
        VolunteerProfile(
            f"m{i}", behavior=Behavior.MALICIOUS, error_rate=error_rate
        )
        for i in range(malicious)
    ]
    return pool


class TestConfiguration:
    def test_rejects_empty_pool(self):
        with pytest.raises(ConfigurationError):
            ReplicationSimulation([], 1)

    def test_rejects_factor_above_population(self):
        with pytest.raises(ConfigurationError):
            ReplicationSimulation(honest_pool(2), replication_factor=3)

    def test_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            ReplicationSimulation(honest_pool(3), replication_factor=0)

    def test_rejects_bad_tasks(self):
        sim = ReplicationSimulation(honest_pool(3), 3)
        with pytest.raises(ConfigurationError):
            sim.run(0)


class TestHonestPool:
    def test_never_accepts_bad(self):
        outcome = ReplicationSimulation(honest_pool(5), 3, seed=1).run(100)
        assert outcome.bad_results_produced == 0
        assert outcome.bad_results_accepted == 0

    def test_work_overhead_is_factor(self):
        outcome = ReplicationSimulation(honest_pool(6), 3, seed=1).run(50)
        assert outcome.work_overhead == 3.0
        assert outcome.computations_performed == 150


class TestFaultTolerance:
    def test_minority_faults_filtered(self):
        # 1 always-wrong volunteer among 5, r = 3: round-robin replicas
        # contain at most one faulty answer -> majority always correct.
        pool = mixed_pool(honest=4, malicious=1)
        outcome = ReplicationSimulation(pool, 3, seed=2).run(200)
        assert outcome.bad_results_produced > 0
        assert outcome.bad_results_accepted == 0

    def test_majority_faults_poison_results(self):
        # 4 always-wrong among 5: most replica trios carry a faulty
        # majority... but wrong answers are *random*, so they rarely agree;
        # ties fall to the deterministic minimum, which can be the truth or
        # a lie.  What must hold: some bad results get accepted.
        pool = mixed_pool(honest=1, malicious=4)
        outcome = ReplicationSimulation(pool, 3, seed=3).run(300)
        assert outcome.bad_results_accepted > 0

    def test_replication_one_accepts_everything(self):
        pool = mixed_pool(honest=1, malicious=1)
        outcome = ReplicationSimulation(pool, 1, seed=4).run(200)
        # r = 1: whatever the (alternating) volunteer returns is accepted.
        assert outcome.bad_results_accepted == outcome.bad_results_produced > 0


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        pool = mixed_pool(3, 2, error_rate=0.5)
        a = ReplicationSimulation(pool, 3, seed=9).run(100)
        b = ReplicationSimulation(pool, 3, seed=9).run(100)
        assert a == b


class TestEconomicsVsAccountability:
    def test_replication_costs_r_times_the_work(self):
        # The quantitative point of Section 4's "lightweight" framing:
        # replication r=3 performs 3x computations per decided task, while
        # the ledger's overhead is 1 + verification_rate (~1.2x).
        pool = mixed_pool(honest=8, malicious=2, error_rate=0.3)
        outcome = ReplicationSimulation(pool, 3, seed=5).run(400)
        # At least r computations per task; occasionally more (reissues on
        # majority-less replica sets).
        assert 3.0 <= outcome.work_overhead < 4.0

        from repro.apf.families import TSharp
        from repro.webcompute.simulation import SimulationConfig, WBCSimulation

        config = SimulationConfig(
            ticks=150,
            initial_volunteers=10,
            malicious_fraction=0.2,
            careless_fraction=0.0,
            verification_rate=0.2,
            seed=5,
            departure_rate=0.0,
            arrival_rate=0.0,
        )
        ledger_outcome = WBCSimulation(TSharp(), config).run()
        # Ledger work per accepted task: 1 computation + sampled checks.
        ledger_overhead = 1 + config.verification_rate
        assert ledger_overhead < outcome.work_overhead
        # The ledger *bans*: by the end, offenders are out of the pool.
        assert ledger_outcome.faulty_banned >= 1
