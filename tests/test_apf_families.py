"""Tests for the APF sampler (Section 4.2) -- including every Figure 6
value, transcribed from the paper."""

from __future__ import annotations

import math

import pytest

from repro.apf.constructor import ConstructedAPF
from repro.apf.families import (
    ConstantCopyIndex,
    ExponentialCopyIndex,
    ExponentialKappaAPF,
    HalfSquareCopyIndex,
    LinearCopyIndex,
    PowerCopyIndex,
    TBracket,
    TPower,
    TSharp,
    TStar,
)
from repro.errors import ConfigurationError


class TestFigure6:
    """The paper's Figure 6, row by row, value by value."""

    def test_t_bracket_1(self):
        t = TBracket(1)
        assert [t.pair(14, y) for y in range(1, 6)] == [8192, 24576, 40960, 57344, 73728]
        assert [t.pair(15, y) for y in range(1, 6)] == [16384, 49152, 81920, 114688, 147456]
        assert t.group_of(14) == 13 and t.group_of(15) == 14

    def test_t_bracket_3(self):
        t = TBracket(3)
        assert [t.pair(14, y) for y in range(1, 6)] == [24, 88, 152, 216, 280]
        assert [t.pair(15, y) for y in range(1, 6)] == [40, 104, 168, 232, 296]
        assert [t.pair(28, y) for y in range(1, 6)] == [448, 960, 1472, 1984, 2496]
        assert [t.pair(29, y) for y in range(1, 6)] == [128, 1152, 2176, 3200, 4224]
        assert t.group_of(14) == 3 and t.group_of(15) == 3
        assert t.group_of(28) == 6 and t.group_of(29) == 7

    def test_t_sharp(self):
        t = TSharp()
        assert [t.pair(28, y) for y in range(1, 6)] == [400, 912, 1424, 1936, 2448]
        assert [t.pair(29, y) for y in range(1, 6)] == [432, 944, 1456, 1968, 2480]
        assert t.group_of(28) == 4 and t.group_of(29) == 4

    def test_t_star(self):
        t = TStar()
        assert [t.pair(28, y) for y in range(1, 6)] == [328, 840, 1352, 1864, 2376]
        assert [t.pair(29, y) for y in range(1, 6)] == [344, 856, 1368, 1880, 2392]
        assert t.group_of(28) == 3 and t.group_of(29) == 3


class TestTBracket:
    def test_rejects_nonpositive_c(self):
        with pytest.raises(ConfigurationError):
            TBracket(0)

    @pytest.mark.parametrize("c", [1, 2, 3, 4, 5])
    def test_closed_forms_match_constructor(self, c):
        closed = TBracket(c)
        generic = ConstructedAPF(ConstantCopyIndex(c))
        for x in range(1, 50):
            assert closed.group_of(x) == generic.group_of(x)
            assert closed.base(x) == generic.base(x)
            assert closed.stride(x) == generic.stride(x)

    @pytest.mark.parametrize("c", [1, 2, 3])
    def test_proposition_4_1_stride(self, c):
        # S_x = 2**(floor((x-1)/2**(c-1)) + c).
        t = TBracket(c)
        for x in range(1, 60):
            assert t.stride(x) == 1 << ((x - 1) // (1 << (c - 1)) + c)

    def test_t1_is_classic_exponential(self):
        # T^<1>(x, y) = 2**(x-1) * (2y - 1): the textbook valuation pairing.
        t = TBracket(1)
        for x in range(1, 15):
            for y in range(1, 8):
                assert t.pair(x, y) == (1 << (x - 1)) * (2 * y - 1)

    def test_larger_c_penalizes_low_rows_helps_high_rows(self):
        # The paper: "a larger value of c penalizes a few low-index rows
        # but gives all others significantly smaller base row-entries and
        # strides".
        t1, t3 = TBracket(1), TBracket(3)
        assert t3.stride(1) > t1.stride(1)  # low row penalized
        assert t3.stride(14) < t1.stride(14)  # high rows helped (Fig 6)
        assert t3.base(14) < t1.base(14)

    @pytest.mark.parametrize("c", [1, 2, 3, 4])
    def test_bijective(self, c):
        TBracket(c).check_roundtrip_window(14, 14)
        TBracket(c).check_bijective_prefix(300)


class TestTSharp:
    def test_closed_forms_match_constructor(self):
        closed = TSharp()
        generic = ConstructedAPF(LinearCopyIndex())
        for x in range(1, 200):
            assert closed.group_of(x) == generic.group_of(x)
            assert closed.base(x) == generic.base(x)
            assert closed.stride(x) == generic.stride(x)

    def test_equation_4_5(self):
        t = TSharp()
        for x in range(1, 100):
            assert t.group_of(x) == math.floor(math.log2(x))

    def test_proposition_4_2(self):
        # S_x = 2**(1 + 2 floor(log2 x)) <= 2 x**2, quadratic growth.
        t = TSharp()
        for x in range(1, 200):
            s = t.stride(x)
            assert s == 1 << (1 + 2 * (x.bit_length() - 1))
            assert s <= 2 * x * x
            assert s > x * x / 2  # genuinely quadratic, not smaller

    def test_bijective(self):
        TSharp().check_roundtrip_window(16, 16)
        TSharp().check_bijective_prefix(500)


class TestTStar:
    def test_matches_half_square_constructor(self):
        star = TStar()
        generic = ConstructedAPF(HalfSquareCopyIndex())
        for x in range(1, 100):
            assert star.base(x) == generic.base(x)
            assert star.stride(x) == generic.stride(x)

    def test_kappa_star_values(self):
        # kappa*(g) = ceil(g^2/2): 0, 1, 2, 5, 8, 13, ...
        k = HalfSquareCopyIndex()
        assert [k(g) for g in range(6)] == [0, 1, 2, 5, 8, 13]

    def test_group_boundaries(self):
        # Groups: rows {1}, {2,3}, {4..7}, {8..39}, {40..295}, ...
        star = TStar()
        assert star.group_of(1) == 0
        assert star.group_of(2) == 1 and star.group_of(3) == 1
        assert star.group_of(4) == 2 and star.group_of(7) == 2
        assert star.group_of(8) == 3 and star.group_of(39) == 3
        assert star.group_of(40) == 4 and star.group_of(295) == 4
        assert star.group_of(296) == 5

    def test_proposition_4_4_estimate(self):
        # S*_x ~ 8 x 4**sqrt(2 log2 x).  The actual stride is a staircase
        # (constant within each group) under the smooth estimate, so the
        # pointwise ratio wobbles; the estimate tracks within a bounded
        # envelope and upper-bounds the staircase on this range.
        star = TStar()
        for x in (64, 256, 1024, 4096, 2**14):
            actual = star.stride(x)
            estimate = star.stride_estimate(x)
            assert estimate / 256 < actual <= estimate * 2

    def test_estimated_group_close_to_actual(self):
        star = TStar()
        for x in (8, 64, 512, 4096):
            assert abs(star.estimated_group_of(x) - star.group_of(x)) <= 1

    def test_subquadratic_growth(self):
        # stride(x) / x**2 -> 0: check a decade of doublings.
        star = TStar()
        ratios = [star.stride(1 << k) / (1 << k) ** 2 for k in range(4, 16)]
        assert ratios[-1] < ratios[0] / 4

    def test_bijective(self):
        TStar().check_roundtrip_window(14, 14)
        TStar().check_bijective_prefix(400)


class TestTPower:
    def test_k1_equals_sharp_strides(self):
        p1, sharp = TPower(1), TSharp()
        for x in range(1, 100):
            assert p1.stride(x) == sharp.stride(x)
            assert p1.base(x) == sharp.base(x)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ConfigurationError):
            TPower(0)

    @pytest.mark.parametrize("k", [2, 3])
    def test_bijective(self, k):
        TPower(k).check_roundtrip_window(10, 10)
        TPower(k).check_bijective_prefix(200)

    def test_proposition_4_3_subquadratic(self):
        # T^[2] strides grow like x * 2**O(sqrt(log x)): subquadratic.
        p = TPower(2)
        ratios = [p.stride(1 << k) / float((1 << k) ** 2) for k in (6, 10, 14, 18)]
        assert ratios[-1] < ratios[0]

    def test_estimated_group(self):
        p = TPower(2)
        for x in (16, 256, 4096):
            assert abs(p.estimated_group_of(x) - p.group_of(x)) <= 1


class TestExponentialKappa:
    def test_bijective(self):
        bad = ExponentialKappaAPF()
        bad.check_roundtrip_window(10, 10)
        bad.check_bijective_prefix(200)

    def test_group_first_rows(self):
        # Groups sized 2, 4, 16, 256: first rows 1, 3, 7, 23, 279.
        bad = ExponentialKappaAPF()
        assert [bad.first_row_of_group(g) for g in range(5)] == [1, 3, 7, 23, 279]

    def test_superquadratic_at_group_starts(self):
        # Section 4.2.3: at each group's first row, S_x >~ x**2 log(x**2).
        # The relation is asymptotic (x ~ sqrt(2**kappa(g)) only for large
        # g); it holds from g = 4 on.
        bad = ExponentialKappaAPF()
        for g in (4, 5, 6):
            x = bad.first_row_of_group(g)
            stride = bad.stride(x)
            assert stride > x * x * math.log2(x * x)

    def test_paper_inequality_exact_form(self):
        # The paper's exact chain: S_x = 2**(1+g+kappa(g)) > 2**kappa(g) *
        # kappa(g) -- holds at every group head from g = 3.
        bad = ExponentialKappaAPF()
        for g in (3, 4, 5, 6):
            x = bad.first_row_of_group(g)
            kappa = 1 << g
            assert bad.stride(x) > (1 << kappa) * kappa

    def test_worse_than_sharp_eventually(self):
        # The stride ratio vs the quadratic T# grows like 2**(g+1) at the
        # group heads: superquadratic divergence.
        bad, sharp = ExponentialKappaAPF(), TSharp()
        ratios = []
        for g in (4, 5, 6):
            x = bad.first_row_of_group(g)
            ratios.append(bad.stride(x) / sharp.stride(x))
        assert ratios[0] > 10
        assert ratios == sorted(ratios)  # diverging, not settling
