"""Tests for the 'no cubic PF' grid search (Section 2, item 3)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ConfigurationError
from repro.polynomial.bijectivity import analyze_window
from repro.polynomial.cubic_search import (
    cubic_candidates,
    search_cubic_pfs,
)

SMALL_LEADS = [Fraction(-1), Fraction(0), Fraction(1)]
SMALL_LOWER = [Fraction(-1), Fraction(0), Fraction(1)]


class TestCandidates:
    def test_all_are_genuine_cubics(self):
        for p in cubic_candidates(SMALL_LEADS, SMALL_LOWER):
            assert p.degree == 3

    def test_normalized_at_origin(self):
        for p in cubic_candidates(SMALL_LEADS, SMALL_LOWER):
            assert p(1, 1) == 1

    def test_count(self):
        # (3^4 - 1) lead choices * 3^5 lower choices.
        count = sum(1 for _ in cubic_candidates(SMALL_LEADS, SMALL_LOWER))
        assert count == (3**4 - 1) * 3**5

    def test_rejects_empty_grids(self):
        with pytest.raises(ConfigurationError):
            list(cubic_candidates([], SMALL_LOWER))


class TestTheoremOnSmallGrid:
    @pytest.fixture(scope="class")
    def result(self):
        # Integer-only sub-grid: 80 * 243 = 19,440 candidates, fast.
        return search_cubic_pfs(SMALL_LEADS, SMALL_LOWER, bound=24)

    def test_no_cubic_survives(self, result):
        assert result.confirms_theorem
        assert result.pf_consistent == ()

    def test_candidate_count(self, result):
        assert result.candidates == (3**4 - 1) * 3**5

    def test_stage1_prunes(self, result):
        # Integer-only grids trip no parity rejections, so pruning is
        # milder than on the half-integer grid (~2.5% there, ~15% here).
        assert result.stage1_survivors < result.candidates / 3


class TestFastPathAgreesWithFractionPath:
    def test_survivor_set_matches_analyze_window(self):
        # The doubled-integer window check must agree with the reference
        # Fraction-based analyzer on a sample of stage-1 survivors.
        from repro.polynomial.cubic_search import _window_violation, _EXPONENTS

        checked = 0
        for p in cubic_candidates(SMALL_LEADS, [Fraction(0), Fraction(1)]):
            coeffs = [2 * p.coefficient(*e) for e in _EXPONENTS]
            d = [c.numerator for c in coeffs]
            fast_ok = _window_violation(d, 15) is None
            report = analyze_window(p, 15)
            slow_ok = report.pf_consistent
            # fast 'ok' must never pass a candidate the reference rejects
            # with a *definitive* witness (collisions / values).
            if fast_ok:
                assert slow_ok or report.gaps  # only completeness may differ
            checked += 1
            if checked >= 300:
                break
        assert checked == 300

    def test_known_violations_detected(self):
        from repro.polynomial.cubic_search import _window_violation

        # x^3 (doubled: 2x^3) misses 2, 3, ... -> gap/collision-free but
        # sparse: violation must be reported.
        d = [2, 0, 0, 0, 0, 0, 0, 0, 0, 0]
        assert _window_violation(d, 24) is not None
