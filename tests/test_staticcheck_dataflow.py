"""Unit tests for the intraprocedural dataflow engine itself: the taint
lattice, propagation rules, join semantics, and the deliberate places
where taint *stops* (the false-positive guards the flow-aware rules
rely on)."""

from __future__ import annotations

import ast
import textwrap

from repro.staticcheck.dataflow import (
    ALIAS,
    ATTR,
    ENTROPY,
    FLOAT,
    ModuleDataflow,
    dotted_parts,
)


def flow_of(source: str) -> ModuleDataflow:
    return ModuleDataflow(ast.parse(textwrap.dedent(source)))


def returns(source: str, func: str = "f", owner: str = ""):
    return flow_of(source).summaries[(owner, func)]


def kinds(taints) -> set[str]:
    return {t.kind for t in taints}


def sources(taints, kind: str) -> set[str]:
    return {t.source for t in taints if t.kind == kind}


class TestSourcesAndPropagation:
    def test_entropy_source_through_assignment_chain(self):
        taints = returns(
            """
            import time

            def f():
                a = time.time()
                b = a
                c = b
                return c
            """
        )
        assert sources(taints, ENTROPY) == {"time.time"}

    def test_import_alias_resolves_to_canonical_source(self):
        taints = returns(
            """
            from time import time as wall

            def f():
                return wall()
            """
        )
        assert sources(taints, ENTROPY) == {"time.time"}

    def test_float_source(self):
        taints = returns(
            """
            import math

            def f(x):
                return math.sqrt(x)
            """
        )
        assert FLOAT in kinds(taints)

    def test_untainted_code_stays_clean(self):
        taints = returns(
            """
            def f(x):
                y = x + 1
                return y * 2
            """
        )
        assert taints == frozenset()

    def test_augmented_assignment_accumulates(self):
        taints = returns(
            """
            import os

            def f():
                total = 0
                total += os.getpid()
                return total
            """
        )
        assert sources(taints, ENTROPY) == {"os.getpid"}

    def test_trace_records_the_hops(self):
        taints = returns(
            """
            import time

            def f():
                a = time.time()
                b = a
                return b
            """
        )
        (origin,) = [t for t in taints if t.kind == ENTROPY]
        trace = origin.trace()
        assert trace[0] == "time.time (line 5)"
        assert any("a (line 5)" in hop for hop in trace)

    def test_hop_chain_is_capped(self):
        rebinds = "\n".join(
            f"    v{i} = v{i - 1}" for i in range(1, 20)
        )
        taints = returns(
            "import time\n\ndef f():\n    v0 = time.time()\n"
            + rebinds
            + "\n    return v19\n"
        )
        (origin,) = [t for t in taints if t.kind == ENTROPY]
        assert len(origin.trace()) <= 9  # source + at most 8 hops


class TestJoins:
    def test_branches_union(self):
        taints = returns(
            """
            import time

            def f(flag):
                x = 0
                if flag:
                    x = time.time()
                else:
                    x = 1
                return x
            """
        )
        assert ENTROPY in kinds(taints)

    def test_loop_carried_taint(self):
        # y reads x before x is tainted in program order; the loop body
        # runs twice, so the back edge carries the taint into y.
        taints = returns(
            """
            import time

            def f(items):
                x = 0
                y = 0
                for _ in items:
                    y = x
                    x = time.time()
                return y
            """
        )
        assert ENTROPY in kinds(taints)

    def test_strong_update_clears_rebound_name(self):
        taints = returns(
            """
            import time

            def f():
                x = time.time()
                x = 0
                return x
            """
        )
        assert ENTROPY not in kinds(taints)

    def test_subscript_store_is_a_weak_update(self):
        taints = returns(
            """
            import time

            def f():
                d = {"k": 0}
                d["t"] = time.time()
                return d
            """
        )
        assert ENTROPY in kinds(taints)

    def test_comprehension_variable_does_not_leak(self):
        df = flow_of(
            """
            import time

            def f(items):
                ticks = [time.time() for item in items]
                item = 0
                return item
            """
        )
        assert df.summaries[("", "f")] == frozenset()


class TestCallBoundaries:
    def test_local_function_summary_propagates_returns(self):
        taints = returns(
            """
            import time

            def helper():
                return time.time()

            def f():
                return helper()
            """
        )
        assert sources(taints, ENTROPY) == {"time.time"}

    def test_method_summary_via_self(self):
        taints = flow_of(
            """
            import os

            class C:
                def helper(self):
                    return os.getpid()

                def f(self):
                    return self.helper()
            """
        ).summaries[("C", "f")]
        assert sources(taints, ENTROPY) == {"os.getpid"}

    def test_two_level_call_chain(self):
        taints = returns(
            """
            import time

            def leaf():
                return time.time()

            def mid():
                return leaf()

            def f():
                return mid()
            """
        )
        assert ENTROPY in kinds(taints)

    def test_alias_survives_direct_attribute_binding(self):
        taints = returns(
            """
            class C:
                def __init__(self):
                    self._table = {}

                def f(self):
                    t = self._table
                    return t
            """,
            owner="C",
        )
        assert "self._table" in sources(taints, ALIAS)
        assert "self._table" in sources(taints, ATTR)

    def test_alias_dies_at_a_call_boundary_but_data_survives(self):
        # dict(self._table) is a *copy*: mutating it is not mutating
        # engine state (no ALIAS), but its contents still derive from
        # the attribute (ATTR survives, which is what R003 needs).
        taints = returns(
            """
            class C:
                def __init__(self):
                    self._table = {}

                def f(self):
                    t = dict(self._table)
                    return t
            """,
            owner="C",
        )
        assert ALIAS not in kinds(taints)
        assert "self._table" in sources(taints, ATTR)

    def test_alias_dies_in_binop(self):
        taints = returns(
            """
            import os

            def f():
                seed = os.getpid() ^ 21485
                return seed
            """
        )
        assert ALIAS not in kinds(taints)
        assert ENTROPY in kinds(taints)


class TestQueries:
    def test_resolve_unfolds_aliases(self):
        df = flow_of("from os import urandom as rand\n")
        node = ast.parse("rand", mode="eval").body
        assert df.resolve(node) == "os.urandom"

    def test_dotted_parts(self):
        node = ast.parse("a.b.c", mode="eval").body
        assert dotted_parts(node) == ("a", "b", "c")
        call = ast.parse("a().b", mode="eval").body
        assert dotted_parts(call) is None

    def test_taints_of_unreached_node_is_empty(self):
        df = flow_of(
            """
            def f():
                return 1
                x = 2
            """
        )
        dead = ast.parse("x", mode="eval").body  # node never analyzed
        assert df.taints(dead) == frozenset()
