"""Tests for the assembled WBC server."""

from __future__ import annotations

import pytest

from repro.apf.families import TSharp, TStar
from repro.errors import AllocationError
from repro.webcompute.server import WBCServer
from repro.webcompute.task import correct_result
from repro.webcompute.volunteer import Behavior, VolunteerProfile


def honest(name: str, speed: float = 1.0) -> VolunteerProfile:
    return VolunteerProfile(name, speed=speed)


class TestRegistration:
    def test_register_returns_increasing_ids(self):
        server = WBCServer(TSharp())
        a = server.register(honest("a"))
        b = server.register(honest("b"))
        assert b == a + 1

    def test_round_seating_by_speed(self):
        server = WBCServer(TSharp())
        slow, fast = server.register_round([honest("slow", 0.5), honest("fast", 5.0)])
        assert server.frontend.row_of(fast) == 1
        assert server.frontend.row_of(slow) == 2

    def test_faster_volunteer_gets_denser_tasks(self):
        # Smaller row -> smaller stride for every compact APF.
        server = WBCServer(TStar())
        slow, fast = server.register_round([honest("s", 0.5), honest("f", 5.0)])
        fast_stride = server.allocator.contract(server.frontend.row_of(fast)).stride
        slow_stride = server.allocator.contract(server.frontend.row_of(slow)).stride
        assert fast_stride <= slow_stride


class TestTaskCycle:
    def test_request_submit_cycle(self):
        server = WBCServer(TSharp())
        vid = server.register(honest("a"))
        t1 = server.request_task(vid)
        t2_expected = server.allocator.peek_task(server.frontend.row_of(vid), 2)
        server.submit_result(vid, t1.index, t1.expected_result)
        t2 = server.request_task(vid)
        assert t2.index == t2_expected

    def test_task_indices_follow_apf(self):
        server = WBCServer(TSharp())
        vid = server.register(honest("a"))
        row = server.frontend.row_of(vid)
        sharp = TSharp()
        for t in range(1, 6):
            task = server.request_task(vid)
            assert task.index == sharp.pair(row, t)
            server.submit_result(vid, task.index, task.expected_result)

    def test_max_task_index_tracked(self):
        server = WBCServer(TSharp())
        vid = server.register(honest("a"))
        task = server.request_task(vid)
        assert server.max_task_index == task.index

    def test_unknown_volunteer_rejected(self):
        with pytest.raises(AllocationError):
            WBCServer(TSharp()).request_task(99)


class TestAccountability:
    def test_attribute_names_the_computer(self):
        server = WBCServer(TSharp())
        a = server.register(honest("a"))
        b = server.register(honest("b"))
        ta = server.request_task(a)
        tb = server.request_task(b)
        assert server.attribute(ta.index) == a
        assert server.attribute(tb.index) == b

    def test_forged_submission_rejected(self):
        server = WBCServer(TSharp())
        a = server.register(honest("a"))
        b = server.register(honest("b"))
        ta = server.request_task(a)
        with pytest.raises(AllocationError):
            server.submit_result(b, ta.index, 0)  # b claims a's task

    def test_banned_volunteer_refused_tasks(self):
        server = WBCServer(TSharp(), verification_rate=1.0, ban_after_strikes=1)
        vid = server.register(
            VolunteerProfile("evil", behavior=Behavior.MALICIOUS, error_rate=1.0)
        )
        task = server.request_task(vid)
        server.submit_result(vid, task.index, task.expected_result ^ 1)
        assert server.ledger.is_banned(vid)
        with pytest.raises(AllocationError):
            server.request_task(vid)

    def test_attribution_survives_departure_and_reseat(self):
        server = WBCServer(TSharp())
        first = server.register(honest("first"))
        t = server.request_task(first)
        server.submit_result(first, t.index, t.expected_result)
        server.depart(first)
        second = server.register(honest("second"))
        # Same row, new tenant; old task still attributes to `first`.
        assert server.frontend.row_of(second) == 1
        assert server.attribute(t.index) == first
        t2 = server.request_task(second)
        assert server.attribute(t2.index) == second
        assert t2.index != t.index  # serial resumed, no double issue


class TestDeparture:
    def test_departed_row_recycled(self):
        server = WBCServer(TSharp())
        a = server.register(honest("a"))
        server.depart(a)
        b = server.register(honest("b"))
        assert server.frontend.row_of(b) == 1

    def test_depart_releases_contract(self):
        server = WBCServer(TSharp())
        a = server.register(honest("a"))
        row = server.frontend.row_of(a)
        server.depart(a)
        assert not server.allocator.is_registered(row)

    def test_depart_unknown_volunteer_raises_allocation_error(self):
        # Never-registered id: a typed error, never an internal KeyError.
        server = WBCServer(TSharp())
        with pytest.raises(AllocationError, match="unknown volunteer 42"):
            server.depart(42)

    def test_depart_twice_raises_allocation_error(self):
        server = WBCServer(TSharp())
        a = server.register(honest("a"))
        server.depart(a)
        with pytest.raises(AllocationError, match="not seated"):
            server.depart(a)

    def test_successor_resumes_at_first_unissued_serial(self):
        server = WBCServer(TSharp())
        first = server.register(honest("first"))
        row = server.frontend.row_of(first)
        for _ in range(3):
            server.request_task(first)  # serials 1..3 issued
        server.depart(first)
        second = server.register(honest("second"))
        assert server.frontend.row_of(second) == row
        assert server.allocator.contract(row).next_serial == 4
        t = server.request_task(second)
        assert t.serial == 4

    def test_attribution_across_three_epochs(self):
        server = WBCServer(TSharp())
        tasks = {}
        for name in ("a", "b", "c"):
            vid = server.register(honest(name))
            assert server.frontend.row_of(vid) == 1  # same recycled row
            tasks[vid] = server.request_task(vid)
            server.depart(vid)
        # Each of the three tenures on row 1 attributes to its own tenant.
        for vid, task in tasks.items():
            assert server.attribute(task.index) == vid

    def test_recycled_row_never_double_issues(self):
        server = WBCServer(TSharp())
        issued = set()
        for name in ("a", "b", "c"):
            vid = server.register(honest(name))
            for _ in range(2):
                task = server.request_task(vid)
                assert task.index not in issued
                issued.add(task.index)
            server.depart(vid)


class TestClock:
    def test_tick_advances(self):
        server = WBCServer(TSharp())
        assert server.clock == 0
        server.tick()
        server.tick()
        assert server.clock == 2

    def test_issue_timestamps(self):
        server = WBCServer(TSharp())
        vid = server.register(honest("a"))
        server.tick()
        server.tick()
        task = server.request_task(vid)
        assert task.issued_at == 2
