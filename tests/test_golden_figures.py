"""Golden-master tests: the CLI's figure output is pinned byte-for-byte.

The numeric content of Figures 2-6 is asserted elsewhere; these tests
additionally pin the *rendering* (alignment, highlighting, captions), so
accidental presentation changes surface in review instead of silently
drifting under downstream tooling that parses the output.

Regenerate after an intentional change:
    for n in 2 3 4 5 6; do python -m repro figure $n > tests/golden/figure$n.txt; done
"""

from __future__ import annotations

import pathlib

import pytest

from repro.cli import main

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


@pytest.mark.parametrize("number", [2, 3, 4, 5, 6])
def test_figure_matches_golden(capsys, number):
    assert main(["figure", str(number)]) == 0
    out = capsys.readouterr().out
    golden = (GOLDEN_DIR / f"figure{number}.txt").read_text()
    assert out == golden


class TestGoldenFilesSane:
    def test_all_goldens_present_and_nonempty(self):
        for number in (2, 3, 4, 5, 6):
            path = GOLDEN_DIR / f"figure{number}.txt"
            assert path.exists()
            assert path.stat().st_size > 50

    def test_goldens_contain_captions(self):
        for number in (2, 3, 4, 5, 6):
            text = (GOLDEN_DIR / f"figure{number}.txt").read_text()
            assert f"Figure {number}" in text
