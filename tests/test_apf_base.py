"""Tests for the AdditivePairingFunction interface across all APFs."""

from __future__ import annotations

import pytest

from repro.errors import DomainError
from repro.numbertheory.progressions import ArithmeticProgression


class TestAdditiveStructure:
    def test_pair_is_base_plus_stride(self, any_apf):
        for x in range(1, 12):
            b, s = any_apf.base(x), any_apf.stride(x)
            for y in range(1, 6):
                assert any_apf.pair(x, y) == b + (y - 1) * s

    def test_successor_gap_is_stride(self, any_apf):
        # S(v, t) = T(v, t+1) - T(v, t): constant in t.
        for x in range(1, 10):
            gaps = {any_apf.successor_gap(x, y) for y in range(1, 6)}
            assert gaps == {any_apf.stride(x)}

    def test_base_is_first_task(self, any_apf):
        for x in range(1, 12):
            assert any_apf.base(x) == any_apf.pair(x, 1)

    def test_relation_4_2(self, any_apf):
        any_apf.check_base_below_stride(40)


class TestProgressionContract:
    def test_progression_matches_pair(self, any_apf):
        for x in range(1, 10):
            ap = any_apf.progression(x)
            assert isinstance(ap, ArithmeticProgression)
            for y in range(1, 6):
                assert ap.term(y) == any_apf.pair(x, y)

    def test_progressions_disjoint(self, any_apf):
        # Distinct rows' progressions never collide (bijectivity restated):
        # check the first 12 rows, 12 terms each.
        seen = set()
        for x in range(1, 13):
            for y in range(1, 13):
                v = any_apf.pair(x, y)
                assert v not in seen
                seen.add(v)

    def test_progression_rejects_bad_row(self, any_apf):
        with pytest.raises(DomainError):
            any_apf.progression(0)


class TestRowRecovery:
    def test_row_of_matches_unpair(self, any_apf):
        for z in range(1, 300):
            x, y = any_apf.unpair(z)
            assert any_apf.row_of(z) == x


class TestInfinitelyManyStrides:
    def test_distinct_strides_grow_with_window(self, any_apf):
        # Section 4.1: any APF must have infinitely many distinct strides.
        # (Windows must outgrow the group sizes: T^[3]'s third group alone
        # spans 256 rows.)
        small = any_apf.distinct_strides(8)
        large = any_apf.distinct_strides(2048)
        assert len(large) > len(small) >= 2

    def test_rejects_bad_limit(self, any_apf):
        with pytest.raises(DomainError):
            any_apf.distinct_strides(0)
