"""Tests for the super-quadratic exclusion arguments (Section 2, item 4)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, DomainError
from repro.polynomial.exclusions import (
    exclusion_certificate,
    gap_witness,
    range_count,
)
from repro.polynomial.poly2d import Polynomial2D

CUBE = Polynomial2D({(3, 0): 1, (0, 3): 1, (1, 1): 1})
QUARTIC = Polynomial2D({(4, 0): 1, (0, 4): 1, (2, 2): 1, (1, 0): 1, (0, 1): 1})
POSITIVE_QUADRATIC = Polynomial2D({(2, 0): 1, (1, 1): 1, (0, 2): 1})


class TestRangeCount:
    def test_brute_force_agreement(self):
        for n in (10, 50, 200):
            brute = sum(
                1
                for x in range(1, n + 1)
                for y in range(1, n + 1)
                if CUBE(x, y) <= n and CUBE(x, y).denominator == 1
            )
            assert range_count(CUBE, n) == brute

    def test_monotone_in_n(self):
        counts = [range_count(CUBE, n) for n in (10, 100, 1000)]
        assert counts == sorted(counts)

    def test_requires_positive_coefficients(self):
        with pytest.raises(ConfigurationError):
            range_count(Polynomial2D.cantor(), 10)

    def test_rejects_bad_n(self):
        with pytest.raises(DomainError):
            range_count(CUBE, 0)


class TestSuperQuadraticSparsity:
    @pytest.mark.parametrize("poly", [CUBE, QUARTIC], ids=["cubic", "quartic"])
    def test_range_is_sublinear(self, poly):
        # Degree d > 2: |range <= n| ~ n**(2/d) << n.  At n = 10**4 the
        # deficit is overwhelming.
        n = 10_000
        assert range_count(poly, n) < n // 10

    def test_positive_quadratic_also_sparse(self):
        # x^2+xy+y^2 misses integers too (it is not onto), though its
        # count is Theta(n) -- the exclusion for degree 2 with all-positive
        # coefficients still shows via gaps.
        assert gap_witness(POSITIVE_QUADRATIC, 50) is not None


class TestGapWitness:
    def test_cube_misses_one(self):
        assert gap_witness(CUBE, 50) == 1

    def test_witness_is_truly_missed(self):
        for poly in (CUBE, QUARTIC):
            w = gap_witness(poly, 100)
            assert w is not None
            # No lattice point up to a generous window attains w.
            for x in range(1, 30):
                for y in range(1, 30):
                    assert poly(x, y) != w


class TestExclusionCertificate:
    @pytest.mark.parametrize("poly", [CUBE, QUARTIC], ids=["cubic", "quartic"])
    def test_excludes_super_quadratics(self, poly):
        cert = exclusion_certificate(poly, horizon=500)
        assert cert.excludes
        assert cert.missing_count >= cert.horizon - cert.range_size
        assert cert.first_gap is not None

    def test_certificate_fields(self):
        cert = exclusion_certificate(CUBE, horizon=200)
        assert cert.degree == 3
        assert cert.horizon == 200
        assert cert.range_size == range_count(CUBE, 200)

    def test_paper_example_positive_superquadratic(self):
        # "a super-quadratic polynomial whose coefficients are all positive
        # cannot be a PF" -- certified for a batch of examples.
        examples = [
            Polynomial2D({(3, 0): 1, (0, 1): 1}),
            Polynomial2D({(2, 1): 2, (1, 2): 1, (0, 0): 1}),
            Polynomial2D({(5, 0): 1, (0, 5): 1, (1, 1): 3}),
        ]
        for poly in examples:
            assert poly.is_super_quadratic()
            assert exclusion_certificate(poly, horizon=300).excludes
