"""The analyzer framework around the checkers: suppression comments and
their anchors, the R000 stale-suppression meta-rule, config parsing and
pyproject discovery, module-name resolution, reporters, and CLI exit
codes."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.staticcheck import ReprolintConfig, analyze_paths, load_config, run_cli
from repro.staticcheck.config import ConfigError, find_pyproject
from repro.staticcheck.loader import module_name_for
from repro.staticcheck.model import parse_suppressions
from repro.staticcheck.reporters import JSON_SCHEMA, render_json, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "staticcheck_fixtures"
MINIPROJ = FIXTURES / "miniproj"

EXACT_EVERYTHING = ReprolintConfig(exact_modules=("*",))


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_all_three_placements_waive(self):
        # trailing comment, block comment above, and def-line block: every
        # division in the fixture is waived, nothing is stale.
        result = analyze_paths(
            [FIXTURES / "suppressed.py"], config=EXACT_EVERYTHING, rules=["R001"]
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert len(result.suppressed) == 4  # 1 trailing + 1 block + 2 in the def

    def test_stale_suppression_is_a_finding(self):
        result = analyze_paths(
            [FIXTURES / "stale.py"], config=EXACT_EVERYTHING, rules=["R001"]
        )
        assert [f.rule for f in result.findings] == ["R000"]
        assert result.findings[0].line == 6

    def test_stale_reporting_respects_narrowed_runs(self):
        # R001 did not run, so the analyzer cannot judge an allow[R001]:
        # no R000 on a rules=R003 pass.
        result = analyze_paths(
            [FIXTURES / "stale.py"], config=EXACT_EVERYTHING, rules=["R003"]
        )
        assert result.ok

    def test_docstring_allow_text_is_not_a_suppression(self):
        source = '"""Docs show `# reprolint: allow[R001]` as an example."""\nx = 1\n'
        assert parse_suppressions(source) == []

    def test_anchor_semantics(self):
        source = (
            "x = 1  # reprolint: allow[R001] trailing\n"
            "# reprolint: allow[R002] block\n"
            "# more prose\n"
            "y = 2\n"
        )
        trailing, block = parse_suppressions(source)
        assert (trailing.line, trailing.anchor) == (1, 1)
        assert (block.line, block.anchor) == (2, 4)


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------


class TestConfig:
    def test_package_glob_covers_the_package_itself(self):
        config = ReprolintConfig(exact_modules=("repro.core.*",))
        assert config.is_exact("repro.core")
        assert config.is_exact("repro.core.base")
        assert not config.is_exact("repro.perf.spread_cache")

    def test_longest_prefix_wins_for_import_allowance(self):
        config = ReprolintConfig(
            allowed_imports={
                "repro.core": ("repro.errors", "repro.core"),
                "repro.core.registry": ("repro.errors", "repro.core", "repro.apf"),
            }
        )
        assert "repro.apf" in config.import_allowance("repro.core.registry")
        assert "repro.apf" not in config.import_allowance("repro.core.base")
        assert config.import_allowance("repro.render") is None

    def test_per_module_disable(self):
        config = ReprolintConfig(per_module_disable={"pkg.waived": ("R001",)})
        assert "R001" not in config.rules_for("pkg.waived")
        assert "R001" in config.rules_for("pkg.exact_mod")

    def test_from_mapping_rejects_malformed_tables(self):
        with pytest.raises(ConfigError):
            ReprolintConfig.from_mapping({"r001": {"exact-modules": "not-a-list"}})
        with pytest.raises(ConfigError):
            ReprolintConfig.from_mapping({"r001": 5})
        with pytest.raises(ConfigError):
            ReprolintConfig.from_mapping(
                {"per-module": {"x": {"disable": ["R999"]}}}
            )

    def test_repo_pyproject_parses(self):
        config, path = load_config(REPO_ROOT / "src")
        assert path == REPO_ROOT / "pyproject.toml"
        assert config.is_exact("repro.core.base")
        assert config.is_deterministic("repro.webcompute.engine")
        assert "AllocationEngine" in config.event_classes

    def test_miniproj_discovery_and_override(self):
        # Analyzing the fixture project with no explicit config must find
        # miniproj/pyproject.toml, flag the exact module, and honor the
        # per-module waiver.
        result = analyze_paths([MINIPROJ / "pkg"])
        assert result.config_path == MINIPROJ / "pyproject.toml"
        flagged = {(f.module, f.rule) for f in result.findings}
        assert ("pkg.exact_mod", "R001") in flagged
        assert all(module != "pkg.waived" for module, _rule in flagged)

    def test_find_pyproject_stops_at_nearest(self):
        assert find_pyproject(MINIPROJ / "pkg") == MINIPROJ / "pyproject.toml"
        assert find_pyproject(REPO_ROOT / "src") == REPO_ROOT / "pyproject.toml"


# ---------------------------------------------------------------------------
# Module-name resolution
# ---------------------------------------------------------------------------


class TestModuleNames:
    def test_package_climb(self):
        path = REPO_ROOT / "src" / "repro" / "core" / "base.py"
        assert module_name_for(path) == "repro.core.base"

    def test_init_is_the_package(self):
        path = REPO_ROOT / "src" / "repro" / "core" / "__init__.py"
        assert module_name_for(path) == "repro.core"

    def test_climb_stops_outside_packages(self):
        assert module_name_for(MINIPROJ / "pkg" / "exact_mod.py") == "pkg.exact_mod"
        assert module_name_for(FIXTURES / "r001_bad.py") == "r001_bad"


# ---------------------------------------------------------------------------
# Reporters and CLI
# ---------------------------------------------------------------------------


class TestReportersAndCli:
    def test_text_report_summarizes(self):
        result = analyze_paths(
            [FIXTURES / "r001_bad.py"], config=EXACT_EVERYTHING, rules=["R001"]
        )
        text = render_text(result)
        assert "R001" in text and "finding(s)" in text

    def test_json_report_round_trips(self):
        result = analyze_paths(
            [FIXTURES / "r001_bad.py"], config=EXACT_EVERYTHING, rules=["R001"]
        )
        payload = json.loads(render_json(result))
        assert payload["schema"] == JSON_SCHEMA
        assert payload["ok"] is False
        assert payload["counts_by_rule"]["R001"] == len(result.findings)

    def test_exit_codes(self, capsys, tmp_path):
        assert run_cli([str(MINIPROJ / "pkg" / "exact_mod.py")]) == 1
        assert run_cli([str(MINIPROJ / "pkg" / "waived.py")]) == 0
        # Broken [tool.reprolint] is a usage error, not a crash.
        bad = tmp_path / "proj"
        bad.mkdir()
        (bad / "pyproject.toml").write_text("[tool.reprolint]\nr001 = 5\n")
        (bad / "mod.py").write_text("x = 1\n")
        assert run_cli([str(bad / "mod.py")]) == 2
        capsys.readouterr()

    def test_json_flag_emits_parseable_report(self, capsys):
        code = run_cli([str(MINIPROJ / "pkg" / "exact_mod.py"), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["counts_by_rule"] == {"R001": 1}

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.staticcheck", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        for rule in ("R001", "R002", "R003", "R004", "R005"):
            assert rule in result.stdout
