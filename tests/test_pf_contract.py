"""The shared bijection contract battery every registered mapping must pass.

This is the registry-driven counterpart of the hand-listed pools in
``test_properties.py``: every name in
:func:`repro.core.registry.available_names` must be classified into the
battery's domain tables, and :func:`test_registry_is_fully_classified`
fails the suite when a newly registered mapping is missing -- adding a PF
without deciding its contract coverage is itself a bug.

Five invariant layers:

1. **Bijection laws** (Hypothesis) -- round-trip both ways, totality and
   positivity of ``unpair`` on N, plus the deterministic two-sided finite
   certificate (``check_roundtrip_window`` + ``check_bijective_prefix``).
2. **Shell structure** -- the shell-walking families fill monotone
   nondecreasing shells in address order, with the per-family shell key
   pinned explicitly (diagonals sweep antidiagonals ``x + y``, the square
   families sweep ``max(x, y)``, binprop-B sweeps the ratio-B rectangle
   hull, hyperbolic sweeps the product ``x * y``).
3. **Exact-window boundaries** -- every vectorized kernel agrees with the
   scalar bignum path at the window edges (coordinate cap +-1, address
   cap +-1, 2**53 +-1, 2**64 +-1) and under the int64/uint64 promotion
   trap (mixed Python lists, uint64 arrays).
4. **Closed-form differentials** -- closed-form ``spread`` /
   ``spread_for_shape`` match brute-force enumeration, and
   Rosenberg-Strong is pinned pointwise equal to the paper's
   square-shell twin (same walk discovered twice; if they ever diverge
   one of the inverses is wrong).
5. **Codec-swap differentials** -- a 16-shard simulation completes the
   *identical* ``SimulationOutcome`` under every registered index codec
   (only the minted ``max_task_index`` may move), and direct server
   attribution never misnames a volunteer under any codec.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.apf.families import TSharp
from repro.core.base import (
    EXACT_SAFE_ADDRESS_LIMIT,
    PairingFunction,
    StorageMapping,
)
from repro.core.registry import available_names, get_pairing
from repro.core.rosenbergstrong import RosenbergStrongPairing
from repro.core.squareshell import SquareShellPairingTwin
from repro.webcompute.codecs import available_codecs
from repro.webcompute.sharding import ShardedWBCServer
from repro.webcompute.simulation import SimulationConfig, WBCSimulation
from repro.webcompute.volunteer import VolunteerProfile

# ----------------------------------------------------------------------
# Classification tables: every registered name appears exactly once.
# ----------------------------------------------------------------------

#: name -> (coordinate cap, address cap) for the Hypothesis draws.  The
#: caps bound *time*, not exactness (bignums stay exact regardless):
#: hyperbolic's pair enumerates O(sqrt(xy)) divisors per call, and the
#: APFs' addresses grow exponentially in ``x``, so both get smaller
#: domains than the polynomial shell-walkers.
DOMAIN_CAPS: dict[str, tuple[int, int]] = {
    "diagonal": (10**6, 10**9),
    "diagonal-twin": (10**6, 10**9),
    "square-shell": (10**6, 10**9),
    "square-shell-twin": (10**6, 10**9),
    "szudzik": (10**6, 10**9),
    "rosenberg-strong": (10**6, 10**9),
    "binprop-2": (10**6, 10**9),
    "binprop-4": (10**6, 10**9),
    "binprop-16": (10**6, 10**9),
    "hyperbolic": (3000, 200_000),
    "apf-sharp": (2000, 10**9),
    "apf-star": (2000, 10**9),
    "apf-exponential": (2000, 10**9),
    "apf-bracket-1": (2000, 10**9),
    "apf-bracket-2": (2000, 10**9),
    "apf-bracket-3": (2000, 10**9),
    "apf-bracket-4": (2000, 10**9),
}

#: The shell key each shell-walking family fills monotonically in address
#: order.  APFs are deliberately absent: their whole design *interleaves*
#: rows by 2-adic signature instead of walking shells.
SHELL_KEYS = {
    "diagonal": lambda x, y: x + y,
    "diagonal-twin": lambda x, y: x + y,
    "square-shell": lambda x, y: max(x, y),
    "square-shell-twin": lambda x, y: max(x, y),
    "szudzik": lambda x, y: max(x, y),
    "rosenberg-strong": lambda x, y: max(x, y),
    "binprop-2": lambda x, y: max(x - 1, (y - 1) // 2),
    "binprop-4": lambda x, y: max(x - 1, (y - 1) // 4),
    "binprop-16": lambda x, y: max(x - 1, (y - 1) // 16),
    "hyperbolic": lambda x, y: x * y,
}

NAMES = sorted(DOMAIN_CAPS)
#: The names whose subclasses ship vectorized int64 kernels (the PR 1
#: exact-window pattern); boundary and promotion-trap differentials run
#: on exactly these.
KERNEL_NAMES = [
    n for n in NAMES if get_pairing(n).vector_safe_max_address is not None
]
CLOSED_SPREAD_NAMES = [n for n in NAMES if get_pairing(n).closed_form_spread]


def test_registry_is_fully_classified():
    """Adding a registry entry without classifying it here is a failure:
    the battery must cover every registered mapping."""
    registered = set(available_names())
    classified = set(DOMAIN_CAPS)
    assert registered == classified, (
        f"unclassified registry entries: {sorted(registered - classified)}; "
        f"stale battery entries: {sorted(classified - registered)}"
    )


def test_new_pf_families_ship_vectorized_kernels():
    """The ISSUE 8 entrants are not allowed to regress to the object-dtype
    fallback: each must publish an exact-safe window."""
    for name in ("szudzik", "rosenberg-strong", "binprop-2", "binprop-16"):
        assert name in KERNEL_NAMES, f"{name} has no vectorized window"


# ----------------------------------------------------------------------
# 1. Bijection laws
# ----------------------------------------------------------------------


@st.composite
def name_and_coords(draw):
    name = draw(st.sampled_from(NAMES))
    cap = DOMAIN_CAPS[name][0]
    return name, draw(st.integers(1, cap)), draw(st.integers(1, cap))


@st.composite
def name_and_address(draw):
    name = draw(st.sampled_from(NAMES))
    cap = DOMAIN_CAPS[name][1]
    return name, draw(st.integers(1, cap))


@given(case=name_and_coords())
def test_roundtrip_forward(case):
    name, x, y = case
    pf = get_pairing(name)
    z = pf.pair(x, y)
    assert z >= 1
    assert pf.unpair(z) == (x, y)


@given(case=name_and_address())
def test_unpair_is_total_and_roundtrips(case):
    """Every registered mapping is surjective: ``unpair`` accepts *any*
    positive address and the result re-encodes exactly."""
    name, z = case
    pf = get_pairing(name)
    assert pf.surjective
    x, y = pf.unpair(z)
    assert x >= 1 and y >= 1
    assert pf.pair(x, y) == z


@pytest.mark.parametrize("name", NAMES)
def test_two_sided_finite_certificate(name):
    """The deterministic certificate: the whole 24 x 24 window round-trips
    injectively (domain side) and addresses 1..576 decode to distinct
    re-encoding positions (range side)."""
    pf = get_pairing(name)
    pf.check_roundtrip_window(24, 24)
    if isinstance(pf, PairingFunction):
        pf.check_bijective_prefix(576)


# ----------------------------------------------------------------------
# 2. Shell structure
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SHELL_KEYS))
def test_shells_fill_monotonically(name):
    """Walking addresses 1, 2, 3, ... never revisits a completed shell:
    the family's shell key is nondecreasing in address order."""
    pf = get_pairing(name)
    key = SHELL_KEYS[name]
    prev = 0
    for z in range(1, 2500):
        k = key(*pf.unpair(z))
        assert k >= prev, f"{name}: shell key dropped {prev} -> {k} at z={z}"
        prev = k


@given(case=name_and_address(), delta=st.integers(1, 10**6))
def test_shell_key_monotone_at_random_offsets(case, delta):
    name, z = case
    if name not in SHELL_KEYS:
        return
    pf = get_pairing(name)
    key = SHELL_KEYS[name]
    assert key(*pf.unpair(z)) <= key(*pf.unpair(z + delta))


# ----------------------------------------------------------------------
# 3. Exact-window boundaries and the promotion trap
# ----------------------------------------------------------------------


def _boundary_addresses(pf: StorageMapping) -> list[int]:
    limit = pf.vector_safe_max_address
    raw = [
        1,
        2,
        limit - 1,
        limit,
        limit + 1,
        2**53 - 1,
        2**53,
        2**53 + 1,
        2**64 - 1,
        2**64,
        2**64 + 1,
        2**80 + 17,
    ]
    return sorted(set(raw))


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_unpair_array_exact_across_window_edge(name):
    """One batch straddling the exact-safe address window: the kernel
    half and the bignum half must both match the scalar path exactly."""
    pf = get_pairing(name)
    zs = _boundary_addresses(pf)
    xs, ys = pf.unpair_array(zs)
    for z, x, y in zip(zs, np.asarray(xs).reshape(-1), np.asarray(ys).reshape(-1)):
        assert (int(x), int(y)) == pf.unpair(z), f"{name} at z={z}"
        assert pf.pair(int(x), int(y)) == z


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_pair_array_exact_across_coord_edge(name):
    """Coordinates at the kernel's own cap +-1 (in-window stays on int64,
    cap + 1 must fall back to exact bignums, never overflow)."""
    pf = get_pairing(name)
    cap = pf.vector_safe_max_coord
    coords = [1, 2, cap - 1, cap, cap + 1, 2**40]
    for xs, ys in [(coords, coords[::-1]), (coords, [1] * len(coords))]:
        got = pf.pair_array(xs, ys)
        for x, y, z in zip(xs, ys, np.asarray(got).reshape(-1)):
            assert int(z) == pf.pair(x, y), f"{name} at ({x}, {y})"


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_mixed_list_promotion_trap(name):
    """A plain Python list mixing int64-range and uint64-range values must
    not round through float64 (the PR 1 trap): every element decodes
    exactly despite 2**64 + 5 being unrepresentable in both int64 and
    float64."""
    pf = get_pairing(name)
    zs = [3, 2**53 + 1, 2**63 + 11, 2**64 + 5]
    xs, ys = pf.unpair_array(zs)
    for z, x, y in zip(zs, np.asarray(xs).reshape(-1), np.asarray(ys).reshape(-1)):
        assert pf.pair(int(x), int(y)) == z, f"{name} lost exactness at z={z}"


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_uint64_array_input_is_exact(name):
    """uint64 arrays sit entirely above int64's comfort zone near the
    top; in-window values must still take the kernel and out-of-window
    uint64 values (> 2**63) must route to the scalar bignum path."""
    pf = get_pairing(name)
    zs = np.array([1, 1000, 2**53 - 1, 2**63 + 9, 2**64 - 1], dtype=np.uint64)
    xs, ys = pf.unpair_array(zs)
    for z, x, y in zip(zs, np.asarray(xs).reshape(-1), np.asarray(ys).reshape(-1)):
        assert pf.pair(int(x), int(y)) == int(z), f"{name} at z={z}"


@given(case=name_and_coords(), size=st.integers(1, 40))
@settings(max_examples=60)
def test_vectorized_pair_agrees_with_scalar(case, size):
    name, x, y = case
    if name not in KERNEL_NAMES:
        return
    pf = get_pairing(name)
    xs = np.arange(x, x + size, dtype=np.int64)
    ys = np.arange(y, y + size, dtype=np.int64)[::-1].copy()
    got = pf.pair_array(xs, ys)
    for xi, yi, zi in zip(xs, ys, np.asarray(got).reshape(-1)):
        assert int(zi) == pf.pair(int(xi), int(yi))


@given(case=name_and_address(), size=st.integers(1, 40))
@settings(max_examples=60)
def test_vectorized_unpair_agrees_with_scalar(case, size):
    name, z = case
    if name not in KERNEL_NAMES:
        return
    pf = get_pairing(name)
    zs = np.arange(z, z + size, dtype=np.int64)
    xs, ys = pf.unpair_array(zs)
    for zi, xi, yi in zip(zs, np.asarray(xs).reshape(-1), np.asarray(ys).reshape(-1)):
        assert (int(xi), int(yi)) == pf.unpair(int(zi))


# ----------------------------------------------------------------------
# 4. Closed-form differentials
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", CLOSED_SPREAD_NAMES)
def test_closed_form_spread_matches_enumeration(name):
    pf = get_pairing(name)
    for n in list(range(1, 25)) + [40, 64]:
        assert pf.spread(n) == StorageMapping.spread(pf, n), f"{name} at n={n}"


@pytest.mark.parametrize("name", NAMES)
def test_spread_for_shape_matches_window_max(name):
    pf = get_pairing(name)
    size = 4 if name.startswith("apf") else 9
    for rows in range(1, size):
        for cols in range(1, size):
            brute = max(
                pf.pair(x, y)
                for x in range(1, rows + 1)
                for y in range(1, cols + 1)
            )
            assert pf.spread_for_shape(rows, cols) == brute, (
                f"{name} at {rows}x{cols}"
            )


def test_rosenberg_strong_is_square_shell_twin():
    """Two independent derivations of the same walk (the classic
    ``max``-form vs the paper's shell composition) must agree pointwise --
    a disagreement means one of the two inverses is wrong."""
    rs = RosenbergStrongPairing()
    twin = SquareShellPairingTwin()
    for x in range(1, 65):
        for y in range(1, 65):
            assert rs.pair(x, y) == twin.pair(x, y)
    for z in [1, 7, 1000, 2**53 - 1, 2**53 + 1, 2**64 + 5]:
        assert rs.unpair(z) == twin.unpair(z)


@given(x=st.integers(1, 10**8), y=st.integers(1, 10**8))
@settings(max_examples=80)
def test_rosenberg_strong_twin_differential_random(x, y):
    assert RosenbergStrongPairing().pair(x, y) == SquareShellPairingTwin().pair(x, y)


# ----------------------------------------------------------------------
# 5. Codec-swap differentials
# ----------------------------------------------------------------------


def _masked(outcome):
    """Everything a codec is *not* allowed to change: volunteer behaviour
    never reads the index value, so only the minted footprint may move."""
    return dataclasses.replace(outcome, max_task_index=0)


class TestCodecSwapDifferential:
    SEEDS = (11, 2002)

    def _run(self, codec: str, seed: int):
        config = SimulationConfig(
            ticks=25,
            initial_volunteers=10,
            seed=seed,
            shards=16,
            codec=codec,
        )
        sim = WBCSimulation(TSharp(), config)
        try:
            return sim.run()
        finally:
            sim.close()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_outcomes_identical_under_every_codec(self, seed):
        baseline = self._run("square-shell", seed)
        assert baseline.attribution_failures == 0
        assert baseline.tasks_completed > 0
        for codec in available_codecs():
            outcome = self._run(codec, seed)
            assert outcome.attribution_failures == 0, codec
            assert _masked(outcome) == _masked(baseline), (
                f"codec {codec} changed simulation behaviour at seed {seed}"
            )

    @pytest.mark.parametrize("codec", available_codecs())
    def test_attribution_never_misnames_a_volunteer(self, codec):
        """The direct inverse-chain check: every issued global index
        attributes back to exactly the volunteer it was issued to."""
        server = ShardedWBCServer(
            TSharp(), shards=16, verification_rate=1.0, seed=5, codec=codec
        )
        assert server.codec_name == codec
        vids = server.register_round(
            [VolunteerProfile(f"v{i}", speed=1.0 + (i % 3)) for i in range(12)]
        )
        issued: dict[int, int] = {}
        for _round in range(6):
            server.tick()
            for vid in vids:
                task = server.request_task(vid)
                assert task.index not in issued, "duplicate global index"
                issued[task.index] = vid
                server.submit_result(vid, task.index, task.expected_result)
        for index, vid in issued.items():
            assert server.attribute(index) == vid, (
                f"codec {codec}: index {index} misattributed"
            )
