"""Tests for repro.numbertheory.divisor_sums."""

from __future__ import annotations

import math

import pytest

from repro.errors import DomainError
from repro.numbertheory.divisor_sums import (
    divisor_summatory,
    divisor_summatory_naive,
    smallest_n_with_summatory_at_least,
)


class TestDivisorSummatory:
    def test_base_cases(self):
        assert divisor_summatory(0) == 0
        assert divisor_summatory(1) == 1

    @pytest.mark.parametrize("n", range(0, 400))
    def test_hyperbola_matches_naive(self, n):
        assert divisor_summatory(n) == divisor_summatory_naive(n)

    def test_strictly_increasing(self):
        values = [divisor_summatory(n) for n in range(1, 200)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_figure5_count(self):
        # Figure 5: 16-or-fewer-cell arrays cover the staircase under
        # xy = 16; its lattice-point count is D(16).
        assert divisor_summatory(16) == 50

    def test_asymptotic_shape(self):
        # D(n) = n ln n + (2 gamma - 1) n + O(sqrt n); check the main term
        # within 5% at n = 10**5.
        n = 100_000
        gamma = 0.5772156649015329
        estimate = n * math.log(n) + (2 * gamma - 1) * n
        assert abs(divisor_summatory(n) - estimate) / estimate < 0.05

    def test_rejects_negative(self):
        with pytest.raises(DomainError):
            divisor_summatory(-1)


class TestSmallestNWithSummatoryAtLeast:
    @pytest.mark.parametrize("target", range(1, 300))
    def test_defining_property(self, target):
        n = smallest_n_with_summatory_at_least(target)
        assert divisor_summatory(n) >= target
        assert n == 1 or divisor_summatory(n - 1) < target

    def test_shell_boundaries(self):
        # Addresses 1..D(1) on shell 1, D(1)+1..D(2) on shell 2, etc.
        for shell in range(1, 50):
            low = divisor_summatory(shell - 1) + 1
            high = divisor_summatory(shell)
            assert smallest_n_with_summatory_at_least(low) == shell
            assert smallest_n_with_summatory_at_least(high) == shell

    def test_large_target(self):
        target = 10**6
        n = smallest_n_with_summatory_at_least(target)
        assert divisor_summatory(n) >= target > divisor_summatory(n - 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(DomainError):
            smallest_n_with_summatory_at_least(0)
