"""Tests for the hyperbolic PF H (Section 3.2.3, Figure 4)."""

from __future__ import annotations

import pytest

from repro.apf.closed_forms import hyperbolic_formula
from repro.core.hyperbolic import HyperbolicPairing
from repro.numbertheory.divisor_sums import divisor_summatory
from repro.numbertheory.divisors import divisor_count, divisor_pairs

FIGURE_4 = [
    [1, 3, 5, 8, 10, 14, 16],
    [2, 7, 13, 19, 26, 34, 40],
    [4, 12, 22, 33, 44, 56, 69],
    [6, 18, 32, 48, 64, 81, 99],
    [9, 25, 43, 63, 86, 108, 130],
    [11, 31, 55, 80, 107, 136, 165],
    [15, 39, 68, 98, 129, 164, 200],
    [17, 47, 79, 116, 154, 193, 235],
]


class TestFigure4:
    def test_exact_table(self):
        assert HyperbolicPairing().table(8, 7) == FIGURE_4

    def test_highlighted_shell(self):
        # Shell xy = 6: (6,1)=11, (3,2)=12, (2,3)=13, (1,6)=14.
        h = HyperbolicPairing()
        assert [h.pair(*p) for p in [(6, 1), (3, 2), (2, 3), (1, 6)]] == [11, 12, 13, 14]


class TestFormula:
    def test_matches_naive_transcription(self):
        h = HyperbolicPairing()
        for x in range(1, 9):
            for y in range(1, 9):
                assert h.pair(x, y) == hyperbolic_formula(x, y)

    def test_shell_occupies_contiguous_range(self):
        h = HyperbolicPairing()
        for c in range(1, 40):
            addresses = sorted(h.pair(x, y) for x, y in divisor_pairs(c))
            low = divisor_summatory(c - 1) + 1
            assert addresses == list(range(low, low + divisor_count(c)))

    def test_reverse_lex_within_shell(self):
        # Descending x receives ascending addresses.
        h = HyperbolicPairing()
        for c in (6, 12, 24, 36):
            pairs = list(divisor_pairs(c))
            addresses = [h.pair(x, y) for x, y in pairs]
            assert addresses == sorted(addresses)


class TestInverse:
    @pytest.mark.parametrize("z", range(1, 1200))
    def test_roundtrip_dense(self, z):
        h = HyperbolicPairing()
        x, y = h.unpair(z)
        assert h.pair(x, y) == z

    def test_large_roundtrip(self):
        h = HyperbolicPairing()
        for pos in [(99991, 3), (1234, 4321), (1, 10**6)]:
            assert h.unpair(h.pair(*pos)) == pos

    def test_shell_of(self):
        h = HyperbolicPairing()
        assert h.shell_of(11) == 6
        assert h.shell_of(14) == 6
        assert h.shell_of(15) == 7
        for z in range(1, 300):
            x, y = h.unpair(z)
            assert h.shell_of(z) == x * y


class TestOptimalCompactness:
    def test_spread_is_divisor_summatory(self):
        h = HyperbolicPairing()
        for n in (1, 6, 16, 100, 777):
            assert h.spread(n) == divisor_summatory(n)

    def test_spread_matches_brute_force(self):
        h = HyperbolicPairing()
        for n in (1, 5, 12, 30):
            brute = max(
                h.pair(x, y) for x in range(1, n + 1) for y in range(1, n // x + 1)
            )
            assert h.spread(n) == brute

    def test_n_log_n_shape(self):
        # S_H(n)/n grows ~ ln n: ratio at 4096 vs 64 should be roughly
        # ln(4096)/ln(64) = 2, certainly below a quadratic-like 8.
        h = HyperbolicPairing()
        r1 = h.spread(64) / 64
        r2 = h.spread(4096) / 4096
        assert 1.5 < r2 / r1 < 3.0

    def test_beats_diagonal_and_square_for_large_n(self):
        from repro.core.diagonal import DiagonalPairing
        from repro.core.squareshell import SquareShellPairing

        h = HyperbolicPairing()
        n = 4096
        assert h.spread(n) < SquareShellPairing().spread(n)
        assert h.spread(n) < DiagonalPairing().spread(n)

    def test_spread_for_shape_is_corner(self):
        h = HyperbolicPairing()
        for rows, cols in ((1, 8), (8, 1), (3, 5), (6, 6)):
            brute = max(
                h.pair(x, y)
                for x in range(1, rows + 1)
                for y in range(1, cols + 1)
            )
            assert h.spread_for_shape(rows, cols) == brute == h.pair(rows, cols)


class TestCache:
    def test_cache_disabled_still_correct(self):
        h = HyperbolicPairing(cache_size=0)
        for z in range(1, 200):
            assert h.pair(*h.unpair(z)) == z

    def test_cache_eviction_still_correct(self):
        h = HyperbolicPairing(cache_size=4)
        values = [h.pair(x, y) for x in range(1, 15) for y in range(1, 15)]
        h2 = HyperbolicPairing()
        values2 = [h2.pair(x, y) for x in range(1, 15) for y in range(1, 15)]
        assert values == values2

    def test_shell_size(self):
        h = HyperbolicPairing()
        for c in range(1, 50):
            assert h.shell_size(c) == divisor_count(c)


class TestSieveTableFastPath:
    def test_matches_scalar_path(self):
        from repro.core.base import StorageMapping

        h = HyperbolicPairing()
        assert h.table(25, 18) == StorageMapping.table(h, 25, 18)

    def test_figure4_through_fast_path(self):
        assert HyperbolicPairing().table(8, 7) == FIGURE_4

    def test_rejects_bad_shape(self):
        from repro.errors import DomainError

        with pytest.raises(DomainError):
            HyperbolicPairing().table(0, 5)

    def test_divisor_list_sieve_oracle(self):
        from repro.numbertheory.divisors import divisor_list_sieve, divisors

        lists = divisor_list_sieve(300)
        for n in range(1, 301):
            assert lists[n] == divisors(n)
