"""Smoke gate for benchmarks/bench_runner.py (marked ``bench_smoke``).

Runs the runner in-process with tiny sizes against a temp output file and
checks the trajectory-file contract: schema id, run records appended (not
overwritten), and the always-on kernel-consistency scenario passing.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench_smoke

_RUNNER = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_runner.py"


@pytest.fixture(scope="module")
def bench_runner():
    spec = importlib.util.spec_from_file_location("bench_runner", _RUNNER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_smoke_run_writes_schema_and_record(bench_runner, tmp_path):
    out = tmp_path / "BENCH_eval.json"
    assert bench_runner.main(["--smoke", "--repeats", "1", "--output", str(out)]) == 0
    data = json.loads(out.read_text())
    assert data["schema"] == bench_runner.SCHEMA
    assert len(data["runs"]) == 1
    run = data["runs"][0]
    assert run["mode"] == "smoke"
    scenarios = run["scenarios"]
    assert scenarios["consistency"]["pass"] is True
    assert scenarios["consistency"]["checked"] > 0
    assert set(scenarios["eval_speed"]) == set(bench_runner.EVAL_MAPPINGS)
    for row in scenarios["batch_speed"].values():
        assert row["pair_speedup"] > 0
    for row in scenarios["spread_compactness"].values():
        assert row["speedup"] > 0
    scaling = scenarios["shard_scaling"]
    assert scaling["cpus"] >= 1
    shard_rows = scaling["rows"]
    assert set(shard_rows) == {
        f"{mode}_{s}"
        for mode in ("serial", "parallel")
        for s in bench_runner.SHARD_COUNTS
    }
    for name, row in shard_rows.items():
        assert row["attribution_failures"] == 0
        assert row["tasks_completed"] > 0
        assert row["max_task_index"] > 0
        if name.startswith("serial"):
            assert row["workers"] is None
        else:
            assert 1 <= row["workers"] <= row["shards"]
    for s in bench_runner.SHARD_COUNTS:
        # The execution-mode differential the runner itself enforces.
        assert (
            shard_rows[f"parallel_{s}"]["tasks_completed"]
            == shard_rows[f"serial_{s}"]["tasks_completed"]
        )
    shootout = scenarios["codec_shootout"]
    assert shootout["shards"] == bench_runner.CODEC_SHOOTOUT_SHARDS
    assert set(shootout["rows"]) == set(bench_runner.CODEC_SHOOTOUT)
    baseline_tasks = shootout["rows"]["square-shell"]["tasks_completed"]
    for name, row in shootout["rows"].items():
        assert row["attribution_failures"] == 0, name
        assert row["tasks_completed"] == baseline_tasks, name
        assert row["max_task_index"].bit_length() == row["max_task_index_bits"]
        assert row["encode_ns_per_op"] > 0
        assert row["decode_ns_per_op"] > 0
        assert row["spread_shape_bits"] > 0
    recovery_rows = scenarios["fault_recovery"]
    assert set(recovery_rows) == {
        f"shards_{s}" for s in bench_runner.FAULT_SHARD_COUNTS
    } | {
        f"volunteers_{v}" for v in bench_runner.FAULT_VOLUNTEER_COUNTS_SMOKE
    }
    for row in recovery_rows.values():
        assert row["unique_after_restore"] is True
        assert row["checkpoint_all_s"] > 0
        assert row["bounce_s"] > 0
        assert row["replayed_ops"] > 0
        assert row["state_bytes_per_shard"] > 0
        # One epoch of delta is persisted and strictly smaller than the
        # full blob (the <= 10% gate runs on the committed full run,
        # where real state dwarfs the fixed serialization floor).
        assert 0 < row["incremental_bytes_per_shard"]
        assert 0 < row["incremental_fraction"] < 1
    for v in bench_runner.FAULT_VOLUNTEER_COUNTS_SMOKE:
        assert recovery_rows[f"volunteers_{v}"]["volunteers"] == v
        assert recovery_rows[f"volunteers_{v}"]["shards"] == 4
    # No monotonicity assertion on max_task_index: sharding *lowers*
    # per-engine row numbers (cheaper strides) while the square-shell
    # composition inflates the composed index -- which effect wins is
    # workload-dependent, and measuring that honestly is the point.
    lint = scenarios["staticcheck"]
    assert lint["pass"] is True
    assert lint["unsuppressed_findings"] == 0
    waivers = lint["waivers"]
    assert waivers["total"] == sum(waivers["by_rule"].values())
    assert waivers["total"] == sum(waivers["by_module"].values())
    assert all(rule.startswith("R") for rule in waivers["by_rule"])
    assert lint["warm_hit_rate"] == 1.0
    # Loose bound for a single smoke-timed measurement; the committed
    # full run is gated at >= 5x below.
    assert lint["warm_speedup"] > 2
    assert 0 < lint["incremental_reanalyzed"] < lint["files"]


def test_trajectory_appends_across_runs(bench_runner, tmp_path):
    out = tmp_path / "BENCH_eval.json"
    for expected in (1, 2):
        assert bench_runner.main(["--smoke", "--repeats", "1", "--output", str(out)]) == 0
        assert len(json.loads(out.read_text())["runs"]) == expected


def test_corrupt_trajectory_is_replaced_not_crashed(bench_runner, tmp_path):
    out = tmp_path / "BENCH_eval.json"
    out.write_text("{not json")
    assert bench_runner.main(["--smoke", "--repeats", "1", "--output", str(out)]) == 0
    data = json.loads(out.read_text())
    assert data["schema"] == bench_runner.SCHEMA
    assert len(data["runs"]) == 1


def test_committed_trajectory_file_is_valid(bench_runner):
    committed = _RUNNER.parent / "BENCH_eval.json"
    data = json.loads(committed.read_text())
    assert data["schema"] == bench_runner.SCHEMA
    assert data["runs"], "committed BENCH_eval.json must hold at least one run"
    assert all(r["scenarios"]["consistency"]["pass"] for r in data["runs"])


def test_committed_shard_scaling_gate(bench_runner):
    """The parallel-execution acceptance numbers, from the newest
    committed run.  Unconditional: zero attribution failures everywhere,
    and the parallel rows complete exactly as many tasks as their serial
    twins (the pool is an execution mode, not an approximation).
    Conditional on the recording machine actually having cores
    (``cpus >= 4``): parallel throughput at 4 shards is >= 2x the
    1-shard parallel row, and 16 shards does not fall below 4.  On a
    single-CPU recorder the ratio gate is vacuous -- worker processes
    time-slice one core and IPC overhead dominates -- so it stays
    disarmed rather than gating on noise."""
    committed = _RUNNER.parent / "BENCH_eval.json"
    latest = json.loads(committed.read_text())["runs"][-1]
    scaling = latest["scenarios"]["shard_scaling"]
    rows = scaling["rows"]
    for name, row in rows.items():
        assert row["attribution_failures"] == 0, name
    for s in bench_runner.SHARD_COUNTS:
        assert (
            rows[f"parallel_{s}"]["tasks_completed"]
            == rows[f"serial_{s}"]["tasks_completed"]
        ), f"execution modes diverged at {s} shards"
    if scaling["cpus"] >= 4:
        tps = {s: rows[f"parallel_{s}"]["tasks_per_second"] for s in (1, 4, 16)}
        assert tps[4] >= 2 * tps[1], f"4-shard pool not scaling: {tps}"
        assert tps[16] >= tps[4], f"16-shard pool regressed: {tps}"


def test_committed_incremental_checkpoint_gate(bench_runner):
    """The log-structured checkpoint acceptance numbers, from the newest
    committed run (which must be a full run): at the 32-volunteer
    scenario, one epoch of incremental delta persists <= 10% of the full
    snapshot bytes.  The original gate was 25%, set when every delta
    carried the ledger's ~8 KB Mersenne rng state; the counter-based
    verification RNG (three scalars) dropped the committed fractions to
    1.5-2.6%, so the gate tightened to keep real headroom.  Only the
    32-volunteer rows are gated -- smaller rows measure fixed overhead,
    not the protocol."""
    committed = _RUNNER.parent / "BENCH_eval.json"
    latest = json.loads(committed.read_text())["runs"][-1]
    assert latest["mode"] == "full", "committed trajectory must end on a full run"
    recovery = latest["scenarios"]["fault_recovery"]
    gated = [row for row in recovery.values() if row["volunteers"] == 32]
    assert gated, "full runs must measure the 32-volunteer scenario"
    for row in gated:
        assert row["incremental_bytes_per_shard"] > 0
        assert row["incremental_fraction"] <= 0.10, (
            f"shards={row['shards']}: one epoch of delta is "
            f"{row['incremental_fraction']:.0%} of the full snapshot "
            f"({row['incremental_bytes_per_shard']} of "
            f"{row['state_bytes_per_shard']} bytes)"
        )


def test_committed_codec_shootout_gate(bench_runner):
    """The pluggable-codec acceptance numbers, from the newest committed
    run: every raced codec attributes perfectly and completes the exact
    same task trace as the square-shell baseline (behaviour is
    codec-independent by construction), and the binprop-16 composer's
    minted index bit-width does not exceed square-shell's at 16 shards --
    shrinking the global-index footprint is the reason the codec seam
    exists, so widening it is a regression."""
    committed = _RUNNER.parent / "BENCH_eval.json"
    latest = json.loads(committed.read_text())["runs"][-1]
    rows = latest["scenarios"]["codec_shootout"]["rows"]
    assert set(rows) == set(bench_runner.CODEC_SHOOTOUT)
    baseline = rows["square-shell"]
    for name, row in rows.items():
        assert row["attribution_failures"] == 0, name
        assert row["tasks_completed"] == baseline["tasks_completed"], name
    assert (
        rows["binprop-16"]["max_task_index_bits"]
        <= baseline["max_task_index_bits"]
    ), "binprop-16 must not mint wider indices than the square-shell baseline"


def test_committed_waiver_census(bench_runner):
    """The newest committed run carries the reprolint waiver census, and
    its internal sums agree -- the escape-hatch count is reviewed
    trajectory history, not invisible drift."""
    committed = _RUNNER.parent / "BENCH_eval.json"
    latest = json.loads(committed.read_text())["runs"][-1]
    waivers = latest["scenarios"]["staticcheck"]["waivers"]
    assert waivers["total"] == sum(waivers["by_rule"].values())
    assert waivers["total"] == sum(waivers["by_module"].values())
    assert latest["scenarios"]["staticcheck"]["unsuppressed_findings"] == 0


def test_committed_staticcheck_cache_gate(bench_runner):
    """The v2 acceptance numbers, from the newest committed run: a warm
    cached run on the unchanged tree is >= 5x faster than cold, and a
    one-file edit re-analyzes only a proper subset of the tree."""
    committed = _RUNNER.parent / "BENCH_eval.json"
    latest = json.loads(committed.read_text())["runs"][-1]
    lint = latest["scenarios"]["staticcheck"]
    assert lint["warm_speedup"] >= 5
    assert lint["warm_hit_rate"] == 1.0
    assert 0 < lint["incremental_reanalyzed"] < lint["files"]
    assert lint["incremental_fraction"] < 1.0


def test_committed_per_function_invalidation_gate(bench_runner):
    """The v3/v4 acceptance numbers: a comment-only edit re-analyzes
    exactly the edited file (no function structure hash moved), and a
    summary-neutral body edit to the hot registry entry point
    re-analyzes strictly fewer files than the v3 reverse call-graph
    closure -- the summary-delta cut proves the consumers unaffected
    instead of walking them."""
    committed = _RUNNER.parent / "BENCH_eval.json"
    latest = json.loads(committed.read_text())["runs"][-1]
    assert latest["mode"] == "full", "committed trajectory must end on a full run"
    edits = latest["scenarios"]["staticcheck"]["incremental_edits"]
    comment = edits["comment_edit"]
    assert comment["reanalyzed"] == 1
    assert comment["changed_functions"] == 0
    assert comment["invalidated_functions"] == 0
    assert comment["reanalyzed"] < comment["v2_closure_files"]
    semantic = edits["semantic_edit"]
    assert semantic["changed_functions"] >= 1
    # The edit is summary-neutral: the fixpoint comparison skips every
    # transitive caller the v3 closure would have re-run.
    assert semantic["invalidated_functions"] == 0
    assert semantic["reanalyzed"] == 1
    assert semantic["skipped_by_summary"] >= 1
    assert semantic["v3_closure_files"] > semantic["reanalyzed"]
    assert semantic["reanalyzed"] < semantic["v2_closure_files"]
