"""Tests for the Godel/Turing encodings (repro.encoding)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core.diagonal import DiagonalPairing
from repro.encoding import StringCodec, TupleCodec
from repro.errors import ConfigurationError, DomainError


class TestTupleCodecBasics:
    def test_empty_tuple_is_one(self):
        assert TupleCodec().encode(()) == 1
        assert TupleCodec().decode(1) == ()

    def test_roundtrip_examples(self):
        codec = TupleCodec()
        for t in [(1,), (2, 3), (3, 1, 4), (1, 1, 1, 1), (9, 8, 7, 6, 5)]:
            assert codec.decode(codec.encode(t)) == t

    def test_accepts_lists(self):
        codec = TupleCodec()
        assert codec.decode(codec.encode([5, 6])) == (5, 6)

    def test_distinct_tuples_distinct_codes(self):
        codec = TupleCodec()
        tuples = [(), (1,), (2,), (1, 1), (1, 2), (2, 1), (1, 1, 1)]
        codes = [codec.encode(t) for t in tuples]
        assert len(set(codes)) == len(codes)

    def test_length_is_recoverable(self):
        codec = TupleCodec()
        for t in [(), (4,), (4, 4), (4, 4, 4)]:
            assert len(codec.decode(codec.encode(t))) == len(t)

    def test_rejects_nonpositive_entries(self):
        with pytest.raises(DomainError):
            TupleCodec().encode((1, 0))
        with pytest.raises(DomainError):
            TupleCodec().encode((True,))

    def test_rejects_bad_code(self):
        with pytest.raises(DomainError):
            TupleCodec().decode(0)

    def test_custom_base(self):
        codec = TupleCodec(DiagonalPairing())
        for t in [(), (7,), (2, 5, 1)]:
            assert codec.decode(codec.encode(t)) == t

    def test_rejects_non_pf_base(self):
        with pytest.raises(ConfigurationError):
            TupleCodec("diagonal")  # type: ignore[arg-type]


class TestTupleCodecBijectivity:
    def test_every_integer_is_a_tuple_code(self):
        # Surjectivity: decode is total and encode inverts it.
        codec = TupleCodec()
        seen = set()
        for z in range(1, 3000):
            t = codec.decode(z)
            assert codec.encode(t) == z
            assert t not in seen
            seen.add(t)

    @given(z=st.integers(1, 10**6))
    @settings(max_examples=200, deadline=None)
    def test_decode_encode_property(self, z):
        # Bounded z: decode(z) can legitimately have arity ~sqrt(z) (the
        # length tag is a square-shell coordinate), so huge z produce
        # mathematically-correct but enormous tuples.
        codec = TupleCodec()
        assert codec.encode(codec.decode(z)) == z

    def test_large_code_with_large_arity(self):
        # One deliberate large case: the decoded tuple's arity equals the
        # length tag recovered from the base PF.
        codec = TupleCodec()
        z = 44_614_733_286
        t = codec.decode(z)
        assert codec.encode(t) == z

    @given(t=st.lists(st.integers(1, 50), max_size=6))
    @settings(max_examples=200)
    def test_encode_decode_property(self, t):
        codec = TupleCodec()
        assert codec.decode(codec.encode(t)) == tuple(t)


class TestNestedEncoding:
    def test_leaf(self):
        codec = TupleCodec()
        assert codec.decode_nested(codec.encode_nested(5)) == 5

    def test_nested_trees(self):
        codec = TupleCodec()
        trees = [
            (),
            (1, 2),
            (1, (2, 3)),
            ((1,), ((2,), (3, (4, 5)))),
        ]
        for tree in trees:
            assert codec.decode_nested(codec.encode_nested(tree)) == tree

    def test_lists_decode_as_tuples(self):
        codec = TupleCodec()
        assert codec.decode_nested(codec.encode_nested([1, [2, 3]])) == (1, (2, 3))

    def test_rejects_bad_leaves(self):
        codec = TupleCodec()
        with pytest.raises(DomainError):
            codec.encode_nested((1, -2))
        with pytest.raises(DomainError):
            codec.encode_nested("str")
        with pytest.raises(DomainError):
            codec.encode_nested(True)


class TestStringCodecBasics:
    def test_binary_alphabet_sequence(self):
        codec = StringCodec("ab")
        assert [codec.decode(n) for n in range(1, 8)] == [
            "", "a", "b", "aa", "ab", "ba", "bb",
        ]

    def test_roundtrip_default_alphabet(self):
        codec = StringCodec()
        for s in ["", "a", "z", "hello", "pairing", "zzzz"]:
            assert codec.decode(codec.encode(s)) == s

    def test_bijectivity_prefix(self):
        codec = StringCodec("xyz")
        seen = set()
        for z in range(1, 2000):
            s = codec.decode(z)
            assert codec.encode(s) == z
            assert s not in seen
            seen.add(s)

    def test_unary_alphabet(self):
        codec = StringCodec("a")
        assert codec.decode(1) == ""
        assert codec.decode(4) == "aaa"
        assert codec.encode("aaaa") == 5

    def test_rejects_foreign_characters(self):
        with pytest.raises(DomainError):
            StringCodec("ab").encode("abc")

    def test_rejects_bad_alphabets(self):
        with pytest.raises(ConfigurationError):
            StringCodec("")
        with pytest.raises(ConfigurationError):
            StringCodec("aa")
        with pytest.raises(ConfigurationError):
            StringCodec(["ab"])

    @given(s=st.text(alphabet="abc", max_size=12))
    @settings(max_examples=200)
    def test_roundtrip_property(self, s):
        codec = StringCodec("abc")
        assert codec.decode(codec.encode(s)) == s


class TestStringSequences:
    def test_sequence_roundtrip(self):
        codec = StringCodec("ab")
        seqs = [[], [""], ["a"], ["ab", "", "ba"], ["b"] * 4]
        for seq in seqs:
            code = codec.encode_sequence(seq)
            assert codec.decode_sequence(code) == tuple(seq)

    def test_strings_integers_tuples_roundtrip(self):
        # Section 1.2's full loop: strings -> ints -> a tuple -> one int
        # -> back.
        strings = StringCodec()
        tuples = TupleCodec()
        words = ["slip", "gracefully", "between", "worlds"]
        code = tuples.encode([strings.encode(w) for w in words])
        back = [strings.decode(c) for c in tuples.decode(code)]
        assert back == words
