"""Run the library's docstring examples as tests (doc rot protection).

Every module whose doctests are cheap is exercised here; slow searches
(Fueter-Polya) document their examples as literal blocks instead and are
excluded by design.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

DOCTESTED_MODULES = [
    "repro.numbertheory.bits",
    "repro.numbertheory.integers",
    "repro.numbertheory.divisors",
    "repro.numbertheory.divisor_sums",
    "repro.numbertheory.lattice",
    "repro.numbertheory.progressions",
    "repro.numbertheory.valuations",
    "repro.core.diagonal",
    "repro.core.squareshell",
    "repro.core.hyperbolic",
    "repro.core.aspectratio",
    "repro.core.szudzik",
    "repro.core.rosenbergstrong",
    "repro.core.binaryproportional",
    "repro.core.dovetail",
    "repro.core.shells",
    "repro.core.spread",
    "repro.core.registry",
    "repro.core.ndim",
    "repro.core.locality",
    "repro.apf.base",
    "repro.apf.constructor",
    "repro.apf.families",
    "repro.apf.closed_forms",
    "repro.apf.analysis",
    "repro.apf.radix",
    "repro.polynomial.poly2d",
    "repro.polynomial.bijectivity",
    "repro.polynomial.exclusions",
    "repro.arrays.address_space",
    "repro.arrays.extendible",
    "repro.arrays.naive",
    "repro.arrays.hashed",
    "repro.arrays.ndarray",
    "repro.arrays.views",
    "repro.arrays.workloads",
    "repro.webcompute.task",
    "repro.webcompute.volunteer",
    "repro.webcompute.allocator",
    "repro.webcompute.frontend",
    "repro.webcompute.server",
    "repro.webcompute.codecs",
    "repro.webcompute.replication",
    "repro.perf.spread_cache",
    "repro.perf.batch",
    "repro.encoding.tuples",
    "repro.encoding.strings",
    "repro.render.tables",
]


@pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False, raise_on_error=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
