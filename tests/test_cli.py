"""Tests for the CLI (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestFigureCommand:
    @pytest.mark.parametrize("n", ["2", "3", "4", "5", "6"])
    def test_figures_print(self, capsys, n):
        out = run_cli(capsys, "figure", n)
        assert f"Figure {n}" in out

    def test_invalid_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "7"])


class TestTableAndEval:
    def test_table(self, capsys):
        out = run_cli(capsys, "table", "diagonal", "3", "3")
        assert "6" in out and "diagonal" in out

    def test_pair(self, capsys):
        assert run_cli(capsys, "pair", "diagonal", "3", "2").strip() == "8"

    def test_unpair(self, capsys):
        assert run_cli(capsys, "unpair", "diagonal", "8").strip() == "3 2"

    def test_parameterized_mapping(self, capsys):
        out = run_cli(capsys, "pair", "aspect-1x2", "1", "1")
        assert out.strip() == "1"

    def test_unknown_mapping_errors(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["pair", "bogus", "1", "1"])


class TestAnalysisCommands:
    def test_spread(self, capsys):
        out = run_cli(capsys, "spread", "hyperbolic", "16", "256")
        assert "50" in out and "1466" in out

    def test_strides(self, capsys):
        out = run_cli(capsys, "strides", "apf-sharp", "8")
        assert "S_x" in out

    def test_strides_rejects_non_apf(self):
        with pytest.raises(SystemExit):
            main(["strides", "diagonal", "5"])

    def test_crossover(self, capsys):
        out = run_cli(capsys, "crossover", "apf-bracket-1", "apf-sharp", "100")
        assert "x0 = 5" in out

    def test_crossover_no_dominance(self, capsys):
        out = run_cli(capsys, "crossover", "apf-star", "apf-sharp", "10000")
        assert "does not dominate" in out

    def test_crossover_rejects_non_apf(self):
        with pytest.raises(SystemExit):
            main(["crossover", "diagonal", "apf-sharp", "10"])


class TestWbcCommand:
    def test_runs_and_reports(self, capsys):
        out = run_cli(capsys, "wbc", "--ticks", "50", "--volunteers", "8", "--seed", "3")
        assert "tasks completed" in out
        assert "attribution failures" in out

    def test_rejects_non_apf(self):
        with pytest.raises(SystemExit):
            main(["wbc", "--apf", "diagonal", "--ticks", "10"])


class TestListCommand:
    def test_lists_names(self, capsys):
        out = run_cli(capsys, "list")
        assert "diagonal" in out and "apf-sharp" in out
        assert "parameterized" in out


class TestEncodingCommands:
    def test_encode_decode_roundtrip(self, capsys):
        code = run_cli(capsys, "encode", "3", "1", "4").strip()
        out = run_cli(capsys, "decode", code)
        assert out.strip() == "3 1 4"

    def test_empty_tuple(self, capsys):
        assert run_cli(capsys, "encode").strip() == "1"
        assert run_cli(capsys, "decode", "1").strip() == "()"


class TestLocalityCommand:
    def test_apf_rows_constant(self, capsys):
        out = run_cli(capsys, "locality", "apf-sharp")
        assert "True" in out  # constant row jumps
        assert "corner block" in out

    def test_square_shell_dense_corner(self, capsys):
        out = run_cli(capsys, "locality", "square-shell")
        assert "density 1.000" in out


class TestReportCommand:
    def test_report_contains_all_sections(self, capsys):
        out = run_cli(capsys, "report")
        assert "Figures" in out
        assert "Spread S(n)" in out
        assert "crossovers" in out
        assert "WBC footprint" in out

    def test_report_key_numbers(self, capsys):
        out = run_cli(capsys, "report")
        assert "64/64 values" in out
        assert "50 points" in out
        # Hyperbolic meets the bound: the 1466 appears in both columns.
        assert out.count("1466") >= 2
