"""Tests for the d-dimensional extendible array."""

from __future__ import annotations

import pytest

from repro.arrays.ndarray import ExtendibleNdArray
from repro.core.diagonal import DiagonalPairing
from repro.core.ndim import IteratedPairing
from repro.core.squareshell import SquareShellPairing
from repro.errors import ConfigurationError, DomainError


def cube(fill=0, shape=(2, 2, 2)):
    return ExtendibleNdArray(
        IteratedPairing(3, SquareShellPairing()), shape=shape, fill=fill
    )


class TestConstruction:
    def test_rejects_2d_mapping_class(self):
        with pytest.raises(ConfigurationError):
            ExtendibleNdArray(SquareShellPairing(), (2, 2))  # type: ignore[arg-type]

    def test_rejects_arity_mismatch(self):
        with pytest.raises(DomainError):
            ExtendibleNdArray(IteratedPairing(3, DiagonalPairing()), (2, 2))

    def test_rejects_mixed_zero_shape(self):
        with pytest.raises(DomainError):
            ExtendibleNdArray(IteratedPairing(2, DiagonalPairing()), (0, 3))

    def test_fill_populates(self):
        arr = cube(fill=9)
        assert arr.space.live_count == 8
        assert arr[2, 2, 2] == 9


class TestAccess:
    def test_set_get(self):
        arr = cube()
        arr[1, 2, 1] = "v"
        assert arr[1, 2, 1] == "v"

    def test_out_of_shape_rejected(self):
        arr = cube()
        with pytest.raises(DomainError):
            _ = arr[3, 1, 1]
        with pytest.raises(DomainError):
            arr[1, 1, 0] = 1

    def test_wrong_arity_rejected(self):
        arr = cube()
        with pytest.raises(DomainError):
            _ = arr[1, 1]


class TestZeroMoveReshaping:
    def test_grow_every_axis(self):
        arr = cube(fill=0)
        arr[2, 2, 2] = 42
        for axis in (0, 1, 2, 0, 1, 2):
            arr.grow(axis)
        assert arr.shape == (4, 4, 4)
        assert arr[2, 2, 2] == 42
        assert arr.space.traffic.moves == 0

    def test_shrink_erases_slab(self):
        arr = cube(fill=0)
        arr[2, 1, 1] = "doomed"
        addr = arr.address_of((2, 1, 1))
        arr.shrink(0)
        assert arr.shape == (1, 2, 2)
        assert not arr.space.occupied(addr)

    def test_shrink_grow_no_resurrection(self):
        arr = cube(fill=0)
        arr[1, 1, 2] = 5
        arr.shrink(2)
        arr.grow(2)
        assert arr[1, 1, 2] == 0

    def test_address_stability(self):
        arr = cube()
        addr = arr.address_of((1, 2, 2))
        arr.grow(0)
        arr.grow(1)
        arr.shrink(0)
        assert arr.address_of((1, 2, 2)) == addr

    def test_cannot_shrink_to_zero(self):
        arr = ExtendibleNdArray(IteratedPairing(2, DiagonalPairing()), (1, 2))
        with pytest.raises(DomainError):
            arr.shrink(0)

    def test_bad_axis(self):
        with pytest.raises(DomainError):
            cube().grow(3)


class TestResize:
    def test_resize_arbitrary(self):
        arr = cube(fill=0)
        arr[1, 1, 1] = "keep"
        arr.resize((4, 1, 3))
        assert arr.shape == (4, 1, 3)
        assert arr[1, 1, 1] == "keep"
        assert arr.space.traffic.moves == 0

    def test_resize_from_empty(self):
        arr = ExtendibleNdArray(
            IteratedPairing(3, SquareShellPairing()), (0, 0, 0), fill=7
        )
        arr.resize((2, 2, 2))
        assert arr.shape == (2, 2, 2)
        assert arr[2, 2, 2] == 7

    def test_resize_rejects_bad_target(self):
        with pytest.raises(DomainError):
            cube().resize((2, 2))
        with pytest.raises(DomainError):
            cube().resize((2, 0, 2))


class TestInspection:
    def test_items(self):
        arr = cube(fill=1)
        items = dict(arr.items())
        assert len(items) == 8
        assert items[(2, 1, 2)] == 1

    def test_storage_report(self):
        arr = cube(fill=0)
        report = arr.storage_report()
        assert report["cells"] == 8
        assert report["traffic"]["moves"] == 0
        assert report["high_water_mark"] >= 8

    def test_size(self):
        assert cube(shape=(2, 3, 4)).size == 24


class TestFourDimensions:
    def test_4d_lifecycle(self):
        arr = ExtendibleNdArray(
            IteratedPairing(4, SquareShellPairing()), (2, 2, 2, 2), fill=0
        )
        arr[1, 2, 1, 2] = "deep"
        arr.grow(3)
        arr.grow(0)  # shape (3, 2, 2, 3)
        arr.shrink(0)  # back to (2, 2, 2, 3): the cell is untouched
        assert arr.shape == (2, 2, 2, 3)
        assert arr[1, 2, 1, 2] == "deep"
        assert arr.space.traffic.moves == 0
