"""The four v2 flow-aware upgrades, each against a fixture miniature
that the PR 4 syntactic pass *provably* misses.

Every test here comes in two halves: first run the PR 4 predicate (the
syntactic helpers still live in the checkers -- ``_direct_mutation``,
the any-touch attribute scan -- or are re-derived inline from the v1
source tables) and assert it reports nothing; then run the real v2
analysis and assert the finding, its anchor line, and its taint trace.
That pins the *reason* these fixtures exist: they are the ROADMAP blind
spots, not just more bad code.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.staticcheck import ReprolintConfig, analyze_paths
from repro.staticcheck.checkers import attribute_parts
from repro.staticcheck.checkers.event_discipline import (
    _direct_mutation,
    _publishes,
)
from repro.staticcheck.checkers.layering import allowance_cycles
from repro.staticcheck.checkers.snapshot_completeness import (
    _self_attr_assignments,
    _self_attrs_touched,
)
from repro.staticcheck.dataflow import (
    CLOCK_DATETIME_ATTRS,
    CLOCK_TIME_ATTRS,
    DATETIME_ROOTS,
    UUID_ATTRS,
)

FIXTURES = Path(__file__).resolve().parent / "staticcheck_fixtures"
CYCLIC_PROJECT = FIXTURES / "cyclic_project"


def _parse(fixture: str) -> ast.Module:
    return ast.parse((FIXTURES / fixture).read_text())


def _methods(tree: ast.Module, cls: str) -> dict[str, ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls:
            return {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
    raise AssertionError(f"no class {cls}")


class TestR002EntropySeed:
    CONFIG = ReprolintConfig(deterministic_modules=("*",))

    def test_pr4_syntactic_pass_misses_it(self):
        """The v1 rule: fixed source tables plus *unseeded* Random only.
        ``os.getpid`` is in none of them and ``Random(seed)`` has an
        argument, so v1 reports this file clean."""
        hits: list[int] = []
        tree = _parse("r002_flow.py")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            parts = attribute_parts(node)
            if parts is None or len(parts) < 2:
                continue
            root, leaf = parts[0], parts[-1]
            if root == "random" and leaf == "SystemRandom":
                hits.append(node.lineno)
            elif root == "random" and leaf == "Random":
                calls = [
                    c
                    for c in ast.walk(tree)
                    if isinstance(c, ast.Call) and c.func is node
                ]
                if calls and not calls[0].args and not calls[0].keywords:
                    hits.append(node.lineno)
            elif root == "random":
                hits.append(node.lineno)
            elif root == "time" and leaf in CLOCK_TIME_ATTRS:
                hits.append(node.lineno)
            elif root in DATETIME_ROOTS and leaf in CLOCK_DATETIME_ATTRS:
                hits.append(node.lineno)
            elif root == "os" and leaf == "urandom":
                hits.append(node.lineno)
            elif root == "uuid" and leaf in UUID_ATTRS:
                hits.append(node.lineno)
            elif root == "secrets":
                hits.append(node.lineno)
        assert hits == [], "the fixture must sit squarely in the v1 blind spot"

    def test_v2_flags_the_laundered_seed(self):
        result = analyze_paths(
            [FIXTURES / "r002_flow.py"], config=self.CONFIG, rules=["R002"]
        )
        assert [f.line for f in result.findings] == [16]
        finding = result.findings[0]
        assert "seeded from entropy (os.getpid)" in finding.message
        assert finding.trace, "flow findings must carry the taint trail"
        assert "os.getpid (line 15)" in finding.trace[0]
        assert any("seed" in hop for hop in finding.trace)

    def test_configured_seed_stays_legal(self):
        result = analyze_paths(
            [FIXTURES / "r002_flow.py"], config=self.CONFIG, rules=["R002"]
        )
        assert all(f.line != 21 for f in result.findings)


class TestR003ReadButDropped:
    CONFIG = ReprolintConfig()

    def test_pr4_any_touch_rule_misses_it(self):
        """v1 counted any ``self.X`` mention inside snapshot/restore as
        persisted; ``len(self._outstanding)`` is a mention."""
        methods = _methods(_parse("r003_flow.py"), "Engine")
        persisted = _self_attrs_touched(methods["snapshot_state"])
        persisted |= _self_attrs_touched(methods["restore_state"])
        missing = set(_self_attr_assignments(methods["__init__"])) - persisted
        assert missing == set(), "v1 saw every attribute as persisted"

    def test_v2_flags_the_dropped_attribute(self):
        result = analyze_paths(
            [FIXTURES / "r003_flow.py"], config=self.CONFIG, rules=["R003"]
        )
        assert [f.line for f in result.findings] == [13]
        message = result.findings[0].message
        assert "reads self._outstanding but drops it" in message

    def test_v2_still_accepts_attrs_that_reach_the_return(self):
        # self.clock flows into the returned dict: exactly one finding.
        result = analyze_paths(
            [FIXTURES / "r003_flow.py"], config=self.CONFIG, rules=["R003"]
        )
        assert len(result.findings) == 1


class TestR003DeltaProtocol:
    CONFIG = ReprolintConfig()

    def test_full_snapshot_pass_misses_it(self):
        """The pre-delta R003 only audits snapshot_state/restore_state;
        the fixture's full snapshot is complete, so every attribute
        counts as persisted and the broken delta pair goes unseen."""
        methods = _methods(_parse("r003_delta.py"), "Engine")
        persisted = _self_attrs_touched(methods["snapshot_state"])
        persisted |= _self_attrs_touched(methods["restore_state"])
        missing = set(_self_attr_assignments(methods["__init__"])) - persisted
        assert missing == set(), "the full-snapshot pass sees nothing wrong"

    def test_delta_pass_flags_both_directions(self):
        result = analyze_paths(
            [FIXTURES / "r003_delta.py"], config=self.CONFIG, rules=["R003"]
        )
        assert [f.line for f in result.findings] == [20, 21]
        emit_side, apply_side = result.findings
        assert (
            "snapshot_delta emits self._strikes but apply_delta never "
            "applies it" in emit_side.message
        )
        assert (
            "apply_delta writes self._leases but snapshot_delta never "
            "emits it" in apply_side.message
        )

    def test_clock_stays_legal(self):
        # self.clock is emitted by snapshot_delta AND written by
        # apply_delta: exactly the two broken attributes are flagged.
        result = analyze_paths(
            [FIXTURES / "r003_delta.py"], config=self.CONFIG, rules=["R003"]
        )
        assert all("self.clock" not in f.message for f in result.findings)


class TestR005AliasedMutation:
    CONFIG = ReprolintConfig(event_classes=("AllocationEngine",))

    def test_pr4_direct_store_rule_misses_it(self):
        """v1's predicate *is* ``_direct_mutation`` (still used for the
        direct-store half of v2); the aliased ``table.clear()`` contains
        no self store."""
        methods = _methods(_parse("r005_flow.py"), "AllocationEngine")
        target = methods["reset_profiles"]
        assert _direct_mutation(target) is None
        assert not _publishes(target)

    def test_v2_flags_the_aliased_clear(self):
        result = analyze_paths(
            [FIXTURES / "r005_flow.py"], config=self.CONFIG, rules=["R005"]
        )
        assert [f.line for f in result.findings] == [16]
        finding = result.findings[0]
        assert "through self._profiles.clear(...)" in finding.message
        assert "self._profiles" in finding.trace[0]

    def test_mutating_a_copy_stays_legal(self):
        # rebuild_copy clears dict(self._profiles): the ALIAS taint dies
        # at the call boundary, so only reset_profiles is flagged.
        result = analyze_paths(
            [FIXTURES / "r005_flow.py"], config=self.CONFIG, rules=["R005"]
        )
        assert len(result.findings) == 1


class TestR004AllowanceCycles:
    def test_pr4_per_file_checks_miss_it(self):
        """Every import in the cyclic project is individually sanctioned
        by the (cyclic) allowance table, so the per-file DAG check -- all
        v1 had -- passes.  Narrowing to per-file R004 via an explicit
        config reproduces v1 exactly."""
        from repro.staticcheck.checkers.layering import LayeringChecker
        from repro.staticcheck.config import load_config
        from repro.staticcheck.loader import iter_python_files, load_module

        config, _path = load_config(CYCLIC_PROJECT)
        checker = LayeringChecker()
        per_file = [
            finding
            for file_path in iter_python_files([CYCLIC_PROJECT / "app"])
            for finding in checker.check(load_module(file_path), config)
        ]
        assert per_file == []

    def test_v2_reports_the_cycle_from_the_config(self):
        result = analyze_paths([CYCLIC_PROJECT / "app"])
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "R004"
        assert finding.path.endswith("pyproject.toml")
        assert "app.core -> app.ui -> app.core" in finding.message
        # Anchored at the line declaring the first key of the cycle.
        config_lines = (CYCLIC_PROJECT / "pyproject.toml").read_text().splitlines()
        assert '"app.core"' in config_lines[finding.line - 1]

    def test_cycle_detection_ignores_longest_prefix_carveouts(self):
        """The repo's own registry carve-out shape: a *narrower* key
        granting a sibling layer is a reviewed escape hatch, not an edge
        -- otherwise the repo's real config would self-flag."""
        table = {
            "repro.core": ("repro.errors", "repro.numbertheory", "repro.core"),
            "repro.core.registry": ("repro.core", "repro.apf"),
            "repro.apf": ("repro.core", "repro.apf"),
        }
        assert allowance_cycles(table) == []

    def test_multi_hop_cycles_are_found_once(self):
        table = {
            "a": ("b",),
            "b": ("c",),
            "c": ("a",),
        }
        assert allowance_cycles(table) == [["a", "b", "c"]]
