"""Tests for the dynamic front end (arrivals, departures, speed seating,
epoch attribution)."""

from __future__ import annotations

import pytest

from repro.errors import AllocationError, DomainError
from repro.webcompute.frontend import FrontEnd


class TestSpeedSeating:
    def test_faster_gets_smaller_row(self):
        fe = FrontEnd()
        assignments = fe.admit([(1, 0.5), (2, 3.0), (3, 1.5)])
        # Input order preserved; rows by speed rank: v2 -> 1, v3 -> 2, v1 -> 3.
        assert [a.row for a in assignments] == [3, 1, 2]

    def test_tie_broken_by_id(self):
        fe = FrontEnd()
        assignments = fe.admit([(10, 1.0), (7, 1.0)])
        assert fe.row_of(7) == 1 and fe.row_of(10) == 2
        assert [a.row for a in assignments] == [2, 1]

    def test_sequential_rounds_mint_fresh_rows(self):
        fe = FrontEnd()
        fe.admit([(1, 1.0)])
        fe.admit([(2, 9.0)])  # fast, but row 1 is taken
        assert fe.row_of(2) == 2

    def test_double_seating_rejected(self):
        fe = FrontEnd()
        fe.admit([(1, 1.0)])
        with pytest.raises(AllocationError):
            fe.admit([(1, 2.0)])

    def test_duplicate_in_round_rejected(self):
        with pytest.raises(AllocationError):
            FrontEnd().admit([(1, 1.0), (1, 2.0)])

    def test_rejects_bad_speed(self):
        with pytest.raises(DomainError):
            FrontEnd().admit([(1, 0.0)])

    def test_empty_round(self):
        assert FrontEnd().admit([]) == []


class TestDepartureAndRecycling:
    def test_departed_row_is_recycled_smallest_first(self):
        fe = FrontEnd()
        fe.admit([(1, 3.0), (2, 2.0), (3, 1.0)])  # rows 1, 2, 3
        fe.depart(1)  # frees row 1
        fe.depart(2)  # frees row 2
        assignments = fe.admit([(4, 1.0)])
        assert assignments[0].row == 1  # smallest free row first

    def test_recycled_row_resumes_serials(self):
        fe = FrontEnd()
        fe.admit([(1, 1.0)])
        fe.note_issued(1, 1)
        fe.note_issued(1, 2)
        fe.depart(1)
        assignment = fe.admit([(2, 1.0)])[0]
        assert assignment.row == 1
        assert assignment.start_serial == 3  # no double-issue

    def test_depart_unknown_rejected(self):
        with pytest.raises(AllocationError):
            FrontEnd().depart(5)

    def test_seated_count(self):
        fe = FrontEnd()
        fe.admit([(1, 1.0), (2, 1.0)])
        assert fe.seated_count == 2
        fe.depart(1)
        assert fe.seated_count == 1


class TestSerialBookkeeping:
    def test_out_of_order_issue_rejected(self):
        fe = FrontEnd()
        fe.admit([(1, 1.0)])
        fe.note_issued(1, 1)
        with pytest.raises(AllocationError):
            fe.note_issued(1, 3)

    def test_issue_on_recycled_row_continues(self):
        fe = FrontEnd()
        fe.admit([(1, 1.0)])
        fe.note_issued(1, 1)
        fe.depart(1)
        fe.admit([(2, 1.0)])
        fe.note_issued(1, 2)  # continues, does not restart


class TestEpochAttribution:
    def test_attribution_across_reassignment(self):
        fe = FrontEnd()
        fe.admit([(100, 1.0)])
        fe.note_issued(1, 1)
        fe.note_issued(1, 2)
        fe.depart(100)
        fe.admit([(200, 1.0)])
        fe.note_issued(1, 3)
        # Serials 1-2 belong to the first tenant, 3 to the second.
        assert fe.volunteer_for(1, 1) == 100
        assert fe.volunteer_for(1, 2) == 100
        assert fe.volunteer_for(1, 3) == 200

    def test_never_issued_serial_rejected_for_closed_epochs(self):
        fe = FrontEnd()
        fe.admit([(1, 1.0)])
        fe.note_issued(1, 1)
        fe.depart(1)
        # Serial 5 was never issued under any closed epoch and no open
        # epoch exists -> unattributable.
        with pytest.raises(AllocationError):
            fe.volunteer_for(1, 5)

    def test_unassigned_row_rejected(self):
        with pytest.raises(AllocationError):
            FrontEnd().volunteer_for(3, 1)

    def test_epochs_of_row(self):
        fe = FrontEnd()
        fe.admit([(1, 1.0)])
        fe.note_issued(1, 1)
        fe.depart(1)
        fe.admit([(2, 1.0)])
        epochs = fe.epochs_of_row(1)
        assert len(epochs) == 2
        assert epochs[0].volunteer_id == 1 and epochs[0].last_serial == 1
        assert epochs[1].volunteer_id == 2 and epochs[1].last_serial is None

    def test_highest_row_minted(self):
        fe = FrontEnd()
        fe.admit([(1, 1.0), (2, 1.0)])
        fe.depart(1)
        fe.admit([(3, 1.0)])  # recycles row 1
        assert fe.highest_row_minted == 2
