"""Tests for the accountability ledger and ban policy."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError, DomainError
from repro.webcompute.ledger import AccountabilityLedger
from repro.webcompute.task import Task, TaskStatus, correct_result


def make_task(index: int, volunteer: int, serial: int = 1) -> Task:
    return Task(index=index, volunteer_id=volunteer, serial=serial, issued_at=0)


class TestConfiguration:
    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            AccountabilityLedger(verification_rate=1.5)

    def test_rejects_bad_strikes(self):
        with pytest.raises(ConfigurationError):
            AccountabilityLedger(ban_after_strikes=0)


class TestIssueReturn:
    def test_issue_recorded(self):
        ledger = AccountabilityLedger()
        ledger.record_issue(make_task(5, 1))
        assert ledger.record_of(1).issued == 1
        assert ledger.task(5).status is TaskStatus.ISSUED

    def test_double_issue_rejected(self):
        ledger = AccountabilityLedger()
        ledger.record_issue(make_task(5, 1))
        with pytest.raises(DomainError):
            ledger.record_issue(make_task(5, 2))

    def test_return_unknown_rejected(self):
        with pytest.raises(DomainError):
            AccountabilityLedger().record_return(9, 0, at_tick=1)

    def test_tasks_of_volunteer(self):
        ledger = AccountabilityLedger()
        for i in (3, 6, 9):
            ledger.record_issue(make_task(i, 4, serial=i))
        ledger.record_issue(make_task(12, 5))
        assert sorted(t.index for t in ledger.tasks_of(4)) == [3, 6, 9]


class TestVerificationSampling:
    def test_full_verification_catches_everything(self):
        ledger = AccountabilityLedger(verification_rate=1.0, ban_after_strikes=100)
        for i in range(1, 51):
            ledger.record_issue(make_task(i, 1, serial=i))
            good = i % 2 == 0
            result = correct_result(i) if good else correct_result(i) ^ 1
            ledger.record_return(i, result, at_tick=i)
        report = ledger.report()
        assert report.bad_results_returned == 25
        assert report.bad_results_caught == 25
        assert report.catch_rate == 1.0

    def test_zero_verification_catches_nothing(self):
        ledger = AccountabilityLedger(verification_rate=0.0)
        for i in range(1, 21):
            ledger.record_issue(make_task(i, 1, serial=i))
            ledger.record_return(i, correct_result(i) ^ 1, at_tick=i)
        report = ledger.report()
        assert report.bad_results_returned == 20
        assert report.bad_results_caught == 0
        assert not ledger.is_banned(1)

    def test_sampling_rate_roughly_respected(self):
        ledger = AccountabilityLedger(
            verification_rate=0.3, ban_after_strikes=10**6, rng=random.Random(11)
        )
        for i in range(1, 2001):
            ledger.record_issue(make_task(i, 1, serial=i))
            ledger.record_return(i, correct_result(i), at_tick=i)
        verified = ledger.record_of(1).verified
        assert 480 < verified < 720  # ~600

    def test_deterministic_given_rng(self):
        def run():
            ledger = AccountabilityLedger(
                verification_rate=0.5, rng=random.Random(3)
            )
            for i in range(1, 101):
                ledger.record_issue(make_task(i, 1, serial=i))
                ledger.record_return(i, correct_result(i) ^ 1, at_tick=i)
            return ledger.report()

        assert run() == run()


class TestBanPolicy:
    def test_ban_after_strikes(self):
        ledger = AccountabilityLedger(verification_rate=1.0, ban_after_strikes=2)
        ledger.record_issue(make_task(1, 7))
        assert not ledger.record_return(1, correct_result(1) ^ 1, at_tick=1)
        assert not ledger.is_banned(7)
        ledger.record_issue(make_task(2, 7, serial=2))
        banned_now = ledger.record_return(2, correct_result(2) ^ 1, at_tick=2)
        assert banned_now and ledger.is_banned(7)
        assert ledger.record_of(7).banned_at == 2

    def test_honest_volunteer_never_banned(self):
        ledger = AccountabilityLedger(verification_rate=1.0, ban_after_strikes=1)
        ledger.note_honest(3)
        for i in range(1, 100):
            ledger.record_issue(make_task(i, 3, serial=i))
            ledger.record_return(i, correct_result(i), at_tick=i)
        assert not ledger.is_banned(3)
        assert ledger.report().honest_volunteers_banned == 0

    def test_audit_task_forces_verification(self):
        ledger = AccountabilityLedger(verification_rate=0.0, ban_after_strikes=1)
        ledger.record_issue(make_task(5, 2))
        ledger.record_return(5, correct_result(5) ^ 1, at_tick=1)
        assert ledger.task(5).status is TaskStatus.RETURNED
        status = ledger.audit_task(5)
        assert status is TaskStatus.VERIFIED_BAD
        assert ledger.is_banned(2)

    def test_audit_ok_task(self):
        ledger = AccountabilityLedger(verification_rate=0.0)
        ledger.record_issue(make_task(5, 2))
        ledger.record_return(5, correct_result(5), at_tick=1)
        assert ledger.audit_task(5) is TaskStatus.VERIFIED_OK


class TestReport:
    def test_counts(self):
        ledger = AccountabilityLedger(verification_rate=1.0, ban_after_strikes=3)
        for i in range(1, 11):
            ledger.record_issue(make_task(i, 1, serial=i))
        for i in range(1, 8):
            ledger.record_return(i, correct_result(i), at_tick=i)
        report = ledger.report()
        assert report.tasks_issued == 10
        assert report.tasks_returned == 7
        assert report.tasks_verified == 7
        assert report.catch_rate == 1.0  # vacuous: no bad results
