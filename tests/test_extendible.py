"""Tests for the PF-backed extendible array (Section 3's payoff)."""

from __future__ import annotations

import pytest

from repro.arrays.extendible import ExtendibleArray
from repro.core.diagonal import DiagonalPairing
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.squareshell import SquareShellPairing
from repro.errors import ConfigurationError, DomainError

MAPPINGS = [DiagonalPairing, SquareShellPairing, HyperbolicPairing]


class TestConstruction:
    def test_rejects_non_mapping(self):
        with pytest.raises(ConfigurationError):
            ExtendibleArray("diagonal", 2, 2)  # type: ignore[arg-type]

    def test_rejects_half_empty_shape(self):
        with pytest.raises(DomainError):
            ExtendibleArray(DiagonalPairing(), rows=2, cols=0)

    def test_fill_writes_cells(self):
        arr = ExtendibleArray(SquareShellPairing(), 3, 3, fill=7)
        assert arr[2, 2] == 7
        assert arr.space.live_count == 9

    def test_no_fill_leaves_space_empty(self):
        arr = ExtendibleArray(SquareShellPairing(), 3, 3)
        assert arr.space.live_count == 0
        assert arr[2, 2] is None


@pytest.mark.parametrize("make_mapping", MAPPINGS)
class TestZeroMoveInvariant:
    def test_growth_never_moves(self, make_mapping):
        arr = ExtendibleArray(make_mapping(), 1, 1, fill=0)
        arr[1, 1] = 42
        for _ in range(6):
            arr.append_row()
            arr.append_col()
        assert arr.shape == (7, 7)
        assert arr[1, 1] == 42
        assert arr.space.traffic.moves == 0

    def test_shrink_then_grow_recovers_addresses(self, make_mapping):
        mapping = make_mapping()
        arr = ExtendibleArray(mapping, 4, 4, fill=0)
        addr_before = arr.address_of(2, 2)
        arr.delete_col()
        arr.delete_row()
        arr.append_row()
        arr.append_col()
        assert arr.address_of(2, 2) == addr_before
        assert arr.space.traffic.moves == 0

    def test_address_stability_under_any_reshape(self, make_mapping):
        arr = ExtendibleArray(make_mapping(), 3, 3)
        stable = {(x, y): arr.address_of(x, y) for x in (1, 2) for y in (1, 2)}
        arr.append_col()
        arr.append_row()
        arr.delete_col()
        for (x, y), addr in stable.items():
            assert arr.address_of(x, y) == addr


class TestElementAccess:
    def test_set_get_roundtrip(self):
        arr = ExtendibleArray(DiagonalPairing(), 5, 5)
        arr[3, 4] = "payload"
        assert arr[3, 4] == "payload"

    def test_out_of_shape_access_rejected(self):
        arr = ExtendibleArray(DiagonalPairing(), 2, 2)
        with pytest.raises(DomainError):
            _ = arr[3, 1]
        with pytest.raises(DomainError):
            arr[1, 3] = 0

    def test_get_with_default(self):
        arr = ExtendibleArray(DiagonalPairing(), 2, 2)
        assert arr.get(1, 1, default="empty") == "empty"

    def test_deleted_cells_are_erased(self):
        arr = ExtendibleArray(SquareShellPairing(), 3, 3, fill=0)
        arr[3, 1] = 99
        addr = arr.address_of(3, 1)
        arr.delete_row()
        assert not arr.space.occupied(addr)

    def test_shrink_grow_does_not_resurrect_values(self):
        arr = ExtendibleArray(SquareShellPairing(), 2, 2, fill=0)
        arr[2, 2] = 5
        arr.delete_col()
        arr.append_col()
        assert arr[2, 2] == 0  # fresh fill, not the stale 5


class TestReshapeEdgeCases:
    def test_cannot_delete_last_row_or_col(self):
        arr = ExtendibleArray(DiagonalPairing(), 1, 3)
        with pytest.raises(DomainError):
            arr.delete_row()
        arr2 = ExtendibleArray(DiagonalPairing(), 3, 1)
        with pytest.raises(DomainError):
            arr2.delete_col()

    def test_resize_to_arbitrary_shape(self):
        arr = ExtendibleArray(SquareShellPairing(), 1, 1, fill=0)
        arr.resize(5, 3)
        assert arr.shape == (5, 3)
        arr.resize(2, 6)
        assert arr.shape == (2, 6)
        assert arr.space.traffic.moves == 0

    def test_resize_from_empty(self):
        arr = ExtendibleArray(SquareShellPairing(), fill=0)
        assert arr.shape == (0, 0)
        arr.resize(3, 3)
        assert arr.shape == (3, 3)
        assert arr[3, 3] == 0

    def test_append_to_empty_raises(self):
        arr = ExtendibleArray(SquareShellPairing())
        with pytest.raises(DomainError):
            arr.append_row()


class TestInspection:
    def test_to_lists_row_major(self):
        arr = ExtendibleArray(DiagonalPairing(), 2, 3, fill=0)
        arr[1, 2] = 5
        arr[2, 3] = 9
        assert arr.to_lists() == [[0, 5, 0], [0, 0, 9]]

    def test_items_yields_everything(self):
        arr = ExtendibleArray(DiagonalPairing(), 2, 2, fill=1)
        items = dict(arr.items())
        assert set(items) == {(1, 1), (1, 2), (2, 1), (2, 2)}
        assert all(v == 1 for v in items.values())

    def test_storage_report(self):
        arr = ExtendibleArray(SquareShellPairing(), 4, 4, fill=0)
        report = arr.storage_report()
        assert report["cells"] == 16
        assert report["high_water_mark"] == 16  # perfect on squares
        assert report["utilization"] == 1.0
        assert report["traffic"]["moves"] == 0
        assert report["theoretical_shape_spread"] == 16

    def test_spread_realized_matches_theory(self):
        # High-water mark after filling rows x cols equals the mapping's
        # per-shape spread.
        for make in MAPPINGS:
            mapping = make()
            arr = ExtendibleArray(mapping, 5, 7, fill=0)
            assert arr.space.high_water_mark == mapping.spread_for_shape(5, 7)
