"""Tests for the dovetail combinator (Section 3.2.2)."""

from __future__ import annotations

import pytest

from repro.core.aspectratio import AspectRatioPairing
from repro.core.diagonal import DiagonalPairing
from repro.core.dovetail import DovetailMapping
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.squareshell import SquareShellPairing
from repro.errors import ConfigurationError, NotInImageError


def two_ratio_dovetail():
    return DovetailMapping([AspectRatioPairing(1, 2), AspectRatioPairing(2, 1)])


def three_way_dovetail():
    return DovetailMapping(
        [SquareShellPairing(), AspectRatioPairing(1, 3), AspectRatioPairing(3, 1)]
    )


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            DovetailMapping([])

    def test_rejects_non_mapping(self):
        with pytest.raises(ConfigurationError):
            DovetailMapping([SquareShellPairing(), "not a mapping"])  # type: ignore[list-item]

    def test_rejects_nested_non_surjective(self):
        inner = two_ratio_dovetail()
        with pytest.raises(ConfigurationError):
            DovetailMapping([inner, SquareShellPairing()])

    def test_arity_and_components(self):
        dt = three_way_dovetail()
        assert dt.arity == 3
        assert len(dt.components) == 3
        assert not dt.surjective


class TestInjectivity:
    @pytest.mark.parametrize("factory", [two_ratio_dovetail, three_way_dovetail])
    def test_window_injective_and_invertible(self, factory):
        factory().check_roundtrip_window(12, 12)

    def test_single_mapping_dovetail(self):
        # m = 1 degenerates to the original with addresses scaled by 1.
        dt = DovetailMapping([DiagonalPairing()])
        d = DiagonalPairing()
        for x in range(1, 8):
            for y in range(1, 8):
                assert dt.pair(x, y) == d.pair(x, y)


class TestCongruenceStructure:
    def test_addresses_identify_component(self):
        dt = two_ratio_dovetail()
        for x in range(1, 10):
            for y in range(1, 10):
                z = dt.pair(x, y)
                k = z % dt.arity + 1
                comp = dt.components[k - 1]
                assert dt.arity * comp.pair(x, y) + (k - 1) == z

    def test_unused_addresses_raise(self):
        dt = two_ratio_dovetail()
        used = {dt.pair(x, y) for x in range(1, 30) for y in range(1, 30)}
        probed = 0
        for z in range(1, 200):
            if z in used:
                assert dt.unpair(z) is not None
            else:
                try:
                    pos = dt.unpair(z)
                except NotInImageError:
                    probed += 1
                else:
                    # z decodes to a position outside the scanned window --
                    # legal; verify consistency.
                    assert dt.pair(*pos) == z
        assert probed > 0  # some addresses genuinely unused


class TestCompactnessBound:
    @pytest.mark.parametrize("n", [4, 9, 25, 64])
    def test_spread_bound_holds(self, n):
        # S_A(n) <= m * min_k S_{A_k}(n) + (m - 1).
        dt = three_way_dovetail()
        assert dt.spread(n) <= dt.spread_bound(n)

    def test_dovetail_wins_on_both_ratios(self):
        # The 2-ratio dovetail stores both 1x2-ish and 2x1-ish arrays
        # within ~2x their cell count, where each single A_{a,b} would pay
        # quadratically on its unfavored ratio.
        dt = two_ratio_dovetail()
        k = 5
        wide = dt.spread_for_shape(k, 2 * k)  # favored by component 1
        tall = dt.spread_for_shape(2 * k, k)  # favored by component 2
        cells = 2 * k * k
        assert wide <= 2 * cells + 1
        assert tall <= 2 * cells + 1
        solo = AspectRatioPairing(1, 2)
        assert solo.spread_for_shape(2 * k, k) > 2 * cells + 1

    def test_pointwise_bound(self):
        # A(x, y) <= m * A_k(x, y) + m - 1 for every component k.
        dt = three_way_dovetail()
        m = dt.arity
        for x in range(1, 10):
            for y in range(1, 10):
                z = dt.pair(x, y)
                for comp in dt.components:
                    assert z <= m * comp.pair(x, y) + m - 1


class TestWithHeterogeneousComponents:
    def test_mixed_families(self):
        dt = DovetailMapping([DiagonalPairing(), HyperbolicPairing()])
        dt.check_roundtrip_window(10, 10)

    def test_name_lists_components(self):
        dt = DovetailMapping([DiagonalPairing(), HyperbolicPairing()])
        assert "diagonal" in dt.name and "hyperbolic" in dt.name
