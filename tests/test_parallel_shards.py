"""Parallel (worker-process) execution of the sharded WBC service.

The pool is an *execution mode*, not a different service: with the same
seed, every observable -- reports, task indices, attribution paths, bans,
simulation outcomes -- must match the in-process serial mode exactly.
These tests pin that contract, plus the failure semantics the pool adds
(a worker process dying maps onto the existing shard crash/restore
discipline) and the round-atomicity / bulk-API behavior the batched
router introduces.
"""

from __future__ import annotations

import random

import pytest

from repro.apf.families import TSharp
from repro.errors import (
    AllocationError,
    DomainError,
    ShardDownError,
)
from repro.webcompute.events import EventCounters, ShardCrashed, ShardRestored
from repro.webcompute.sharding import ShardedWBCServer
from repro.webcompute.shardworker import WorkerDiedError
from repro.webcompute.simulation import SimulationConfig, WBCSimulation
from repro.webcompute.task import correct_result
from repro.webcompute.volunteer import Behavior, VolunteerProfile


def make_server(shards: int = 4, workers: int | None = None, **kwargs):
    return ShardedWBCServer(TSharp(), shards=shards, workers=workers, **kwargs)


def drive(server, rounds: int = 3, per_round: int = 6) -> dict:
    """One deterministic scripted workload; returns the observables that
    must be mode-independent."""
    rng = random.Random(97)
    all_ids: list[int] = []
    tasks: dict[int, int] = {}
    for r in range(rounds):
        profiles = [
            VolunteerProfile(f"r{r}v{i}", speed=1.0 + (i % 3))
            if i % 3
            else VolunteerProfile(
                f"r{r}v{i}", behavior=Behavior.MALICIOUS, error_rate=1.0
            )
            for i in range(per_round)
        ]
        ids = server.register_round(profiles)
        all_ids.extend(ids)
        server.tick()
        for vid in ids:
            task = server.request_task(vid)
            tasks[vid] = task.index
        server.tick()
        for vid in ids:
            profile = server.profile_of(vid)
            server.submit_result(
                vid, tasks[vid], profile.compute(tasks[vid], rng)
            )
    report = server.report()
    return {
        "ids": all_ids,
        "clock": server.clock,
        "max_task_index": server.max_task_index,
        "seated": server.seated_count,
        "report": report,
        "banned": [vid for vid in all_ids if server.is_banned(vid)],
        "owners": {idx: server.attribute(idx) for idx in tasks.values()},
        "paths": [
            server.attribution_path(idx).local_index for idx in tasks.values()
        ],
    }


class TestModeParity:
    def test_worker_mode_matches_serial_scripted_workload(self):
        serial = make_server(shards=4, verification_rate=1.0, ban_after_strikes=2)
        with make_server(
            shards=4, workers=2, verification_rate=1.0, ban_after_strikes=2
        ) as parallel:
            assert drive(serial) == drive(parallel)

    def test_worker_count_clamped_to_shards(self):
        with make_server(shards=2, workers=8) as server:
            assert server.workers == 2

    def test_rejects_bad_worker_counts(self):
        from repro.errors import ConfigurationError

        for bad in (0, -1, True, 1.5):
            with pytest.raises(ConfigurationError):
                make_server(shards=2, workers=bad)

    def test_worker_mode_events_match_serial(self):
        serial = make_server(shards=3)
        with make_server(shards=3, workers=2) as parallel:
            cs, cp = EventCounters.attach(serial.bus), EventCounters.attach(
                parallel.bus
            )
            drive(serial, rounds=2)
            drive(parallel, rounds=2)
            assert cs.summary() == cp.summary()


class TestBulkAPIs:
    def test_bulk_results_match_singular_per_item(self):
        for workers in (None, 2):
            with make_server(shards=2, workers=workers) as server:
                a, b = server.register_round(
                    [VolunteerProfile("a"), VolunteerProfile("b")]
                )
                results = server.request_tasks([a, 99, b])
                assert results[0].volunteer_id == a
                assert isinstance(results[1], AllocationError)
                assert results[2].volunteer_id == b
                outcomes = server.submit_results(
                    [
                        (a, results[0].index, correct_result(results[0].index)),
                        # b "returns" a's task: cross-shard forgery.
                        (b, results[0].index, 0),
                        (b, results[2].index, correct_result(results[2].index)),
                    ]
                )
                assert outcomes[0] is None
                assert isinstance(outcomes[1], (AllocationError, DomainError))
                assert outcomes[2] is None
                assert server.attribute_many(
                    [results[0].index, results[2].index]
                ) == [a, b]

    def test_bulk_request_routes_around_down_shard(self):
        for workers in (None, 2):
            with make_server(shards=2, workers=workers) as server:
                a, b = server.register_round(
                    [VolunteerProfile("a"), VolunteerProfile("b")]
                )
                server.crash_shard(server.shard_of(a))
                results = server.request_tasks([a, b])
                assert isinstance(results[0], ShardDownError)
                assert results[1].volunteer_id == b


class TestTornRounds:
    def test_serial_torn_round_rolls_back_and_burns_ids(self):
        """A shard failing mid-commit must not leave earlier shards
        seated or routing-table entries behind; the retry gets fresh
        ids."""
        server = make_server(shards=2)
        boom = ShardDownError("shard 1 died mid-round")

        def failing_register(profiles, ids=None):
            raise boom

        server.engines[1].register_round = failing_register
        profiles = [VolunteerProfile("a"), VolunteerProfile("b")]
        first_id = server._next_volunteer_id
        with pytest.raises(ShardDownError):
            server.register_round(profiles)
        assert server.seated_count == 0
        assert server.engines[0].seated_count == 0

        del server.engines[1].register_round  # restore the real method
        ids = server.register_round(profiles)
        assert len(ids) == 2
        assert server.seated_count == 2
        # The torn round's ids were burned, never reused.
        assert min(ids) >= first_id + len(profiles)

    def test_serial_torn_round_replay_agrees(self):
        """The compensating departs are journaled, so a crash+restore
        after a torn round replays to the same (empty-round) state."""
        server = make_server(shards=2)

        def failing_register(profiles, ids=None):
            raise ShardDownError("shard 1 died mid-round")

        real = server.engines[1].register_round
        server.engines[1].register_round = failing_register
        with pytest.raises(ShardDownError):
            server.register_round(
                [VolunteerProfile("a"), VolunteerProfile("b")]
            )
        server.engines[1].register_round = real
        seated_before = server.engines[0].seated_count
        server.crash_shard(0)
        server.restore_shard(0)
        assert server.engines[0].seated_count == seated_before == 0

    def test_worker_torn_round_rolls_back_committed_shards(self):
        """The worker hosting shard 1 dies between validation and commit:
        shard 0's already-seated bucket is rolled back, shard 1 is marked
        crashed, and after restoring it a retried round seats cleanly."""
        with make_server(shards=2, workers=2) as server:
            proxy = server.engines[1]
            handle = server._handle_for(1)

            class DyingProxy:
                """Delegates to the real shard-1 proxy, but kills its
                worker process right before the commit call -- the
                validate-then-die window a real process death can hit."""

                def __getattr__(self, name):
                    return getattr(proxy, name)

                def register_round(self, profiles, ids=None):
                    handle.process.kill()
                    handle.process.join(timeout=5.0)
                    return proxy.register_round(profiles, ids=ids)

            server.engines[1] = DyingProxy()
            with pytest.raises(ShardDownError):
                server.register_round(
                    [VolunteerProfile("a"), VolunteerProfile("b")]
                )
            assert server.is_shard_alive(0)
            assert not server.is_shard_alive(1)
            assert server.engines[0].seated_count == 0

            server.restore_shard(1)
            ids = server.register_round(
                [VolunteerProfile("a"), VolunteerProfile("b")]
            )
            assert server.seated_count == 2
            task = server.request_task(ids[0])
            assert server.attribute(task.index) == ids[0]


class TestWorkerDeath:
    def test_dead_worker_crashes_its_shards_and_restores(self):
        with make_server(shards=4, workers=2) as server:
            counters = EventCounters.attach(server.bus)
            ids = server.register_round(
                [VolunteerProfile(f"v{i}") for i in range(8)]
            )
            tasks = {vid: server.request_task(vid) for vid in ids}
            server.checkpoint_all()
            # Worker 0 hosts shards 0 and 2 (shard % workers).
            server._workers[0].process.kill()
            server._workers[0].process.join(timeout=5.0)
            with pytest.raises(ShardDownError):
                server.request_task(ids[0])  # shard 0: discovers the death
            assert not server.is_shard_alive(0)
            assert not server.is_shard_alive(2)
            assert server.is_shard_alive(1)
            assert counters.count(ShardCrashed) == 2
            # Both shards restore into one respawned worker process.
            server.restore_shard(0)
            server.restore_shard(2)
            assert counters.count(ShardRestored) == 2
            assert server.alive_shards() == [0, 1, 2, 3]
            for vid in ids:
                task = tasks[vid]
                assert server.attribute(task.index) == vid
            # The respawned worker serves fresh traffic.
            assert server.request_task(ids[0]).volunteer_id == ids[0]

    def test_worker_died_error_is_shard_down(self):
        assert issubclass(WorkerDiedError, ShardDownError)

    def test_close_is_idempotent_and_kills_workers(self):
        server = make_server(shards=2, workers=2)
        procs = [h.process for h in server._workers]
        server.close()
        server.close()
        for proc in procs:
            assert not proc.is_alive()


class TestWorkerLeases:
    def test_leases_reap_and_reissue_in_worker_mode(self):
        with make_server(shards=2, workers=2, lease_ticks=2) as server:
            a, b = server.register_round(
                [VolunteerProfile("a"), VolunteerProfile("b")]
            )
            # Same-shard pair so the reaper has an idle reissue target.
            c, d = server.register_round(
                [VolunteerProfile("c"), VolunteerProfile("d")]
            )
            task = server.request_task(a)
            for _ in range(3):
                server.tick()
            reissued = server.reap_expired()
            assert [t.index for t in reissued] == [task.index]
            target = reissued[0].reissued_to
            assert target is not None and target != a
            # Attribution still names the original assignee.
            assert server.attribute(task.index) == a
            report = server.report()
            assert report.tasks_reissued == 1


class TestSimulationDifferential:
    CONFIG = dict(
        ticks=50,
        initial_volunteers=20,
        shards=4,
        seed=2002,
        checkpoint_every=8,
        faults="corrupt@10:2,crash@20:1,restore@30:1",
    )

    def _outcome(self, workers):
        sim = WBCSimulation(
            TSharp(), SimulationConfig(**self.CONFIG, workers=workers)
        )
        try:
            return sim.run()
        finally:
            sim.close()

    def test_pool_outcome_identical_to_serial(self):
        """The tentpole differential: same seed and fault schedule, the
        worker pool produces the exact SimulationOutcome the in-process
        server does -- tasks, bans, attribution checks, crash/restore
        counts, everything."""
        assert self._outcome(None) == self._outcome(2)

    def test_pool_outcome_identical_under_lease_fault_soup(self):
        config = dict(
            self.CONFIG,
            ticks=60,
            lease_ticks=4,
            faults="corrupt@10:2,crash@20:1,restore@30:1,drop=0.1,delay=0.15:3",
        )
        outcomes = []
        for workers in (None, 2):
            sim = WBCSimulation(
                TSharp(), SimulationConfig(**config, workers=workers)
            )
            try:
                outcomes.append(sim.run())
            finally:
                sim.close()
        assert outcomes[0] == outcomes[1]

    def test_attribution_exact_under_pool(self):
        outcome = self._outcome(2)
        assert outcome.attribution_checks > 0
        assert outcome.attribution_failures == 0
