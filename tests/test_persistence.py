"""Tests for WBC server snapshot/restore."""

from __future__ import annotations

import pytest

from repro.apf.constructor import ConstructedAPF
from repro.apf.families import LinearCopyIndex, TSharp, TStar
from repro.errors import ConfigurationError
from repro.webcompute.persistence import dumps, loads, restore, snapshot
from repro.webcompute.server import WBCServer
from repro.webcompute.volunteer import Behavior, VolunteerProfile


def busy_server() -> WBCServer:
    """A server with history: registrations, work, a ban, a departure."""
    server = WBCServer(TSharp(), verification_rate=1.0, ban_after_strikes=2, seed=5)
    good, bad, gone = server.register_round(
        [
            VolunteerProfile("good", speed=2.0),
            VolunteerProfile("bad", speed=1.0, behavior=Behavior.MALICIOUS, error_rate=1.0),
            VolunteerProfile("gone", speed=0.7),
        ]
    )
    server.tick()
    for _ in range(3):
        t = server.request_task(good)
        server.submit_result(good, t.index, t.expected_result)
    for _ in range(2):
        t = server.request_task(bad)
        server.submit_result(bad, t.index, t.expected_result ^ 1)
    t = server.request_task(gone)
    server.submit_result(gone, t.index, t.expected_result)
    server.depart(gone)
    server.tick()
    return server


class TestRoundTrip:
    def test_json_roundtrip_is_stable(self):
        server = busy_server()
        text = dumps(server)
        assert dumps(loads(text)) == text

    def test_report_preserved(self):
        server = busy_server()
        restored = loads(dumps(server))
        assert restored.report() == server.report()
        assert restored.clock == server.clock
        assert restored.max_task_index == server.max_task_index

    def test_ban_status_preserved(self):
        server = busy_server()
        restored = loads(dumps(server))
        for vid in (1, 2, 3):
            assert restored.ledger.is_banned(vid) == server.ledger.is_banned(vid)

    def test_attribution_preserved_including_departed(self):
        server = busy_server()
        restored = loads(dumps(server))
        for task in server.ledger.tasks():
            assert restored.attribute(task.index) == server.attribute(task.index)

    def test_next_task_continues_where_left_off(self):
        server = busy_server()
        restored = loads(dumps(server))
        original_next = server.request_task(1).index
        restored_next = restored.request_task(1).index
        assert restored_next == original_next

    def test_new_registration_after_restore_recycles_rows(self):
        server = busy_server()
        restored = loads(dumps(server))
        vid = restored.register(VolunteerProfile("newcomer"))
        # The departed volunteer's row (3) is recycled, serials resumed.
        assert restored.frontend.row_of(vid) == 3
        task = restored.request_task(vid)
        # 'gone' consumed exactly one serial; the newcomer resumes at 2.
        assert task.serial == 2

    def test_verification_rng_continuity(self):
        # The ledger's sampling RNG state survives: the restored server
        # makes the same verify/skip decisions as the original would.
        server = busy_server()
        restored = loads(dumps(server))
        for s in (server, restored):
            t = s.request_task(1)
            s.submit_result(1, t.index, t.expected_result)
        assert server.report() == restored.report()


class TestValidation:
    def test_rejects_unknown_version(self):
        server = busy_server()
        data = snapshot(server)
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            restore(data)

    def test_rejects_unregistered_apf(self):
        server = WBCServer(ConstructedAPF(LinearCopyIndex()))
        with pytest.raises(ConfigurationError):
            snapshot(server)

    def test_star_apf_roundtrips(self):
        server = WBCServer(TStar())
        vid = server.register(VolunteerProfile("a"))
        t = server.request_task(vid)
        restored = loads(dumps(server))
        assert restored.allocator.apf.name == "apf-star"
        assert restored.attribute(t.index) == vid
