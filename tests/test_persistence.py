"""Tests for WBC server snapshot/restore."""

from __future__ import annotations

import pytest

from repro.apf.constructor import ConstructedAPF
from repro.apf.families import LinearCopyIndex, TSharp, TStar
from repro.errors import ConfigurationError
from repro.webcompute.persistence import dumps, loads, restore, snapshot
from repro.webcompute.server import WBCServer
from repro.webcompute.volunteer import Behavior, VolunteerProfile


def busy_server() -> WBCServer:
    """A server with history: registrations, work, a ban, a departure."""
    server = WBCServer(TSharp(), verification_rate=1.0, ban_after_strikes=2, seed=5)
    good, bad, gone = server.register_round(
        [
            VolunteerProfile("good", speed=2.0),
            VolunteerProfile("bad", speed=1.0, behavior=Behavior.MALICIOUS, error_rate=1.0),
            VolunteerProfile("gone", speed=0.7),
        ]
    )
    server.tick()
    for _ in range(3):
        t = server.request_task(good)
        server.submit_result(good, t.index, t.expected_result)
    for _ in range(2):
        t = server.request_task(bad)
        server.submit_result(bad, t.index, t.expected_result ^ 1)
    t = server.request_task(gone)
    server.submit_result(gone, t.index, t.expected_result)
    server.depart(gone)
    server.tick()
    return server


class TestRoundTrip:
    def test_json_roundtrip_is_stable(self):
        server = busy_server()
        text = dumps(server)
        assert dumps(loads(text)) == text

    def test_report_preserved(self):
        server = busy_server()
        restored = loads(dumps(server))
        assert restored.report() == server.report()
        assert restored.clock == server.clock
        assert restored.max_task_index == server.max_task_index

    def test_ban_status_preserved(self):
        server = busy_server()
        restored = loads(dumps(server))
        for vid in (1, 2, 3):
            assert restored.ledger.is_banned(vid) == server.ledger.is_banned(vid)

    def test_attribution_preserved_including_departed(self):
        server = busy_server()
        restored = loads(dumps(server))
        for task in server.ledger.tasks():
            assert restored.attribute(task.index) == server.attribute(task.index)

    def test_next_task_continues_where_left_off(self):
        server = busy_server()
        restored = loads(dumps(server))
        original_next = server.request_task(1).index
        restored_next = restored.request_task(1).index
        assert restored_next == original_next

    def test_new_registration_after_restore_recycles_rows(self):
        server = busy_server()
        restored = loads(dumps(server))
        vid = restored.register(VolunteerProfile("newcomer"))
        # The departed volunteer's row (3) is recycled, serials resumed.
        assert restored.frontend.row_of(vid) == 3
        task = restored.request_task(vid)
        # 'gone' consumed exactly one serial; the newcomer resumes at 2.
        assert task.serial == 2

    def test_verification_rng_continuity(self):
        # The ledger's sampling RNG state survives: the restored server
        # makes the same verify/skip decisions as the original would.
        server = busy_server()
        restored = loads(dumps(server))
        for s in (server, restored):
            t = s.request_task(1)
            s.submit_result(1, t.index, t.expected_result)
        assert server.report() == restored.report()


class TestValidation:
    def test_rejects_unknown_version(self):
        server = busy_server()
        data = snapshot(server)
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            restore(data)

    def test_rejects_unregistered_apf(self):
        server = WBCServer(ConstructedAPF(LinearCopyIndex()))
        with pytest.raises(ConfigurationError):
            snapshot(server)

    def test_star_apf_roundtrips(self):
        server = WBCServer(TStar())
        vid = server.register(VolunteerProfile("a"))
        t = server.request_task(vid)
        restored = loads(dumps(server))
        assert restored.allocator.apf.name == "apf-star"
        assert restored.attribute(t.index) == vid

def as_v1_envelope(data: dict) -> dict:
    """Down-convert a v2 envelope to the exact v1 on-disk layout: flat
    engine keys at the top level, component rows as the old field-named
    dicts (what PR 5's ``snapshot`` wrote)."""
    eng = data["engine"]
    out = {"version": 1, "apf": data["apf"]}
    for key in (
        "clock",
        "max_task_index",
        "next_volunteer_id",
        "lease_ticks",
        "verification_rate",
        "ban_after_strikes",
        "rng_state",
        "profiles",
    ):
        out[key] = eng[key]
    out["contracts"] = [
        dict(zip(("row", "base", "stride", "next_serial"), c))
        for c in eng["contracts"]
    ]
    fe = dict(eng["frontend"])
    fe["epochs"] = {
        row: [
            dict(zip(("volunteer_id", "first_serial", "last_serial"), e))
            for e in epochs
        ]
        for row, epochs in fe["epochs"].items()
    }
    out["frontend"] = fe
    ld = dict(eng["ledger"])
    ld["records"] = [
        dict(
            zip(
                (
                    "volunteer_id",
                    "issued",
                    "returned",
                    "verified",
                    "strikes",
                    "banned",
                    "banned_at",
                ),
                r,
            )
        )
        for r in ld["records"]
    ]
    ld["tasks"] = [
        dict(
            zip(
                (
                    "index",
                    "volunteer_id",
                    "serial",
                    "issued_at",
                    "status",
                    "returned_at",
                    "reported_result",
                    "returned_by",
                    "lease_expires_at",
                    "reissued_to",
                    "reissued_at",
                ),
                t,
            )
        )
        for t in ld["tasks"]
    ]
    out["ledger"] = ld
    return out


class TestEnvelopeV2:
    def test_v1_snapshot_loads_via_shim(self):
        # A snapshot written by the PR 5 envelope (flat keys, dict rows)
        # restores to the same server the v2 envelope produces.
        server = busy_server()
        v2 = snapshot(server)
        restored = restore(as_v1_envelope(v2))
        assert snapshot(restored) == v2

    def test_v1_restores_identical_behavior(self):
        server = busy_server()
        restored = restore(as_v1_envelope(snapshot(server)))
        assert restored.report() == server.report()
        for task in server.ledger.tasks():
            assert restored.attribute(task.index) == server.attribute(task.index)
        assert restored.request_task(1).index == server.request_task(1).index

    def test_envelope_carries_every_engine_key(self):
        # The envelope-drift regression: v1 re-keyed the engine snapshot
        # field-by-field, silently dropping any state the engine later
        # learned to persist.  v2 must delegate wholesale -- key set
        # equality with a live snapshot_state() catches the next drift.
        server = busy_server()
        data = snapshot(server)
        assert set(data["engine"]) == set(server.engine.snapshot_state())

    def test_envelope_engine_state_verbatim(self):
        server = busy_server()
        assert snapshot(server)["engine"] == server.engine.snapshot_state()
