"""Tests for reshape workloads and the comparison harness."""

from __future__ import annotations

import pytest

from repro.arrays.extendible import ExtendibleArray
from repro.arrays.metrics import run_comparison
from repro.arrays.naive import NaiveRowMajorArray
from repro.arrays.workloads import (
    ReshapeKind,
    ReshapeOp,
    apply_workload,
    column_growth,
    random_walk,
    square_growth,
    staircase_growth,
)
from repro.core.diagonal import DiagonalPairing
from repro.core.squareshell import SquareShellPairing
from repro.errors import ConfigurationError, DomainError


class TestGenerators:
    def test_staircase_alternates(self):
        kinds = [op.kind for op in staircase_growth(6)]
        assert kinds == [
            ReshapeKind.APPEND_ROW,
            ReshapeKind.APPEND_COL,
        ] * 3

    def test_column_growth_is_one_op(self):
        ops = column_growth(17)
        assert len(ops) == 1 and ops[0].repeat == 17

    def test_square_growth_reaches_target(self):
        arr = ExtendibleArray(SquareShellPairing(), 1, 1, fill=0)
        apply_workload(arr, square_growth(9))
        assert arr.shape == (9, 9)

    def test_random_walk_is_replayable(self):
        wl = random_walk(300, seed=5)
        arr = ExtendibleArray(DiagonalPairing(), 1, 1)
        steps = apply_workload(arr, wl)
        assert steps == 300
        assert arr.rows >= 1 and arr.cols >= 1

    def test_random_walk_deterministic(self):
        assert random_walk(100, seed=9) == random_walk(100, seed=9)
        assert random_walk(100, seed=9) != random_walk(100, seed=10)

    def test_random_walk_respects_max_side(self):
        wl = random_walk(500, seed=1, max_side=5)
        arr = ExtendibleArray(SquareShellPairing(), 1, 1)
        rows = cols = 1
        for op in wl:
            apply_workload(arr, [op])
            rows, cols = arr.shape
            assert 1 <= rows and 1 <= cols
        assert max(rows, cols) <= 5

    def test_rejects_bad_args(self):
        with pytest.raises(DomainError):
            staircase_growth(0)
        with pytest.raises(DomainError):
            ReshapeOp(ReshapeKind.APPEND_ROW, repeat=0)
        with pytest.raises(ConfigurationError):
            random_walk(10, grow_bias=1.5)


class TestApplyWorkload:
    def test_counts_elementary_steps(self):
        arr = ExtendibleArray(SquareShellPairing(), 1, 1)
        steps = apply_workload(
            arr, [ReshapeOp(ReshapeKind.APPEND_ROW, 3), ReshapeOp(ReshapeKind.APPEND_COL, 2)]
        )
        assert steps == 5
        assert arr.shape == (4, 3)

    def test_works_on_naive_too(self):
        arr = NaiveRowMajorArray(1, 1, fill=0)
        apply_workload(arr, staircase_growth(8))
        assert arr.shape == (5, 5)


class TestRunComparison:
    def test_report_rows(self):
        results = run_comparison(
            [DiagonalPairing(), SquareShellPairing()], staircase_growth(10)
        )
        names = [r.implementation for r in results]
        assert names == ["diagonal", "square-shell", "naive-row-major"]

    def test_pf_rows_have_zero_moves(self):
        results = run_comparison([SquareShellPairing()], random_walk(100, seed=3))
        pf_row = results[0]
        naive_row = results[-1]
        assert pf_row.moves == 0
        assert naive_row.moves > 0
        assert pf_row.final_shape == naive_row.final_shape

    def test_moves_per_step(self):
        # Rows first (so the array is tall), then column growth: every
        # column append remaps all rows past the first.
        workload = [ReshapeOp(ReshapeKind.APPEND_ROW, 9)] + column_growth(15)
        results = run_comparison([SquareShellPairing()], workload)
        naive = results[-1]
        assert naive.moves_per_step > 1.0
        assert results[0].moves_per_step == 0.0

    def test_spread_vs_compactness_tradeoff(self):
        # Same workload: naive stays perfectly compact; PFs pay spread.
        results = run_comparison([DiagonalPairing()], staircase_growth(20))
        diag, naive = results[0], results[-1]
        assert naive.utilization == 1.0
        assert diag.high_water_mark > naive.high_water_mark
