"""Smoke tests: every example script runs to completion and prints its
headline results.  Examples are documentation; broken documentation is a
bug."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["Figure 2", "valid PF (Theorem 3.1)", "Additive PFs", "lower bound"]),
    (
        "extendible_table.py",
        ["element moves        0", "naive", "hyperbolic"],
    ),
    (
        "web_computing.py",
        ["banned after 2 strikes: True", "attribution", "max task index"],
    ),
    (
        "design_a_pairing_function.py",
        ["Theorem", "Cantor", "excluded"],
    ),
    (
        "godel_encoding.py",
        ["(12, 34)", "every integer IS some tuple", "godel"],
    ),
    (
        "relational_tables.py",
        ["element moves across all DDL: 0", "hyperbolic", "Section 3.2.3"],
    ),
]


@pytest.mark.parametrize("script,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for needle in expected:
        assert needle in proc.stdout, f"{script}: missing {needle!r} in output"
