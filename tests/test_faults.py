"""Tests for the fault-spec grammar and the seeded injector
(repro.webcompute.faults).

The property the whole chaos layer leans on: the injector is a pure
function of ``(spec, seed, call sequence)``.  Same inputs, same faults --
that is what makes a failing chaos schedule replayable, and what keeps a
scheduled-faults-only run consuming *zero* injector randomness so the
crash-recovery differential test can compare it to a fault-free run.
"""

from __future__ import annotations

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.errors import ConfigurationError
from repro.webcompute.faults import FaultInjector, FaultSpec, ReturnFate
from repro.webcompute.simulation import SimulationConfig


class TestFaultSpecParse:
    def test_empty_and_whitespace_specs(self):
        assert FaultSpec.parse("").is_empty
        assert FaultSpec.parse("  ,  , ").is_empty

    def test_full_grammar_round_trip(self):
        spec = FaultSpec.parse(
            "crash@40:1, restore@55:1, corrupt@20:2, drop=0.05, delay=0.1:3"
        )
        assert [(f.kind, f.tick, f.arg) for f in spec.scheduled] == [
            ("corrupt", 20, 2),
            ("crash", 40, 1),
            ("restore", 55, 1),
        ]
        assert spec.drop_rate == 0.05
        assert spec.delay_rate == 0.1
        assert spec.delay_ticks == 3
        assert not spec.is_empty

    def test_within_tick_order_is_corrupt_crash_restore(self):
        spec = FaultSpec.parse("restore@7:0,crash@7:1,corrupt@7:3")
        assert [f.kind for f in spec.scheduled] == ["corrupt", "crash", "restore"]

    @pytest.mark.parametrize(
        "bad",
        [
            "crash@0:1",  # tick must be positive
            "crash@-3:1",
            "crash@4:-1",  # negative shard
            "crash@4",  # missing arg
            "crash@x:1",  # non-integer tick
            "restore@:1",
            "corrupt@5:a",
            "drop=1.5",  # rate out of range
            "drop=-0.1",
            "drop=abc",
            "delay=0.5:0",  # delay ticks must be positive
            "delay=0.5:-2",
            "delay=0.5",  # missing ticks
            "delay=2.0:3",
            "explode@4:1",  # unknown clause
            "nonsense",
        ],
    )
    def test_malformed_clauses_raise_with_context(self, bad):
        with pytest.raises(ConfigurationError) as excinfo:
            FaultSpec.parse(bad)
        assert "bad fault clause" in str(excinfo.value)

    def test_simulation_config_validates_fault_targets(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(shards=1, faults="crash@5:0")  # needs shards >= 2
        with pytest.raises(ConfigurationError):
            SimulationConfig(shards=2, faults="crash@5:2")  # no such shard
        SimulationConfig(shards=2, faults="crash@5:1,restore@9:1")  # fine


class TestInjectorDeterminism:
    SPEC = "corrupt@10:2,drop=0.2,delay=0.3:4"

    def make(self, seed=42):
        return FaultInjector(FaultSpec.parse(self.SPEC), seed=seed)

    def test_same_seed_same_streams(self):
        a, b = self.make(), self.make()
        candidates = list(range(1, 20))
        assert a.corruption_targets(2, candidates) == b.corruption_targets(
            2, candidates
        )
        assert [a.return_fate() for _ in range(50)] == [
            b.return_fate() for _ in range(50)
        ]

    def test_different_seeds_diverge(self):
        a, b = self.make(seed=1), self.make(seed=2)
        fates_a = [a.return_fate() for _ in range(100)]
        fates_b = [b.return_fate() for _ in range(100)]
        assert fates_a != fates_b

    def test_scheduled_at_filters_by_tick(self):
        inj = self.make()
        assert [f.kind for f in inj.scheduled_at(10)] == ["corrupt"]
        assert inj.scheduled_at(11) == []

    def test_corruption_targets_capped_at_pool(self):
        inj = self.make()
        assert inj.corruption_targets(5, [3, 1, 2]) == [1, 2, 3]
        picked = inj.corruption_targets(2, [5, 1, 9, 3])
        assert len(picked) == 2
        assert picked == sorted(picked)
        assert set(picked) <= {1, 3, 5, 9}

    def test_empty_spec_consumes_no_randomness(self):
        """An all-zero spec must leave the RNG untouched: a scheduled-
        faults-only injector stays bit-comparable to a fault-free one."""
        inj = FaultInjector(FaultSpec.parse("crash@5:0,restore@5:0"), seed=7)
        state_before = inj._rng.getstate()
        for _ in range(100):
            assert inj.return_fate() == ReturnFate()
        assert inj._rng.getstate() == state_before

    def test_injector_rng_is_not_the_simulation_stream(self):
        """The injector perturbs its seed, so even an identical seed value
        yields a stream independent of ``random.Random(seed)``."""
        import random

        seed = 123
        inj = FaultInjector(FaultSpec.parse("drop=0.5"), seed=seed)
        plain = random.Random(seed)
        inj_draws = [inj.return_fate().dropped for _ in range(64)]
        plain_draws = [plain.random() < 0.5 for _ in range(64)]
        assert inj_draws != plain_draws


@settings(max_examples=50, deadline=None)
@given(
    ticks=st.lists(st.integers(1, 50), min_size=0, max_size=5),
    drop=st.one_of(st.just(0.0), st.floats(0.0, 1.0, allow_nan=False)),
)
def test_parse_is_total_on_generated_specs(ticks, drop):
    """Any spec assembled from valid clauses parses, sorts its schedule,
    and reports is_empty correctly."""
    clauses = [f"corrupt@{t}:1" for t in ticks]
    if drop > 0.0:
        clauses.append(f"drop={drop}")
    spec = FaultSpec.parse(",".join(clauses))
    assert len(spec.scheduled) == len(ticks)
    assert [f.tick for f in spec.scheduled] == sorted(ticks)
    assert spec.is_empty == (not ticks and drop == 0.0)
