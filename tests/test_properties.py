"""Property-based tests (hypothesis) on the library's core invariants.

Four invariant families:

1. **Pairing laws** -- for every mapping: roundtrip both ways, positivity,
   injectivity on random batches, spread-definition consistency.
2. **Number-theory laws** -- the primitives agree with their definitions
   and with each other on arbitrary integers.
3. **APF laws** -- the additive form, the 2-adic signature, the Lemma 4.1
   decomposition, relation (4.2).
4. **Substrate models** -- the extendible array vs the naive baseline as a
   model-based equivalence under arbitrary op sequences; the hash store vs
   a dict model.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.apf.constructor import ConstructedAPF
from repro.apf.families import (
    HalfSquareCopyIndex,
    LinearCopyIndex,
    TBracket,
    TSharp,
    TStar,
)
from repro.arrays.extendible import ExtendibleArray
from repro.arrays.hashed import HashedArrayStore
from repro.arrays.naive import NaiveRowMajorArray
from repro.core.aspectratio import AspectRatioPairing
from repro.core.diagonal import DiagonalPairing
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.registry import available_names, get_pairing
from repro.core.squareshell import SquareShellPairing
from repro.numbertheory.bits import odd_part, two_adic_valuation
from repro.numbertheory.divisor_sums import (
    divisor_summatory,
    smallest_n_with_summatory_at_least,
)
from repro.numbertheory.divisors import divisor_count, divisors
from repro.numbertheory.integers import triangular, triangular_root
from repro.numbertheory.progressions import decompose_odd, recompose_odd

# Mapping pool for pairing-law properties, drawn from the registry so a
# newly registered mapping joins automatically (plus the parameterized
# aspect-ratio instances, which have no fixed registry name).  Hyperbolic
# is the one exclusion: its pair is O(sqrt(xy)) per call, so it keeps the
# dedicated small-domain tests below; test_pool_covers_registry pins the
# correspondence so an unpooled registry entry fails the suite.
FAST_MAPPINGS = [
    get_pairing(name) for name in available_names() if name != "hyperbolic"
] + [
    AspectRatioPairing(1, 2),
    AspectRatioPairing(3, 1),
]

# Per-mapping coordinate caps bound *time*, not exactness: APF addresses
# grow exponentially in x (bignums stay exact but huge), so the APFs get
# a smaller coordinate domain than the polynomial shell-walkers.
FAST_CAPS = [
    2000 if pf.name.startswith("apf") else 10**6 for pf in FAST_MAPPINGS
]

coords = st.integers(min_value=1, max_value=10**6)
small_coords = st.integers(min_value=1, max_value=3000)
addresses = st.integers(min_value=1, max_value=10**9)
small_addresses = st.integers(min_value=1, max_value=200_000)


@st.composite
def pooled_coords(draw):
    """A pool index plus coordinates drawn inside that mapping's cap."""
    idx = draw(st.integers(0, len(FAST_MAPPINGS) - 1))
    cap = FAST_CAPS[idx]
    return idx, draw(st.integers(1, cap)), draw(st.integers(1, cap))


# ----------------------------------------------------------------------
# 1. Pairing laws
# ----------------------------------------------------------------------


def test_pool_covers_registry():
    """Every registered name is exercised by the pairing-law pool (or by
    hyperbolic's dedicated small-domain tests)."""
    pooled = {pf.name for pf in FAST_MAPPINGS} | {"hyperbolic"}
    missing = set(available_names()) - pooled
    assert not missing, f"registry entries missing from the pool: {sorted(missing)}"


@given(case=pooled_coords())
def test_roundtrip_forward(case):
    idx, x, y = case
    pf = FAST_MAPPINGS[idx]
    assert pf.unpair(pf.pair(x, y)) == (x, y)


@given(z=addresses, idx=st.integers(0, len(FAST_MAPPINGS) - 1))
def test_roundtrip_backward(z, idx):
    pf = FAST_MAPPINGS[idx]
    x, y = pf.unpair(z)
    assert x >= 1 and y >= 1
    assert pf.pair(x, y) == z


@given(x=small_coords, y=small_coords)
def test_hyperbolic_roundtrip_forward(x, y):
    h = HyperbolicPairing()
    assert h.unpair(h.pair(x, y)) == (x, y)


@given(z=small_addresses)
def test_hyperbolic_roundtrip_backward(z):
    h = HyperbolicPairing()
    x, y = h.unpair(z)
    assert h.pair(x, y) == z


@st.composite
def pooled_pairs(draw):
    idx = draw(st.integers(0, len(FAST_MAPPINGS) - 1))
    cap = FAST_CAPS[idx]
    pair = st.tuples(st.integers(1, cap), st.integers(1, cap))
    return idx, draw(st.lists(pair, min_size=2, max_size=30, unique=True))


@given(case=pooled_pairs())
def test_injectivity_on_batches(case):
    idx, pairs = case
    pf = FAST_MAPPINGS[idx]
    values = [pf.pair(x, y) for x, y in pairs]
    assert len(set(values)) == len(values)


@given(x=coords, y=coords)
def test_diagonal_vectorized_agrees_with_scalar(x, y):
    d = DiagonalPairing()
    import numpy as np

    if d.pair(x, y) < 2**62:  # stay within the int64 fast path
        assert int(d.pair_array(np.array([x]), np.array([y]))[0]) == d.pair(x, y)


# ----------------------------------------------------------------------
# 2. Number-theory laws
# ----------------------------------------------------------------------


@given(n=st.integers(1, 10**12))
def test_valuation_odd_part_reconstruct(n):
    assert (1 << two_adic_valuation(n)) * odd_part(n) == n
    assert odd_part(n) % 2 == 1


@given(z=st.integers(0, 10**12))
def test_triangular_root_bracket(z):
    s = triangular_root(z)
    assert triangular(s) <= z < triangular(s + 1)


@given(n=st.integers(1, 5000))
def test_divisor_count_consistency(n):
    assert divisor_count(n) == len(divisors(n))


@given(n=st.integers(1, 3000))
def test_summatory_increments_by_divisor_count(n):
    assert divisor_summatory(n) - divisor_summatory(n - 1) == divisor_count(n)


@given(target=st.integers(1, 10**6))
def test_summatory_inverse_bracket(target):
    n = smallest_n_with_summatory_at_least(target)
    assert divisor_summatory(n) >= target
    assert n == 1 or divisor_summatory(n - 1) < target


@given(odd=st.integers(0, 10**9), c=st.integers(1, 20))
def test_lemma_4_1_roundtrip(odd, c):
    odd = 2 * odd + 1  # force odd
    n, r = decompose_odd(odd, c)
    assert r % 2 == 1 and r < (1 << c)
    assert recompose_odd(n, r, c) == odd


# ----------------------------------------------------------------------
# 3. APF laws
# ----------------------------------------------------------------------

APFS = [TBracket(1), TBracket(3), TSharp(), TStar()]


@given(x=st.integers(1, 500), y=st.integers(1, 100), idx=st.integers(0, 3))
def test_additive_form(x, y, idx):
    apf = APFS[idx]
    assert apf.pair(x, y) == apf.base(x) + (y - 1) * apf.stride(x)


@given(x=st.integers(1, 500), y=st.integers(1, 100), idx=st.integers(0, 3))
def test_signature_law(x, y, idx):
    apf = APFS[idx]
    # Trailing zeros of T(x, y) identify x's group (Theorem 4.2's proof).
    assert two_adic_valuation(apf.pair(x, y)) == apf.group_of(x)


@given(x=st.integers(1, 2000), idx=st.integers(0, 3))
def test_relation_4_2(x, idx):
    apf = APFS[idx]
    assert apf.base(x) < apf.stride(x)


@given(x=st.integers(1, 300))
def test_constructor_equals_closed_forms(x):
    generic_sharp = ConstructedAPF(LinearCopyIndex())
    generic_star = ConstructedAPF(HalfSquareCopyIndex())
    assert generic_sharp.base(x) == TSharp().base(x)
    assert generic_star.stride(x) == TStar().stride(x)


# ----------------------------------------------------------------------
# 4. Substrate models
# ----------------------------------------------------------------------

array_ops = st.lists(
    st.one_of(
        st.just(("append_row",)),
        st.just(("append_col",)),
        st.just(("delete_row",)),
        st.just(("delete_col",)),
        st.tuples(
            st.just("set"),
            st.integers(1, 12),
            st.integers(1, 12),
            st.integers(0, 10**6),
        ),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=array_ops)
def test_extendible_equals_naive_model(ops):
    """The PF array and the remapping baseline must be observationally
    identical under any op sequence -- while the PF array never moves."""
    ext = ExtendibleArray(SquareShellPairing(), 3, 3, fill=0)
    naive = NaiveRowMajorArray(3, 3, fill=0)
    for op in ops:
        kind = op[0]
        if kind == "set":
            _, x, y, v = op
            rows, cols = ext.shape
            if 1 <= x <= rows and 1 <= y <= cols:
                ext[x, y] = v
                naive[x, y] = v
        else:
            rows, cols = ext.shape
            if kind == "delete_row" and rows <= 1:
                continue
            if kind == "delete_col" and cols <= 1:
                continue
            getattr(ext, kind)()
            getattr(naive, kind)()
        assert ext.shape == naive.shape
    assert ext.to_lists() == naive.to_lists()
    assert ext.space.traffic.moves == 0


hash_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "get", "delete"]),
        st.integers(1, 25),
        st.integers(1, 25),
        st.integers(0, 1000),
    ),
    min_size=1,
    max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(ops=hash_ops)
def test_hash_store_equals_dict_model(ops):
    store = HashedArrayStore()
    model: dict[tuple[int, int], int] = {}
    for kind, x, y, v in ops:
        if kind == "put":
            store.put(x, y, v)
            model[(x, y)] = v
        elif kind == "get":
            assert store.get(x, y, -1) == model.get((x, y), -1)
        else:
            assert store.delete(x, y) == ((x, y) in model)
            model.pop((x, y), None)
    assert len(store) == len(model)
    assert dict(store.items()) == model


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 8),
    cols=st.integers(1, 8),
    idx=st.integers(0, len(FAST_MAPPINGS) - 1),
)
def test_window_addresses_distinct(rows, cols, idx):
    pf = FAST_MAPPINGS[idx]
    addrs = [
        pf.pair(x, y) for x in range(1, rows + 1) for y in range(1, cols + 1)
    ]
    assert len(set(addrs)) == rows * cols
