"""Tests for the radix-r APF constructor and r-adic valuations."""

from __future__ import annotations

import pytest

from repro.apf.constructor import ConstructedAPF
from repro.apf.families import (
    ConstantCopyIndex,
    HalfSquareCopyIndex,
    LinearCopyIndex,
)
from repro.apf.radix import RadixConstructedAPF
from repro.errors import ConfigurationError, DomainError
from repro.numbertheory.valuations import (
    decompose_radix,
    radix_valuation,
    unit_part,
)


class TestValuations:
    @pytest.mark.parametrize("r", [2, 3, 5, 10])
    def test_decomposition_reconstructs(self, r):
        for n in range(1, 500):
            v, m = decompose_radix(n, r)
            assert r**v * m == n
            assert m % r != 0

    @pytest.mark.parametrize("r", [2, 3, 7])
    def test_decomposition_unique(self, r):
        seen = set()
        for n in range(1, 500):
            key = decompose_radix(n, r)
            assert key not in seen
            seen.add(key)

    def test_matches_binary_valuation(self):
        from repro.numbertheory.bits import odd_part, two_adic_valuation

        for n in range(1, 300):
            assert radix_valuation(n, 2) == two_adic_valuation(n)
            assert unit_part(n, 2) == odd_part(n)

    def test_rejects_bad_args(self):
        with pytest.raises(DomainError):
            radix_valuation(0, 3)
        with pytest.raises(DomainError):
            radix_valuation(5, 1)


COPY_INDICES = [
    ("const-1", lambda: ConstantCopyIndex(1)),
    ("const-3", lambda: ConstantCopyIndex(3)),
    ("linear", LinearCopyIndex),
    ("half-square", HalfSquareCopyIndex),
]


class TestRadixConstruction:
    def test_rejects_bad_radix(self):
        with pytest.raises(ConfigurationError):
            RadixConstructedAPF(1, LinearCopyIndex())

    def test_rejects_non_copy_index(self):
        with pytest.raises(ConfigurationError):
            RadixConstructedAPF(3, "linear")  # type: ignore[arg-type]

    def test_group_sizes(self):
        apf = RadixConstructedAPF(3, LinearCopyIndex())
        # (r - 1) * r**kappa(g) = 2 * 3**g.
        assert [apf.group_size(g) for g in range(4)] == [2, 6, 18, 54]


@pytest.mark.parametrize("radix", [2, 3, 4, 5, 7])
@pytest.mark.parametrize("name,make", COPY_INDICES)
class TestRadixTheorem:
    """The Theorem 4.2 analogue at every radix."""

    def test_is_bijection(self, radix, name, make):
        apf = RadixConstructedAPF(radix, make())
        apf.check_roundtrip_window(10, 10)
        apf.check_bijective_prefix(300)

    def test_stride_law(self, radix, name, make):
        copy_index = make()
        apf = RadixConstructedAPF(radix, copy_index)
        for x in range(1, 30):
            g = apf.group_of(x)
            assert apf.stride(x) == radix ** (1 + g + copy_index(g))

    def test_base_below_stride(self, radix, name, make):
        RadixConstructedAPF(radix, make()).check_base_below_stride(50)

    def test_signature_is_radix_valuation(self, radix, name, make):
        apf = RadixConstructedAPF(radix, make())
        for x in range(1, 25):
            g = apf.group_of(x)
            for y in (1, 3):
                assert radix_valuation(apf.pair(x, y), radix) == g


class TestRadixTwoReducesToPaper:
    @pytest.mark.parametrize("name,make", COPY_INDICES)
    def test_exact_agreement(self, name, make):
        binary = RadixConstructedAPF(2, make())
        paper = ConstructedAPF(make())
        for x in range(1, 60):
            assert binary.base(x) == paper.base(x)
            assert binary.stride(x) == paper.stride(x)
        for z in range(1, 300):
            assert binary.unpair(z) == paper.unpair(z)


class TestRadixTradeoff:
    def test_larger_radix_coarser_strides(self):
        # At kappa = g, strides are r**(1+2g): radix 3 jumps in bigger
        # steps but has wider groups; at matched rows the radix-3 stride
        # can be smaller or larger -- pin the structure, not a winner.
        t2 = RadixConstructedAPF(2, LinearCopyIndex())
        t3 = RadixConstructedAPF(3, LinearCopyIndex())
        strides2 = {t2.stride(x) for x in range(1, 100)}
        strides3 = {t3.stride(x) for x in range(1, 100)}
        assert all(s & (s - 1) == 0 for s in strides2)  # powers of 2
        assert all(_is_power_of(s, 3) for s in strides3)

    def test_rows_partition_n_at_every_radix(self):
        for radix in (3, 5):
            apf = RadixConstructedAPF(radix, ConstantCopyIndex(2))
            seen = set()
            for z in range(1, 400):
                pos = apf.unpair(z)
                assert pos not in seen
                seen.add(pos)
                assert apf.pair(*pos) == z


def _is_power_of(n: int, r: int) -> bool:
    while n % r == 0:
        n //= r
    return n == 1
