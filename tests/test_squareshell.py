"""Tests for the square-shell PF A_{1,1} (Section 3.2.1, Figure 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.squareshell import SquareShellPairing, SquareShellPairingTwin

FIGURE_3 = [
    [1, 4, 9, 16, 25, 36, 49, 64],
    [2, 3, 8, 15, 24, 35, 48, 63],
    [5, 6, 7, 14, 23, 34, 47, 62],
    [10, 11, 12, 13, 22, 33, 46, 61],
    [17, 18, 19, 20, 21, 32, 45, 60],
    [26, 27, 28, 29, 30, 31, 44, 59],
    [37, 38, 39, 40, 41, 42, 43, 58],
    [50, 51, 52, 53, 54, 55, 56, 57],
]


class TestFigure3:
    def test_exact_table(self):
        assert SquareShellPairing().table(8, 8) == FIGURE_3

    def test_highlighted_shell(self):
        # The paper highlights max(x, y) = 5: addresses 17..25.
        a = SquareShellPairing()
        shell = [a.pair(5, y) for y in range(1, 6)] + [
            a.pair(x, 5) for x in range(4, 0, -1)
        ]
        assert shell == list(range(17, 26))


class TestFormula:
    def test_formula_3_3(self):
        # A(x, y) = m**2 + m + y - x + 1 with m = max(x-1, y-1).
        a = SquareShellPairing()
        for x in range(1, 20):
            for y in range(1, 20):
                m = max(x - 1, y - 1)
                assert a.pair(x, y) == m * m + m + y - x + 1

    def test_first_row_is_squares(self):
        a = SquareShellPairing()
        for n in range(1, 30):
            assert a.pair(1, n) == n * n

    def test_first_column_is_squares_plus_one_shifted(self):
        # A(x, 1) = (x-1)**2 + 1 for x >= 2 (start of each shell).
        a = SquareShellPairing()
        for x in range(2, 30):
            assert a.pair(x, 1) == (x - 1) ** 2 + 1

    def test_diagonal_entries(self):
        # A(k, k) = (k-1)**2 + k (corner of the counterclockwise walk).
        a = SquareShellPairing()
        for k in range(1, 30):
            assert a.pair(k, k) == (k - 1) ** 2 + k

    def test_counterclockwise_within_shell(self):
        # Shell c: (c,1) .. (c,c) then (c-1,c) .. (1,c), contiguous.
        a = SquareShellPairing()
        for c in range(2, 12):
            walk = [a.pair(c, y) for y in range(1, c + 1)]
            walk += [a.pair(x, c) for x in range(c - 1, 0, -1)]
            assert walk == list(range((c - 1) ** 2 + 1, c * c + 1))


class TestInverse:
    @pytest.mark.parametrize("z", range(1, 2000))
    def test_roundtrip_dense(self, z):
        a = SquareShellPairing()
        x, y = a.unpair(z)
        assert a.pair(x, y) == z

    def test_huge_roundtrip(self):
        a = SquareShellPairing()
        assert a.unpair(a.pair(10**12, 3)) == (10**12, 3)


class TestPerfectCompactness:
    def test_squares_stored_perfectly(self):
        # Guarantee (3.2) with a = b = 1: the k x k array occupies
        # addresses exactly 1..k**2.
        a = SquareShellPairing()
        for k in range(1, 15):
            addresses = sorted(
                a.pair(x, y) for x in range(1, k + 1) for y in range(1, k + 1)
            )
            assert addresses == list(range(1, k * k + 1))

    def test_spread_closed_form(self):
        a = SquareShellPairing()
        for n in (1, 3, 9, 20, 100):
            brute = max(
                a.pair(x, y) for x in range(1, n + 1) for y in range(1, n // x + 1)
            )
            assert a.spread(n) == brute == n * n

    def test_spread_for_shape_closed_form(self):
        a = SquareShellPairing()
        for rows, cols in ((1, 9), (9, 1), (4, 7), (7, 4), (6, 6)):
            brute = max(
                a.pair(x, y)
                for x in range(1, rows + 1)
                for y in range(1, cols + 1)
            )
            assert a.spread_for_shape(rows, cols) == brute


class TestVectorized:
    def test_pair_array_matches(self):
        a = SquareShellPairing()
        xs = np.arange(1, 500)
        ys = np.arange(500, 1, -1)
        out = a.pair_array(xs, ys)
        for i in (0, 100, 498):
            assert out[i] == a.pair(int(xs[i]), int(ys[i]))

    def test_unpair_array_roundtrip(self):
        a = SquareShellPairing()
        zs = np.arange(1, 50_000, 101)
        xs, ys = a.unpair_array(zs)
        assert np.array_equal(a.pair_array(xs, ys), zs)


class TestTwin:
    def test_twin_swaps(self):
        a, t = SquareShellPairing(), SquareShellPairingTwin()
        for x in range(1, 12):
            for y in range(1, 12):
                assert t.pair(x, y) == a.pair(y, x)

    def test_twin_walks_clockwise(self):
        # Twin shell c: along the row first -- (1,c) gets the shell start.
        t = SquareShellPairingTwin()
        for c in range(2, 10):
            assert t.pair(1, c) == (c - 1) ** 2 + 1

    def test_twin_bijective(self):
        SquareShellPairingTwin().check_bijective_prefix(500)

    def test_twin_spread_for_shape_transposes(self):
        a, t = SquareShellPairing(), SquareShellPairingTwin()
        for rows, cols in ((2, 7), (7, 2), (3, 3)):
            assert t.spread_for_shape(rows, cols) == a.spread_for_shape(cols, rows)
