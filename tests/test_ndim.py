"""Tests for multidimensional pairing by iteration (repro.core.ndim)."""

from __future__ import annotations

import pytest

from repro.core.diagonal import DiagonalPairing
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.ndim import IteratedPairing
from repro.core.squareshell import SquareShellPairing
from repro.errors import ConfigurationError, DomainError


class TestConstruction:
    def test_rejects_zero_dimensions(self):
        with pytest.raises(ConfigurationError):
            IteratedPairing(0, SquareShellPairing())

    def test_rejects_wrong_level_count(self):
        with pytest.raises(ConfigurationError):
            IteratedPairing(3, [SquareShellPairing()])  # needs 2

    def test_rejects_non_pf_levels(self):
        with pytest.raises(ConfigurationError):
            IteratedPairing(2, ["diagonal"])  # type: ignore[list-item]

    def test_single_pf_broadcasts(self):
        p = IteratedPairing(4, SquareShellPairing())
        assert len(p.levels) == 3

    def test_name(self):
        p = IteratedPairing(3, DiagonalPairing())
        assert "3d" in p.name and "diagonal" in p.name


class TestOneDimension:
    def test_identity(self):
        p = IteratedPairing(1, [])
        for n in (1, 5, 10**9):
            assert p.pair((n,)) == n
            assert p.unpair(n) == (n,)


class TestTwoDimensionsMatchesBase:
    def test_degenerates_to_base(self):
        base = SquareShellPairing()
        p = IteratedPairing(2, base)
        for x in range(1, 8):
            for y in range(1, 8):
                assert p.pair((x, y)) == base.pair(x, y)


@pytest.mark.parametrize("d", [2, 3, 4, 5])
class TestBijectivity:
    def test_roundtrip_box(self, d):
        IteratedPairing(d, SquareShellPairing()).check_roundtrip_box(4)

    def test_bijective_prefix(self, d):
        IteratedPairing(d, SquareShellPairing()).check_bijective_prefix(300)

    def test_roundtrip_diagonal_base(self, d):
        IteratedPairing(d, DiagonalPairing()).check_roundtrip_box(3)


class TestMixedLevels:
    def test_heterogeneous_levels(self):
        p = IteratedPairing(
            3, [SquareShellPairing(), HyperbolicPairing()]
        )
        p.check_roundtrip_box(4)
        p.check_bijective_prefix(150)

    def test_fold_order(self):
        # pair((a, b, c)) == level0(a, level1(b, c)).
        lvl0, lvl1 = SquareShellPairing(), DiagonalPairing()
        p = IteratedPairing(3, [lvl0, lvl1])
        for a, b, c in [(1, 2, 3), (4, 4, 4), (7, 1, 2)]:
            assert p.pair((a, b, c)) == lvl0.pair(a, lvl1.pair(b, c))


class TestDomain:
    def test_rejects_wrong_arity(self):
        p = IteratedPairing(3, SquareShellPairing())
        with pytest.raises(DomainError):
            p.pair((1, 2))

    def test_rejects_nonpositive(self):
        p = IteratedPairing(3, SquareShellPairing())
        with pytest.raises(DomainError):
            p.pair((1, 0, 2))

    def test_rejects_bad_code(self):
        with pytest.raises(DomainError):
            IteratedPairing(3, SquareShellPairing()).unpair(0)

    def test_call_alias(self):
        p = IteratedPairing(3, SquareShellPairing())
        assert p(2, 3, 4) == p.pair((2, 3, 4))


class TestSpread:
    def test_spread_for_shape_matches_brute(self):
        p = IteratedPairing(3, SquareShellPairing())
        from itertools import product

        dims = (2, 3, 4)
        brute = max(
            p.pair(pt) for pt in product(*(range(1, s + 1) for s in dims))
        )
        assert p.spread_for_shape(dims) == brute

    def test_cube_spread_with_square_shell_base(self):
        # Square-shell iterated over a k x k x k cube is NOT perfect (the
        # inner code for (k, k) is k**2, so the outer pair sees a k x k**2
        # rectangle) -- quantifying the compactness cost of iteration.
        p = IteratedPairing(3, SquareShellPairing())
        k = 4
        spread = p.spread_for_shape((k, k, k))
        assert spread >= k**4  # far above the k**3 cell count

    def test_rejects_bad_box(self):
        p = IteratedPairing(3, SquareShellPairing())
        with pytest.raises(DomainError):
            p.spread_for_shape((2, 2))
        with pytest.raises(DomainError):
            p.spread_for_shape((2, 0, 2))
