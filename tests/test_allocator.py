"""Tests for the APF task allocator."""

from __future__ import annotations

import pytest

from repro.apf.families import TSharp, TStar
from repro.errors import AllocationError, ConfigurationError, DomainError
from repro.webcompute.allocator import TaskAllocator


class TestRegistration:
    def test_requires_additive_pf(self):
        from repro.core.diagonal import DiagonalPairing

        with pytest.raises(ConfigurationError):
            TaskAllocator(DiagonalPairing())

    def test_contract_caches_base_and_stride(self):
        alloc = TaskAllocator(TSharp())
        contract = alloc.register_row(5)
        assert contract.base == TSharp().base(5)
        assert contract.stride == TSharp().stride(5)

    def test_double_registration_rejected(self):
        alloc = TaskAllocator(TSharp())
        alloc.register_row(2)
        with pytest.raises(AllocationError):
            alloc.register_row(2)

    def test_release_and_reregister(self):
        alloc = TaskAllocator(TSharp())
        alloc.register_row(4)
        alloc.next_task(4)
        alloc.next_task(4)
        resume = alloc.release_row(4)
        assert resume == 3
        contract = alloc.register_row(4, start_serial=resume)
        assert alloc.next_task(4) == TSharp().pair(4, 3)

    def test_release_unknown_row(self):
        with pytest.raises(AllocationError):
            TaskAllocator(TSharp()).release_row(9)


class TestAllocation:
    def test_sequence_follows_progression(self):
        alloc = TaskAllocator(TSharp())
        alloc.register_row(6)
        sharp = TSharp()
        for t in range(1, 10):
            assert alloc.next_task(6) == sharp.pair(6, t)

    def test_rows_never_collide(self):
        alloc = TaskAllocator(TStar())
        for row in range(1, 20):
            alloc.register_row(row)
        issued = set()
        for row in range(1, 20):
            for _ in range(25):
                idx = alloc.next_task(row)
                assert idx not in issued
                issued.add(idx)

    def test_peek_does_not_consume(self):
        alloc = TaskAllocator(TSharp())
        alloc.register_row(3)
        peeked = alloc.peek_task(3, 1)
        assert alloc.next_task(3) == peeked

    def test_unregistered_row_rejected(self):
        alloc = TaskAllocator(TSharp())
        with pytest.raises(AllocationError):
            alloc.next_task(1)


class TestAttribution:
    def test_attribute_inverts(self):
        alloc = TaskAllocator(TSharp())
        sharp = TSharp()
        for row in (1, 5, 17):
            for t in (1, 2, 9):
                assert alloc.attribute(sharp.pair(row, t)) == (row, t)

    def test_attribute_needs_no_registration(self):
        # Post-hoc auditing works for any task index.
        alloc = TaskAllocator(TSharp())
        assert alloc.attribute(400) == (28, 1)  # Figure 6

    def test_rejects_bad_index(self):
        with pytest.raises(DomainError):
            TaskAllocator(TSharp()).attribute(0)


class TestBookkeeping:
    def test_registered_rows(self):
        alloc = TaskAllocator(TSharp())
        for row in (3, 1, 7):
            alloc.register_row(row)
        assert alloc.registered_rows == [1, 3, 7]

    def test_max_issued_index(self):
        alloc = TaskAllocator(TSharp())
        alloc.register_row(1)
        alloc.register_row(9)
        assert alloc.max_issued_index() == 0
        alloc.next_task(9)
        expected = TSharp().pair(9, 1)
        assert alloc.max_issued_index() == expected

    def test_issued_count(self):
        alloc = TaskAllocator(TSharp())
        contract = alloc.register_row(2)
        alloc.next_task(2)
        alloc.next_task(2)
        assert contract.issued_count() == 2
