"""Stride-growth analysis and crossover hunting for APFs (Section 4.2).

The paper's comparison of APF families is entirely about *stride growth as
a function of the row index*: exponential for ``T^<c>``, quadratic for
``T#``, subquadratic for ``T^[k]``/``T*``, superquadratic again for the
overeager ``kappa(g) = 2**g``.  The concrete claims:

* "it is not until x = 5 that ``T^<1>``'s strides are always at least as
  large as ``T#``'s" -- and x = 11 for ``T^<2>``, x = 25 for ``T^<3>``;
* ``T*``'s strides are eventually dramatically smaller than ``T#``'s;
* with ``kappa(g) = 2**g``, at each group's first row
  ``S_x > x**2 log2(x**2)``.

This module computes stride tables, finds *dominance crossovers* (the
smallest ``x0`` such that one family's stride is >= another's for every
``x in [x0, limit]``), classifies empirical growth, and measures the
memory-footprint proxy the paper cares about for web computing: the largest
task index issued to a population of volunteers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.apf.base import AdditivePairingFunction
from repro.errors import DomainError

__all__ = [
    "stride_table",
    "dominance_crossover",
    "growth_exponent",
    "max_task_index",
    "StrideComparison",
    "compare_families",
]


def stride_table(
    apfs: Sequence[AdditivePairingFunction], xs: Sequence[int]
) -> dict[str, list[int]]:
    """Strides of each APF at each row in *xs*, keyed by APF name.

    >>> from repro.apf.families import TSharp
    >>> stride_table([TSharp()], [1, 2, 3, 4])
    {'apf-sharp': [2, 8, 8, 32]}
    """
    if not xs:
        raise DomainError("xs must be non-empty")
    return {apf.name: [apf.stride(x) for x in xs] for apf in apfs}


def dominance_crossover(
    big: AdditivePairingFunction,
    small: AdditivePairingFunction,
    limit: int,
) -> int | None:
    """The smallest ``x0`` such that ``big.stride(x) >= small.stride(x)``
    for *every* ``x in [x0, limit]`` -- the paper's "it is not until x = ..."
    comparisons.  Returns ``None`` if dominance fails even at ``limit``.

    Scans backward from *limit*: the crossover is one past the last row
    where ``big``'s stride dips below ``small``'s.

    >>> from repro.apf.families import TBracket, TSharp
    >>> dominance_crossover(TBracket(1), TSharp(), 200)
    5
    """
    if isinstance(limit, bool) or not isinstance(limit, int) or limit <= 0:
        raise DomainError(f"limit must be a positive int, got {limit!r}")
    if big.stride(limit) < small.stride(limit):
        return None
    x0 = 1
    for x in range(limit, 0, -1):
        if big.stride(x) < small.stride(x):
            x0 = x + 1
            break
    return x0


def growth_exponent(
    apf: AdditivePairingFunction, xs: Sequence[int]
) -> list[float]:
    """Empirical log-log slopes of ``stride(x)`` between consecutive sample
    rows.  A quadratic family hovers near 2.0; exponential families blow up
    with ``x``; subquadratic families drift below 2.0.

    Sample at group-aligned rows (e.g. powers of two) to avoid the staircase
    plateaus that flat-within-group strides produce.
    """
    if len(xs) < 2:
        raise DomainError("need at least two sample points")
    slopes: list[float] = []
    for a, b in zip(xs, xs[1:]):
        if a <= 0 or b <= a:
            raise DomainError("xs must be positive and strictly increasing")
        sa, sb = apf.stride(a), apf.stride(b)
        slopes.append(math.log(sb / sa) / math.log(b / a))
    return slopes


def max_task_index(
    apf: AdditivePairingFunction, volunteers: int, tasks_per_volunteer: int
) -> int:
    """The largest task index issued when *volunteers* rows each consume
    *tasks_per_volunteer* tasks -- the paper's memory-management proxy
    ("the management of the memory where tasks reside is simplified if one
    devises APFs whose strides grow slowly").

    >>> from repro.apf.families import TSharp
    >>> max_task_index(TSharp(), 3, 2)
    14
    """
    if volunteers <= 0 or tasks_per_volunteer <= 0:
        raise DomainError("volunteers and tasks_per_volunteer must be positive")
    return max(
        apf.pair(x, tasks_per_volunteer) for x in range(1, volunteers + 1)
    )


@dataclass(frozen=True, slots=True)
class StrideComparison:
    """Summary of a pairwise family comparison over ``1..limit``."""

    big_name: str
    small_name: str
    limit: int
    crossover: int | None

    def holds(self) -> bool:
        return self.crossover is not None


def compare_families(
    families: Sequence[AdditivePairingFunction], limit: int
) -> list[StrideComparison]:
    """All ordered pairwise dominance comparisons among *families* up to
    *limit* (the grid behind the crossover benchmark)."""
    out: list[StrideComparison] = []
    for big in families:
        for small in families:
            if big is small:
                continue
            out.append(
                StrideComparison(
                    big_name=big.name,
                    small_name=small.name,
                    limit=limit,
                    crossover=dominance_crossover(big, small, limit),
                )
            )
    return out
