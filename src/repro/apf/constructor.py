"""Procedure APF-Constructor (Section 4.1), executable.

The paper's recipe, driven entirely by a *copy-index* function
``kappa(g) >= 0`` defined for every group index ``g >= 0``:

* **Step 1** -- partition the row-indices into consecutive groups; group
  ``g`` has ``2**kappa(g)`` rows.  With ``c(g) = sum_{j<g} 2**kappa(j)``,
  group ``g`` holds rows ``c(g)+1 .. c(g) + 2**kappa(g)`` (relation 4.3).
* **Step 2** -- give group ``g`` its own copy of the odd integers ``O``.
* **Step 3** -- split that copy among the group's rows via Lemma 4.1 with
  ``c = 1 + kappa(g)`` and stamp it with the *signature* ``2**g``.

Canonical explicit form, with ``i = x - c(g)`` the 1-based index of row
``x`` within its group:

    ``T(x, y) = 2**g * ( 2**(1 + kappa(g)) * (y - 1) + (2*i - 1) )``

The within-group odd label ``2i - 1`` is the labeling that reproduces every
sample value in the paper's Figure 6 -- including the ``T*`` rows, which the
display formula ``(2x + 1) mod 2**(1+kappa(g))`` printed in (4.1) does *not*
reproduce (it coincides with ``2i - 1`` only when the group start ``c(g)``
is the right multiple of ``2**kappa(g)``, as happens for ``T#`` and, with
the ``2x - 1`` variant, for ``T^<c>``).  See DESIGN.md for the worked
derivation.

Theorem 4.2 gives the inverse: the 2-adic valuation of ``z = T(x, y)``
*is* the group index ``g`` (the bracket is odd), after which everything
unwinds arithmetically -- and gives the stride law

    ``B_x < S_x = 2**(1 + g + kappa(g))``      (4.2)

:class:`GroupLayout` memoizes the cumulative boundaries ``c(g)`` and
answers row->group queries by bisection, extending the table on demand;
this is the only state, so constructed APFs are cheap and reusable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right

from repro.apf.base import AdditivePairingFunction
from repro.errors import ConfigurationError, DomainError
from repro.numbertheory.bits import two_adic_valuation

__all__ = ["CopyIndex", "GroupLayout", "ConstructedAPF"]


class CopyIndex(ABC):
    """A copy-index function ``kappa: {0, 1, 2, ...} -> {0, 1, 2, ...}``.

    ``kappa(g)`` fixes the size ``2**kappa(g)`` of group ``g``.  Concrete
    growth profiles live in :mod:`repro.apf.families`.
    """

    @property
    @abstractmethod
    def name(self) -> str:
        """Identifier used in constructed-APF names."""

    @abstractmethod
    def kappa(self, g: int) -> int:
        """The copy index of group ``g >= 0``; must be a nonnegative int."""

    def __call__(self, g: int) -> int:
        if isinstance(g, bool) or not isinstance(g, int) or g < 0:
            raise DomainError(f"group index must be a nonnegative int, got {g!r}")
        value = self.kappa(g)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ConfigurationError(
                f"{self.name}: kappa({g}) must be a nonnegative int, got {value!r}"
            )
        return value


class GroupLayout:
    """The group structure induced by a copy index (relation 4.3).

    Maintains the cumulative row counts ``c(0)=0 < c(1) < c(2) < ...`` and
    maps rows to groups by bisection, growing the table lazily.  Groups are
    0-indexed; rows are 1-indexed.
    """

    def __init__(self, copy_index: CopyIndex) -> None:
        if not isinstance(copy_index, CopyIndex):
            raise ConfigurationError(
                f"copy_index must be a CopyIndex, got {type(copy_index).__name__}"
            )
        self.copy_index = copy_index
        # _cumulative[g] == c(g) == number of rows in groups 0..g-1.
        self._cumulative: list[int] = [0]

    def _extend_to_cover_row(self, x: int) -> None:
        while self._cumulative[-1] < x:
            g = len(self._cumulative) - 1
            self._cumulative.append(self._cumulative[-1] + (1 << self.copy_index(g)))

    def _extend_to_group(self, g: int) -> None:
        while len(self._cumulative) <= g:
            j = len(self._cumulative) - 1
            self._cumulative.append(self._cumulative[-1] + (1 << self.copy_index(j)))

    def group_of_row(self, x: int) -> int:
        """The group ``g`` with ``c(g) < x <= c(g) + 2**kappa(g)``.

        >>> from repro.apf.families import LinearCopyIndex
        >>> layout = GroupLayout(LinearCopyIndex())
        >>> [layout.group_of_row(x) for x in (1, 2, 3, 4, 7, 8)]
        [0, 1, 1, 2, 2, 3]
        """
        if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
            raise DomainError(f"row index must be a positive int, got {x!r}")
        self._extend_to_cover_row(x)
        # bisect over c(0) < c(1) < ...: group g is the last with c(g) < x.
        return bisect_right(self._cumulative, x - 1) - 1

    def group_start(self, g: int) -> int:
        """``c(g)``: the number of rows preceding group ``g``."""
        if isinstance(g, bool) or not isinstance(g, int) or g < 0:
            raise DomainError(f"group index must be a nonnegative int, got {g!r}")
        self._extend_to_group(g)
        return self._cumulative[g]

    def group_size(self, g: int) -> int:
        """``2**kappa(g)``: the number of rows in group ``g``."""
        return 1 << self.copy_index(g)

    def group_rows(self, g: int) -> range:
        """The rows of group ``g``: ``c(g)+1 .. c(g)+2**kappa(g)``."""
        start = self.group_start(g)
        return range(start + 1, start + self.group_size(g) + 1)

    def index_within_group(self, x: int) -> int:
        """The 1-based index ``i = x - c(g)`` of row *x* within its group."""
        g = self.group_of_row(x)
        return x - self.group_start(g)


class ConstructedAPF(AdditivePairingFunction):
    """The APF produced by Procedure APF-Constructor from a copy index.

    >>> from repro.apf.families import LinearCopyIndex
    >>> sharp = ConstructedAPF(LinearCopyIndex())   # this is T# of (4.6)
    >>> sharp.pair(28, 1), sharp.pair(29, 2)        # Figure 6 values
    (400, 944)
    >>> sharp.unpair(944)
    (29, 2)
    """

    def __init__(self, copy_index: CopyIndex, display_name: str | None = None) -> None:
        self.layout = GroupLayout(copy_index)
        self._display_name = display_name

    @property
    def copy_index(self) -> CopyIndex:
        return self.layout.copy_index

    @property
    def name(self) -> str:
        if self._display_name is not None:
            return self._display_name
        return f"apf({self.layout.copy_index.name})"

    # ------------------------------------------------------------------

    def group_of(self, x: int) -> int:
        """The group index ``g`` of row *x* -- the exponent of the row's
        signature ``2**g`` (the ``g`` column of Figure 6)."""
        return self.layout.group_of_row(x)

    def signature(self, x: int) -> int:
        """The power-of-two signature ``2**g`` stamped on row *x*'s copy of
        the odd integers."""
        return 1 << self.group_of(x)

    def base(self, x: int) -> int:
        if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
            raise DomainError(f"x must be a positive int, got {x!r}")
        g = self.layout.group_of_row(x)
        i = x - self.layout.group_start(g)
        return (1 << g) * (2 * i - 1)

    def stride(self, x: int) -> int:
        if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
            raise DomainError(f"x must be a positive int, got {x!r}")
        g = self.layout.group_of_row(x)
        return 1 << (1 + g + self.layout.copy_index(g))

    def row_of(self, z: int) -> int:
        if isinstance(z, bool) or not isinstance(z, int) or z <= 0:
            raise DomainError(f"z must be a positive int, got {z!r}")
        g = two_adic_valuation(z)
        odd = z >> g
        modulus = 1 << (1 + self.layout.copy_index(g))
        label = odd % modulus  # odd, in 1 .. modulus-1
        i = (label + 1) // 2
        return self.layout.group_start(g) + i

    # ------------------------------------------------------------------

    def group_table(self, rows: int, cols: int) -> list[tuple[int, int, list[int]]]:
        """Figure 6's presentation: for each row ``x <= rows``, the tuple
        ``(x, g, [T(x, 1), ..., T(x, cols)])``."""
        if rows <= 0 or cols <= 0:
            raise DomainError(f"table shape must be positive, got {rows}x{cols}")
        out = []
        for x in range(1, rows + 1):
            out.append(
                (x, self.group_of(x), [self._pair(x, y) for y in range(1, cols + 1)])
            )
        return out
