"""Additive pairing functions (Section 4): the abstract interface.

An *additive* PF (APF) assigns each row ``x`` a base entry ``B_x`` and a
stride ``S_x`` and maps

    ``T(x, y) = B_x + (y - 1) * S_x``

so every row of ``N x N`` lands on an arithmetic progression.  In the
web-computing reading, ``x`` is a volunteer index, ``y`` a per-volunteer
task counter, and ``T(x, y)`` the global task index -- and the fact that
``B_x`` and ``S_x`` are computed *once per volunteer, at registration* is
the system-design point of the whole section.

The paper's key structural facts, enforced here as API invariants and
verified by the property tests:

* ``B_x < S_x`` for the constructed APFs (relation 4.2);
* any APF must have infinitely many distinct strides (Section 4.1) --
  checked on windows by :meth:`AdditivePairingFunction.distinct_strides`;
* rows are disjoint progressions that jointly tile ``N``.
"""

from __future__ import annotations

from abc import abstractmethod

from repro.core.base import PairingFunction, validate_coordinates
from repro.errors import DomainError
from repro.numbertheory.progressions import ArithmeticProgression

__all__ = ["AdditivePairingFunction"]


class AdditivePairingFunction(PairingFunction):
    """A pairing function of the additive form ``T(x, y) = B_x + (y-1) S_x``.

    Subclasses implement :meth:`base`, :meth:`stride`, and :meth:`row_of`
    (the row-recovery half of the inverse); ``pair``/``unpair`` follow.
    """

    @abstractmethod
    def base(self, x: int) -> int:
        """The base row-entry ``B_x = T(x, 1)`` of row *x* (1-indexed)."""

    @abstractmethod
    def stride(self, x: int) -> int:
        """The stride ``S_x = T(x, y+1) - T(x, y)`` of row *x*."""

    @abstractmethod
    def row_of(self, z: int) -> int:
        """The row ``x`` whose progression contains address *z*.

        For the Lemma 4.1-based constructions this is where the 2-adic
        valuation of ``z`` does its work.
        """

    # ------------------------------------------------------------------

    def _pair(self, x: int, y: int) -> int:
        return self.base(x) + (y - 1) * self.stride(x)

    def _unpair(self, z: int) -> tuple[int, int]:
        x = self.row_of(z)
        offset = z - self.base(x)
        stride = self.stride(x)
        if offset < 0 or offset % stride != 0:  # pragma: no cover - broken subclass
            raise DomainError(
                f"{self.name}: row_of({z}) = {x} but {z} is not on that row's progression"
            )
        return (x, offset // stride + 1)

    # ------------------------------------------------------------------

    def progression(self, x: int) -> ArithmeticProgression:
        """Row *x* as a reusable contract object ``(B_x, S_x)`` -- what the
        web-computing server stores for a registered volunteer.

        >>> from repro.apf.families import TSharp
        >>> TSharp().progression(3)
        ArithmeticProgression(base=6, stride=8)
        """
        if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
            raise DomainError(f"x must be a positive int, got {x!r}")
        return ArithmeticProgression(self.base(x), self.stride(x))

    def successor_gap(self, x: int, y: int) -> int:
        """The paper's ``S(v, t) = T(v, t+1) - T(v, t)``; constant in ``y``
        for an APF (it *is* the stride), exposed for symmetry with [13]."""
        x, y = validate_coordinates(x, y)
        return self._pair(x, y + 1) - self._pair(x, y)

    def distinct_strides(self, row_limit: int) -> set[int]:
        """The set of strides over rows ``1..row_limit``.  Any valid APF has
        infinitely many distinct strides; tests check this set keeps growing
        with the window."""
        if isinstance(row_limit, bool) or not isinstance(row_limit, int) or row_limit <= 0:
            raise DomainError(f"row_limit must be a positive int, got {row_limit!r}")
        return {self.stride(x) for x in range(1, row_limit + 1)}

    def check_base_below_stride(self, row_limit: int) -> None:
        """Assert relation (4.2), ``B_x < S_x``, over a window of rows."""
        for x in range(1, row_limit + 1):
            b, s = self.base(x), self.stride(x)
            if not b < s:
                raise AssertionError(
                    f"{self.name}: B_{x} = {b} is not < S_{x} = {s}"
                )
