"""Additive pairing functions (Section 4).

An APF maps each row of ``N x N`` to an arithmetic progression
``T(x, y) = B_x + (y - 1) * S_x`` -- the structure that makes PFs practical
as *task-allocation functions* for accountable web computing.

Layout:

* :mod:`~repro.apf.base` -- the :class:`AdditivePairingFunction` ABC;
* :mod:`~repro.apf.constructor` -- Procedure APF-Constructor (4.1)/(4.3),
  driven by a pluggable copy index ``kappa(g)``;
* :mod:`~repro.apf.families` -- the paper's sampler: ``T^<c>``, ``T#``,
  ``T^[k]``, ``T*``, and the cautionary ``kappa(g) = 2**g``;
* :mod:`~repro.apf.closed_forms` -- the display formulas, kept independent
  as test oracles;
* :mod:`~repro.apf.analysis` -- stride growth and crossover analysis;
* :mod:`~repro.apf.radix` -- the radix-r generalization of the
  constructor (radix 2 IS the paper's procedure).
"""

from __future__ import annotations

from repro.apf.base import AdditivePairingFunction
from repro.apf.constructor import ConstructedAPF, CopyIndex, GroupLayout
from repro.apf.families import (
    ConstantCopyIndex,
    LinearCopyIndex,
    PowerCopyIndex,
    HalfSquareCopyIndex,
    ExponentialCopyIndex,
    TBracket,
    TSharp,
    TPower,
    TStar,
    ExponentialKappaAPF,
)
from repro.apf.radix import RadixConstructedAPF
from repro.apf.analysis import (
    StrideComparison,
    compare_families,
    dominance_crossover,
    growth_exponent,
    max_task_index,
    stride_table,
)

__all__ = [
    "AdditivePairingFunction",
    "ConstructedAPF",
    "CopyIndex",
    "GroupLayout",
    "ConstantCopyIndex",
    "LinearCopyIndex",
    "PowerCopyIndex",
    "HalfSquareCopyIndex",
    "ExponentialCopyIndex",
    "TBracket",
    "TSharp",
    "TPower",
    "TStar",
    "ExponentialKappaAPF",
    "RadixConstructedAPF",
    "StrideComparison",
    "compare_families",
    "dominance_crossover",
    "growth_exponent",
    "max_task_index",
    "stride_table",
]
