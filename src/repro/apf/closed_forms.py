"""The paper's display formulas, transcribed verbatim as free functions.

These are deliberately *independent* implementations -- no shared code with
:mod:`repro.apf.constructor` or :mod:`repro.apf.families` -- so the test
suite can use them as oracles: Procedure APF-Constructor and the display
formulas must agree everywhere they are both defined.

Transcribed:

* ``t_bracket`` -- Section 4.2.1:
  ``T^<c>(x,y) = 2**floor((x-1)/2**(c-1)) * (2**c (y-1) + ((2x-1) mod 2**c))``
* ``t_sharp`` -- equation (4.6):
  ``T#(x,y) = 2**floor(log2 x) * (2**(1+floor(log2 x)) (y-1)
  + ((2x+1) mod 2**(1+floor(log2 x))))``
* ``stride_bracket`` -- relation (4.4): ``2**(floor((x-1)/2**(c-1)) + c)``
* ``stride_sharp`` -- Proposition 4.2: ``2**(1 + 2 floor(log2 x))``
* ``cantor_binomial`` -- equation (2.1) in its binomial-coefficient form:
  ``D(x,y) = C(x+y-1, 2) + y``
* ``square_shell_formula`` -- equation (3.3):
  ``A(x,y) = m**2 + m + y - x + 1`` with ``m = max(x-1, y-1)``
* ``hyperbolic_formula`` -- equation (3.4), summing ``delta`` naively.
"""

from __future__ import annotations

from repro.errors import DomainError
from repro.numbertheory.bits import ilog2
from repro.numbertheory.divisors import divisor_count, divisor_pairs
from repro.numbertheory.integers import binomial

__all__ = [
    "t_bracket",
    "t_sharp",
    "stride_bracket",
    "stride_sharp",
    "cantor_binomial",
    "square_shell_formula",
    "hyperbolic_formula",
]


def _check_xy(x: int, y: int) -> None:
    if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
        raise DomainError(f"x must be a positive int, got {x!r}")
    if isinstance(y, bool) or not isinstance(y, int) or y <= 0:
        raise DomainError(f"y must be a positive int, got {y!r}")


def t_bracket(c: int, x: int, y: int) -> int:
    """``T^<c>(x, y)`` exactly as displayed in Section 4.2.1.

    >>> t_bracket(1, 14, 1), t_bracket(3, 14, 2)
    (8192, 88)
    """
    if isinstance(c, bool) or not isinstance(c, int) or c <= 0:
        raise DomainError(f"c must be a positive int, got {c!r}")
    _check_xy(x, y)
    g = (x - 1) // (1 << (c - 1))
    return (1 << g) * ((1 << c) * (y - 1) + ((2 * x - 1) % (1 << c)))


def t_sharp(x: int, y: int) -> int:
    """``T#(x, y)`` exactly as displayed in equation (4.6).

    >>> t_sharp(28, 1), t_sharp(29, 2)
    (400, 944)
    """
    _check_xy(x, y)
    log = ilog2(x)
    return (1 << log) * ((1 << (1 + log)) * (y - 1) + ((2 * x + 1) % (1 << (1 + log))))


def stride_bracket(c: int, x: int) -> int:
    """Relation (4.4): ``S_x^<c> = 2**(floor((x-1)/2**(c-1)) + c)``."""
    if isinstance(c, bool) or not isinstance(c, int) or c <= 0:
        raise DomainError(f"c must be a positive int, got {c!r}")
    if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
        raise DomainError(f"x must be a positive int, got {x!r}")
    return 1 << ((x - 1) // (1 << (c - 1)) + c)


def stride_sharp(x: int) -> int:
    """Proposition 4.2: ``S_x# = 2**(1 + 2 floor(log2 x))``."""
    if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
        raise DomainError(f"x must be a positive int, got {x!r}")
    return 1 << (1 + 2 * ilog2(x))


def cantor_binomial(x: int, y: int) -> int:
    """Equation (2.1) in binomial form: ``D(x, y) = C(x+y-1, 2) + y``.

    >>> cantor_binomial(1, 1), cantor_binomial(3, 2)
    (1, 8)
    """
    _check_xy(x, y)
    return binomial(x + y - 1, 2) + y


def square_shell_formula(x: int, y: int) -> int:
    """Equation (3.3): ``A(x,y) = m**2 + m + y - x + 1``, ``m = max(x-1, y-1)``.

    >>> square_shell_formula(5, 1), square_shell_formula(1, 5)
    (17, 25)
    """
    _check_xy(x, y)
    m = max(x - 1, y - 1)
    return m * m + m + y - x + 1


def hyperbolic_formula(x: int, y: int) -> int:
    """Equation (3.4) by naive summation: ``sum_{k<xy} delta(k)`` plus the
    reverse-lex rank of ``(x, y)`` among 2-part factorizations of ``xy``.

    Quadratic-ish cost -- oracle use only.

    >>> hyperbolic_formula(2, 3)
    13
    """
    _check_xy(x, y)
    product = x * y
    prefix = sum(divisor_count(k) for k in range(1, product))
    rank = 1 + sum(1 for (d, _) in divisor_pairs(product) if d > x)
    return prefix + rank
