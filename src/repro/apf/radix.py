"""Radix-r generalization of Procedure APF-Constructor.

The paper notes its Procedure "can be viewed as specializing the general
scheme for constructing APFs in [16]" (Stockmeyer's additive-traversal
report).  This module widens the specialization along a natural axis: the
*signature radix*.

The binary construction rests on two facts about ``r = 2``:

1. every positive integer is uniquely ``2**g * (odd)``;
2. the odd residues mod ``2**(1+kappa)`` number ``2**kappa`` -- Lemma 4.1.

Both hold for any radix ``r >= 2``:

1. every positive integer is uniquely ``r**g * m`` with ``r`` not
   dividing ``m``;
2. the non-multiples of ``r`` among ``1 .. r**(1+kappa)`` number
   ``(r - 1) * r**kappa``.

So with groups of size ``(r - 1) * r**kappa(g)`` and the within-group unit
label ``L(i) = i + floor((i - 1) / (r - 1))`` (the ``i``-th non-multiple
of ``r``; for ``r = 2`` this is exactly the paper's ``2i - 1``), the map

    ``T(x, y) = r**g * ( r**(1+kappa(g)) * (y - 1) + L(i) )``

is a valid APF with strides ``S_x = r**(1 + g + kappa(g))``.  Radix 2
reproduces the paper's construction *exactly* (asserted in the tests); the
radix ablation (``bench_ablation.py``) measures how the radix trades group
granularity against stride jumps -- a design axis the paper leaves
unexplored.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.apf.base import AdditivePairingFunction
from repro.apf.constructor import CopyIndex
from repro.errors import ConfigurationError, DomainError
from repro.numbertheory.valuations import decompose_radix

__all__ = ["RadixConstructedAPF"]


class RadixConstructedAPF(AdditivePairingFunction):
    """Procedure APF-Constructor at an arbitrary signature radix.

    >>> from repro.apf.families import LinearCopyIndex
    >>> t3 = RadixConstructedAPF(3, LinearCopyIndex())
    >>> t3.check_roundtrip_window(8, 8)
    >>> t3.unpair(t3.pair(5, 7))
    (5, 7)
    """

    def __init__(
        self,
        radix: int,
        copy_index: CopyIndex,
        display_name: str | None = None,
    ) -> None:
        if isinstance(radix, bool) or not isinstance(radix, int) or radix < 2:
            raise ConfigurationError(f"radix must be an int >= 2, got {radix!r}")
        if not isinstance(copy_index, CopyIndex):
            raise ConfigurationError(
                f"copy_index must be a CopyIndex, got {type(copy_index).__name__}"
            )
        self.radix = radix
        self.copy_index = copy_index
        self._display_name = display_name
        # _cumulative[g] = rows in groups 0..g-1; group g has
        # (r - 1) * r**kappa(g) rows.
        self._cumulative: list[int] = [0]

    @property
    def name(self) -> str:
        if self._display_name is not None:
            return self._display_name
        return f"apf-radix{self.radix}({self.copy_index.name})"

    # ------------------------------------------------------------------
    # Group layout (radix-weighted version of relation 4.3)
    # ------------------------------------------------------------------

    def group_size(self, g: int) -> int:
        """Rows in group *g*: ``(r - 1) * r**kappa(g)``."""
        if isinstance(g, bool) or not isinstance(g, int) or g < 0:
            raise DomainError(f"group index must be a nonnegative int, got {g!r}")
        return (self.radix - 1) * self.radix ** self.copy_index(g)

    def _extend_to_cover_row(self, x: int) -> None:
        while self._cumulative[-1] < x:
            g = len(self._cumulative) - 1
            self._cumulative.append(self._cumulative[-1] + self.group_size(g))

    def group_of(self, x: int) -> int:
        if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
            raise DomainError(f"x must be a positive int, got {x!r}")
        self._extend_to_cover_row(x)
        return bisect_right(self._cumulative, x - 1) - 1

    def group_start(self, g: int) -> int:
        if isinstance(g, bool) or not isinstance(g, int) or g < 0:
            raise DomainError(f"group index must be a nonnegative int, got {g!r}")
        while len(self._cumulative) <= g:
            j = len(self._cumulative) - 1
            self._cumulative.append(self._cumulative[-1] + self.group_size(j))
        return self._cumulative[g]

    # ------------------------------------------------------------------
    # Unit labels: the i-th positive non-multiple of r
    # ------------------------------------------------------------------

    def _label(self, i: int) -> int:
        """``L(i) = i + floor((i-1)/(r-1))`` -- skips every multiple of r.
        For r = 2 this is 2i - 1."""
        return i + (i - 1) // (self.radix - 1)

    def _label_index(self, label: int) -> int:
        """Inverse of :meth:`_label`: the rank of a non-multiple of r."""
        return label - label // self.radix

    # ------------------------------------------------------------------
    # The APF
    # ------------------------------------------------------------------

    def base(self, x: int) -> int:
        g = self.group_of(x)
        i = x - self.group_start(g)
        return self.radix**g * self._label(i)

    def stride(self, x: int) -> int:
        g = self.group_of(x)
        return self.radix ** (1 + g + self.copy_index(g))

    def row_of(self, z: int) -> int:
        if isinstance(z, bool) or not isinstance(z, int) or z <= 0:
            raise DomainError(f"z must be a positive int, got {z!r}")
        g, unit = decompose_radix(z, self.radix)
        modulus = self.radix ** (1 + self.copy_index(g))
        label = unit % modulus
        # unit is a non-multiple of r, and label = unit mod r**(1+kappa)
        # keeps that property because the modulus is a power of r.
        return self.group_start(g) + self._label_index(label)
