"""The paper's sampler of explicit APFs (Section 4.2), as copy indices and
ready-made classes.

==============  =======================  ============================  ==========
family          copy index               stride growth                 reference
==============  =======================  ============================  ==========
``T^<c>``       ``kappa(g) = c - 1``     ``2**(floor((x-1)/2**(c-1))+c)``  Prop 4.1
``T#``          ``kappa(g) = g``         ``2**(1+2*floor(log2 x)) <= 2x**2``  Prop 4.2
``T^[k]``       ``kappa(g) = g**k``      ``x * 2**O((log x)**(1/k))``  Prop 4.3
``T*``          ``kappa(g) = ceil(g^2/2)``  ``~ 8x * 4**sqrt(2 log2 x)``  Prop 4.4
bad example     ``kappa(g) = 2**g``      superquadratic (``>~ x**2 log x``)  Sec 4.2.3
==============  =======================  ============================  ==========

The classes below are thin :class:`~repro.apf.constructor.ConstructedAPF`
subclasses that add the paper's closed-form accessors (group index, stride
bound) so benchmarks can compare the *generic constructor* against the
*display formulas* -- they must agree exactly, and the test suite insists.

Note on ``kappa*``: the paper writes ``kappa*(g) = [g**2 / 2]`` with square
brackets.  Matching Figure 6's ``T*`` values (x = 28, 29 in group g = 3 with
stride 512 = 2**(1+3+5)) requires ``kappa*(3) = 5``, i.e. *ceiling*
``ceil(g**2/2)``; floor would give ``kappa*(3) = 4`` and stride 256.
"""

from __future__ import annotations

from repro.apf.constructor import ConstructedAPF, CopyIndex
from repro.errors import ConfigurationError, DomainError
from repro.numbertheory.bits import ilog2
from repro.numbertheory.integers import ceil_div

__all__ = [
    "ConstantCopyIndex",
    "LinearCopyIndex",
    "PowerCopyIndex",
    "HalfSquareCopyIndex",
    "ExponentialCopyIndex",
    "TBracket",
    "TSharp",
    "TPower",
    "TStar",
    "ExponentialKappaAPF",
]


# ----------------------------------------------------------------------
# Copy indices
# ----------------------------------------------------------------------


class ConstantCopyIndex(CopyIndex):
    """``kappa(g) = c - 1``: equal-size groups of ``2**(c-1)`` rows
    (Section 4.2.1 -- "APFs that stress computation ease")."""

    def __init__(self, c: int) -> None:
        if isinstance(c, bool) or not isinstance(c, int) or c <= 0:
            raise ConfigurationError(f"c must be a positive int, got {c!r}")
        self.c = c

    @property
    def name(self) -> str:
        return f"kappa=const({self.c - 1})"

    def kappa(self, g: int) -> int:
        return self.c - 1


class LinearCopyIndex(CopyIndex):
    """``kappa(g) = g``: exponentially growing groups -- the balance point
    of Section 4.2.2, yielding ``T#`` with quadratic stride growth."""

    @property
    def name(self) -> str:
        return "kappa=g"

    def kappa(self, g: int) -> int:
        return g


class PowerCopyIndex(CopyIndex):
    """``kappa(g) = g**k``: the subquadratic family ``T^[k]`` of
    Section 4.2.3 (``k = 1`` degenerates to :class:`LinearCopyIndex`)."""

    def __init__(self, k: int) -> None:
        if isinstance(k, bool) or not isinstance(k, int) or k <= 0:
            raise ConfigurationError(f"k must be a positive int, got {k!r}")
        self.k = k

    @property
    def name(self) -> str:
        return f"kappa=g^{self.k}"

    def kappa(self, g: int) -> int:
        return g**self.k


class HalfSquareCopyIndex(CopyIndex):
    """``kappa(g) = ceil(g**2 / 2)`` (equation 4.8): the practical
    subquadratic APF ``T*`` whose advantage over ``T#`` shows up at small
    ``x`` (Figure 6)."""

    @property
    def name(self) -> str:
        return "kappa=ceil(g^2/2)"

    def kappa(self, g: int) -> int:
        return ceil_div(g * g, 2) if g > 0 else 0


class ExponentialCopyIndex(CopyIndex):
    """``kappa(g) = 2**g``: the cautionary example of Section 4.2.3 -- a
    copy index that grows *too fast*, driving stride growth back above
    quadratic (``S_x >~ x**2 log x`` at group boundaries)."""

    @property
    def name(self) -> str:
        return "kappa=2^g"

    def kappa(self, g: int) -> int:
        return 1 << g


# ----------------------------------------------------------------------
# Ready-made APFs
# ----------------------------------------------------------------------


class TBracket(ConstructedAPF):
    """``T^<c>``: the equal-group APF of Proposition 4.1.

    Display formula (verified to match the constructor exactly):

        ``T^<c>(x, y) = 2**g * (2**c * (y-1) + ((2x - 1) mod 2**c))``,
        ``g = floor((x-1) / 2**(c-1))``

    >>> t1 = TBracket(1)
    >>> t1.pair(14, 1), t1.pair(15, 2)   # Figure 6, top block
    (8192, 49152)
    >>> TBracket(3).pair(29, 1)          # Figure 6: x=29 penalized to 128
    128
    """

    def __init__(self, c: int) -> None:
        super().__init__(ConstantCopyIndex(c), display_name=f"apf-bracket-{c}")
        self.c = c

    def group_of(self, x: int) -> int:
        """Closed form ``g = floor((x-1) / 2**(c-1))`` -- no table walk."""
        if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
            raise DomainError(f"x must be a positive int, got {x!r}")
        return (x - 1) >> (self.c - 1)

    def base(self, x: int) -> int:
        g = self.group_of(x)
        label = (2 * x - 1) % (1 << self.c)
        return (1 << g) * label

    def stride(self, x: int) -> int:
        """Proposition 4.1: ``S_x = 2**(floor((x-1)/2**(c-1)) + c)``."""
        return 1 << (self.group_of(x) + self.c)


class TSharp(ConstructedAPF):
    """``T#``: the quadratic-stride APF of Proposition 4.2 / equation (4.6).

    Display formula (verified to match the constructor exactly):

        ``T#(x, y) = 2**L * (2**(1+L) * (y-1) + ((2x + 1) mod 2**(1+L)))``,
        ``L = floor(log2 x)``

    >>> sharp = TSharp()
    >>> sharp.pair(28, 1), sharp.pair(29, 5)   # Figure 6, third block
    (400, 2480)
    >>> sharp.stride(100) <= 2 * 100**2        # Prop 4.2: S_x <= 2 x^2
    True
    """

    def __init__(self) -> None:
        super().__init__(LinearCopyIndex(), display_name="apf-sharp")

    def group_of(self, x: int) -> int:
        """Closed form (4.5): ``g = floor(log2 x)``."""
        if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
            raise DomainError(f"x must be a positive int, got {x!r}")
        return ilog2(x)

    def base(self, x: int) -> int:
        g = self.group_of(x)
        label = (2 * x + 1) % (1 << (1 + g))
        return (1 << g) * label

    def stride(self, x: int) -> int:
        """Proposition 4.2: ``S_x = 2**(1 + 2*floor(log2 x)) <= 2 x**2``."""
        return 1 << (1 + 2 * self.group_of(x))


class TPower(ConstructedAPF):
    """``T^[k]``: the subquadratic family of Proposition 4.3, built from
    ``kappa(g) = g**k``.  The paper gives no closed form ("closed-form
    expressions ... have eluded us"); this class is the generic constructor
    plus the asymptotic group-index estimate used in the analyses.

    >>> TPower(2).check_roundtrip_window(8, 8)
    """

    def __init__(self, k: int) -> None:
        super().__init__(PowerCopyIndex(k), display_name=f"apf-power-{k}")
        self.k = k

    def estimated_group_of(self, x: int) -> int:
        """The paper's simplified estimate ``g ~= ceil((log2 x)**(1/k))``
        (exact only asymptotically; compare with :meth:`group_of`)."""
        if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
            raise DomainError(f"x must be a positive int, got {x!r}")
        import math

        if x == 1:
            return 0
        # reprolint: allow[R001] the paper's float estimate, by design;
        # never feeds back into pairing arithmetic (group_of is exact)
        return math.ceil(math.log2(x) ** (1.0 / self.k))


class TStar(ConstructedAPF):
    """``T*``: the practical subquadratic APF of Proposition 4.4, built from
    ``kappa*(g) = ceil(g**2 / 2)`` (equation 4.8).

    >>> star = TStar()
    >>> star.pair(28, 1), star.pair(29, 3)   # Figure 6, bottom block
    (328, 1368)
    >>> star.group_of(28)                     # Figure 6 shows g = 3
    3
    """

    def __init__(self) -> None:
        super().__init__(HalfSquareCopyIndex(), display_name="apf-star")

    def estimated_group_of(self, x: int) -> int:
        """The paper's simplified estimate ``g ~= ceil(sqrt(2 log2 x)) + 1``
        (slightly inaccurate by design; compare with :meth:`group_of`)."""
        if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
            raise DomainError(f"x must be a positive int, got {x!r}")
        import math

        if x == 1:
            return 0
        # reprolint: allow[R001] the paper's float estimate, by design;
        # never feeds back into pairing arithmetic (group_of is exact)
        return math.ceil(math.sqrt(2 * math.log2(x))) + 1

    def stride_estimate(self, x: int) -> float:
        """Proposition 4.4's approximation ``S*_x ~= 8 x 4**sqrt(2 log2 x)``."""
        if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
            raise DomainError(f"x must be a positive int, got {x!r}")
        import math

        if x == 1:
            return 8.0
        # reprolint: allow[R001] Proposition 4.4 is itself an estimate;
        # the float result is reporting-only
        return 8.0 * x * 4.0 ** math.sqrt(2 * math.log2(x))


class ExponentialKappaAPF(ConstructedAPF):
    """The cautionary APF with ``kappa(g) = 2**g`` (Section 4.2.3): a valid
    APF whose compactness is *worse* than quadratic.  At the first row of
    each group (``x ~= sqrt(2**kappa(g))``) the stride satisfies
    ``S_x > x**2 * log2(x**2)``, confuting the subquadratic goal.

    >>> bad = ExponentialKappaAPF()
    >>> bad.check_roundtrip_window(6, 6)
    """

    def __init__(self) -> None:
        super().__init__(ExponentialCopyIndex(), display_name="apf-exponential")

    def first_row_of_group(self, g: int) -> int:
        """The smallest row index in group *g* -- where the superquadratic
        stride blowup is witnessed."""
        return self.layout.group_start(g) + 1
