"""repro: pairing functions for extendible-array storage and accountable
web computing.

A production-grade reproduction of Arnold L. Rosenberg, *Efficient Pairing
Functions -- and Why You Should Care* (IPPS/WPDRTS 2002).

A *pairing function* (PF) is a bijection ``N x N <-> N`` over the positive
integers.  This library implements the paper's entire cast:

* the closed-form PFs -- diagonal (Cantor), square-shell, hyperbolic,
  fixed-aspect-ratio -- plus the dovetail combinator and the generic shell
  constructor (:mod:`repro.core`);
* the additive PFs of Section 4 and Procedure APF-Constructor
  (:mod:`repro.apf`);
* the polynomial-PF impossibility toolkit of Section 2
  (:mod:`repro.polynomial`);
* the two application substrates the paper motivates: extendible arrays
  over an instrumented address space (:mod:`repro.arrays`) and an
  accountable web-computing server + simulation (:mod:`repro.webcompute`);
* figure regeneration and a CLI (:mod:`repro.render`, :mod:`repro.cli`).

Quick start::

    from repro import get_pairing

    d = get_pairing("diagonal")
    assert d.pair(3, 2) == 8
    assert d.unpair(8) == (3, 2)

See README.md for the full tour and EXPERIMENTS.md for the paper-vs-
measured record.
"""

from __future__ import annotations

from repro.errors import (
    AllocationError,
    CapacityError,
    ConfigurationError,
    DomainError,
    NotInImageError,
    ReproError,
)
from repro.core import (
    AspectRatioPairing,
    BinaryProportionalPairing,
    DiagonalPairing,
    DiagonalPairingTwin,
    DovetailMapping,
    HyperbolicPairing,
    PairingFunction,
    RosenbergStrongPairing,
    ShellConstructedPairing,
    ShellOrder,
    SquareShellPairing,
    SquareShellPairingTwin,
    StorageMapping,
    SzudzikElegantPairing,
    available_names,
    get_pairing,
)
from repro.apf import (
    AdditivePairingFunction,
    ConstructedAPF,
    TBracket,
    TSharp,
    TStar,
    TPower,
)
from repro.core.ndim import IteratedPairing
from repro.encoding import StringCodec, TupleCodec
from repro.perf import SpreadCache, pair_many, spread_many, unpair_many

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "DomainError",
    "NotInImageError",
    "ConfigurationError",
    "CapacityError",
    "AllocationError",
    # core
    "PairingFunction",
    "StorageMapping",
    "DiagonalPairing",
    "DiagonalPairingTwin",
    "SquareShellPairing",
    "SquareShellPairingTwin",
    "HyperbolicPairing",
    "AspectRatioPairing",
    "SzudzikElegantPairing",
    "RosenbergStrongPairing",
    "BinaryProportionalPairing",
    "DovetailMapping",
    "ShellConstructedPairing",
    "ShellOrder",
    "available_names",
    "get_pairing",
    # apf
    "AdditivePairingFunction",
    "ConstructedAPF",
    "TBracket",
    "TSharp",
    "TStar",
    "TPower",
    "IteratedPairing",
    "TupleCodec",
    "StringCodec",
    # perf
    "SpreadCache",
    "pair_many",
    "unpair_many",
    "spread_many",
]
