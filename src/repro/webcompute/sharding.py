"""Horizontal sharding of the WBC service, composed with the paper's own
pairing functions.

A single :class:`~repro.webcompute.engine.AllocationEngine` is a
synchronous core; to scale out, :class:`ShardedWBCServer` runs ``S``
independent engine shards and keeps one *global, attributable* task-index
space by composing the mapping layers exactly the way the paper composes
arrays: the pair ``(shard_no, local_index)`` is itself paired into one
integer with the Rosenberg--Strong square-shell PF
(:class:`~repro.core.squareshell.SquareShellPairing`, the ``A_{1,1}`` of
Section 3.2.1; Szudzik 2019 studies the same function as "the
Rosenberg-Strong pairing function").  Global attribution is the composition
of inverses: ``unpair`` recovers ``(shard_no, local_index)``, then the
shard's APF inverse plus its epoch table recovers ``(row, serial)`` and the
volunteer -- exact at any magnitude, because every step is integer-exact
bignum arithmetic.

Shell-based composition keeps the global space *dense in the shard
dimension*: with ``S`` shards the square-shell walk never charges more
than ``max(S, local)**2`` addresses, and for workloads where the local
index dominates (the common case: few shards, many tasks) an
aspect-ratio shell :class:`~repro.core.aspectratio.AspectRatioPairing`
``A_{1,b}`` with ``b ~ local/shard`` recovers most of the lost density --
the same proportional-shell idea as Szudzik's binary proportional PFs
(2018).  Pass it as ``composer`` to measure the tradeoff; the shard-scaling
benchmark records the footprint for both.

Routing is deterministic: a :class:`ShardPolicy` maps each registration to
a shard, so a seeded run is exactly reproducible, shard count included.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apf.base import AdditivePairingFunction
from repro.core.base import PairingFunction
from repro.core.squareshell import SquareShellPairing
from repro.errors import AllocationError, ConfigurationError
from repro.webcompute.engine import AllocationEngine, IndexCodec
from repro.webcompute.events import EventBus
from repro.webcompute.ledger import LedgerReport
from repro.webcompute.task import Task
from repro.webcompute.volunteer import VolunteerProfile

__all__ = [
    "ShardPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "AttributionPath",
    "ShardedWBCServer",
]


class ShardPolicy:
    """Deterministic volunteer-to-shard routing.  ``shard_for`` sees the
    global registration sequence number, the profile, and the live engines;
    it must return a shard index in ``[0, len(engines))`` and must not
    consult any non-deterministic source."""

    def shard_for(
        self,
        sequence: int,
        profile: VolunteerProfile,
        engines: list[AllocationEngine],
    ) -> int:
        raise NotImplementedError


class RoundRobinPolicy(ShardPolicy):
    """Registration ``k`` goes to shard ``k mod S`` -- stateless, and
    perfectly balanced for any arrival order."""

    def shard_for(
        self,
        sequence: int,
        profile: VolunteerProfile,
        engines: list[AllocationEngine],
    ) -> int:
        return sequence % len(engines)


class LeastLoadedPolicy(ShardPolicy):
    """The shard with the fewest seated volunteers; ties break to the
    smallest shard index.  Re-balances automatically after departures.
    Within one registration round the router counts earlier in-round
    assignments as load, so a batch spreads instead of piling onto the
    shard that was lightest when the round began."""

    def shard_for(
        self,
        sequence: int,
        profile: VolunteerProfile,
        engines: list[AllocationEngine],
    ) -> int:
        return min(range(len(engines)), key=lambda s: (engines[s].seated_count, s))


class _LoadView:
    """An engine stand-in handed to policies during a registration round:
    ``seated_count`` includes volunteers assigned earlier in the same round
    (they are not seated on the engine until the round flushes); every
    other attribute reads through to the live engine."""

    __slots__ = ("_engine", "pending")

    def __init__(self, engine: AllocationEngine) -> None:
        self._engine = engine
        self.pending = 0

    @property
    def seated_count(self) -> int:
        return self._engine.seated_count + self.pending

    def __getattr__(self, name: str):
        return getattr(self._engine, name)


@dataclass(frozen=True, slots=True)
class AttributionPath:
    """The full inverse chain for one global task index: the witness the
    accountability argument rests on."""

    global_index: int
    shard: int
    local_index: int
    row: int
    serial: int
    volunteer_id: int


class ShardedWBCServer:
    """``S`` engine shards behind one attributable global index space.

    >>> from repro.apf.families import TSharp
    >>> server = ShardedWBCServer(TSharp(), shards=2)
    >>> a, b = server.register_round(
    ...     [VolunteerProfile("a", speed=2.0), VolunteerProfile("b")]
    ... )
    >>> server.shard_of(a), server.shard_of(b)
    (0, 1)
    >>> t = server.request_task(a)
    >>> server.attribute(t.index) == a
    True
    >>> server.submit_result(a, t.index, t.expected_result)

    Parameters
    ----------
    apf:
        The additive PF every shard allocates along (shards are
        independent, so they can share the stateless instance).
    shards:
        Number of engine shards ``S >= 1``.
    composer:
        The pairing function composing ``(shard_no, local_index)`` into
        the global index; defaults to the Rosenberg--Strong square shell.
    policy:
        The deterministic routing policy; defaults to round-robin.
    """

    def __init__(
        self,
        apf: AdditivePairingFunction,
        shards: int,
        verification_rate: float = 0.1,
        ban_after_strikes: int = 2,
        seed: int = 0,
        *,
        composer: PairingFunction | None = None,
        policy: ShardPolicy | None = None,
    ) -> None:
        if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
            raise ConfigurationError(f"shards must be a positive int, got {shards!r}")
        self.composer = composer if composer is not None else SquareShellPairing()
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self.bus = EventBus()
        self.engines: list[AllocationEngine] = []
        for shard in range(shards):
            engine = AllocationEngine(
                apf,
                verification_rate=verification_rate,
                ban_after_strikes=ban_after_strikes,
                seed=seed + shard,
                codec=self._codec_for(shard),
            )
            engine.bus.forward_to(self.bus, shard=shard)
            self.engines.append(engine)
        self.bus.set_clock(lambda: self._clock)
        self._shard_of: dict[int, int] = {}
        self._next_volunteer_id = 1
        self._registrations = 0
        self._clock = 0

    def _codec_for(self, shard: int) -> IndexCodec:
        """The shard's slice of the global index space: rows ``shard + 1``
        of the composer (1-indexed, like everything in the paper)."""
        shard_no = shard + 1
        composer = self.composer

        def encode(local: int) -> int:
            return composer.pair(shard_no, local)

        def decode(global_index: int) -> int:
            x, y = composer.unpair(global_index)
            if x != shard_no:
                raise AllocationError(
                    f"task {global_index} belongs to shard {x - 1}, not {shard}"
                )
            return y

        return IndexCodec(encode=encode, decode=decode)

    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.engines)

    @property
    def clock(self) -> int:
        return self._clock

    def tick(self) -> int:
        """Advance every shard's clock in lockstep."""
        self._clock += 1
        for engine in self.engines:
            engine.tick()
        return self._clock

    @property
    def apf_name(self) -> str:
        return self.engines[0].apf_name

    @property
    def max_task_index(self) -> int:
        """Largest *global* task index ever issued -- the footprint of the
        composed space, the number the shard-scaling bench tracks."""
        return max(engine.max_task_index for engine in self.engines)

    @property
    def seated_count(self) -> int:
        return sum(engine.seated_count for engine in self.engines)

    def shard_of(self, volunteer_id: int) -> int:
        try:
            return self._shard_of[volunteer_id]
        except KeyError:
            raise AllocationError(f"unknown volunteer {volunteer_id}") from None

    def engine_of(self, volunteer_id: int) -> AllocationEngine:
        return self.engines[self.shard_of(volunteer_id)]

    # ------------------------------------------------------------------

    def register(self, profile: VolunteerProfile) -> int:
        return self.register_round([profile])[0]

    def register_round(self, profiles: list[VolunteerProfile]) -> list[int]:
        """Admit a batch: the policy routes each volunteer to a shard,
        then each shard seats its sub-round (fastest first, as ever).
        Volunteer ids are globally unique across shards."""
        ids: list[int] = []
        per_shard: dict[int, tuple[list[VolunteerProfile], list[int]]] = {}
        load_views = [_LoadView(engine) for engine in self.engines]
        for profile in profiles:
            shard = self.policy.shard_for(self._registrations, profile, load_views)
            if not 0 <= shard < len(self.engines):
                raise ConfigurationError(
                    f"policy routed to shard {shard}, valid range is "
                    f"0..{len(self.engines) - 1}"
                )
            vid = self._next_volunteer_id
            self._next_volunteer_id += 1
            self._registrations += 1
            self._shard_of[vid] = shard
            load_views[shard].pending += 1
            bucket = per_shard.setdefault(shard, ([], []))
            bucket[0].append(profile)
            bucket[1].append(vid)
            ids.append(vid)
        for shard, (batch, batch_ids) in per_shard.items():
            self.engines[shard].register_round(batch, ids=batch_ids)
        return ids

    def depart(self, volunteer_id: int) -> None:
        self.engine_of(volunteer_id).depart(volunteer_id)

    # ------------------------------------------------------------------

    def request_task(self, volunteer_id: int) -> Task:
        """The volunteer's next task; ``task.index`` is the composed
        global index."""
        return self.engine_of(volunteer_id).request_task(volunteer_id)

    def _engine_for_index(self, global_index: int) -> tuple[int, int, AllocationEngine]:
        """(shard, local_index, engine) for a global task index."""
        if isinstance(global_index, bool) or not isinstance(global_index, int) or global_index <= 0:
            raise AllocationError(
                f"task index must be a positive int, got {global_index!r}"
            )
        shard_no, local = self.composer.unpair(global_index)
        if not 1 <= shard_no <= len(self.engines):
            raise AllocationError(
                f"task {global_index} decodes to shard {shard_no - 1}, "
                f"but only shards 0..{len(self.engines) - 1} exist"
            )
        return shard_no - 1, local, self.engines[shard_no - 1]

    def submit_result(self, volunteer_id: int, task_index: int, result: int) -> None:
        """Accept a result for a *global* task index.  Routing is by the
        index itself, so a forged submission against another shard's task
        is caught by that shard's attribution check."""
        _shard, _local, engine = self._engine_for_index(task_index)
        engine.submit_result(volunteer_id, task_index, result)

    def attribute(self, task_index: int) -> int:
        """Global attribution: ``unpair`` to ``(shard, local)``, then the
        shard's APF inverse and epoch table."""
        _shard, _local, engine = self._engine_for_index(task_index)
        return engine.attribute(task_index)

    def attribution_path(self, task_index: int) -> AttributionPath:
        """The full inverse chain
        ``global -> (shard, local) -> (row, serial) -> volunteer`` --
        the round-trip witness the sharded accountability property tests
        exercise at bignum scale."""
        shard, local, engine = self._engine_for_index(task_index)
        row, serial = engine.allocator.attribute(local)
        volunteer = engine.frontend.volunteer_for(row, serial)
        return AttributionPath(
            global_index=task_index,
            shard=shard,
            local_index=local,
            row=row,
            serial=serial,
            volunteer_id=volunteer,
        )

    # ------------------------------------------------------------------

    def profile_of(self, volunteer_id: int) -> VolunteerProfile:
        return self.engine_of(volunteer_id).profile_of(volunteer_id)

    def is_banned(self, volunteer_id: int) -> bool:
        shard = self._shard_of.get(volunteer_id)
        if shard is None:
            return False
        return self.engines[shard].is_banned(volunteer_id)

    def report(self) -> LedgerReport:
        """The aggregate ledger report across every shard."""
        reports = [engine.report() for engine in self.engines]
        return LedgerReport(
            tasks_issued=sum(r.tasks_issued for r in reports),
            tasks_returned=sum(r.tasks_returned for r in reports),
            tasks_verified=sum(r.tasks_verified for r in reports),
            bad_results_returned=sum(r.bad_results_returned for r in reports),
            bad_results_caught=sum(r.bad_results_caught for r in reports),
            volunteers_banned=sum(r.volunteers_banned for r in reports),
            honest_volunteers_banned=sum(r.honest_volunteers_banned for r in reports),
        )

    def __repr__(self) -> str:
        return (
            f"<ShardedWBCServer shards={self.shard_count} "
            f"apf={self.apf_name} composer={self.composer.name} "
            f"seated={self.seated_count} max_task_index={self.max_task_index}>"
        )
