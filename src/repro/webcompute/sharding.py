"""Horizontal sharding of the WBC service, composed with the paper's own
pairing functions.

A single :class:`~repro.webcompute.engine.AllocationEngine` is a
synchronous core; to scale out, :class:`ShardedWBCServer` runs ``S``
independent engine shards and keeps one *global, attributable* task-index
space by composing the mapping layers exactly the way the paper composes
arrays: the pair ``(shard_no, local_index)`` is itself paired into one
integer with the Rosenberg--Strong square-shell PF
(:class:`~repro.core.squareshell.SquareShellPairing`, the ``A_{1,1}`` of
Section 3.2.1; Szudzik 2019 studies the same function as "the
Rosenberg-Strong pairing function").  Global attribution is the composition
of inverses: ``unpair`` recovers ``(shard_no, local_index)``, then the
shard's APF inverse plus its epoch table recovers ``(row, serial)`` and the
volunteer -- exact at any magnitude, because every step is integer-exact
bignum arithmetic.

Shell-based composition keeps the global space *dense in the shard
dimension*: with ``S`` shards the square-shell walk never charges more
than ``max(S, local)**2`` addresses, and for workloads where the local
index dominates (the common case: few shards, many tasks) an
aspect-ratio shell :class:`~repro.core.aspectratio.AspectRatioPairing`
``A_{1,b}`` with ``b ~ local/shard`` recovers most of the lost density --
the same proportional-shell idea as Szudzik's binary proportional PFs
(2018).  Pass it as ``composer`` to measure the tradeoff; the shard-scaling
benchmark records the footprint for both.

Routing is deterministic: a :class:`ShardPolicy` maps each registration to
a shard, so a seeded run is exactly reproducible, shard count included.

Fault tolerance (the difference between a demo and a service): every
mutating call is journaled to the shard's
:class:`~repro.webcompute.recovery.CheckpointStore` *after* it succeeds,
and the store periodically checkpoints the engine's complete snapshot.
:meth:`ShardedWBCServer.crash_shard` discards a shard's in-memory engine
(really discards it -- the slot is filled by a :class:`_DeadShard`
sentinel that refuses all traffic with the transient
:class:`~repro.errors.ShardDownError`);
:meth:`ShardedWBCServer.restore_shard` rebuilds it from checkpoint +
deterministic journal replay and audits that the rebuilt shard issued
exactly the indices the journal says it did -- no global task index is
ever double-issued across a crash.  While a shard is down, registration
routing degrades to the live shards only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apf.base import AdditivePairingFunction
from repro.core.base import PairingFunction
from repro.core.squareshell import SquareShellPairing
from repro.errors import (
    AllocationError,
    ConfigurationError,
    RecoveryError,
    ShardDownError,
)
from repro.webcompute.engine import AllocationEngine, IndexCodec
from repro.webcompute.events import (
    CheckpointTaken,
    EventBus,
    ShardCrashed,
    ShardRestored,
)
from repro.webcompute.ledger import LedgerReport
from repro.webcompute.recovery import CheckpointStore, replay
from repro.webcompute.task import Task
from repro.webcompute.volunteer import VolunteerProfile

__all__ = [
    "ShardPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "AttributionPath",
    "ShardedWBCServer",
]


class ShardPolicy:
    """Deterministic volunteer-to-shard routing.  ``shard_for`` sees the
    global registration sequence number, the profile, and the live engines;
    it must return a shard index in ``[0, len(engines))`` and must not
    consult any non-deterministic source."""

    def shard_for(
        self,
        sequence: int,
        profile: VolunteerProfile,
        engines: list[AllocationEngine],
    ) -> int:
        raise NotImplementedError


class RoundRobinPolicy(ShardPolicy):
    """Registration ``k`` goes to shard ``k mod S`` -- stateless, and
    perfectly balanced for any arrival order."""

    def shard_for(
        self,
        sequence: int,
        profile: VolunteerProfile,
        engines: list[AllocationEngine],
    ) -> int:
        return sequence % len(engines)


class LeastLoadedPolicy(ShardPolicy):
    """The shard with the fewest seated volunteers; ties break to the
    smallest shard index.  Re-balances automatically after departures.
    Within one registration round the router counts earlier in-round
    assignments as load, so a batch spreads instead of piling onto the
    shard that was lightest when the round began."""

    def shard_for(
        self,
        sequence: int,
        profile: VolunteerProfile,
        engines: list[AllocationEngine],
    ) -> int:
        return min(range(len(engines)), key=lambda s: (engines[s].seated_count, s))


class _LoadView:
    """An engine stand-in handed to policies during a registration round:
    ``seated_count`` includes volunteers assigned earlier in the same round
    (they are not seated on the engine until the round flushes); every
    other attribute reads through to the live engine."""

    __slots__ = ("_engine", "pending")

    def __init__(self, engine: AllocationEngine) -> None:
        self._engine = engine
        self.pending = 0

    @property
    def seated_count(self) -> int:
        return self._engine.seated_count + self.pending

    def __getattr__(self, name: str):
        return getattr(self._engine, name)


class _DeadShard:
    """The object occupying a crashed shard's engine slot.  Any attribute
    access raises :class:`~repro.errors.ShardDownError`, so traffic that
    slips past the liveness checks still fails transient-retryable rather
    than silently touching stale state.  The crashed engine itself is
    unreferenced (its in-memory state is genuinely lost)."""

    __slots__ = ("shard",)

    def __init__(self, shard: int) -> None:
        object.__setattr__(self, "shard", shard)

    def __getattr__(self, name: str):
        raise ShardDownError(
            f"shard {object.__getattribute__(self, 'shard')} is down "
            f"(attribute {name!r}); restore it and retry"
        )


@dataclass(frozen=True, slots=True)
class AttributionPath:
    """The full inverse chain for one global task index: the witness the
    accountability argument rests on."""

    global_index: int
    shard: int
    local_index: int
    row: int
    serial: int
    volunteer_id: int


class ShardedWBCServer:
    """``S`` engine shards behind one attributable global index space.

    >>> from repro.apf.families import TSharp
    >>> server = ShardedWBCServer(TSharp(), shards=2)
    >>> a, b = server.register_round(
    ...     [VolunteerProfile("a", speed=2.0), VolunteerProfile("b")]
    ... )
    >>> server.shard_of(a), server.shard_of(b)
    (0, 1)
    >>> t = server.request_task(a)
    >>> server.attribute(t.index) == a
    True
    >>> server.submit_result(a, t.index, t.expected_result)

    Parameters
    ----------
    apf:
        The additive PF every shard allocates along (shards are
        independent, so they can share the stateless instance).
    shards:
        Number of engine shards ``S >= 1``.
    composer:
        The pairing function composing ``(shard_no, local_index)`` into
        the global index; defaults to the Rosenberg--Strong square shell.
    policy:
        The deterministic routing policy; defaults to round-robin.
    lease_ticks:
        Task-lease length passed to every shard engine (``None`` = no
        leases).
    checkpoint_every:
        Checkpoint every live shard each time the global clock hits a
        multiple of this many ticks (``None`` = only the initial and
        explicitly requested checkpoints).
    """

    def __init__(
        self,
        apf: AdditivePairingFunction,
        shards: int,
        verification_rate: float = 0.1,
        ban_after_strikes: int = 2,
        seed: int = 0,
        *,
        composer: PairingFunction | None = None,
        policy: ShardPolicy | None = None,
        lease_ticks: int | None = None,
        checkpoint_every: int | None = None,
    ) -> None:
        if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
            raise ConfigurationError(f"shards must be a positive int, got {shards!r}")
        if checkpoint_every is not None and (
            isinstance(checkpoint_every, bool)
            or not isinstance(checkpoint_every, int)
            or checkpoint_every <= 0
        ):
            raise ConfigurationError(
                f"checkpoint_every must be a positive int or None, "
                f"got {checkpoint_every!r}"
            )
        self.composer = composer if composer is not None else SquareShellPairing()
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self.checkpoint_every = checkpoint_every
        self.lease_ticks = lease_ticks
        # Kept so a crashed shard's engine can be rebuilt from scratch.
        self._apf = apf
        self._verification_rate = verification_rate
        self._ban_after_strikes = ban_after_strikes
        self._seed = seed
        self.bus = EventBus()
        self.engines: list[AllocationEngine] = []
        self._stores: list[CheckpointStore] = []
        self._alive: list[bool] = []
        for shard in range(shards):
            engine = self._fresh_engine(shard)
            engine.bus.forward_to(self.bus, shard=shard)
            self.engines.append(engine)
            store = CheckpointStore()
            store.checkpoint(engine)
            self._stores.append(store)
            self._alive.append(True)
        self.bus.set_clock(lambda: self._clock)
        self._shard_of: dict[int, int] = {}
        self._next_volunteer_id = 1
        self._registrations = 0
        self._clock = 0

    def _fresh_engine(self, shard: int) -> AllocationEngine:
        """A blank engine wired for *shard* (construction and recovery
        both start here; recovery then restores state into it)."""
        return AllocationEngine(
            self._apf,
            verification_rate=self._verification_rate,
            ban_after_strikes=self._ban_after_strikes,
            seed=self._seed + shard,
            codec=self._codec_for(shard),
            lease_ticks=self.lease_ticks,
        )

    def _codec_for(self, shard: int) -> IndexCodec:
        """The shard's slice of the global index space: rows ``shard + 1``
        of the composer (1-indexed, like everything in the paper)."""
        shard_no = shard + 1
        composer = self.composer

        def encode(local: int) -> int:
            return composer.pair(shard_no, local)

        def decode(global_index: int) -> int:
            x, y = composer.unpair(global_index)
            if x != shard_no:
                raise AllocationError(
                    f"task {global_index} belongs to shard {x - 1}, not {shard}"
                )
            return y

        return IndexCodec(encode=encode, decode=decode)

    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.engines)

    @property
    def clock(self) -> int:
        return self._clock

    # reprolint: allow[R005] clock advance: journaled to every shard's
    # store; the bus stamps events with the clock already
    def tick(self) -> int:
        """Advance every live shard's clock in lockstep.  The tick is
        journaled to *every* store -- including crashed shards', so a
        restore replays the downtime ticks and rejoins the global clock.
        """
        self._clock += 1
        for shard, engine in enumerate(self.engines):
            self._stores[shard].journal(["tick"])
            if self._alive[shard]:
                engine.tick()
        if (
            self.checkpoint_every is not None
            and self._clock % self.checkpoint_every == 0
        ):
            self.checkpoint_all()
        return self._clock

    @property
    def apf_name(self) -> str:
        return self._apf.name

    @property
    def max_task_index(self) -> int:
        """Largest *global* task index ever issued by a live shard -- the
        footprint of the composed space, the number the shard-scaling
        bench tracks.  (A crashed shard's contribution reappears when it
        is restored.)"""
        return max(
            (e.max_task_index for s, e in enumerate(self.engines) if self._alive[s]),
            default=0,
        )

    @property
    def seated_count(self) -> int:
        return sum(
            e.seated_count for s, e in enumerate(self.engines) if self._alive[s]
        )

    def shard_of(self, volunteer_id: int) -> int:
        try:
            return self._shard_of[volunteer_id]
        except KeyError:
            raise AllocationError(f"unknown volunteer {volunteer_id}") from None

    def engine_of(self, volunteer_id: int) -> AllocationEngine:
        shard = self.shard_of(volunteer_id)
        if not self._alive[shard]:
            raise ShardDownError(
                f"volunteer {volunteer_id} lives on shard {shard}, "
                "which is down; retry after restore"
            )
        return self.engines[shard]

    # -- liveness / crash / recovery -----------------------------------

    def _check_shard(self, shard: int) -> None:
        if isinstance(shard, bool) or not isinstance(shard, int):
            raise ConfigurationError(f"shard must be an int, got {shard!r}")
        if not 0 <= shard < len(self.engines):
            raise ConfigurationError(
                f"shard {shard} out of range 0..{len(self.engines) - 1}"
            )

    def is_shard_alive(self, shard: int) -> bool:
        self._check_shard(shard)
        return self._alive[shard]

    def alive_shards(self) -> list[int]:
        """Indices of live shards, ascending."""
        return [s for s, alive in enumerate(self._alive) if alive]

    def checkpoint_shard(self, shard: int) -> None:
        """Checkpoint one live shard (full engine snapshot; journal
        truncated)."""
        self._check_shard(shard)
        if not self._alive[shard]:
            raise ShardDownError(f"cannot checkpoint crashed shard {shard}")
        cp = self._stores[shard].checkpoint(self.engines[shard])
        self.bus.publish(
            CheckpointTaken(
                tick=self._clock, shard=shard, tasks_issued=cp.tasks_issued
            )
        )

    def checkpoint_all(self) -> None:
        """Checkpoint every live shard."""
        for shard in self.alive_shards():
            self.checkpoint_shard(shard)

    def crash_shard(self, shard: int) -> None:
        """Kill a shard: its engine object (all in-memory state) is
        dropped on the floor; only the checkpoint store survives.  Any
        call routed to the shard raises
        :class:`~repro.errors.ShardDownError` until
        :meth:`restore_shard`."""
        self._check_shard(shard)
        if not self._alive[shard]:
            raise RecoveryError(f"shard {shard} is already down")
        pending = self._stores[shard].pending_ops
        self.engines[shard] = _DeadShard(shard)  # type: ignore[assignment]
        self._alive[shard] = False
        self.bus.publish(
            ShardCrashed(tick=self._clock, shard=shard, pending_ops=pending)
        )

    def restore_shard(self, shard: int) -> None:
        """Rebuild a crashed shard: fresh engine, restore the latest
        checkpoint, replay the op journal deterministically, then audit
        that the rebuilt shard issued exactly the indices the journal
        says it did (``checkpoint + #request ops``) -- the no-double-issue
        guarantee across a crash.  Event forwarding to the global bus is
        re-attached only *after* replay, so replayed history is not
        re-published."""
        self._check_shard(shard)
        if self._alive[shard]:
            raise RecoveryError(f"shard {shard} is not down")
        store = self._stores[shard]
        cp = store.latest()
        engine = self._fresh_engine(shard)
        engine.restore_state(cp.state)
        ops = store.ops()
        replayed = replay(engine, ops)
        issued = len(engine.ledger.tasks())
        expected = cp.tasks_issued + sum(1 for op in ops if op[0] == "request")
        if issued != expected:
            raise RecoveryError(
                f"shard {shard} replay issued {issued} tasks, journal "
                f"implies {expected} (checkpoint {cp.tasks_issued} + "
                f"{expected - cp.tasks_issued} requests)"
            )
        if engine.clock != self._clock:
            raise RecoveryError(
                f"shard {shard} replay ended at tick {engine.clock}, "
                f"global clock is {self._clock}"
            )
        engine.bus.forward_to(self.bus, shard=shard)
        self.engines[shard] = engine
        self._alive[shard] = True
        self.bus.publish(
            ShardRestored(
                tick=self._clock,
                shard=shard,
                checkpoint_tick=cp.tick,
                replayed_ops=replayed,
            )
        )

    # ------------------------------------------------------------------

    def register(self, profile: VolunteerProfile) -> int:
        return self.register_round([profile])[0]

    # reprolint: allow[R005] each shard engine publishes VolunteerRegistered
    # itself; those events are forwarded to the global bus
    def register_round(self, profiles: list[VolunteerProfile]) -> list[int]:
        """Admit a batch: the policy routes each volunteer to a shard,
        then each shard seats its sub-round (fastest first, as ever).
        Volunteer ids are globally unique across shards.

        Degraded mode: the policy only ever sees the *live* shards'
        load views, so while a shard is down registrations route around
        it (and with every shard live, routing is bit-identical to the
        fault-free behavior).  Raises
        :class:`~repro.errors.AllocationError` when every shard is down.
        """
        alive = self.alive_shards()
        if not alive:
            raise AllocationError("every shard is down; nothing can register")
        ids: list[int] = []
        per_shard: dict[int, tuple[list[VolunteerProfile], list[int]]] = {}
        load_views = [_LoadView(self.engines[s]) for s in alive]
        for profile in profiles:
            pick = self.policy.shard_for(self._registrations, profile, load_views)
            if not 0 <= pick < len(load_views):
                raise ConfigurationError(
                    f"policy routed to live-shard slot {pick}, valid range is "
                    f"0..{len(load_views) - 1}"
                )
            shard = alive[pick]
            vid = self._next_volunteer_id
            self._next_volunteer_id += 1
            self._registrations += 1
            self._shard_of[vid] = shard
            load_views[pick].pending += 1
            bucket = per_shard.setdefault(shard, ([], []))
            bucket[0].append(profile)
            bucket[1].append(vid)
            ids.append(vid)
        for shard, (batch, batch_ids) in per_shard.items():
            self.engines[shard].register_round(batch, ids=batch_ids)
            self._stores[shard].journal(
                ["register", [p.to_state() for p in batch], batch_ids]
            )
        return ids

    def depart(self, volunteer_id: int) -> None:
        shard = self.shard_of(volunteer_id)
        self.engine_of(volunteer_id).depart(volunteer_id)
        self._stores[shard].journal(["depart", volunteer_id])

    # ------------------------------------------------------------------

    def request_task(self, volunteer_id: int) -> Task:
        """The volunteer's next task; ``task.index`` is the composed
        global index."""
        shard = self.shard_of(volunteer_id)
        task = self.engine_of(volunteer_id).request_task(volunteer_id)
        self._stores[shard].journal(["request", volunteer_id])
        return task

    def reap_expired(self) -> list[Task]:
        """Run the lease reaper on every live shard (each shard reissues
        its own expired tasks to its own idle volunteers)."""
        reissued: list[Task] = []
        for shard in self.alive_shards():
            reissued.extend(self.engines[shard].reap_expired())
            self._stores[shard].journal(["reap"])
        return reissued

    def mark_corrupted(self, volunteer_id: int, error_rate: float) -> VolunteerProfile:
        """Flip a volunteer malicious mid-run (the fault injector's hook)."""
        shard = self.shard_of(volunteer_id)
        profile = self.engine_of(volunteer_id).mark_corrupted(volunteer_id, error_rate)
        self._stores[shard].journal(["corrupt", volunteer_id, error_rate])
        return profile

    def _engine_for_index(self, global_index: int) -> tuple[int, int, AllocationEngine]:
        """(shard, local_index, engine) for a global task index."""
        if isinstance(global_index, bool) or not isinstance(global_index, int) or global_index <= 0:
            raise AllocationError(
                f"task index must be a positive int, got {global_index!r}"
            )
        shard_no, local = self.composer.unpair(global_index)
        if not 1 <= shard_no <= len(self.engines):
            raise AllocationError(
                f"task {global_index} decodes to shard {shard_no - 1}, "
                f"but only shards 0..{len(self.engines) - 1} exist"
            )
        shard = shard_no - 1
        if not self._alive[shard]:
            raise ShardDownError(
                f"task {global_index} routes to shard {shard}, which is "
                "down; retry after restore"
            )
        return shard, local, self.engines[shard]

    def submit_result(self, volunteer_id: int, task_index: int, result: int) -> None:
        """Accept a result for a *global* task index.  Routing is by the
        index itself, so a forged submission against another shard's task
        is caught by that shard's attribution check.  A submission racing
        a crashed shard raises the transient
        :class:`~repro.errors.ShardDownError`; the caller (the
        simulation's retry queue, a real frontend) re-submits with
        backoff."""
        shard, _local, engine = self._engine_for_index(task_index)
        engine.submit_result(volunteer_id, task_index, result)
        self._stores[shard].journal(["submit", volunteer_id, task_index, result])

    def task(self, task_index: int) -> Task:
        """The live :class:`~repro.webcompute.task.Task` record behind a
        global index (routed to its shard's ledger)."""
        _shard, _local, engine = self._engine_for_index(task_index)
        return engine.ledger.task(task_index)

    def attribute(self, task_index: int) -> int:
        """Global attribution: ``unpair`` to ``(shard, local)``, then the
        shard's APF inverse and epoch table."""
        _shard, _local, engine = self._engine_for_index(task_index)
        return engine.attribute(task_index)

    def attribution_path(self, task_index: int) -> AttributionPath:
        """The full inverse chain
        ``global -> (shard, local) -> (row, serial) -> volunteer`` --
        the round-trip witness the sharded accountability property tests
        exercise at bignum scale."""
        shard, local, engine = self._engine_for_index(task_index)
        row, serial = engine.allocator.attribute(local)
        volunteer = engine.frontend.volunteer_for(row, serial)
        return AttributionPath(
            global_index=task_index,
            shard=shard,
            local_index=local,
            row=row,
            serial=serial,
            volunteer_id=volunteer,
        )

    # ------------------------------------------------------------------

    def profile_of(self, volunteer_id: int) -> VolunteerProfile:
        return self.engine_of(volunteer_id).profile_of(volunteer_id)

    def is_banned(self, volunteer_id: int) -> bool:
        shard = self._shard_of.get(volunteer_id)
        if shard is None:
            return False
        return self.engines[shard].is_banned(volunteer_id)

    def report(self) -> LedgerReport:
        """The aggregate ledger report across every *live* shard (a
        crashed shard's ledger rejoins the aggregate once restored)."""
        reports = [self.engines[s].report() for s in self.alive_shards()]
        return LedgerReport(
            tasks_issued=sum(r.tasks_issued for r in reports),
            tasks_returned=sum(r.tasks_returned for r in reports),
            tasks_verified=sum(r.tasks_verified for r in reports),
            bad_results_returned=sum(r.bad_results_returned for r in reports),
            bad_results_caught=sum(r.bad_results_caught for r in reports),
            volunteers_banned=sum(r.volunteers_banned for r in reports),
            honest_volunteers_banned=sum(r.honest_volunteers_banned for r in reports),
            tasks_reissued=sum(r.tasks_reissued for r in reports),
            late_returns=sum(r.late_returns for r in reports),
        )

    def __repr__(self) -> str:
        return (
            f"<ShardedWBCServer shards={self.shard_count} "
            f"apf={self.apf_name} composer={self.composer.name} "
            f"seated={self.seated_count} max_task_index={self.max_task_index}>"
        )
