"""Horizontal sharding of the WBC service, composed with the paper's own
pairing functions.

A single :class:`~repro.webcompute.engine.AllocationEngine` is a
synchronous core; to scale out, :class:`ShardedWBCServer` runs ``S``
independent engine shards and keeps one *global, attributable* task-index
space by composing the mapping layers exactly the way the paper composes
arrays: the pair ``(shard_no, local_index)`` is itself paired into one
integer with the Rosenberg--Strong square-shell PF
(:class:`~repro.core.squareshell.SquareShellPairing`, the ``A_{1,1}`` of
Section 3.2.1; Szudzik 2019 studies the same function as "the
Rosenberg-Strong pairing function").  Global attribution is the composition
of inverses: ``unpair`` recovers ``(shard_no, local_index)``, then the
shard's APF inverse plus its epoch table recovers ``(row, serial)`` and the
volunteer -- exact at any magnitude, because every step is integer-exact
bignum arithmetic.

Shell-based composition keeps the global space *dense in the shard
dimension*: with ``S`` shards the square-shell walk never charges more
than ``max(S, local)**2`` addresses, and for workloads where the local
index dominates (the common case: few shards, many tasks) an
aspect-ratio shell :class:`~repro.core.aspectratio.AspectRatioPairing`
``A_{1,b}`` with ``b ~ local/shard`` recovers most of the lost density --
the same proportional-shell idea as Szudzik's binary proportional PFs
(2018).  Pass it as ``composer`` to measure the tradeoff; the shard-scaling
benchmark records the footprint for both.

Routing is deterministic: a :class:`ShardPolicy` maps each registration to
a shard, so a seeded run is exactly reproducible, shard count included.

Fault tolerance (the difference between a demo and a service): every
mutating call is journaled to the shard's
:class:`~repro.webcompute.recovery.CheckpointStore` *after* it succeeds,
and the store periodically checkpoints the engine's complete snapshot.
:meth:`ShardedWBCServer.crash_shard` discards a shard's in-memory engine
(really discards it -- the slot is filled by a :class:`_DeadShard`
sentinel that refuses all traffic with the transient
:class:`~repro.errors.ShardDownError`);
:meth:`ShardedWBCServer.restore_shard` rebuilds it from checkpoint +
deterministic journal replay and audits that the rebuilt shard issued
exactly the indices the journal says it did -- no global task index is
ever double-issued across a crash.  While a shard is down, registration
routing degrades to the live shards only.

Checkpoints are **log-structured**: after the initial full snapshot, each
periodic checkpoint appends an incremental delta segment
(``engine.snapshot_delta`` since the log's newest covered tick) to the
shard's :class:`~repro.webcompute.recovery.CheckpointStore`, compacting
back into a full base every ``compact_every`` segments.  Restore is
**streaming**: :meth:`ShardedWBCServer.begin_restore` puts the shard into
a ``RESTORING`` degraded state (a :class:`_RestoringShard` sentinel) that
*accepts registrations* -- the round is buffered onto the replay queue and
seated when replay reaches it -- while every other call keeps raising the
transient :class:`~repro.errors.ShardDownError`;
:meth:`ShardedWBCServer.restore_step` incrementally applies delta
segments and journal ops, and :meth:`ShardedWBCServer.restore_shard`
remains the blocking begin + drain wrapper.  Ops that arrive while the
shard restores (global ticks, buffered registrations) are journaled *and*
appended to the replay queue, so the rebuilt engine converges on exactly
the state a blocking restore would have produced.  Events the engine
emits while replaying history are not re-published (the bus tap attaches
only at the end) -- including the ``VolunteerRegistered`` events of
rounds buffered during the restore window.

Execution modes: with ``workers=None`` (the default) every engine runs
in-process and the server behaves bit-identically to the pre-parallel
implementation -- same journals, same events, same RNG streams.  With
``workers=W`` the engines live in ``min(W, S)`` worker processes
(:mod:`~repro.webcompute.shardworker`); the router ships each journaled
op over a pipe to the shard's host process, re-publishes the events the
worker's engines emitted onto the global bus, and keeps hot-path reads
(``is_banned``, ``profile_of``) on parent-side mirrors maintained from
that event stream.  Batched entry points
(:meth:`ShardedWBCServer.request_tasks`,
:meth:`ShardedWBCServer.submit_results`,
:meth:`ShardedWBCServer.attribute_many`) fan one message out per worker
and overlap the shards' work -- the amortization that turns sharding
from routing overhead into actual parallelism.  A worker process dying
is mapped onto the same ``crash_shard``/``restore_shard`` discipline as
an injected fault: its hosted shards go down with
:class:`~repro.errors.ShardDownError` and come back via checkpoint +
journal replay into a respawned process.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.apf.base import AdditivePairingFunction
from repro.core.base import PairingFunction
from repro.core.squareshell import SquareShellPairing
from repro.errors import (
    AllocationError,
    ConfigurationError,
    RecoveryError,
    ReproError,
    ShardDownError,
)
from repro.webcompute.codecs import composer_for
from repro.webcompute.engine import AllocationEngine, IndexCodec
from repro.webcompute.events import (
    CheckpointTaken,
    EventBus,
    ShardCrashed,
    ShardRestored,
    ShardRestoring,
    VolunteerBanned,
)
from repro.webcompute.ledger import LedgerReport
from repro.webcompute.recovery import CheckpointStore, apply_op
from repro.webcompute.shardworker import EngineSpec, WorkerHandle, shard_codec
from repro.webcompute.task import Task
from repro.webcompute.volunteer import VolunteerProfile

__all__ = [
    "ShardPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "AttributionPath",
    "ShardedWBCServer",
]


class ShardPolicy:
    """Deterministic volunteer-to-shard routing.

    ``shard_for`` sees the global registration sequence number, the
    profile, and one load view per **live** shard (crashed shards are
    routed around, so a degraded server shows a shorter list).  It must
    return a *slot* into ``loads`` -- an index in ``[0, len(loads))`` --
    and the router maps that slot back to the absolute shard the view
    fronts.  With every shard up the slot and the absolute shard index
    coincide; while shards are down they do not, so a policy must pick by
    the *views* (their ``seated_count``, reads forwarded to the live
    engine), never by assuming position ``i`` is shard ``i``.  Policies
    must not consult any non-deterministic source."""

    def shard_for(
        self,
        sequence: int,
        profile: VolunteerProfile,
        loads: list[_LoadView],
    ) -> int:
        raise NotImplementedError


class RoundRobinPolicy(ShardPolicy):
    """Registration ``k`` goes to live-shard slot ``k mod len(loads)`` --
    stateless, and perfectly balanced for any arrival order."""

    def shard_for(
        self,
        sequence: int,
        profile: VolunteerProfile,
        loads: list[_LoadView],
    ) -> int:
        return sequence % len(loads)


class LeastLoadedPolicy(ShardPolicy):
    """The live shard with the fewest seated volunteers; ties break to
    the smallest slot (which is also the smallest absolute shard index,
    since live shards keep their relative order).  Re-balances
    automatically after departures.  Within one registration round the
    router counts earlier in-round assignments as load, so a batch
    spreads instead of piling onto the shard that was lightest when the
    round began."""

    def shard_for(
        self,
        sequence: int,
        profile: VolunteerProfile,
        loads: list[_LoadView],
    ) -> int:
        return min(range(len(loads)), key=lambda s: (loads[s].seated_count, s))


class _LoadView:
    """An engine stand-in handed to policies during a registration round:
    ``seated_count`` includes volunteers assigned earlier in the same round
    (they are not seated on the engine until the round flushes); every
    other attribute reads through to the live engine.  The engine's own
    count is read once per round (it cannot change mid-round) -- identical
    semantics in-process, and one pipe round trip instead of one per
    routed profile when the engine lives in a worker."""

    __slots__ = ("_engine", "pending", "_base")

    def __init__(self, engine: AllocationEngine) -> None:
        self._engine = engine
        self.pending = 0
        self._base: int | None = None

    @property
    def seated_count(self) -> int:
        if self._base is None:
            self._base = self._engine.seated_count
        return self._base + self.pending

    def __getattr__(self, name: str):
        return getattr(self._engine, name)


class _DeadShard:
    """The object occupying a crashed shard's engine slot.  Any attribute
    access raises :class:`~repro.errors.ShardDownError`, so traffic that
    slips past the liveness checks still fails transient-retryable rather
    than silently touching stale state.  The crashed engine itself is
    unreferenced (its in-memory state is genuinely lost)."""

    __slots__ = ("shard",)

    def __init__(self, shard: int) -> None:
        object.__setattr__(self, "shard", shard)

    def __getattr__(self, name: str):
        raise ShardDownError(
            f"shard {object.__getattribute__(self, 'shard')} is down "
            f"(attribute {name!r}); restore it and retry"
        )


class _RestoreSession:
    """Book-keeping for one shard's in-flight streaming restore: the
    rebuilding engine (in serial mode; worker mode keeps it worker-side),
    the replay queue of ``("delta", segment)`` / ``("op", op)`` items, and
    the audit counters the finish step checks."""

    __slots__ = (
        "shard",
        "engine",
        "queue",
        "checkpoint_tick",
        "base_issued",
        "request_ops",
        "replayed_ops",
        "accepted",
    )

    def __init__(
        self,
        shard: int,
        engine: AllocationEngine | None,
        checkpoint_tick: int,
        base_issued: int,
    ) -> None:
        self.shard = shard
        self.engine = engine
        self.queue: deque = deque()
        self.checkpoint_tick = checkpoint_tick
        self.base_issued = base_issued
        self.request_ops = 0
        self.replayed_ops = 0
        self.accepted = 0

    def enqueue_op(self, op: list) -> None:
        self.queue.append(("op", op))
        if op[0] == "request":
            self.request_ops += 1
        elif op[0] == "requests":
            self.request_ops += len(op[1])


class _RestoringShard:
    """The engine slot's occupant while a shard streams its restore.

    Registrations are *accepted* (degraded service): the server mints
    globally fresh volunteer ids, so the round cannot collide with any
    state still being replayed; the round's ``register`` op rides the
    replay queue (via the server's journaling seam) and the volunteers are
    actually seated when replay reaches it.  Everything else -- requests,
    returns, departures, reads -- raises the transient
    :class:`~repro.errors.ShardDownError` until the restore finishes.
    ``seated_count`` (what routing policies weigh) counts only in-restore
    admissions: the rebuilt engine's true count is unknown until replay
    completes."""

    __slots__ = ("shard", "_session")

    def __init__(self, shard: int, session: _RestoreSession) -> None:
        self.shard = shard
        self._session = session

    @property
    def seated_count(self) -> int:
        return self._session.accepted

    def validate_round(
        self, profiles: list[VolunteerProfile], ids: list[int] | None = None
    ) -> None:
        # Mirror the live engine's structural checks; the collision check
        # against already-registered ids is vacuous here because the
        # server only routes rounds with freshly minted ids.
        if ids is not None:
            if len(ids) != len(profiles):
                raise AllocationError(
                    f"got {len(ids)} ids for {len(profiles)} profiles"
                )
            for vid in ids:
                if isinstance(vid, bool) or not isinstance(vid, int) or vid <= 0:
                    raise AllocationError(
                        f"volunteer id must be a positive int, got {vid!r}"
                    )
            if len(set(ids)) != len(ids):
                raise AllocationError("duplicate volunteer id in one round")

    def register_round(
        self, profiles: list[VolunteerProfile], ids: list[int] | None = None
    ) -> list[int]:
        # The state change itself rides the replay queue: the server
        # journals the round's op right after this returns, and its
        # _journal seam appends every journaled op to the queue while the
        # shard is restoring.  Here we only account for the admission.
        self._session.accepted += len(ids)
        return list(ids)

    def __getattr__(self, name: str):
        raise ShardDownError(
            f"shard {object.__getattribute__(self, 'shard')} is restoring "
            f"(attribute {name!r}); only registration is served until "
            "replay finishes"
        )


class _WorkerMirror:
    """Parent-side read models of worker-hosted engine state.

    The authoritative state lives in the worker processes; the router
    keeps just enough of a mirror to answer the hot-path reads
    (``is_banned``, ``profile_of``) without a pipe round trip.  The ban
    set is maintained the way R005 wants every observer to work --
    from the published event stream (``VolunteerBanned`` events shipped
    back with each reply); profiles are recorded at the two points the
    router already holds the authoritative object (registration commit
    and ``mark_corrupted``'s return value).
    """

    __slots__ = ("profiles", "banned")

    def __init__(self) -> None:
        self.profiles: dict[int, VolunteerProfile] = {}
        self.banned: set[int] = set()

    def observe(self, event) -> None:
        if isinstance(event, VolunteerBanned):
            self.banned.add(event.volunteer_id)

    def note_profile(self, volunteer_id: int, profile: VolunteerProfile) -> None:
        self.profiles[volunteer_id] = profile


class _RemoteFrontend:
    """Read-only frontend facade of a worker-hosted engine."""

    __slots__ = ("_shard",)

    def __init__(self, shard: "_RemoteShard") -> None:
        self._shard = shard

    def seated_volunteers(self):
        return self._shard._call("seated_volunteers")

    def row_of(self, volunteer_id: int) -> int:
        return self._shard._call("row_of", volunteer_id)

    def volunteer_for(self, row: int, serial: int) -> int:
        return self._shard._call("volunteer_for", row, serial)


class _RemoteAllocator:
    """Read-only allocator facade of a worker-hosted engine."""

    __slots__ = ("_shard",)

    def __init__(self, shard: "_RemoteShard") -> None:
        self._shard = shard

    def attribute(self, local_index: int) -> tuple[int, int]:
        row, serial = self._shard._call("allocator_attribute", local_index)
        return row, serial


class _RemoteLedger:
    """Read-only ledger facade of a worker-hosted engine."""

    __slots__ = ("_shard",)

    def __init__(self, shard: "_RemoteShard") -> None:
        self._shard = shard

    def task(self, task_index: int) -> Task:
        return self._shard._call("task", task_index)


class _RemoteShard:
    """The engine slot's occupant in worker mode: a transparent stand-in
    for an :class:`~repro.webcompute.engine.AllocationEngine` living in a
    worker process.  Mutating methods ship the corresponding journal-
    grammar op; reads go through the query whitelist.  The server's
    routing/journaling method bodies run unchanged against either a real
    engine or this proxy -- that is what keeps serial mode bit-identical
    while sharing one code path."""

    __slots__ = ("_server", "shard")

    def __init__(self, server: "ShardedWBCServer", shard: int) -> None:
        self._server = server
        self.shard = shard

    # -- plumbing ------------------------------------------------------

    def _op(self, op: list):
        return self._server._worker_op(self.shard, op)

    def _call(self, name: str, *args):
        return self._server._worker_call(self.shard, name, args)

    # -- engine surface ------------------------------------------------

    @property
    def apf(self) -> AdditivePairingFunction:
        return self._server._apf

    @property
    def apf_name(self) -> str:
        return self._server._apf.name

    @property
    def clock(self) -> int:
        return self._call("clock")

    @property
    def seated_count(self) -> int:
        return self._call("seated_count")

    @property
    def max_task_index(self) -> int:
        return self._call("max_task_index")

    @property
    def frontend(self) -> _RemoteFrontend:
        return _RemoteFrontend(self)

    @property
    def allocator(self) -> _RemoteAllocator:
        return _RemoteAllocator(self)

    @property
    def ledger(self) -> _RemoteLedger:
        return _RemoteLedger(self)

    def tick(self) -> int:
        return self._op(["tick"])

    def validate_round(
        self, profiles: list[VolunteerProfile], ids: list[int]
    ) -> None:
        self._op(["validate_register", [p.to_state() for p in profiles], list(ids)])

    def register_round(
        self, profiles: list[VolunteerProfile], ids: list[int]
    ) -> list[int]:
        return self._op(["register", [p.to_state() for p in profiles], list(ids)])

    def depart(self, volunteer_id: int) -> None:
        return self._op(["depart", volunteer_id])

    def request_task(self, volunteer_id: int) -> Task:
        return self._op(["request", volunteer_id])

    def submit_result(self, volunteer_id: int, task_index: int, result: int) -> None:
        return self._op(["submit", volunteer_id, task_index, result])

    def reap_expired(self) -> list[Task]:
        return self._op(["reap"])

    def mark_corrupted(self, volunteer_id: int, error_rate: float) -> VolunteerProfile:
        return self._op(["corrupt", volunteer_id, error_rate])

    def is_banned(self, volunteer_id: int) -> bool:
        return self._call("is_banned", volunteer_id)

    def profile_of(self, volunteer_id: int) -> VolunteerProfile:
        return self._call("profile_of", volunteer_id)

    def attribute(self, task_index: int) -> int:
        return self._call("attribute", task_index)

    def locate(self, task_index: int) -> tuple[int, int]:
        row, serial = self._call("locate", task_index)
        return row, serial

    def report(self) -> LedgerReport:
        return self._call("report")

    def snapshot_state(self) -> dict:
        return self._call("snapshot_state")

    def snapshot_delta(self, since_tick: int) -> dict:
        return self._call("snapshot_delta", since_tick)

    def __repr__(self) -> str:
        return f"<_RemoteShard shard={self.shard}>"


@dataclass(frozen=True, slots=True)
class AttributionPath:
    """The full inverse chain for one global task index: the witness the
    accountability argument rests on."""

    global_index: int
    shard: int
    local_index: int
    row: int
    serial: int
    volunteer_id: int


class ShardedWBCServer:
    """``S`` engine shards behind one attributable global index space.

    >>> from repro.apf.families import TSharp
    >>> server = ShardedWBCServer(TSharp(), shards=2)
    >>> a, b = server.register_round(
    ...     [VolunteerProfile("a", speed=2.0), VolunteerProfile("b")]
    ... )
    >>> server.shard_of(a), server.shard_of(b)
    (0, 1)
    >>> t = server.request_task(a)
    >>> server.attribute(t.index) == a
    True
    >>> server.submit_result(a, t.index, t.expected_result)

    Parameters
    ----------
    apf:
        The additive PF every shard allocates along (shards are
        independent, so they can share the stateless instance).
    shards:
        Number of engine shards ``S >= 1``.
    composer:
        The pairing function composing ``(shard_no, local_index)`` into
        the global index; defaults to the Rosenberg--Strong square shell.
    codec:
        Alternative to ``composer``: the *name* of a registered index
        codec (see :mod:`~repro.webcompute.codecs`), resolved through
        the codec registry.  Passing both is a configuration error.
    policy:
        The deterministic routing policy; defaults to round-robin.
    lease_ticks:
        Task-lease length passed to every shard engine (``None`` = no
        leases).
    checkpoint_every:
        Checkpoint every live shard each time the global clock hits a
        multiple of this many ticks (``None`` = only the initial and
        explicitly requested checkpoints).
    compact_every:
        After the initial full checkpoint, periodic checkpoints append
        incremental delta segments; every ``compact_every`` segments the
        next checkpoint compacts the log back into a full base snapshot
        (``None`` = never compact automatically).
    workers:
        ``None`` (the default) runs every engine in-process,
        bit-identical to the pre-parallel server.  A positive int runs
        the engines in ``min(workers, shards)`` worker processes; call
        :meth:`close` (or use the server as a context manager) when done.
    """

    def __init__(
        self,
        apf: AdditivePairingFunction,
        shards: int,
        verification_rate: float = 0.1,
        ban_after_strikes: int = 2,
        seed: int = 0,
        *,
        composer: PairingFunction | None = None,
        codec: str | None = None,
        policy: ShardPolicy | None = None,
        lease_ticks: int | None = None,
        checkpoint_every: int | None = None,
        compact_every: int | None = 8,
        workers: int | None = None,
    ) -> None:
        if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
            raise ConfigurationError(f"shards must be a positive int, got {shards!r}")
        if checkpoint_every is not None and (
            isinstance(checkpoint_every, bool)
            or not isinstance(checkpoint_every, int)
            or checkpoint_every <= 0
        ):
            raise ConfigurationError(
                f"checkpoint_every must be a positive int or None, "
                f"got {checkpoint_every!r}"
            )
        if workers is not None and (
            isinstance(workers, bool) or not isinstance(workers, int) or workers < 1
        ):
            raise ConfigurationError(
                f"workers must be a positive int or None, got {workers!r}"
            )
        if codec is not None:
            if composer is not None:
                raise ConfigurationError(
                    "pass either composer= or codec=, not both"
                )
            composer = composer_for(codec)
        self.composer = composer if composer is not None else SquareShellPairing()
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self.checkpoint_every = checkpoint_every
        self.compact_every = compact_every
        self.lease_ticks = lease_ticks
        # Kept so a crashed shard's engine can be rebuilt from scratch.
        self._apf = apf
        self._verification_rate = verification_rate
        self._ban_after_strikes = ban_after_strikes
        self._seed = seed
        self.bus = EventBus()
        self._clock = 0
        self.bus.set_clock(lambda: self._clock)
        self.engines: list[AllocationEngine] = []
        self._stores: list[CheckpointStore] = []
        self._alive: list[bool] = []
        self._restoring: dict[int, _RestoreSession] = {}
        self._workers: list[WorkerHandle] | None = None
        self._mirror = _WorkerMirror()
        if workers is None:
            for shard in range(shards):
                engine = self._fresh_engine(shard)
                engine.bus.forward_to(self.bus, shard=shard)
                self.engines.append(engine)
                store = CheckpointStore(compact_every=compact_every)
                store.checkpoint(engine)
                self._stores.append(store)
                self._alive.append(True)
        else:
            self.bus.subscribe(self._mirror.observe, (VolunteerBanned,))
            count = min(workers, shards)
            specs: list[dict[int, EngineSpec]] = [{} for _ in range(count)]
            for shard in range(shards):
                specs[shard % count][shard] = self._spec_for(shard)
            self._workers = [WorkerHandle(spec) for spec in specs]
            for shard in range(shards):
                proxy = _RemoteShard(self, shard)
                self.engines.append(proxy)  # type: ignore[arg-type]
                self._alive.append(True)
                store = CheckpointStore(compact_every=compact_every)
                self._stores.append(store)
                store.checkpoint_state(proxy.snapshot_state())
        self._shard_of: dict[int, int] = {}
        self._next_volunteer_id = 1
        self._registrations = 0

    def _fresh_engine(self, shard: int) -> AllocationEngine:
        """A blank engine wired for *shard* (construction and recovery
        both start here; recovery then restores state into it)."""
        return AllocationEngine(
            self._apf,
            verification_rate=self._verification_rate,
            ban_after_strikes=self._ban_after_strikes,
            seed=self._seed + shard,
            codec=self._codec_for(shard),
            lease_ticks=self.lease_ticks,
        )

    def _spec_for(self, shard: int) -> EngineSpec:
        """The picklable recipe a worker process rebuilds this shard's
        engine from; must stay in lockstep with :meth:`_fresh_engine`."""
        return EngineSpec(
            apf=self._apf,
            composer=self.composer,
            shard=shard,
            verification_rate=self._verification_rate,
            ban_after_strikes=self._ban_after_strikes,
            seed=self._seed,
            lease_ticks=self.lease_ticks,
        )

    def _codec_for(self, shard: int) -> IndexCodec:
        """The shard's slice of the global index space: rows ``shard + 1``
        of the composer (1-indexed, like everything in the paper).  Built
        by :func:`~repro.webcompute.shardworker.shard_codec` -- the same
        constructor the worker processes use, so both modes share one
        bijection definition."""
        return shard_codec(self.composer, shard)

    # -- worker-mode plumbing ------------------------------------------

    @property
    def workers(self) -> int | None:
        """Worker-process count, or ``None`` in serial mode."""
        return None if self._workers is None else len(self._workers)

    def _handle_for(self, shard: int) -> WorkerHandle:
        return self._workers[shard % len(self._workers)]

    def _hosted_by(self, worker_index: int) -> list[int]:
        """The shards hosted by worker *worker_index*."""
        count = len(self._workers)
        return [s for s in range(len(self.engines)) if s % count == worker_index]

    def _mark_worker_dead(self, handle: WorkerHandle) -> ShardDownError:
        """A worker process died: every live shard it hosted is now
        crashed (their in-memory engines are genuinely gone), exactly as
        if :meth:`crash_shard` had been called on each.  Returns the
        transient error for the caller to raise or swallow."""
        downed: list[int] = []
        if handle in self._workers:
            for shard in self._hosted_by(self._workers.index(handle)):
                if self._alive[shard]:
                    pending = self._stores[shard].pending_ops
                    self.engines[shard] = _DeadShard(shard)  # type: ignore[assignment]
                    self._alive[shard] = False
                    self.bus.publish(
                        ShardCrashed(
                            tick=self._clock, shard=shard, pending_ops=pending
                        )
                    )
                    downed.append(shard)
                elif shard in self._restoring:
                    # The half-rebuilt engine died with its process: back
                    # to plain-down; a fresh restore starts from the store.
                    self._restoring.pop(shard, None)
                    self.engines[shard] = _DeadShard(shard)  # type: ignore[assignment]
                    self.bus.publish(
                        ShardCrashed(
                            tick=self._clock,
                            shard=shard,
                            pending_ops=self._stores[shard].pending_ops,
                        )
                    )
                    downed.append(shard)
        return ShardDownError(
            f"worker process died; shards {downed} crashed -- restore them "
            "and retry"
        )

    def _republish(self, events: list) -> None:
        """Deliver worker-side engine events to the global bus, in the
        order the worker recorded them (ticks were stamped by the
        worker's bus at publish time; the shard tag is stamped here)."""
        for shard, event in events:
            self.bus.republish(event, shard=shard)

    def _worker_op(self, shard: int, op: list):
        """Ship one journal-grammar op to *shard*'s host worker; returns
        the engine method's result or raises what it raised."""
        handle = self._handle_for(shard)
        try:
            status, payload, events = handle.request(("ops", [(shard, [op])]))
        except ShardDownError:
            raise self._mark_worker_dead(handle) from None
        self._republish(events)
        if status == "err":
            raise payload
        [(_shard, [(ok, value)])] = payload
        if not ok:
            raise value
        return value

    def _worker_call(self, shard: int, name: str, args: tuple):
        """One read-only query against *shard*'s worker-hosted engine."""
        handle = self._handle_for(shard)
        try:
            status, payload, events = handle.request(("call", shard, name, args))
        except ShardDownError:
            raise self._mark_worker_dead(handle) from None
        self._republish(events)
        if status == "err":
            raise payload
        return payload

    def _fanout(self, groups: dict[WorkerHandle, list[tuple[int, list]]]) -> dict:
        """Ship one ``ops`` batch to every worker in *groups* before
        collecting any reply -- the overlap that lets the worker
        processes crunch their shards concurrently.  Returns, per handle,
        either the ops payload (``list[(shard, [(ok, value), ...])]``) or
        the :class:`~repro.errors.ShardDownError` if that worker died."""
        started: list[WorkerHandle] = []
        replies: dict[WorkerHandle, object] = {}
        for handle, shard_ops in groups.items():
            try:
                handle.start(("ops", shard_ops))
                started.append(handle)
            except ShardDownError:
                replies[handle] = self._mark_worker_dead(handle)
        for handle in started:
            try:
                status, payload, events = handle.finish()
            except ShardDownError:
                replies[handle] = self._mark_worker_dead(handle)
                continue
            self._republish(events)
            # "err" payloads are exception instances, so the caller's
            # isinstance(reply, Exception) check covers them uniformly.
            replies[handle] = payload
        return replies

    def close(self) -> None:
        """Shut down the worker processes (no-op in serial mode).  The
        server object stays readable afterwards only in serial mode;
        worker-mode traffic after ``close`` fails with
        :class:`~repro.errors.ShardDownError`."""
        if self._workers is not None:
            for handle in self._workers:
                handle.close()

    def __enter__(self) -> "ShardedWBCServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.engines)

    @property
    def codec_name(self) -> str:
        """The composer's registry name -- the codec the global index
        space is minted through."""
        return self.composer.name

    @property
    def clock(self) -> int:
        return self._clock

    # reprolint: allow[R005] clock advance: journaled to every shard's
    # store; the bus stamps events with the clock already
    def tick(self) -> int:
        """Advance every live shard's clock in lockstep.  The tick is
        journaled to *every* store -- including crashed shards', so a
        restore replays the downtime ticks and rejoins the global clock.
        In worker mode the ticks fan out as one batch per worker; a
        worker found dead here simply leaves its shards crashed (their
        journals already hold the tick, so restore rejoins the clock).
        """
        self._clock += 1
        if self._workers is None:
            for shard, engine in enumerate(self.engines):
                self._journal(shard, ["tick"])
                if self._alive[shard]:
                    engine.tick()
        else:
            for shard in range(len(self.engines)):
                self._journal(shard, ["tick"])
            groups: dict[WorkerHandle, list[tuple[int, list]]] = {}
            for shard in self.alive_shards():
                groups.setdefault(self._handle_for(shard), []).append(
                    (shard, [["tick"]])
                )
            self._fanout(groups)
        if (
            self.checkpoint_every is not None
            and self._clock % self.checkpoint_every == 0
        ):
            self.checkpoint_all()
        return self._clock

    @property
    def apf_name(self) -> str:
        return self._apf.name

    @property
    def max_task_index(self) -> int:
        """Largest *global* task index ever issued by a live shard -- the
        footprint of the composed space, the number the shard-scaling
        bench tracks.  (A crashed shard's contribution reappears when it
        is restored.)"""
        return max(
            (e.max_task_index for s, e in enumerate(self.engines) if self._alive[s]),
            default=0,
        )

    @property
    def seated_count(self) -> int:
        return sum(
            e.seated_count for s, e in enumerate(self.engines) if self._alive[s]
        )

    def shard_of(self, volunteer_id: int) -> int:
        try:
            return self._shard_of[volunteer_id]
        except KeyError:
            raise AllocationError(f"unknown volunteer {volunteer_id}") from None

    def engine_of(self, volunteer_id: int) -> AllocationEngine:
        shard = self.shard_of(volunteer_id)
        if not self._alive[shard]:
            raise ShardDownError(
                f"volunteer {volunteer_id} lives on shard {shard}, "
                "which is down; retry after restore"
            )
        return self.engines[shard]

    # -- liveness / crash / recovery -----------------------------------

    def _check_shard(self, shard: int) -> None:
        if isinstance(shard, bool) or not isinstance(shard, int):
            raise ConfigurationError(f"shard must be an int, got {shard!r}")
        if not 0 <= shard < len(self.engines):
            raise ConfigurationError(
                f"shard {shard} out of range 0..{len(self.engines) - 1}"
            )

    def is_shard_alive(self, shard: int) -> bool:
        self._check_shard(shard)
        return self._alive[shard]

    def is_shard_restoring(self, shard: int) -> bool:
        self._check_shard(shard)
        return shard in self._restoring

    def alive_shards(self) -> list[int]:
        """Indices of live shards, ascending."""
        return [s for s, alive in enumerate(self._alive) if alive]

    def routable_shards(self) -> list[int]:
        """Shards a registration can route to, ascending: live shards
        plus shards serving degraded while a streaming restore replays."""
        return sorted(set(self.alive_shards()) | set(self._restoring))

    def _journal(self, shard: int, op: list) -> None:
        """Journal *op* to the shard's durable store and, while the shard
        is mid-streaming-restore, onto the restore session's replay queue
        too: the op happened logically after the checkpoint the restore
        reads from, so the rebuilding engine must replay it as well."""
        self._stores[shard].journal(op)
        session = self._restoring.get(shard)
        if session is not None:
            session.enqueue_op(op)

    def checkpoint_shard(self, shard: int, *, full: bool = False) -> None:
        """Checkpoint one live shard.  Log-structured: the first
        checkpoint (and every one after ``compact_every`` delta segments
        accumulate, or when ``full=True``) stores the complete engine
        snapshot as a fresh base; otherwise an incremental delta since the
        log's newest covered tick is appended.  One code path for both
        modes: the snapshot/delta dict is pulled from the engine --
        in-process or over the worker pipe -- and stored."""
        self._check_shard(shard)
        if not self._alive[shard]:
            raise ShardDownError(f"cannot checkpoint crashed shard {shard}")
        store = self._stores[shard]
        if full or not store.has_checkpoint or store.wants_compaction:
            cp = store.checkpoint_state(self.engines[shard].snapshot_state())
            issued, incremental = cp.tasks_issued, False
        else:
            delta = self.engines[shard].snapshot_delta(store.since_tick)
            _tick, issued = store.checkpoint_delta(delta)
            incremental = True
        self.bus.publish(
            CheckpointTaken(
                tick=self._clock,
                shard=shard,
                tasks_issued=issued,
                incremental=incremental,
            )
        )

    def checkpoint_all(self) -> None:
        """Checkpoint every live shard."""
        for shard in self.alive_shards():
            self.checkpoint_shard(shard)

    def crash_shard(self, shard: int) -> None:
        """Kill a shard: its engine object (all in-memory state) is
        dropped on the floor; only the checkpoint store survives.  Any
        call routed to the shard raises
        :class:`~repro.errors.ShardDownError` until
        :meth:`restore_shard`."""
        self._check_shard(shard)
        if not self._alive[shard]:
            raise RecoveryError(f"shard {shard} is already down")
        pending = self._stores[shard].pending_ops
        self.engines[shard] = _DeadShard(shard)  # type: ignore[assignment]
        self._alive[shard] = False
        if self._workers is not None:
            # Make the worker drop its live engine too: the in-memory
            # state must be genuinely lost, exactly like a process death.
            handle = self._handle_for(shard)
            if handle.alive:
                try:
                    _status, _payload, events = handle.request(("drop", shard))
                    self._republish(events)
                except ShardDownError:
                    self._mark_worker_dead(handle)
        self.bus.publish(
            ShardCrashed(tick=self._clock, shard=shard, pending_ops=pending)
        )

    def restore_shard(self, shard: int) -> None:
        """Blocking rebuild of a crashed shard: :meth:`begin_restore`
        then :meth:`restore_step` until the replay queue drains.  The
        rebuilt shard is audited to have issued exactly the indices the
        log says it should (``checkpoint + #request ops``) -- the
        no-double-issue guarantee across a crash -- and to have rejoined
        the global clock.  Event forwarding to the global bus is attached
        only *after* replay, so replayed history is not re-published."""
        self.begin_restore(shard)
        while not self.restore_step(shard):
            pass

    def begin_restore(self, shard: int) -> None:
        """Start a *streaming* restore of a crashed shard: restore the
        base checkpoint into a fresh engine (in-process or worker-side),
        queue the log's delta segments and journaled ops for replay, and
        install the ``RESTORING`` sentinel -- the shard immediately
        serves registrations (buffered onto the replay queue) while
        everything else keeps failing with the transient
        :class:`~repro.errors.ShardDownError`.  Drive the replay with
        :meth:`restore_step`."""
        self._check_shard(shard)
        if self._alive[shard]:
            raise RecoveryError(f"shard {shard} is not down")
        if shard in self._restoring:
            raise RecoveryError(f"shard {shard} is already restoring")
        store = self._stores[shard]
        base = store.base_state()
        if self._workers is None:
            engine = self._fresh_engine(shard)
            engine.restore_state(base)
        else:
            worker_index = shard % len(self._workers)
            handle = self._workers[worker_index]
            if not handle.alive:
                # Respawn empty: the other shards this worker hosted are
                # down too (marked when the process died) and will be
                # restored into the fresh process by their own restores.
                handle = WorkerHandle({})
                self._workers[worker_index] = handle
            self._restore_request(
                shard, ("restore_begin", shard, self._spec_for(shard), base)
            )
            engine = None
        session = _RestoreSession(
            shard=shard,
            engine=engine,
            checkpoint_tick=store.checkpoint_tick,
            base_issued=store.checkpoint_issued,
        )
        for segment in store.segments():
            session.queue.append(("delta", segment))
        for op in store.ops():
            session.enqueue_op(op)
        self._restoring[shard] = session
        self.engines[shard] = _RestoringShard(shard, session)  # type: ignore[assignment]
        self.bus.publish(
            ShardRestoring(
                tick=self._clock,
                shard=shard,
                segments=store.segment_count,
                pending_ops=store.pending_ops,
            )
        )

    def restore_step(self, shard: int, max_items: int | None = None) -> bool:
        """Apply up to *max_items* queued restore items (delta segments,
        then journaled ops, then whatever arrived since) to the
        rebuilding engine; ``None`` drains the whole queue.  Returns
        ``True`` once the restore completed -- queue empty, audits
        passed, shard alive again.  A replay divergence aborts the
        restore (the half-rebuilt engine is discarded; the shard is
        plain-down again) and raises
        :class:`~repro.errors.RecoveryError`."""
        self._check_shard(shard)
        session = self._restoring.get(shard)
        if session is None:
            raise RecoveryError(f"shard {shard} is not restoring")
        budget = len(session.queue) if max_items is None else max_items
        try:
            if self._workers is None:
                while budget > 0 and session.queue:
                    kind, item = session.queue.popleft()
                    if kind == "delta":
                        session.engine.apply_delta(item)
                    else:
                        try:
                            apply_op(session.engine, item)
                        except Exception as exc:
                            raise RecoveryError(
                                f"journal replay diverged at op "
                                f"{session.replayed_ops} ({item[0]!r}): {exc}"
                            ) from exc
                        session.replayed_ops += 1
                    budget -= 1
            else:
                chunk = []
                while budget > 0 and session.queue:
                    chunk.append(session.queue.popleft())
                    budget -= 1
                if chunk:
                    self._restore_request(shard, ("restore_apply", shard, chunk))
                    session.replayed_ops += sum(
                        1 for kind, _item in chunk if kind == "op"
                    )
        except Exception:
            self._abort_restore(shard)
            raise
        if session.queue:
            return False
        self._finish_restore(shard)
        return True

    def _finish_restore(self, shard: int) -> None:
        """The replay queue drained: audit the rebuilt engine (issued
        exactly ``base + #request ops``; clock rejoined the global clock)
        and swap it into the engine slot, re-attaching event forwarding."""
        session = self._restoring[shard]
        try:
            if self._workers is None:
                issued = session.engine.ledger.tasks_issued_count()
                clock = session.engine.clock
            else:
                issued, clock = self._restore_request(
                    shard, ("restore_finish", shard)
                )
            expected = session.base_issued + session.request_ops
            if issued != expected:
                raise RecoveryError(
                    f"shard {shard} replay issued {issued} tasks, journal "
                    f"implies {expected} (checkpoint {session.base_issued} + "
                    f"{session.request_ops} requests)"
                )
            if clock != self._clock:
                raise RecoveryError(
                    f"shard {shard} replay ended at tick {clock}, "
                    f"global clock is {self._clock}"
                )
        except Exception:
            self._abort_restore(shard)
            raise
        self._restoring.pop(shard)
        if self._workers is None:
            session.engine.bus.forward_to(self.bus, shard=shard)
            self.engines[shard] = session.engine
        else:
            self.engines[shard] = _RemoteShard(self, shard)  # type: ignore[assignment]
        self._alive[shard] = True
        self.bus.publish(
            ShardRestored(
                tick=self._clock,
                shard=shard,
                checkpoint_tick=session.checkpoint_tick,
                replayed_ops=session.replayed_ops,
            )
        )

    # reprolint: allow[R005] not a state transition: the shard was already
    # down (its ShardCrashed published at crash time); abort just discards
    # the half-rebuilt engine, and the raised error is the caller's signal
    def _abort_restore(self, shard: int) -> None:
        """A streaming restore failed: discard the half-rebuilt engine
        and return the shard to plain-down (its store is untouched, so a
        fresh restore can start over)."""
        self._restoring.pop(shard, None)
        self.engines[shard] = _DeadShard(shard)  # type: ignore[assignment]
        if self._workers is not None:
            handle = self._handle_for(shard)
            if handle.alive:
                try:
                    _status, _payload, events = handle.request(("drop", shard))
                    self._republish(events)
                except ShardDownError:
                    self._mark_worker_dead(handle)

    def _restore_request(self, shard: int, message: tuple):
        """One restore-protocol message to *shard*'s host worker."""
        handle = self._handle_for(shard)
        try:
            status, payload, events = handle.request(message)
        except ShardDownError:
            raise RecoveryError(
                f"worker process died while restoring shard {shard}"
            ) from self._mark_worker_dead(handle)
        self._republish(events)
        if status == "err":
            raise payload
        return payload

    # ------------------------------------------------------------------

    def register(self, profile: VolunteerProfile) -> int:
        return self.register_round([profile])[0]

    # reprolint: allow[R005] each shard engine publishes VolunteerRegistered
    # itself; those events are forwarded to the global bus
    def register_round(self, profiles: list[VolunteerProfile]) -> list[int]:
        """Admit a batch: the policy routes each volunteer to a shard,
        then each shard seats its sub-round (fastest first, as ever).
        Volunteer ids are globally unique across shards.

        Degraded mode: the policy only ever sees the *live* shards'
        load views, so while a shard is down registrations route around
        it (and with every shard live, routing is bit-identical to the
        fault-free behavior).  Raises
        :class:`~repro.errors.AllocationError` when every shard is down.

        Atomicity: the round either seats every volunteer or none.
        Every per-shard bucket is validated before any engine mutates;
        if seating still fails partway (a shard dying mid-round), the
        already-seated buckets are rolled back with compensating departs
        and the raised error leaves no routing-table entry behind.  The
        consumed volunteer ids and registration sequence numbers are
        burned, never reused -- so a retried round gets fresh ids and
        identical routing behavior to any other round."""
        alive = self.routable_shards()
        if not alive:
            raise AllocationError("every shard is down; nothing can register")
        ids: list[int] = []
        per_shard: dict[int, tuple[list[VolunteerProfile], list[int]]] = {}
        load_views = [_LoadView(self.engines[s]) for s in alive]
        try:
            for profile in profiles:
                pick = self.policy.shard_for(self._registrations, profile, load_views)
                if not 0 <= pick < len(load_views):
                    raise ConfigurationError(
                        f"policy routed to live-shard slot {pick}, valid range is "
                        f"0..{len(load_views) - 1}"
                    )
                shard = alive[pick]
                vid = self._next_volunteer_id
                self._next_volunteer_id += 1
                self._registrations += 1
                self._shard_of[vid] = shard
                load_views[pick].pending += 1
                bucket = per_shard.setdefault(shard, ([], []))
                bucket[0].append(profile)
                bucket[1].append(vid)
                ids.append(vid)
            # Validate the whole round before any engine mutates: a bucket
            # a shard would reject must not leave earlier shards seated.
            for shard, (batch, batch_ids) in per_shard.items():
                self.engines[shard].validate_round(batch, ids=batch_ids)
        except Exception:
            for vid in ids:
                self._shard_of.pop(vid, None)
            raise
        committed: list[int] = []
        try:
            for shard, (batch, batch_ids) in per_shard.items():
                self.engines[shard].register_round(batch, ids=batch_ids)
                self._journal(
                    shard, ["register", [p.to_state() for p in batch], batch_ids]
                )
                committed.append(shard)
        except Exception:
            self._rollback_round(committed, per_shard)
            for vid in ids:
                self._shard_of.pop(vid, None)
            raise
        if self._workers is not None:
            for shard, (batch, batch_ids) in per_shard.items():
                for vid, profile in zip(batch_ids, batch):
                    self._mirror.note_profile(vid, profile)
        return ids

    def _rollback_round(
        self,
        committed: list[int],
        per_shard: dict[int, tuple[list[VolunteerProfile], list[int]]],
    ) -> None:
        """Unseat the buckets a torn round already committed.  Each
        compensating depart is journaled even when the shard cannot be
        reached (it crashed mid-round): its journal already holds the
        round's ``register`` op, so the depart must follow it on replay
        for the restored shard to agree that the round never happened."""
        for shard in committed:
            _batch, batch_ids = per_shard[shard]
            for vid in batch_ids:
                try:
                    self.engines[shard].depart(vid)
                except ShardDownError:
                    pass
                self._journal(shard, ["depart", vid])

    def depart(self, volunteer_id: int) -> None:
        shard = self.shard_of(volunteer_id)
        self.engine_of(volunteer_id).depart(volunteer_id)
        self._journal(shard, ["depart", volunteer_id])

    # ------------------------------------------------------------------

    def request_task(self, volunteer_id: int) -> Task:
        """The volunteer's next task; ``task.index`` is the composed
        global index."""
        shard = self.shard_of(volunteer_id)
        task = self.engine_of(volunteer_id).request_task(volunteer_id)
        self._journal(shard, ["request", volunteer_id])
        return task

    def reap_expired(self) -> list[Task]:
        """Run the lease reaper on every live shard (each shard reissues
        its own expired tasks to its own idle volunteers)."""
        reissued: list[Task] = []
        for shard in self.alive_shards():
            reissued.extend(self.engines[shard].reap_expired())
            self._journal(shard, ["reap"])
        return reissued

    def mark_corrupted(self, volunteer_id: int, error_rate: float) -> VolunteerProfile:
        """Flip a volunteer malicious mid-run (the fault injector's hook)."""
        shard = self.shard_of(volunteer_id)
        profile = self.engine_of(volunteer_id).mark_corrupted(volunteer_id, error_rate)
        self._journal(shard, ["corrupt", volunteer_id, error_rate])
        if self._workers is not None:
            self._mirror.note_profile(volunteer_id, profile)
        return profile

    def _engine_for_index(self, global_index: int) -> tuple[int, int, AllocationEngine]:
        """(shard, local_index, engine) for a global task index."""
        if isinstance(global_index, bool) or not isinstance(global_index, int) or global_index <= 0:
            raise AllocationError(
                f"task index must be a positive int, got {global_index!r}"
            )
        shard_no, local = self.composer.unpair(global_index)
        if not 1 <= shard_no <= len(self.engines):
            raise AllocationError(
                f"task {global_index} decodes to shard {shard_no - 1}, "
                f"but only shards 0..{len(self.engines) - 1} exist"
            )
        shard = shard_no - 1
        if not self._alive[shard]:
            raise ShardDownError(
                f"task {global_index} routes to shard {shard}, which is "
                "down; retry after restore"
            )
        return shard, local, self.engines[shard]

    def submit_result(self, volunteer_id: int, task_index: int, result: int) -> None:
        """Accept a result for a *global* task index.  Routing is by the
        index itself, so a forged submission against another shard's task
        is caught by that shard's attribution check.  A submission racing
        a crashed shard raises the transient
        :class:`~repro.errors.ShardDownError`; the caller (the
        simulation's retry queue, a real frontend) re-submits with
        backoff."""
        shard, _local, engine = self._engine_for_index(task_index)
        engine.submit_result(volunteer_id, task_index, result)
        self._journal(shard, ["submit", volunteer_id, task_index, result])

    # -- batched entry points ------------------------------------------
    #
    # One entry per input, in input order; per-item failures come back as
    # exception *instances* instead of raising, so one dead shard cannot
    # abort the rest of the batch.  In serial mode each bulk call is
    # exactly the loop of singular calls (same journal entries, same
    # events, same RNG draws); in worker mode the batch fans out as one
    # message per worker process and the successes are journaled with the
    # bulk grammar ops (see repro.webcompute.recovery.apply_op).

    def request_tasks(self, volunteer_ids: list[int]) -> list:
        """Bulk :meth:`request_task`: each entry is the issued
        :class:`~repro.webcompute.task.Task`, or the
        :class:`~repro.errors.AllocationError` /
        :class:`~repro.errors.ShardDownError` that id's request raised."""
        if self._workers is None:
            out: list = []
            for vid in volunteer_ids:
                try:
                    out.append(self.request_task(vid))
                except AllocationError as exc:
                    out.append(exc)
            return out
        results: list = [None] * len(volunteer_ids)
        entries: dict[int, list[tuple[int, int]]] = {}
        for pos, vid in enumerate(volunteer_ids):
            shard = self._shard_of.get(vid)
            if shard is None:
                results[pos] = AllocationError(f"unknown volunteer {vid}")
            elif not self._alive[shard]:
                results[pos] = ShardDownError(
                    f"volunteer {vid} lives on shard {shard}, "
                    "which is down; retry after restore"
                )
            else:
                entries.setdefault(shard, []).append((pos, vid))
        groups: dict[WorkerHandle, list[tuple[int, list]]] = {}
        for shard, pairs in entries.items():
            groups.setdefault(self._handle_for(shard), []).append(
                (shard, [["request", vid] for _pos, vid in pairs])
            )
        replies = self._fanout(groups)
        for handle, shard_ops in groups.items():
            reply = replies[handle]
            if isinstance(reply, Exception):
                for shard, _ops in shard_ops:
                    for pos, _vid in entries[shard]:
                        results[pos] = reply
                continue
            for (shard, _ops), (_shard, op_results) in zip(shard_ops, reply):
                ok_vids: list[int] = []
                for (pos, vid), (ok, value) in zip(entries[shard], op_results):
                    results[pos] = value
                    if ok:
                        ok_vids.append(vid)
                if ok_vids:
                    self._journal(shard, ["requests", ok_vids])
        return results

    def submit_results(
        self, submissions: list[tuple[int, int, int]]
    ) -> list:
        """Bulk :meth:`submit_result` over ``(volunteer_id, task_index,
        result)`` triples: each entry is ``None`` on success or the
        exception that triple's submission raised (a forged submission's
        :class:`~repro.errors.AllocationError`, a crashed shard's
        :class:`~repro.errors.ShardDownError`, ...)."""
        if self._workers is None:
            out: list = []
            for vid, index, result in submissions:
                try:
                    self.submit_result(vid, index, result)
                    out.append(None)
                except ReproError as exc:
                    out.append(exc)
            return out
        results: list = [None] * len(submissions)
        entries: dict[int, list[tuple[int, tuple[int, int, int]]]] = {}
        for pos, (vid, index, result) in enumerate(submissions):
            try:
                shard, _local, _engine = self._engine_for_index(index)
            except ReproError as exc:
                results[pos] = exc
                continue
            entries.setdefault(shard, []).append((pos, (vid, index, result)))
        groups: dict[WorkerHandle, list[tuple[int, list]]] = {}
        for shard, items in entries.items():
            groups.setdefault(self._handle_for(shard), []).append(
                (
                    shard,
                    [
                        ["submit", vid, index, result]
                        for _pos, (vid, index, result) in items
                    ],
                )
            )
        replies = self._fanout(groups)
        for handle, shard_ops in groups.items():
            reply = replies[handle]
            if isinstance(reply, Exception):
                for shard, _ops in shard_ops:
                    for pos, _triple in entries[shard]:
                        results[pos] = reply
                continue
            for (shard, _ops), (_shard, op_results) in zip(shard_ops, reply):
                ok_triples: list[list[int]] = []
                for (pos, triple), (ok, value) in zip(entries[shard], op_results):
                    if ok:
                        results[pos] = None
                        ok_triples.append(list(triple))
                    else:
                        results[pos] = value
                if ok_triples:
                    self._journal(shard, ["submits", ok_triples])
        return results

    def attribute_many(self, task_indices: list[int]) -> list[int]:
        """Bulk :meth:`attribute`, same contract (raises on any invalid
        or down-shard index), batched one message per worker."""
        if self._workers is None:
            return [self.attribute(index) for index in task_indices]
        owners: list = [None] * len(task_indices)
        entries: dict[int, list[tuple[int, int]]] = {}
        for pos, index in enumerate(task_indices):
            shard, _local, _engine = self._engine_for_index(index)
            entries.setdefault(shard, []).append((pos, index))
        groups: dict[WorkerHandle, list[tuple[int, list]]] = {}
        for shard, items in entries.items():
            groups.setdefault(self._handle_for(shard), []).append(
                (shard, [["attribute_many", [index for _pos, index in items]]])
            )
        replies = self._fanout(groups)
        for handle, shard_ops in groups.items():
            reply = replies[handle]
            if isinstance(reply, Exception):
                raise reply
            for (shard, _ops), (_shard, op_results) in zip(shard_ops, reply):
                ok, value = op_results[0]
                if not ok:
                    raise value
                for (pos, _index), owner in zip(entries[shard], value):
                    owners[pos] = owner
        return owners

    def task(self, task_index: int) -> Task:
        """The live :class:`~repro.webcompute.task.Task` record behind a
        global index (routed to its shard's ledger)."""
        _shard, _local, engine = self._engine_for_index(task_index)
        return engine.ledger.task(task_index)

    def attribute(self, task_index: int) -> int:
        """Global attribution: ``unpair`` to ``(shard, local)``, then the
        shard's APF inverse and epoch table."""
        _shard, _local, engine = self._engine_for_index(task_index)
        return engine.attribute(task_index)

    def attribution_path(self, task_index: int) -> AttributionPath:
        """The full inverse chain
        ``global -> (shard, local) -> (row, serial) -> volunteer`` --
        the round-trip witness the sharded accountability property tests
        exercise at bignum scale."""
        shard, local, engine = self._engine_for_index(task_index)
        row, serial = engine.allocator.attribute(local)
        volunteer = engine.frontend.volunteer_for(row, serial)
        return AttributionPath(
            global_index=task_index,
            shard=shard,
            local_index=local,
            row=row,
            serial=serial,
            volunteer_id=volunteer,
        )

    # ------------------------------------------------------------------

    def profile_of(self, volunteer_id: int) -> VolunteerProfile:
        """The volunteer's current profile.  Routed through
        :meth:`engine_of`, so a volunteer on a crashed shard fails with
        the clear retry-after-restore
        :class:`~repro.errors.ShardDownError`.  In worker mode the
        profile comes from the parent-side mirror (no pipe round trip)."""
        engine = self.engine_of(volunteer_id)
        if self._workers is not None:
            return self._mirror.profiles[volunteer_id]
        return engine.profile_of(volunteer_id)

    def is_banned(self, volunteer_id: int) -> bool:
        """Whether the strike policy banned *volunteer_id*.  Unknown ids
        are simply not banned (``False``); a volunteer whose shard is
        down raises the clear retry-after-restore
        :class:`~repro.errors.ShardDownError` via :meth:`engine_of`
        (previously this indexed the engine list directly and tripped
        the dead-shard sentinel's obscure attribute-access message).  In
        worker mode the answer comes from the ban mirror, which the
        published ``VolunteerBanned`` stream keeps fresh."""
        if volunteer_id not in self._shard_of:
            return False
        engine = self.engine_of(volunteer_id)
        if self._workers is not None:
            return volunteer_id in self._mirror.banned
        return engine.is_banned(volunteer_id)

    def report(self) -> LedgerReport:
        """The aggregate ledger report across every *live* shard (a
        crashed shard's ledger rejoins the aggregate once restored)."""
        reports = [self.engines[s].report() for s in self.alive_shards()]
        return LedgerReport(
            tasks_issued=sum(r.tasks_issued for r in reports),
            tasks_returned=sum(r.tasks_returned for r in reports),
            tasks_verified=sum(r.tasks_verified for r in reports),
            bad_results_returned=sum(r.bad_results_returned for r in reports),
            bad_results_caught=sum(r.bad_results_caught for r in reports),
            volunteers_banned=sum(r.volunteers_banned for r in reports),
            honest_volunteers_banned=sum(r.honest_volunteers_banned for r in reports),
            tasks_reissued=sum(r.tasks_reissued for r in reports),
            late_returns=sum(r.late_returns for r in reports),
        )

    def __repr__(self) -> str:
        return (
            f"<ShardedWBCServer shards={self.shard_count} "
            f"apf={self.apf_name} composer={self.composer.name} "
            f"seated={self.seated_count} max_task_index={self.max_task_index}>"
        )
