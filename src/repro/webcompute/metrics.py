"""Accountability quality metrics, computed post-hoc from a server's
ledger.

The paper's scheme promises the project head can "ban frequently errant
volunteers"; operationally the questions are *how fast* and *at what
pollution cost*:

* **detection latency** -- for each banned volunteer, the ticks between
  its first bad return and the ban;
* **pollution** -- bad results that entered the project's result pool
  before (or despite) the ban, per offending volunteer;
* **exposure** -- tasks issued to a volunteer after its first bad return
  (work the project would have saved with instant detection).

All metrics derive from the ledger's task records and the simulation's
ground truth; they feed the verification-rate tradeoff study in
``bench_wbc_accountability.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DomainError
from repro.webcompute.server import WBCServer
from repro.webcompute.task import TaskStatus

__all__ = ["VolunteerForensics", "AccountabilityMetrics", "compute_metrics"]


@dataclass(frozen=True, slots=True)
class VolunteerForensics:
    """Per-volunteer accountability timeline."""

    volunteer_id: int
    bad_returns: int
    first_bad_tick: int | None
    banned_at: int | None
    tasks_after_first_bad: int

    @property
    def detection_latency(self) -> int | None:
        """Ticks from first bad return to ban (None if never banned or
        never bad)."""
        if self.banned_at is None or self.first_bad_tick is None:
            return None
        return self.banned_at - self.first_bad_tick


@dataclass(frozen=True, slots=True)
class AccountabilityMetrics:
    """Aggregate accountability quality for one run."""

    offenders: int
    offenders_banned: int
    mean_detection_latency: float | None
    total_pollution: int
    total_exposure: int

    @property
    def ban_coverage(self) -> float:
        """Fraction of offending volunteers that ended up banned."""
        if self.offenders == 0:
            return 1.0
        return self.offenders_banned / self.offenders


def volunteer_forensics(server: WBCServer, volunteer_id: int) -> VolunteerForensics:
    """The accountability timeline of one volunteer, from the ledger."""
    if isinstance(volunteer_id, bool) or not isinstance(volunteer_id, int):
        raise DomainError(f"volunteer_id must be an int, got {volunteer_id!r}")
    tasks = server.ledger.tasks_of(volunteer_id)
    if not tasks:
        raise DomainError(f"volunteer {volunteer_id} has no ledger history")
    bad_returns = 0
    first_bad: int | None = None
    for task in tasks:
        if task.status is TaskStatus.ISSUED or task.reported_result is None:
            continue
        if task.reported_result != task.expected_result:
            bad_returns += 1
            if first_bad is None or (
                task.returned_at is not None and task.returned_at < first_bad
            ):
                first_bad = task.returned_at
    after = 0
    if first_bad is not None:
        after = sum(1 for t in tasks if t.issued_at > first_bad)
    record = server.ledger._records.get(volunteer_id)
    banned_at = record.banned_at if record is not None and record.banned else None
    return VolunteerForensics(
        volunteer_id=volunteer_id,
        bad_returns=bad_returns,
        first_bad_tick=first_bad,
        banned_at=banned_at,
        tasks_after_first_bad=after,
    )


def compute_metrics(server: WBCServer) -> AccountabilityMetrics:
    """Aggregate forensics across every volunteer with ledger history."""
    volunteer_ids = {t.volunteer_id for t in server.ledger._tasks.values()}
    offenders = 0
    banned = 0
    latencies: list[int] = []
    pollution = 0
    exposure = 0
    for vid in sorted(volunteer_ids):
        forensics = volunteer_forensics(server, vid)
        if forensics.bad_returns == 0:
            continue
        offenders += 1
        pollution += forensics.bad_returns
        exposure += forensics.tasks_after_first_bad
        if forensics.banned_at is not None:
            banned += 1
            latency = forensics.detection_latency
            if latency is not None:
                latencies.append(latency)
    return AccountabilityMetrics(
        offenders=offenders,
        offenders_banned=banned,
        mean_detection_latency=(
            sum(latencies) / len(latencies) if latencies else None
        ),
        total_pollution=pollution,
        total_exposure=exposure,
    )
