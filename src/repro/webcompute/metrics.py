"""Accountability quality metrics, computed post-hoc from a server's
ledger -- through the ledger's *public* read API only.

The paper's scheme promises the project head can "ban frequently errant
volunteers"; operationally the questions are *how fast* and *at what
pollution cost*:

* **detection latency** -- for each banned volunteer, the ticks between
  its first bad return and the ban;
* **pollution** -- bad results that entered the project's result pool
  before (or despite) the ban, per offending volunteer;
* **exposure** -- tasks issued to a volunteer after its first bad return
  (work the project would have saved with instant detection).

Timeline semantics, made explicit: ``bad_returns`` counts every bad
return, but the timeline quantities (``first_bad_tick``,
``tasks_after_first_bad``, ``detection_latency``) consider only bad
returns with a known return tick.  A bad return whose ``returned_at`` is
``None`` (possible only for externally reconstructed ledger state --
live returns are always tick-stamped) is counted as pollution yet
excluded from the timeline rather than silently polluting the ordering.

All metrics derive from the ledger's task records and the simulation's
ground truth; they feed the verification-rate tradeoff study in
``bench_wbc_accountability.py``.  The functions accept a
:class:`~repro.webcompute.server.WBCServer`, a bare
:class:`~repro.webcompute.engine.AllocationEngine`, or a
:class:`~repro.webcompute.sharding.ShardedWBCServer` (whose per-shard
ledgers are aggregated).  For *live* observation, subscribe an
:class:`~repro.webcompute.events.EventCounters` to the server's bus
instead -- :func:`live_summary` turns one into the matching dashboard row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DomainError
from repro.webcompute.events import (
    EventCounters,
    ResultReturned,
    TaskIssued,
    VolunteerBanned,
    VolunteerDeparted,
    VolunteerRegistered,
)
from repro.webcompute.ledger import AccountabilityLedger
from repro.webcompute.task import TaskStatus

__all__ = [
    "VolunteerForensics",
    "AccountabilityMetrics",
    "compute_metrics",
    "volunteer_forensics",
    "live_summary",
]


@dataclass(frozen=True, slots=True)
class VolunteerForensics:
    """Per-volunteer accountability timeline."""

    volunteer_id: int
    bad_returns: int
    first_bad_tick: int | None
    banned_at: int | None
    tasks_after_first_bad: int

    @property
    def detection_latency(self) -> int | None:
        """Ticks from first bad return to ban (None if never banned or
        never bad)."""
        if self.banned_at is None or self.first_bad_tick is None:
            return None
        return self.banned_at - self.first_bad_tick


@dataclass(frozen=True, slots=True)
class AccountabilityMetrics:
    """Aggregate accountability quality for one run."""

    offenders: int
    offenders_banned: int
    mean_detection_latency: float | None
    total_pollution: int
    total_exposure: int

    @property
    def ban_coverage(self) -> float:
        """Fraction of offending volunteers that ended up banned."""
        if self.offenders == 0:
            return 1.0
        return self.offenders_banned / self.offenders


def _ledgers_of(server) -> list[AccountabilityLedger]:
    """The ledger(s) behind any server-like object: a sharded server
    contributes one per shard, everything else exactly one."""
    engines = getattr(server, "engines", None)
    if engines is not None:
        return [engine.ledger for engine in engines]
    return [server.ledger]


def _forensics_from_ledger(
    ledger: AccountabilityLedger, volunteer_id: int
) -> VolunteerForensics:
    tasks = ledger.tasks_of(volunteer_id)
    if not tasks:
        raise DomainError(f"volunteer {volunteer_id} has no ledger history")
    bad_returns = 0
    first_bad: int | None = None
    for task in tasks:
        if task.status is TaskStatus.ISSUED or task.reported_result is None:
            continue
        if task.reported_result != task.expected_result:
            bad_returns += 1
            # Timeline quantities use only tick-stamped bad returns; an
            # un-ticked bad return still counts as pollution above.
            if task.returned_at is not None and (
                first_bad is None or task.returned_at < first_bad
            ):
                first_bad = task.returned_at
    after = 0
    if first_bad is not None:
        after = sum(1 for t in tasks if t.issued_at > first_bad)
    return VolunteerForensics(
        volunteer_id=volunteer_id,
        bad_returns=bad_returns,
        first_bad_tick=first_bad,
        banned_at=ledger.banned_at_of(volunteer_id),
        tasks_after_first_bad=after,
    )


def volunteer_forensics(server, volunteer_id: int) -> VolunteerForensics:
    """The accountability timeline of one volunteer, from the ledger."""
    if isinstance(volunteer_id, bool) or not isinstance(volunteer_id, int):
        raise DomainError(f"volunteer_id must be an int, got {volunteer_id!r}")
    for ledger in _ledgers_of(server):
        if ledger.tasks_of(volunteer_id):
            return _forensics_from_ledger(ledger, volunteer_id)
    raise DomainError(f"volunteer {volunteer_id} has no ledger history")


def compute_metrics(server) -> AccountabilityMetrics:
    """Aggregate forensics across every volunteer with ledger history
    (across every shard, for a sharded server)."""
    offenders = 0
    banned = 0
    latencies: list[int] = []
    pollution = 0
    exposure = 0
    for ledger in _ledgers_of(server):
        volunteer_ids = {t.volunteer_id for t in ledger.tasks()}
        for vid in sorted(volunteer_ids):
            forensics = _forensics_from_ledger(ledger, vid)
            if forensics.bad_returns == 0:
                continue
            offenders += 1
            pollution += forensics.bad_returns
            exposure += forensics.tasks_after_first_bad
            if forensics.banned_at is not None:
                banned += 1
                latency = forensics.detection_latency
                if latency is not None:
                    latencies.append(latency)
    return AccountabilityMetrics(
        offenders=offenders,
        offenders_banned=banned,
        mean_detection_latency=(
            sum(latencies) / len(latencies) if latencies else None
        ),
        total_pollution=pollution,
        total_exposure=exposure,
    )


def live_summary(counters: EventCounters) -> dict[str, int | float]:
    """One dashboard row from a live :class:`EventCounters` subscriber:
    the event-stream view of the same quantities the post-hoc forensics
    compute from the ledger."""
    returns = counters.count(ResultReturned)
    return {
        "registered": counters.count(VolunteerRegistered),
        "issued": counters.count(TaskIssued),
        "returned": returns,
        "banned": counters.count(VolunteerBanned),
        "departed": counters.count(VolunteerDeparted),
        "issue_rate_per_tick": counters.per_tick_rate(TaskIssued),
        "return_rate_per_tick": counters.per_tick_rate(ResultReturned),
    }
