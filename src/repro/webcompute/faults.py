"""Deterministic, seeded fault injection for the sharded WBC service.

A chaos harness is only useful if a failing schedule can be replayed
exactly, so everything here is deterministic: scheduled faults fire at
fixed ticks, and probabilistic faults (dropped / delayed returns) draw
from the injector's *own* seeded RNG -- never from the simulation's RNG
streams.  That separation is what makes the crash-recovery differential
test possible: a faulted run and a fault-free run consume identical
random streams everywhere outside the injector.

The spec grammar (the CLI's ``--faults`` argument), comma-separated:

``crash@T:S``
    crash shard ``S`` at tick ``T``;
``restore@T:S``
    restore shard ``S`` at tick ``T``;
``corrupt@T:K``
    at tick ``T``, flip ``K`` currently-honest volunteers malicious
    (picked by the injector's RNG);
``drop=P``
    drop each task return in flight with probability ``P``;
``delay=P:D``
    delay each (undropped) return by ``D`` ticks with probability ``P``.

Example: ``crash@40:1,restore@55:1,corrupt@20:2,drop=0.05,delay=0.1:3``.

The injector *decides*; the simulation loop *applies* (crashing shards,
marking volunteers corrupted, queueing delayed returns) and the typed
fault events (:class:`~repro.webcompute.events.ShardCrashed`,
:class:`~repro.webcompute.events.VolunteerCorrupted`,
:class:`~repro.webcompute.events.ReturnDropped`, ...) are published by
the layers that actually perform each action.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["ScheduledFault", "FaultSpec", "FaultInjector", "ReturnFate"]


@dataclass(frozen=True, slots=True)
class ScheduledFault:
    """One tick-scheduled fault: ``kind`` is ``"crash"``, ``"restore"``
    or ``"corrupt"``; ``arg`` is the shard (crash/restore) or the number
    of volunteers to corrupt."""

    kind: str
    tick: int
    arg: int


@dataclass(frozen=True, slots=True)
class ReturnFate:
    """The injector's verdict on one in-flight return."""

    dropped: bool = False
    delay: int = 0


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """A parsed fault schedule (see the module docstring for the
    grammar).

    >>> spec = FaultSpec.parse("crash@4:1,restore@9:1,drop=0.25")
    >>> [(f.kind, f.tick, f.arg) for f in spec.scheduled]
    [('crash', 4, 1), ('restore', 9, 1)]
    >>> spec.drop_rate
    0.25
    """

    scheduled: tuple[ScheduledFault, ...] = ()
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_ticks: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the comma-separated spec grammar; raises
        :class:`~repro.errors.ConfigurationError` on any malformed
        clause."""
        scheduled: list[ScheduledFault] = []
        drop_rate = 0.0
        delay_rate = 0.0
        delay_ticks = 0
        for raw in text.split(","):
            clause = raw.strip()
            if not clause:
                continue
            try:
                if clause.startswith(("crash@", "restore@", "corrupt@")):
                    kind, rest = clause.split("@", 1)
                    tick_s, arg_s = rest.split(":", 1)
                    tick, arg = int(tick_s), int(arg_s)
                    if tick <= 0:
                        raise ValueError(f"tick must be positive, got {tick}")
                    if arg < 0:
                        raise ValueError(f"argument must be >= 0, got {arg}")
                    scheduled.append(ScheduledFault(kind=kind, tick=tick, arg=arg))
                elif clause.startswith("drop="):
                    drop_rate = float(clause[len("drop="):])
                    if not 0.0 <= drop_rate <= 1.0:
                        raise ValueError(f"drop rate {drop_rate} not in [0, 1]")
                elif clause.startswith("delay="):
                    rate_s, ticks_s = clause[len("delay="):].split(":", 1)
                    delay_rate, delay_ticks = float(rate_s), int(ticks_s)
                    if not 0.0 <= delay_rate <= 1.0:
                        raise ValueError(f"delay rate {delay_rate} not in [0, 1]")
                    if delay_ticks <= 0:
                        raise ValueError(
                            f"delay ticks must be positive, got {delay_ticks}"
                        )
                else:
                    raise ValueError("unknown clause")
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad fault clause {clause!r}: {exc}"
                ) from exc
        scheduled.sort(key=lambda f: (f.tick, f.kind, f.arg))
        return cls(
            scheduled=tuple(scheduled),
            drop_rate=drop_rate,
            delay_rate=delay_rate,
            delay_ticks=delay_ticks,
        )

    @property
    def is_empty(self) -> bool:
        return (
            not self.scheduled and self.drop_rate == 0.0 and self.delay_rate == 0.0
        )


@dataclass(slots=True)
class FaultInjector:
    """Executes a :class:`FaultSpec` deterministically.

    ``scheduled_at(tick)`` yields the tick's scheduled faults;
    ``corruption_targets(tick, candidates)`` picks which volunteers a
    ``corrupt@`` clause hits (from the injector's own RNG);
    ``return_fate(...)`` rolls drop/delay for one in-flight return.
    Same seed + same call sequence = same faults, every run.
    """

    spec: FaultSpec
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed ^ 0x5DEECE66D)

    def scheduled_at(self, tick: int) -> list[ScheduledFault]:
        """The faults scheduled for exactly *tick*, in deterministic
        order (within a tick: corrupt, then crash, then restore -- the
        lexicographic sort in :meth:`FaultSpec.parse`)."""
        return [f for f in self.spec.scheduled if f.tick == tick]

    def corruption_targets(self, count: int, candidates: list[int]) -> list[int]:
        """Pick *count* volunteers to corrupt out of *candidates*
        (ascending ids in, deterministic sample out)."""
        pool = sorted(candidates)
        if count >= len(pool):
            return pool
        return sorted(self._rng.sample(pool, count))

    def return_fate(self) -> ReturnFate:
        """Roll the dice for one in-flight return.  Draws are consumed
        *only* when the corresponding rate is nonzero, so an all-zero
        spec leaves the injector RNG untouched (and two runs differing
        only in scheduled faults stay comparable)."""
        if self.spec.drop_rate > 0.0 and self._rng.random() < self.spec.drop_rate:
            return ReturnFate(dropped=True)
        if self.spec.delay_rate > 0.0 and self._rng.random() < self.spec.delay_rate:
            return ReturnFate(delay=self.spec.delay_ticks)
        return ReturnFate()
