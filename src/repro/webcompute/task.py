"""Tasks for the web-computing simulation (Section 4).

A WBC project owns a countable workload: tasks indexed by ``N``.  The
simulation needs each task to have a *verifiable* result so the
accountability machinery has something to check; we use a deterministic
integer mix of the task index as the ground truth.  (The paper's projects
-- RSA factoring, drug screening -- have externally checkable answers;
a keyed mix preserves exactly the property the accountability scheme needs:
the server can recompute/verify any task it chooses.)

The lifecycle is ``ISSUED -> RETURNED -> (VERIFIED_OK | VERIFIED_BAD)``;
unverified returns stay ``RETURNED`` (the scheme verifies only a sample --
accountability, not full redundancy).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DomainError

__all__ = ["TaskStatus", "Task", "correct_result"]

_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


def correct_result(task_index: int) -> int:
    """The ground-truth result of a task: a splitmix64-style avalanche of
    the task index.  Deterministic, cheap, and uncorrelated across indices,
    so "guessing" volunteers are caught with overwhelming probability.

    >>> correct_result(1) == correct_result(1)
    True
    >>> correct_result(1) != correct_result(2)
    True
    """
    if isinstance(task_index, bool) or not isinstance(task_index, int) or task_index <= 0:
        raise DomainError(f"task_index must be a positive int, got {task_index!r}")
    z = task_index & _MASK64
    z = ((z ^ (z >> 30)) * _MIX_1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_2) & _MASK64
    return z ^ (z >> 31)


class TaskStatus(enum.Enum):
    ISSUED = "issued"
    RETURNED = "returned"
    VERIFIED_OK = "verified-ok"
    VERIFIED_BAD = "verified-bad"


@dataclass(slots=True)
class Task:
    """One unit of WBC work.

    ``index`` is the *global* task index -- the value ``T(v, t)`` of the
    task-allocation function; ``volunteer_id`` and ``serial`` record the
    allocation (``v`` and ``t``) for the ledger.  ``volunteer_id`` is the
    *original* assignee and never changes: ``T^-1`` attribution must keep
    naming it even after a lease-expiry reissue (``reissued_to``), so a
    late or forged return is always charged to an identifiable volunteer.

    Lease fields (all ``None`` when the engine runs without leases):
    ``lease_expires_at`` is the tick after which a reaper may hand the
    still-unreturned task to another volunteer; ``reissued_to`` /
    ``reissued_at`` record the most recent reissue.
    """

    index: int
    volunteer_id: int
    serial: int
    issued_at: int
    status: TaskStatus = TaskStatus.ISSUED
    returned_at: int | None = None
    reported_result: int | None = None
    returned_by: int | None = None
    lease_expires_at: int | None = None
    reissued_to: int | None = None
    reissued_at: int | None = None

    def __post_init__(self) -> None:
        if self.index <= 0:
            raise DomainError(f"task index must be positive, got {self.index}")
        if self.serial <= 0:
            raise DomainError(f"task serial must be positive, got {self.serial}")

    @property
    def expected_result(self) -> int:
        """Ground truth (the server can always recompute it)."""
        return correct_result(self.index)

    @property
    def current_assignee(self) -> int:
        """The volunteer currently expected to return this task: the
        latest reissue target, or the original assignee."""
        return self.reissued_to if self.reissued_to is not None else self.volunteer_id

    def lease_expired(self, at_tick: int) -> bool:
        """Whether the lease (if any) has expired as of *at_tick*; a task
        without a lease never expires."""
        return self.lease_expires_at is not None and at_tick > self.lease_expires_at

    def mark_returned(self, result: int, at_tick: int) -> None:
        if self.status is not TaskStatus.ISSUED:
            raise DomainError(
                f"task {self.index} cannot be returned from status {self.status.value}"
            )
        self.reported_result = result
        self.returned_at = at_tick
        self.status = TaskStatus.RETURNED

    def verify(self) -> bool:
        """Check the reported result against ground truth; updates status
        and returns whether it was correct."""
        if self.status is not TaskStatus.RETURNED:
            raise DomainError(
                f"task {self.index} cannot be verified from status {self.status.value}"
            )
        ok = self.reported_result == self.expected_result
        self.status = TaskStatus.VERIFIED_OK if ok else TaskStatus.VERIFIED_BAD
        return ok
