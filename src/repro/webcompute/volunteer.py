"""Volunteer behavior models for the WBC simulation.

The paper's threat model (Section 4): "WBC is vulnerable to malicious, or
careless, volunteers returning false results."  We model three behaviors:

* ``HONEST`` -- always returns the correct result;
* ``CARELESS`` -- returns a corrupted result with probability
  ``error_rate`` (a flaky machine, an interrupted computation);
* ``MALICIOUS`` -- returns a fabricated result with probability
  ``error_rate`` (typically high), aiming to pollute the project.

Volunteers also carry a ``speed`` (expected tasks completed per simulation
tick) because the paper's front end "ensures that faster volunteers are
always assigned smaller indices" -- speed ranking is an input to row
assignment, and smaller rows mean smaller strides under every compact APF.

All randomness flows through the caller-provided ``random.Random`` so runs
are exactly reproducible.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.webcompute.task import correct_result

__all__ = ["Behavior", "VolunteerProfile"]


class Behavior(enum.Enum):
    HONEST = "honest"
    CARELESS = "careless"
    MALICIOUS = "malicious"


@dataclass(frozen=True, slots=True)
class VolunteerProfile:
    """Static description of a simulated volunteer.

    >>> v = VolunteerProfile("alice", speed=2.0)
    >>> v.behavior
    <Behavior.HONEST: 'honest'>
    """

    name: str
    speed: float = 1.0
    behavior: Behavior = Behavior.HONEST
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("volunteer name must be non-empty")
        if not (self.speed > 0.0):
            raise ConfigurationError(f"speed must be positive, got {self.speed}")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ConfigurationError(
                f"error_rate must be in [0, 1], got {self.error_rate}"
            )
        if self.behavior is Behavior.HONEST and self.error_rate != 0.0:
            raise ConfigurationError("honest volunteers must have error_rate 0")
        if self.behavior is not Behavior.HONEST and self.error_rate == 0.0:
            raise ConfigurationError(
                f"{self.behavior.value} volunteers need a positive error_rate"
            )

    def compute(self, task_index: int, rng: random.Random) -> int:
        """Produce this volunteer's result for *task_index*.

        Honest path returns ground truth; faulty paths flip to a corrupted
        value with probability ``error_rate``.  Corruption XORs a nonzero
        mask so a "bad" result is never accidentally correct.
        """
        truth = correct_result(task_index)
        if self.behavior is Behavior.HONEST:
            return truth
        if rng.random() < self.error_rate:
            return truth ^ (rng.getrandbits(63) | 1)
        return truth

    @property
    def is_faulty(self) -> bool:
        return self.behavior is not Behavior.HONEST

    def to_state(self) -> dict:
        """JSON-able form for checkpoints and op journals."""
        return {
            "name": self.name,
            "speed": self.speed,
            "behavior": self.behavior.value,
            "error_rate": self.error_rate,
        }

    @classmethod
    def from_state(cls, state: dict) -> "VolunteerProfile":
        """Inverse of :meth:`to_state`."""
        return cls(
            name=state["name"],
            speed=state["speed"],
            behavior=Behavior(state["behavior"]),
            error_rate=state["error_rate"],
        )
