"""The accountability ledger and ban policy (Section 4, after [13]).

"A computationally lightweight scheme for keeping track of which volunteer
computed which task(s), thereby enabling the head of the WBC project to ban
frequently errant volunteers from continued participation."

The ledger records every issue and every return, verifies a *sample* of
returns (accountability, not full redundancy -- the paper is explicit that
this addresses accountability, not security), attributes each bad result to
its volunteer via the allocation function's inverse plus the front end's
epochs, and applies a strike-based ban policy.

Determinism: the verification sample is drawn from a caller-seeded RNG, so
any run is exactly reproducible.

The ledger is the system of record for accountability state, so its
internals stay private; everything other layers need is exposed through
the public read API (:meth:`~AccountabilityLedger.volunteer_ids`,
:meth:`~AccountabilityLedger.records`, :meth:`~AccountabilityLedger.tasks`,
:meth:`~AccountabilityLedger.banned_at_of`) and the snapshot/restore state
methods -- no neighbor reaches into ``_records``/``_tasks`` (the lint gate
enforces it).  Returns and bans are additionally published as structured
events on an optional :class:`~repro.webcompute.events.EventBus`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError, DomainError
from repro.webcompute.events import EventBus, ResultReturned, VolunteerBanned
from repro.webcompute.task import Task, TaskStatus

__all__ = ["VolunteerRecord", "LedgerReport", "AccountabilityLedger", "CounterRNG"]


class CounterRNG:
    """Counter-based (SplitMix64) uniform stream for the verification
    sample.  A drop-in for the slice of ``random.Random`` the ledger
    uses (``random()`` plus ``getstate``/``setstate``), with state that
    is two integers -- seed and draw counter -- where Mersenne Twister
    carries 625 words (~8 KB JSON-encoded), which every checkpoint
    delta used to ship whenever a draw happened in its window.  The
    value at draw *n* is a pure function of ``(seed, n)``, so replay
    from any checkpoint is bit-identical by construction."""

    _MASK = (1 << 64) - 1
    _GAMMA = 0x9E3779B97F4A7C15

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed & self._MASK
        self._counter = 0

    def random(self) -> float:
        """Uniform in [0, 1) with 53 bits of precision (the same
        resolution ``random.Random.random`` provides)."""
        self._counter += 1
        z = (self._seed + self._counter * self._GAMMA) & self._MASK
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        z ^= z >> 31
        return (z >> 11) / 9007199254740992  # 2 ** 53

    def getstate(self) -> tuple[int, int]:
        return (self._seed, self._counter)

    def setstate(self, state: tuple[int, int]) -> None:
        seed, counter = state
        self._seed = int(seed) & self._MASK
        self._counter = int(counter)


def _decode_record(r: Any) -> VolunteerRecord:
    """Decode one persisted record: compact 7-tuple ``[volunteer_id, issued,
    returned, verified, strikes, banned, banned_at]`` or v1 per-field dict."""
    if isinstance(r, dict):
        return VolunteerRecord(
            volunteer_id=r["volunteer_id"],
            issued=r["issued"],
            returned=r["returned"],
            verified=r["verified"],
            strikes=r["strikes"],
            banned=r["banned"],
            banned_at=r["banned_at"],
        )
    vid, issued, returned, verified, strikes, banned, banned_at = r
    return VolunteerRecord(
        volunteer_id=vid,
        issued=issued,
        returned=returned,
        verified=verified,
        strikes=strikes,
        banned=banned,
        banned_at=banned_at,
    )


def _decode_task(t: Any) -> Task:
    """Decode one persisted task row: compact 11-tuple ``[index,
    volunteer_id, serial, issued_at, status, returned_at, reported_result,
    returned_by, lease_expires_at, reissued_to, reissued_at]`` or v1
    per-field dict (lease/reissue keys read with defaults so pre-lease
    snapshots restore unchanged)."""
    if isinstance(t, dict):
        fields = (
            t["index"], t["volunteer_id"], t["serial"], t["issued_at"],
            t["status"], t["returned_at"], t["reported_result"],
            t.get("returned_by"), t.get("lease_expires_at"),
            t.get("reissued_to"), t.get("reissued_at"),
        )
    else:
        fields = tuple(t)
    (index, vid, serial, issued_at, status, returned_at, reported_result,
     returned_by, lease_expires_at, reissued_to, reissued_at) = fields
    task = Task(index=index, volunteer_id=vid, serial=serial, issued_at=issued_at)
    task.status = TaskStatus(status)
    task.returned_at = returned_at
    task.reported_result = reported_result
    task.returned_by = returned_by
    task.lease_expires_at = lease_expires_at
    task.reissued_to = reissued_to
    task.reissued_at = reissued_at
    return task


@dataclass(slots=True)
class VolunteerRecord:
    """Per-volunteer accountability state."""

    volunteer_id: int
    issued: int = 0
    returned: int = 0
    verified: int = 0
    strikes: int = 0
    banned: bool = False
    banned_at: int | None = None

    @property
    def observed_error_rate(self) -> float:
        if self.verified == 0:
            return 0.0
        return self.strikes / self.verified


@dataclass(frozen=True, slots=True)
class LedgerReport:
    """Aggregate accountability metrics for one run.

    ``tasks_reissued`` counts tasks whose lease expired and that were
    handed to a new volunteer (the task *index* is never re-minted, so
    ``tasks_issued`` is unaffected); ``late_returns`` counts returns that
    arrived against an already-expired lease -- recorded, per the
    accountability contract, against the original assignee."""

    tasks_issued: int
    tasks_returned: int
    tasks_verified: int
    bad_results_returned: int
    bad_results_caught: int
    volunteers_banned: int
    honest_volunteers_banned: int
    tasks_reissued: int = 0
    late_returns: int = 0

    @property
    def catch_rate(self) -> float:
        """Fraction of returned-bad results the verification sample caught."""
        if self.bad_results_returned == 0:
            return 1.0
        return self.bad_results_caught / self.bad_results_returned


class AccountabilityLedger:
    """Issue/return bookkeeping, sampled verification, strike-based bans.

    Parameters
    ----------
    verification_rate:
        Probability that a returned task is spot-checked against ground
        truth.  1.0 verifies everything (full redundancy); the interesting
        regime is small rates, where accountability still catches persistent
        offenders because *every* task is attributable.
    ban_after_strikes:
        Confirmed-bad results before a volunteer is banned.
    rng:
        Seeded RNG for the verification sample: a :class:`CounterRNG`
        (what the engine constructs -- two-integer snapshot state) or a
        seeded ``random.Random`` (still accepted; its Mersenne state
        round-trips through snapshots in the legacy encoding).
    bus:
        Optional :class:`~repro.webcompute.events.EventBus`; every return
        publishes a :class:`~repro.webcompute.events.ResultReturned` and
        every ban a :class:`~repro.webcompute.events.VolunteerBanned`.
    """

    def __init__(
        self,
        verification_rate: float = 0.1,
        ban_after_strikes: int = 2,
        rng: "random.Random | CounterRNG | None" = None,
        bus: EventBus | None = None,
        clock: Callable[[], int] | None = None,
    ) -> None:
        if not 0.0 <= verification_rate <= 1.0:
            raise ConfigurationError(
                f"verification_rate must be in [0, 1], got {verification_rate}"
            )
        if isinstance(ban_after_strikes, bool) or not isinstance(ban_after_strikes, int):
            raise ConfigurationError("ban_after_strikes must be an int")
        if ban_after_strikes <= 0:
            raise ConfigurationError(
                f"ban_after_strikes must be positive, got {ban_after_strikes}"
            )
        # Policy scalars and RNG state are owned by the engine snapshot
        # (verification_rate / ban_after_strikes / rng_state keys); the
        # bus is observer plumbing, re-attached after restore.
        self.verification_rate = verification_rate  # reprolint: allow[R003]
        self.ban_after_strikes = ban_after_strikes  # reprolint: allow[R003]
        self.bus = bus  # reprolint: allow[R003]
        self._rng = rng if rng is not None else random.Random(0)  # reprolint: allow[R003]
        # on construction; delta bookkeeping is rebuilt by restore_state
        self._clock_fn = clock if clock is not None else (lambda: 0)
        self._tasks: dict[int, Task] = {}
        self._records: dict[int, VolunteerRecord] = {}
        # Ground truth for reporting only (not visible to the ban policy):
        # every bad return, caught or not.
        self._bad_returns = 0
        self._bad_caught = 0
        self._late_returns = 0
        self._honest_ids: set[int] = set()
        # Delta-protocol dirty tracking: tick of each record/task/honest-tag
        # mutation, plus the tick of the last verification-RNG draw (the RNG
        # state only rides in a delta when it actually advanced).
        self._record_changed: dict[int, int] = {}
        self._task_changed: dict[int, int] = {}
        self._honest_changed: dict[int, int] = {}
        self._rng_changed = 0

    # ------------------------------------------------------------------

    def _record(self, volunteer_id: int) -> VolunteerRecord:
        rec = self._records.get(volunteer_id)
        if rec is None:
            rec = VolunteerRecord(volunteer_id=volunteer_id)
            self._records[volunteer_id] = rec
        return rec

    def note_honest(self, volunteer_id: int) -> None:
        """Report-only oracle tag: lets :meth:`report` count false bans.
        The ban policy itself never reads this."""
        self._honest_ids.add(volunteer_id)
        self._honest_changed[volunteer_id] = self._clock_fn()

    def note_corrupted(self, volunteer_id: int) -> None:
        """Drop the honest oracle tag for a volunteer whose behavior a
        fault injector corrupted mid-run: a later ban is a *correct* ban,
        not a false positive."""
        self._honest_ids.discard(volunteer_id)
        self._honest_changed[volunteer_id] = self._clock_fn()

    def record_issue(self, task: Task) -> None:
        if task.index in self._tasks:
            raise DomainError(f"task {task.index} was already issued")
        self._tasks[task.index] = task
        self._record(task.volunteer_id).issued += 1
        now = self._clock_fn()
        self._task_changed[task.index] = now
        self._record_changed[task.volunteer_id] = now

    def record_reissue(
        self, task_index: int, to_volunteer: int, at_tick: int,
        new_lease_expires_at: int | None = None,
    ) -> Task:
        """Hand a still-unreturned task whose lease expired to a new
        volunteer.  Both assignments stay on the record: the task keeps
        its original ``volunteer_id`` (``T^-1`` attribution is untouched)
        and the reissue target is noted so its eventual return is
        accepted and charged to *it*, while a late return by the original
        assignee stays charged to the original assignee."""
        task = self._tasks.get(task_index)
        if task is None:
            raise DomainError(f"task {task_index} was never issued")
        if task.status is not TaskStatus.ISSUED:
            raise DomainError(
                f"task {task_index} cannot be reissued from status {task.status.value}"
            )
        task.reissued_to = to_volunteer
        task.reissued_at = at_tick
        if new_lease_expires_at is not None:
            task.lease_expires_at = new_lease_expires_at
        self._record(to_volunteer).issued += 1
        now = self._clock_fn()
        self._task_changed[task_index] = now
        self._record_changed[to_volunteer] = now
        return task

    def record_return(
        self, task_index: int, result: int, at_tick: int,
        submitter: int | None = None,
    ) -> bool:
        """Record a returned result; spot-check it with probability
        ``verification_rate``.  Returns ``True`` when the return triggered
        a ban.

        ``submitter`` is the volunteer handing in the result; it must be
        the task's original assignee or its current reissue target
        (anyone else is a forgery the caller should already have
        rejected).  The return -- and any strike it earns -- is charged
        to the submitter: a late return by the original assignee against
        an expired lease therefore stays on the original's record.

        A return is *late* when the submitter's own lease view has
        lapsed: the live lease has expired, or the task was reissued and
        the submitter is the original assignee (whose lease expired by
        definition -- the renewed lease belongs to the target)."""
        task = self._tasks.get(task_index)
        if task is None:
            raise DomainError(f"task {task_index} was never issued")
        if submitter is None:
            submitter = task.volunteer_id
        if submitter not in (task.volunteer_id, task.reissued_to):
            raise DomainError(
                f"task {task_index} belongs to volunteer {task.volunteer_id}"
                + (
                    f" (reissued to {task.reissued_to})"
                    if task.reissued_to is not None
                    else ""
                )
                + f", not {submitter}"
            )
        original_after_reissue = (
            task.reissued_to is not None and submitter == task.volunteer_id
        )
        if task.lease_expired(at_tick) or original_after_reissue:
            self._late_returns += 1
        task.mark_returned(result, at_tick)
        task.returned_by = submitter
        rec = self._record(submitter)
        rec.returned += 1
        is_bad = result != task.expected_result
        if is_bad:
            self._bad_returns += 1
        now = self._clock_fn()
        self._task_changed[task_index] = now
        self._record_changed[submitter] = now
        self._rng_changed = now
        verified = self._rng.random() < self.verification_rate
        banned_now = False
        if verified:
            rec.verified += 1
            ok = task.verify()
            if not ok:
                self._bad_caught += 1
                rec.strikes += 1
                if not rec.banned and rec.strikes >= self.ban_after_strikes:
                    rec.banned = True
                    rec.banned_at = at_tick
                    banned_now = True
        if self.bus is not None:
            self.bus.publish(
                ResultReturned(
                    tick=at_tick,
                    volunteer_id=submitter,
                    task_index=task_index,
                    bad=is_bad,
                    verified=verified,
                )
            )
            if banned_now:
                self.bus.publish(
                    VolunteerBanned(
                        tick=at_tick,
                        volunteer_id=submitter,
                        strikes=rec.strikes,
                    )
                )
        return banned_now

    def audit_task(self, task_index: int) -> TaskStatus:
        """Force-verify a single returned task (the project head's manual
        audit path).  A strike is charged to the volunteer that actually
        returned the result (``returned_by``) -- under a lease reissue
        that may be the reissue target, not the original assignee."""
        task = self._tasks.get(task_index)
        if task is None:
            raise DomainError(f"task {task_index} was never issued")
        if task.status is TaskStatus.RETURNED:
            returner = (
                task.returned_by if task.returned_by is not None else task.volunteer_id
            )
            rec = self._record(returner)
            now = self._clock_fn()
            self._task_changed[task_index] = now
            self._record_changed[returner] = now
            rec.verified += 1
            if not task.verify():
                self._bad_caught += 1
                rec.strikes += 1
                if not rec.banned and rec.strikes >= self.ban_after_strikes:
                    rec.banned = True
                    if self.bus is not None:
                        self.bus.publish(
                            VolunteerBanned(
                                tick=self.bus.now(),
                                volunteer_id=returner,
                                strikes=rec.strikes,
                            )
                        )
        return task.status

    # ------------------------------------------------------------------

    def is_banned(self, volunteer_id: int) -> bool:
        rec = self._records.get(volunteer_id)
        return rec is not None and rec.banned

    def record_of(self, volunteer_id: int) -> VolunteerRecord:
        rec = self._records.get(volunteer_id)
        if rec is None:
            raise DomainError(f"volunteer {volunteer_id} has no ledger record")
        return rec

    def task(self, task_index: int) -> Task:
        task = self._tasks.get(task_index)
        if task is None:
            raise DomainError(f"task {task_index} was never issued")
        return task

    def tasks_of(self, volunteer_id: int) -> list[Task]:
        """Every task ever issued to *volunteer_id* -- "keeping track of
        which volunteer computed which task(s)"."""
        return [t for t in self._tasks.values() if t.volunteer_id == volunteer_id]

    # -- public read API (what metrics / persistence / dashboards use) --

    def volunteer_ids(self) -> list[int]:
        """Every volunteer with a ledger record, ascending.  (Honest
        volunteers get a record at registration via :meth:`note_honest`;
        every volunteer gets one on its first issue.)"""
        return sorted(self._records)

    def records(self) -> list[VolunteerRecord]:
        """All per-volunteer records, by volunteer id.  The returned list
        is a copy; the records themselves are the live objects (treat them
        as read-only)."""
        return [self._records[vid] for vid in sorted(self._records)]

    def tasks(self) -> list[Task]:
        """Every task ever issued, by task index.  The list is a copy;
        the tasks are the live objects (treat them as read-only)."""
        return [self._tasks[idx] for idx in sorted(self._tasks)]

    def tasks_issued_count(self) -> int:
        """How many distinct task indices were ever issued -- the audit
        denominator incremental checkpoints carry in every delta."""
        return len(self._tasks)

    def outstanding_tasks(self) -> list[Task]:
        """Issued-but-unreturned tasks, by task index -- what the lease
        reaper scans and what a volunteer may still legitimately return."""
        return [
            self._tasks[idx]
            for idx in sorted(self._tasks)
            if self._tasks[idx].status is TaskStatus.ISSUED
        ]

    @property
    def late_returns(self) -> int:
        """Returns recorded against an already-expired lease."""
        return self._late_returns

    def banned_at_of(self, volunteer_id: int) -> int | None:
        """The tick a volunteer was banned at, or ``None`` if it is not
        banned (or was banned through :meth:`audit_task`, which has no
        tick)."""
        rec = self._records.get(volunteer_id)
        if rec is None or not rec.banned:
            return None
        return rec.banned_at

    # -- snapshot / restore state (the persistence seam) ---------------

    def rng_state(self) -> list:
        """The verification RNG state as a JSON-able list: a
        ``["counter", seed, draws]`` triple for a :class:`CounterRNG`,
        or the legacy ``[version, internal, gauss]`` Mersenne encoding
        for an injected ``random.Random``."""
        if isinstance(self._rng, CounterRNG):
            seed, counter = self._rng.getstate()
            return ["counter", seed, counter]
        version, internal, gauss = self._rng.getstate()
        return [version, list(internal), gauss]

    def set_rng_state(self, encoded: list) -> None:
        """Adopt either encoding, replacing the live RNG when the
        snapshot was taken under the other kind (old checkpoints stay
        restorable after the CounterRNG switch, and vice versa)."""
        if encoded and encoded[0] == "counter":
            if not isinstance(self._rng, CounterRNG):
                self._rng = CounterRNG()
            self._rng.setstate((encoded[1], encoded[2]))
        else:
            version, internal, gauss = encoded
            if isinstance(self._rng, CounterRNG):
                self._rng = random.Random(0)
            self._rng.setstate((version, tuple(internal), gauss))
        self._rng_changed = self._clock_fn()

    def snapshot_state(self) -> dict[str, Any]:
        """The ledger's complete persistent state as a JSON-able dict
        (rates and RNG state are snapshot separately by the caller).
        Records are compact 7-tuples and tasks 11-tuples -- see
        :func:`_decode_record` / :func:`_decode_task` for the field order
        (per-field dicts were the v1 format; :meth:`restore_state` accepts
        both)."""
        return {
            "honest_ids": sorted(self._honest_ids),
            "bad_returns": self._bad_returns,
            "bad_caught": self._bad_caught,
            "late_returns": self._late_returns,
            "records": [
                [
                    r.volunteer_id, r.issued, r.returned, r.verified,
                    r.strikes, r.banned, r.banned_at,
                ]
                for r in self.records()
            ],
            "tasks": [
                [
                    t.index, t.volunteer_id, t.serial, t.issued_at,
                    t.status.value, t.returned_at, t.reported_result,
                    t.returned_by, t.lease_expires_at, t.reissued_to,
                    t.reissued_at,
                ]
                for t in self.tasks()
            ],
        }

    def snapshot_delta(self, since_tick: int) -> dict[str, Any]:
        """Records/tasks/honest-tags mutated at or after *since_tick*.
        Counters ship as absolute values (idempotent to re-apply); the
        verification RNG state rides along only when a draw happened in the
        window."""
        delta: dict[str, Any] = {
            "bad_returns": self._bad_returns,
            "bad_caught": self._bad_caught,
            "late_returns": self._late_returns,
            "honest": [
                [vid, vid in self._honest_ids]
                for vid, t in sorted(self._honest_changed.items())
                if t >= since_tick
            ],
            "records": [
                [
                    r.volunteer_id, r.issued, r.returned, r.verified,
                    r.strikes, r.banned, r.banned_at,
                ]
                for r in (
                    self._records[vid]
                    for vid, t in sorted(self._record_changed.items())
                    if t >= since_tick
                )
            ],
            "tasks": [
                [
                    t.index, t.volunteer_id, t.serial, t.issued_at,
                    t.status.value, t.returned_at, t.reported_result,
                    t.returned_by, t.lease_expires_at, t.reissued_to,
                    t.reissued_at,
                ]
                for t in (
                    self._tasks[idx]
                    for idx, tk in sorted(self._task_changed.items())
                    if tk >= since_tick
                )
            ],
        }
        if self._rng_changed >= since_tick:
            delta["rng_state"] = self.rng_state()
        return delta

    def apply_delta(self, delta: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot_delta` dict into live state: upsert
        records/tasks, replay honest-tag membership, overwrite counters,
        and adopt the RNG state when it rode along."""
        now = self._clock_fn()
        self._bad_returns = delta["bad_returns"]
        self._bad_caught = delta["bad_caught"]
        self._late_returns = delta["late_returns"]
        for vid, member in delta["honest"]:
            if member:
                self._honest_ids.add(vid)
            else:
                self._honest_ids.discard(vid)
            self._honest_changed[vid] = now
        for row in delta["records"]:
            rec = _decode_record(row)
            self._records[rec.volunteer_id] = rec
            self._record_changed[rec.volunteer_id] = now
        for row in delta["tasks"]:
            task = _decode_task(row)
            self._tasks[task.index] = task
            self._task_changed[task.index] = now
        if "rng_state" in delta:
            self.set_rng_state(delta["rng_state"])

    def restore_state(self, state: dict[str, Any]) -> None:
        """Rebuild record/task state from a :meth:`snapshot_state` dict.
        Accepts both compact tuple rows and v1 per-field dicts (whose
        lease/reissue keys are read with defaults so pre-lease snapshots
        restore unchanged)."""
        self._honest_ids = set(state["honest_ids"])
        self._bad_returns = state["bad_returns"]
        self._bad_caught = state["bad_caught"]
        self._late_returns = state.get("late_returns", 0)
        self._records = {}
        for r in state["records"]:
            rec = _decode_record(r)
            self._records[rec.volunteer_id] = rec
        self._tasks = {}
        for t in state["tasks"]:
            task = _decode_task(t)
            self._tasks[task.index] = task
        # Conservatively mark everything dirty at the restored clock.
        now = self._clock_fn()
        self._record_changed = {vid: now for vid in self._records}
        self._task_changed = {idx: now for idx in self._tasks}
        self._honest_changed = {vid: now for vid in self._honest_ids}
        self._rng_changed = now

    def report(self) -> LedgerReport:
        issued = len(self._tasks)
        returned = sum(
            1 for t in self._tasks.values() if t.status is not TaskStatus.ISSUED
        )
        verified = sum(
            1
            for t in self._tasks.values()
            if t.status in (TaskStatus.VERIFIED_OK, TaskStatus.VERIFIED_BAD)
        )
        banned = [r for r in self._records.values() if r.banned]
        return LedgerReport(
            tasks_issued=issued,
            tasks_returned=returned,
            tasks_verified=verified,
            bad_results_returned=self._bad_returns,
            bad_results_caught=self._bad_caught,
            volunteers_banned=len(banned),
            honest_volunteers_banned=sum(
                1 for r in banned if r.volunteer_id in self._honest_ids
            ),
            tasks_reissued=sum(
                1 for t in self._tasks.values() if t.reissued_to is not None
            ),
            late_returns=self._late_returns,
        )
