"""The accountability ledger and ban policy (Section 4, after [13]).

"A computationally lightweight scheme for keeping track of which volunteer
computed which task(s), thereby enabling the head of the WBC project to ban
frequently errant volunteers from continued participation."

The ledger records every issue and every return, verifies a *sample* of
returns (accountability, not full redundancy -- the paper is explicit that
this addresses accountability, not security), attributes each bad result to
its volunteer via the allocation function's inverse plus the front end's
epochs, and applies a strike-based ban policy.

Determinism: the verification sample is drawn from a caller-seeded RNG, so
any run is exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, DomainError
from repro.webcompute.task import Task, TaskStatus

__all__ = ["VolunteerRecord", "LedgerReport", "AccountabilityLedger"]


@dataclass(slots=True)
class VolunteerRecord:
    """Per-volunteer accountability state."""

    volunteer_id: int
    issued: int = 0
    returned: int = 0
    verified: int = 0
    strikes: int = 0
    banned: bool = False
    banned_at: int | None = None

    @property
    def observed_error_rate(self) -> float:
        if self.verified == 0:
            return 0.0
        return self.strikes / self.verified


@dataclass(frozen=True, slots=True)
class LedgerReport:
    """Aggregate accountability metrics for one run."""

    tasks_issued: int
    tasks_returned: int
    tasks_verified: int
    bad_results_returned: int
    bad_results_caught: int
    volunteers_banned: int
    honest_volunteers_banned: int

    @property
    def catch_rate(self) -> float:
        """Fraction of returned-bad results the verification sample caught."""
        if self.bad_results_returned == 0:
            return 1.0
        return self.bad_results_caught / self.bad_results_returned


class AccountabilityLedger:
    """Issue/return bookkeeping, sampled verification, strike-based bans.

    Parameters
    ----------
    verification_rate:
        Probability that a returned task is spot-checked against ground
        truth.  1.0 verifies everything (full redundancy); the interesting
        regime is small rates, where accountability still catches persistent
        offenders because *every* task is attributable.
    ban_after_strikes:
        Confirmed-bad results before a volunteer is banned.
    rng:
        Seeded ``random.Random`` for the verification sample.
    """

    def __init__(
        self,
        verification_rate: float = 0.1,
        ban_after_strikes: int = 2,
        rng: random.Random | None = None,
    ) -> None:
        if not 0.0 <= verification_rate <= 1.0:
            raise ConfigurationError(
                f"verification_rate must be in [0, 1], got {verification_rate}"
            )
        if isinstance(ban_after_strikes, bool) or not isinstance(ban_after_strikes, int):
            raise ConfigurationError("ban_after_strikes must be an int")
        if ban_after_strikes <= 0:
            raise ConfigurationError(
                f"ban_after_strikes must be positive, got {ban_after_strikes}"
            )
        self.verification_rate = verification_rate
        self.ban_after_strikes = ban_after_strikes
        self._rng = rng if rng is not None else random.Random(0)
        self._tasks: dict[int, Task] = {}
        self._records: dict[int, VolunteerRecord] = {}
        # Ground truth for reporting only (not visible to the ban policy):
        # every bad return, caught or not.
        self._bad_returns = 0
        self._bad_caught = 0
        self._honest_ids: set[int] = set()

    # ------------------------------------------------------------------

    def _record(self, volunteer_id: int) -> VolunteerRecord:
        rec = self._records.get(volunteer_id)
        if rec is None:
            rec = VolunteerRecord(volunteer_id=volunteer_id)
            self._records[volunteer_id] = rec
        return rec

    def note_honest(self, volunteer_id: int) -> None:
        """Report-only oracle tag: lets :meth:`report` count false bans.
        The ban policy itself never reads this."""
        self._honest_ids.add(volunteer_id)

    def record_issue(self, task: Task) -> None:
        if task.index in self._tasks:
            raise DomainError(f"task {task.index} was already issued")
        self._tasks[task.index] = task
        self._record(task.volunteer_id).issued += 1

    def record_return(self, task_index: int, result: int, at_tick: int) -> bool:
        """Record a returned result; spot-check it with probability
        ``verification_rate``.  Returns ``True`` when the return triggered
        a ban."""
        task = self._tasks.get(task_index)
        if task is None:
            raise DomainError(f"task {task_index} was never issued")
        task.mark_returned(result, at_tick)
        rec = self._record(task.volunteer_id)
        rec.returned += 1
        is_bad = result != task.expected_result
        if is_bad:
            self._bad_returns += 1
        if self._rng.random() < self.verification_rate:
            rec.verified += 1
            ok = task.verify()
            if not ok:
                self._bad_caught += 1
                rec.strikes += 1
                if not rec.banned and rec.strikes >= self.ban_after_strikes:
                    rec.banned = True
                    rec.banned_at = at_tick
                    return True
        return False

    def audit_task(self, task_index: int) -> TaskStatus:
        """Force-verify a single returned task (the project head's manual
        audit path)."""
        task = self._tasks.get(task_index)
        if task is None:
            raise DomainError(f"task {task_index} was never issued")
        if task.status is TaskStatus.RETURNED:
            rec = self._record(task.volunteer_id)
            rec.verified += 1
            if not task.verify():
                self._bad_caught += 1
                rec.strikes += 1
                if not rec.banned and rec.strikes >= self.ban_after_strikes:
                    rec.banned = True
        return task.status

    # ------------------------------------------------------------------

    def is_banned(self, volunteer_id: int) -> bool:
        rec = self._records.get(volunteer_id)
        return rec is not None and rec.banned

    def record_of(self, volunteer_id: int) -> VolunteerRecord:
        rec = self._records.get(volunteer_id)
        if rec is None:
            raise DomainError(f"volunteer {volunteer_id} has no ledger record")
        return rec

    def task(self, task_index: int) -> Task:
        task = self._tasks.get(task_index)
        if task is None:
            raise DomainError(f"task {task_index} was never issued")
        return task

    def tasks_of(self, volunteer_id: int) -> list[Task]:
        """Every task ever issued to *volunteer_id* -- "keeping track of
        which volunteer computed which task(s)"."""
        return [t for t in self._tasks.values() if t.volunteer_id == volunteer_id]

    def report(self) -> LedgerReport:
        issued = len(self._tasks)
        returned = sum(
            1 for t in self._tasks.values() if t.status is not TaskStatus.ISSUED
        )
        verified = sum(
            1
            for t in self._tasks.values()
            if t.status in (TaskStatus.VERIFIED_OK, TaskStatus.VERIFIED_BAD)
        )
        banned = [r for r in self._records.values() if r.banned]
        return LedgerReport(
            tasks_issued=issued,
            tasks_returned=returned,
            tasks_verified=verified,
            bad_results_returned=self._bad_returns,
            bad_results_caught=self._bad_caught,
            volunteers_banned=len(banned),
            honest_volunteers_banned=sum(
                1 for r in banned if r.volunteer_id in self._honest_ids
            ),
        )
