"""Shard crash recovery: checkpoints, op journals, deterministic replay.

The sharded service (Section 4 at scale) must keep the accountability
invariant -- no global task index double-issued, ``T^-1`` attribution
exact -- across the failure a real deployment actually sees: a shard
process dying and being restarted.  The recovery discipline here is the
classic checkpoint + write-ahead-journal pair, specialized to the
engine's determinism:

* A :class:`ShardCheckpoint` is the engine's **complete** snapshot
  (:meth:`~repro.webcompute.engine.AllocationEngine.snapshot_state`:
  contracts, epochs, ledger tasks, verification-RNG state) taken at a
  known tick, serialized through JSON so the stored form is exactly what
  a durable medium would hold.
* The **op journal** records every state-mutating engine call made after
  the checkpoint, in order, as small JSON-able entries.  Because the
  engine is deterministic (the only randomness is the ledger's
  verification RNG, whose state is *inside* the checkpoint), replaying
  the journal against the restored checkpoint reproduces the lost state
  bit-for-bit -- same task indices, same strikes, same bans.
* :func:`replay` applies a journal to a restored engine and returns the
  op count; :func:`apply_op` is the single-op dispatcher (also the
  documentation of the journal grammar).

Ops are journaled *after* the engine call succeeds ("journal-after-
success"): every mutating engine method validates before mutating, so a
rejected call leaves neither state nor journal entry, and replay never
re-raises.

:class:`Backoff` is the retry-pacing half of the story: returns that race
a crashed shard fail with the *transient*
:class:`~repro.errors.ShardDownError` and are retried on an exponential
schedule instead of being dropped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import RecoveryError
from repro.webcompute.engine import AllocationEngine
from repro.webcompute.volunteer import VolunteerProfile

__all__ = [
    "ShardCheckpoint",
    "CheckpointStore",
    "apply_op",
    "replay",
    "Backoff",
]


@dataclass(frozen=True, slots=True)
class ShardCheckpoint:
    """One durable full-state snapshot of a shard's engine.

    ``state`` is the engine snapshot dict; ``tick`` and ``tasks_issued``
    are denormalized out of it so recovery audits (and the bench) can
    read them without parsing the whole blob.
    """

    tick: int
    tasks_issued: int
    state: dict[str, Any]


class CheckpointStore:
    """Per-shard durable storage: the latest checkpoint plus the op
    journal accumulated since it was taken.

    Everything stored passes through ``json.dumps``/``json.loads`` so a
    checkpoint is provably serializable (what a disk or object store
    would hold) and the restored state shares no mutable structure with
    the live engine -- a crashed shard really does lose its in-memory
    objects.
    """

    def __init__(self) -> None:
        self._checkpoint: str | None = None
        self._checkpoint_tick = 0
        self._checkpoint_issued = 0
        self._journal: list[str] = []

    # ------------------------------------------------------------------

    def checkpoint(self, engine: AllocationEngine) -> ShardCheckpoint:
        """Snapshot *engine* and truncate the journal."""
        return self.checkpoint_state(engine.snapshot_state())

    def checkpoint_state(self, state: dict[str, Any]) -> ShardCheckpoint:
        """Store an already-captured engine snapshot and truncate the
        journal.  The seam the parallel router uses: the engine lives in
        a worker process, so the parent receives the snapshot dict over
        the pipe and checkpoints *that* rather than a live engine."""
        issued = len(state["ledger"]["tasks"])
        self._checkpoint = json.dumps(state, sort_keys=True)
        self._checkpoint_tick = state["clock"]
        self._checkpoint_issued = issued
        self._journal = []
        return ShardCheckpoint(
            tick=state["clock"], tasks_issued=issued, state=state
        )

    def journal(self, op: list[Any]) -> None:
        """Append one op (see :func:`apply_op` for the grammar)."""
        self._journal.append(json.dumps(op))

    @property
    def has_checkpoint(self) -> bool:
        return self._checkpoint is not None

    @property
    def checkpoint_tick(self) -> int:
        return self._checkpoint_tick

    @property
    def checkpoint_issued(self) -> int:
        """Tasks issued as of the latest checkpoint (the double-issue
        audit's baseline)."""
        return self._checkpoint_issued

    @property
    def pending_ops(self) -> int:
        """Journal length since the last checkpoint -- the replay work a
        restore will have to do."""
        return len(self._journal)

    def latest(self) -> ShardCheckpoint:
        """The latest checkpoint, deserialized fresh (no shared state)."""
        if self._checkpoint is None:
            raise RecoveryError("no checkpoint has been taken")
        state = json.loads(self._checkpoint)
        return ShardCheckpoint(
            tick=self._checkpoint_tick,
            tasks_issued=self._checkpoint_issued,
            state=state,
        )

    def ops(self) -> list[list[Any]]:
        """The journaled ops since the latest checkpoint, in order."""
        return [json.loads(entry) for entry in self._journal]


def apply_op(engine: AllocationEngine, op: list[Any]) -> None:
    """Apply one journaled op to *engine*.  The journal grammar::

        ["tick"]
        ["register", [profile_state, ...], [volunteer_id, ...]]
        ["depart", volunteer_id]
        ["request", volunteer_id]
        ["requests", [volunteer_id, ...]]
        ["submit", volunteer_id, task_index, result]
        ["submits", [[volunteer_id, task_index, result], ...]]
        ["reap"]
        ["corrupt", volunteer_id, error_rate]

    The bulk forms (``requests``/``submits``) are what the batched router
    journals: one entry per shard per batch instead of one per call, with
    only the calls that *succeeded* (journal-after-success is per item).
    Replaying a bulk op is defined as replaying its singular ops in order,
    so a bulk journal restores the same state as the singular journal the
    serial router would have written.

    Replay is deterministic because every op carries the ids the original
    call resolved and the engine's only RNG rides in the checkpoint.
    """
    kind = op[0]
    if kind == "tick":
        engine.tick()
    elif kind == "register":
        profiles = [VolunteerProfile.from_state(p) for p in op[1]]
        engine.register_round(profiles, ids=list(op[2]))
    elif kind == "depart":
        engine.depart(op[1])
    elif kind == "request":
        engine.request_task(op[1])
    elif kind == "requests":
        for vid in op[1]:
            engine.request_task(vid)
    elif kind == "submit":
        engine.submit_result(op[1], op[2], op[3])
    elif kind == "submits":
        for vid, task_index, result in op[1]:
            engine.submit_result(vid, task_index, result)
    elif kind == "reap":
        engine.reap_expired()
    elif kind == "corrupt":
        engine.mark_corrupted(op[1], op[2])
    else:
        raise RecoveryError(f"unknown journal op {kind!r}")


def replay(engine: AllocationEngine, ops: list[list[Any]]) -> int:
    """Apply *ops* in order; returns the number replayed.  Any engine
    rejection during replay means the journal diverged from the
    checkpoint -- recovery must fail loudly, not half-restore."""
    for i, op in enumerate(ops):
        try:
            apply_op(engine, op)
        except Exception as exc:
            raise RecoveryError(
                f"journal replay diverged at op {i} ({op[0]!r}): {exc}"
            ) from exc
    return len(ops)


@dataclass(slots=True)
class Backoff:
    """Deterministic exponential backoff schedule, in ticks.

    Drives the frontend's retry queue for returns that race a crashed
    shard: attempt 0 retries after ``base`` ticks, each later attempt
    doubles the wait (factor ``factor``) up to ``cap``; after
    ``max_attempts`` failed attempts the return is abandoned (and the
    task's lease will eventually expire and reissue it).

    >>> b = Backoff()
    >>> [b.delay(a) for a in range(6)]
    [1, 2, 4, 8, 16, 16]
    """

    base: int = 1
    factor: int = 2
    cap: int = 16
    max_attempts: int = 8
    attempts: int = field(default=0, compare=False)

    def delay(self, attempt: int | None = None) -> int:
        """Ticks to wait before retry number *attempt* (default: the
        current attempt counter)."""
        n = self.attempts if attempt is None else attempt
        return min(self.cap, self.base * self.factor**n)

    def next_retry_tick(self, now: int) -> int:
        """Record a failed attempt at tick *now*; returns the tick at
        which to retry."""
        due = now + self.delay()
        self.attempts += 1
        return due

    @property
    def exhausted(self) -> bool:
        return self.attempts >= self.max_attempts
