"""Shard crash recovery: checkpoints, op journals, deterministic replay.

The sharded service (Section 4 at scale) must keep the accountability
invariant -- no global task index double-issued, ``T^-1`` attribution
exact -- across the failure a real deployment actually sees: a shard
process dying and being restarted.  The recovery discipline here is the
classic checkpoint + write-ahead-journal pair, specialized to the
engine's determinism:

* A :class:`ShardCheckpoint` is the engine's **complete** snapshot
  (:meth:`~repro.webcompute.engine.AllocationEngine.snapshot_state`:
  contracts, epochs, ledger tasks, verification-RNG state) taken at a
  known tick, serialized through JSON so the stored form is exactly what
  a durable medium would hold.
* The store itself is **log-structured**: a base checkpoint plus delta
  segments (:meth:`~repro.webcompute.engine.AllocationEngine.snapshot_delta`
  cuts), compacted back into a fresh base every ``compact_every``
  segments.  :meth:`CheckpointStore.latest` materializes state by folding
  segments over the base with :func:`fold_delta` -- a dict-level fold
  pinned bit-identical to the engine's live ``apply_delta`` by the
  recovery differential tests.
* The **op journal** records every state-mutating engine call made after
  the checkpoint, in order, as small JSON-able entries.  Because the
  engine is deterministic (the only randomness is the ledger's
  verification RNG, whose state is *inside* the checkpoint), replaying
  the journal against the restored checkpoint reproduces the lost state
  bit-for-bit -- same task indices, same strikes, same bans.
* :func:`replay` applies a journal to a restored engine and returns the
  op count; :func:`apply_op` is the single-op dispatcher (also the
  documentation of the journal grammar).

Ops are journaled *after* the engine call succeeds ("journal-after-
success"): every mutating engine method validates before mutating, so a
rejected call leaves neither state nor journal entry, and replay never
re-raises.

:class:`Backoff` is the retry-pacing half of the story: returns that race
a crashed shard fail with the *transient*
:class:`~repro.errors.ShardDownError` and are retried on an exponential
schedule instead of being dropped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError, RecoveryError
from repro.webcompute.engine import AllocationEngine
from repro.webcompute.volunteer import VolunteerProfile

__all__ = [
    "ShardCheckpoint",
    "CheckpointStore",
    "fold_delta",
    "apply_op",
    "replay",
    "Backoff",
]


@dataclass(frozen=True, slots=True)
class ShardCheckpoint:
    """One durable full-state snapshot of a shard's engine.

    ``state`` is the engine snapshot dict (possibly materialized by
    folding delta segments over a base); ``tick`` and ``tasks_issued``
    are denormalized out of it so recovery audits (and the bench) can
    read them without parsing the whole blob.
    """

    tick: int
    tasks_issued: int
    state: dict[str, Any]


def fold_delta(state: dict[str, Any], delta: dict[str, Any]) -> None:
    """Fold one engine delta (an
    :meth:`~repro.webcompute.engine.AllocationEngine.snapshot_delta` dict)
    into a full engine-state dict, in place.

    This is the *storage-side* twin of the engine's live ``apply_delta``:
    folding a base snapshot through every segment must produce exactly
    ``snapshot_state()`` of the engine the segments were cut from (the
    recovery differential tests pin the two against each other).  It only
    understands the compact row formats this version writes -- fine,
    because bases and segments are always written by the same store.
    """
    state["clock"] = delta["clock"]
    state["max_task_index"] = delta["max_task_index"]
    state["next_volunteer_id"] = delta["next_volunteer_id"]
    state["lease_ticks"] = delta["lease_ticks"]
    state["verification_rate"] = delta["verification_rate"]
    state["ban_after_strikes"] = delta["ban_after_strikes"]
    state["profiles"].update(delta["profiles"])
    # Allocator: rows are [row, base, stride, next_serial].
    ad = delta["contracts"]
    rows = {c[0]: c for c in state["contracts"]}
    for row in ad["released"]:
        rows.pop(row, None)
    for c in ad["rows"]:
        rows[c[0]] = c
    state["contracts"] = [rows[r] for r in sorted(rows)]
    # Front end.
    fe, fd = state["frontend"], delta["frontend"]
    fe["free_rows"] = list(fd["free_rows"])
    fe["next_fresh_row"] = fd["next_fresh_row"]
    for key, info in fd["rows"].items():
        if info["resume"] is not None:
            fe["row_resume_serial"][key] = info["resume"]
        if info["issued"] is not None:
            fe["issued_serials"][key] = info["issued"]
        fe["epochs"][key] = info["epochs"]
    for vid in fd["unseated"]:
        fe["row_of_volunteer"].pop(str(vid), None)
    fe["row_of_volunteer"].update(fd["seats"])
    # Ledger: records are 7-tuples, tasks 11-tuples, keyed by field 0.
    ld, dd = state["ledger"], delta["ledger"]
    ld["bad_returns"] = dd["bad_returns"]
    ld["bad_caught"] = dd["bad_caught"]
    ld["late_returns"] = dd["late_returns"]
    honest = set(ld["honest_ids"])
    for vid, member in dd["honest"]:
        if member:
            honest.add(vid)
        else:
            honest.discard(vid)
    ld["honest_ids"] = sorted(honest)
    records = {r[0]: r for r in ld["records"]}
    for r in dd["records"]:
        records[r[0]] = r
    ld["records"] = [records[k] for k in sorted(records)]
    tasks = {t[0]: t for t in ld["tasks"]}
    for t in dd["tasks"]:
        tasks[t[0]] = t
    ld["tasks"] = [tasks[k] for k in sorted(tasks)]
    if "rng_state" in dd:
        state["rng_state"] = dd["rng_state"]


class CheckpointStore:
    """Per-shard durable storage, log-structured: a base checkpoint, the
    delta segments appended since it, and the op journal accumulated
    since the newest segment.

    Everything stored passes through ``json.dumps``/``json.loads`` so a
    checkpoint is provably serializable (what a disk or object store
    would hold) and the restored state shares no mutable structure with
    the live engine -- a crashed shard really does lose its in-memory
    objects.

    ``compact_every`` bounds the log: once that many segments have
    accumulated, :attr:`wants_compaction` turns true and the owner's next
    checkpoint should be a full one (``None`` disables compaction -- the
    log grows until someone takes a full checkpoint explicitly).
    """

    def __init__(self, compact_every: int | None = 8) -> None:
        if compact_every is not None and (
            isinstance(compact_every, bool)
            or not isinstance(compact_every, int)
            or compact_every <= 0
        ):
            raise ConfigurationError(
                f"compact_every must be a positive int or None, got {compact_every!r}"
            )
        self.compact_every = compact_every
        self._base: str | None = None
        self._base_tick = 0
        self._base_issued = 0
        self._segments: list[str] = []
        self._segment_meta: list[tuple[int, int]] = []  # (tick, issued)
        self._journal: list[str] = []

    # ------------------------------------------------------------------

    def checkpoint(self, engine: AllocationEngine) -> ShardCheckpoint:
        """Full-snapshot *engine* into a fresh base (compaction) and
        truncate segments and journal."""
        return self.checkpoint_state(engine.snapshot_state())

    def checkpoint_state(self, state: dict[str, Any]) -> ShardCheckpoint:
        """Store an already-captured engine snapshot as the new base and
        truncate segments and journal.  The seam the parallel router uses:
        the engine lives in a worker process, so the parent receives the
        snapshot dict over the pipe and checkpoints *that* rather than a
        live engine."""
        issued = len(state["ledger"]["tasks"])
        self._base = json.dumps(state, sort_keys=True)
        self._base_tick = state["clock"]
        self._base_issued = issued
        self._segments = []
        self._segment_meta = []
        self._journal = []
        return ShardCheckpoint(
            tick=state["clock"], tasks_issued=issued, state=state
        )

    def checkpoint_delta(self, delta: dict[str, Any]) -> tuple[int, int]:
        """Append one delta segment (an engine ``snapshot_delta`` dict cut
        at :attr:`since_tick`) and truncate the journal.  Returns the
        ``(tick, tasks_issued)`` the log now covers."""
        if self._base is None:
            raise RecoveryError("no base checkpoint to append a delta to")
        self._segments.append(json.dumps(delta, sort_keys=True))
        meta = (delta["clock"], delta["tasks_issued"])
        self._segment_meta.append(meta)
        self._journal = []
        return meta

    def journal(self, op: list[Any]) -> None:
        """Append one op (see :func:`apply_op` for the grammar)."""
        self._journal.append(json.dumps(op))

    @property
    def has_checkpoint(self) -> bool:
        return self._base is not None

    @property
    def checkpoint_tick(self) -> int:
        """The newest tick the log covers (last segment, else the base)."""
        if self._segment_meta:
            return self._segment_meta[-1][0]
        return self._base_tick

    @property
    def checkpoint_issued(self) -> int:
        """Tasks issued as of the newest log entry (the double-issue
        audit's baseline)."""
        if self._segment_meta:
            return self._segment_meta[-1][1]
        return self._base_issued

    @property
    def since_tick(self) -> int:
        """The tick the *next* delta segment must cover from -- same as
        :attr:`checkpoint_tick`, named for the cut-side call site
        (``engine.snapshot_delta(store.since_tick)``)."""
        return self.checkpoint_tick

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def wants_compaction(self) -> bool:
        """True once the segment log is long enough that the next
        checkpoint should be a full (base) one."""
        return (
            self.compact_every is not None
            and len(self._segments) >= self.compact_every
        )

    @property
    def base_bytes(self) -> int:
        """Serialized size of the base checkpoint (bench instrumentation)."""
        return len(self._base) if self._base is not None else 0

    @property
    def segment_bytes(self) -> list[int]:
        """Serialized size of each delta segment, in log order."""
        return [len(s) for s in self._segments]

    @property
    def pending_ops(self) -> int:
        """Journal length since the newest log entry -- the replay work a
        restore will have to do."""
        return len(self._journal)

    def base_state(self) -> dict[str, Any]:
        """The base checkpoint's engine state, deserialized fresh."""
        if self._base is None:
            raise RecoveryError("no checkpoint has been taken")
        return json.loads(self._base)

    def segments(self) -> list[dict[str, Any]]:
        """The delta segments in log order, deserialized fresh."""
        return [json.loads(s) for s in self._segments]

    def latest(self) -> ShardCheckpoint:
        """The newest coverable state: the base with every delta segment
        folded over it, deserialized fresh (no shared state)."""
        state = self.base_state()
        for delta in self.segments():
            fold_delta(state, delta)
        return ShardCheckpoint(
            tick=self.checkpoint_tick,
            tasks_issued=self.checkpoint_issued,
            state=state,
        )

    def ops(self) -> list[list[Any]]:
        """The journaled ops since the newest log entry, in order."""
        return [json.loads(entry) for entry in self._journal]


def apply_op(engine: AllocationEngine, op: list[Any]) -> None:
    """Apply one journaled op to *engine*.  The journal grammar::

        ["tick"]
        ["register", [profile_state, ...], [volunteer_id, ...]]
        ["depart", volunteer_id]
        ["request", volunteer_id]
        ["requests", [volunteer_id, ...]]
        ["submit", volunteer_id, task_index, result]
        ["submits", [[volunteer_id, task_index, result], ...]]
        ["reap"]
        ["corrupt", volunteer_id, error_rate]

    The bulk forms (``requests``/``submits``) are what the batched router
    journals: one entry per shard per batch instead of one per call, with
    only the calls that *succeeded* (journal-after-success is per item).
    Replaying a bulk op is defined as replaying its singular ops in order,
    so a bulk journal restores the same state as the singular journal the
    serial router would have written.

    Replay is deterministic because every op carries the ids the original
    call resolved and the engine's only RNG rides in the checkpoint.
    """
    kind = op[0]
    if kind == "tick":
        engine.tick()
    elif kind == "register":
        profiles = [VolunteerProfile.from_state(p) for p in op[1]]
        engine.register_round(profiles, ids=list(op[2]))
    elif kind == "depart":
        engine.depart(op[1])
    elif kind == "request":
        engine.request_task(op[1])
    elif kind == "requests":
        for vid in op[1]:
            engine.request_task(vid)
    elif kind == "submit":
        engine.submit_result(op[1], op[2], op[3])
    elif kind == "submits":
        for vid, task_index, result in op[1]:
            engine.submit_result(vid, task_index, result)
    elif kind == "reap":
        engine.reap_expired()
    elif kind == "corrupt":
        engine.mark_corrupted(op[1], op[2])
    else:
        raise RecoveryError(f"unknown journal op {kind!r}")


def replay(engine: AllocationEngine, ops: list[list[Any]]) -> int:
    """Apply *ops* in order; returns the number replayed.  Any engine
    rejection during replay means the journal diverged from the
    checkpoint -- recovery must fail loudly, not half-restore."""
    for i, op in enumerate(ops):
        try:
            apply_op(engine, op)
        except Exception as exc:
            raise RecoveryError(
                f"journal replay diverged at op {i} ({op[0]!r}): {exc}"
            ) from exc
    return len(ops)


@dataclass(slots=True)
class Backoff:
    """Deterministic exponential backoff schedule, in ticks.

    Drives the frontend's retry queue for returns that race a crashed
    shard: attempt 0 retries after ``base`` ticks, each later attempt
    doubles the wait (factor ``factor``) up to ``cap``; after
    ``max_attempts`` failed attempts the return is abandoned (and the
    task's lease will eventually expire and reissue it).

    >>> b = Backoff()
    >>> [b.delay(a) for a in range(6)]
    [1, 2, 4, 8, 16, 16]
    """

    base: int = 1
    factor: int = 2
    cap: int = 16
    max_attempts: int = 8
    attempts: int = field(default=0, compare=False)

    def delay(self, attempt: int | None = None) -> int:
        """Ticks to wait before retry number *attempt* (default: the
        current attempt counter)."""
        n = self.attempts if attempt is None else attempt
        return min(self.cap, self.base * self.factor**n)

    def next_retry_tick(self, now: int) -> int:
        """Record a failed attempt at tick *now*; returns the tick at
        which to retry."""
        due = now + self.delay()
        self.attempts += 1
        return due

    @property
    def exhausted(self) -> bool:
        return self.attempts >= self.max_attempts
