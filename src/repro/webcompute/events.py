"""Structured event layer for the web-computing stack.

The paper's Section-4 service is observable only through post-hoc ledger
queries; a production-scale deployment needs *live* signals.  This module
is the observability seam threaded through every layer of the refactored
stack: the :class:`~repro.webcompute.engine.AllocationEngine` publishes
registration / issue / departure events, the
:class:`~repro.webcompute.ledger.AccountabilityLedger` publishes return and
ban events, the :class:`~repro.webcompute.frontend.FrontEnd` publishes row
seating / recycling events, and the
:class:`~repro.webcompute.sharding.ShardedWBCServer` re-publishes every
shard's stream onto one global bus with the shard id stamped on.

Design constraints:

* **Typed** -- each event is a frozen dataclass; subscribers filter by
  class, not by string tags, so a typo is an ``AttributeError`` at test
  time rather than a silently-empty dashboard.
* **Synchronous and deterministic** -- ``publish`` runs handlers inline in
  subscription order.  The simulation's reproducibility guarantee (one
  seed, one history) extends to the event stream.
* **Zero-cost when unobserved** -- a bus with no subscribers is two
  attribute loads and a truth test per event site.

>>> bus = EventBus()
>>> counters = EventCounters.attach(bus)
>>> bus.publish(TaskIssued(tick=3, volunteer_id=1, task_index=7, row=1, serial=4))
>>> counters.count(TaskIssued)
1
>>> counters.tick_span(TaskIssued)
(3, 3)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Union

__all__ = [
    "VolunteerRegistered",
    "TaskIssued",
    "TaskReissued",
    "ResultReturned",
    "VolunteerBanned",
    "VolunteerDeparted",
    "VolunteerCorrupted",
    "RowSeated",
    "RowRecycled",
    "ShardCrashed",
    "ShardRestoring",
    "ShardRestored",
    "CheckpointTaken",
    "ReturnDropped",
    "ReturnDelayed",
    "WBCEvent",
    "EventBus",
    "EventCounters",
    "EventLog",
]


@dataclass(frozen=True, slots=True)
class VolunteerRegistered:
    """A volunteer was admitted and seated on a row."""

    tick: int
    volunteer_id: int
    row: int
    start_serial: int
    speed: float
    shard: int | None = None


@dataclass(frozen=True, slots=True)
class TaskIssued:
    """A task index was handed out.  ``task_index`` is the index the
    volunteer sees (globally composed under sharding); ``row``/``serial``
    are the allocation coordinates behind it."""

    tick: int
    volunteer_id: int
    task_index: int
    row: int
    serial: int
    shard: int | None = None


@dataclass(frozen=True, slots=True)
class ResultReturned:
    """A result came back.  ``bad`` is ground truth (the simulation's
    oracle view); ``verified`` says whether the sampled spot-check ran."""

    tick: int
    volunteer_id: int
    task_index: int
    bad: bool
    verified: bool
    shard: int | None = None


@dataclass(frozen=True, slots=True)
class VolunteerBanned:
    """The strike policy banned a volunteer."""

    tick: int
    volunteer_id: int
    strikes: int
    shard: int | None = None


@dataclass(frozen=True, slots=True)
class VolunteerDeparted:
    """A volunteer left (or was ejected).  ``banned`` distinguishes the
    ejection of a banned volunteer from a voluntary departure;
    ``resume_serial`` is where the row's successor will continue."""

    tick: int
    volunteer_id: int
    row: int
    resume_serial: int
    banned: bool
    shard: int | None = None


@dataclass(frozen=True, slots=True)
class RowSeated:
    """Front-end level: a row went to a tenant (``recycled`` when the row
    had a previous tenure)."""

    tick: int
    row: int
    volunteer_id: int
    start_serial: int
    recycled: bool
    shard: int | None = None


@dataclass(frozen=True, slots=True)
class RowRecycled:
    """Front-end level: a row returned to the free pool."""

    tick: int
    row: int
    resume_serial: int
    shard: int | None = None


@dataclass(frozen=True, slots=True)
class TaskReissued:
    """A task whose lease expired was handed to a new volunteer.  The
    task *index* is unchanged -- ``T^-1`` attribution keeps naming
    ``from_volunteer`` (the original assignee if this is the first
    reissue); ``to_volunteer`` is merely allowed to return the result."""

    tick: int
    task_index: int
    from_volunteer: int
    to_volunteer: int
    row: int
    serial: int
    shard: int | None = None


@dataclass(frozen=True, slots=True)
class VolunteerCorrupted:
    """A fault injector flipped a volunteer's behavior mid-run (an honest
    machine going bad); the ledger's report-only oracle tag is updated so
    a subsequent ban is not miscounted as a false positive."""

    tick: int
    volunteer_id: int
    error_rate: float
    shard: int | None = None


@dataclass(frozen=True, slots=True)
class ShardCrashed:
    """An engine shard lost its in-memory state.  ``pending_ops`` is the
    length of the durable op journal since the last checkpoint -- the
    replay work a restore will have to do."""

    tick: int
    shard: int | None = None
    pending_ops: int = 0


@dataclass(frozen=True, slots=True)
class ShardRestoring:
    """A crashed shard began a streaming restore: it serves registrations
    (degraded) while checkpoint segments and journal replay in the
    background; everything else raises transient ``ShardDownError`` until
    :class:`ShardRestored` follows."""

    tick: int
    shard: int | None = None
    segments: int = 0
    pending_ops: int = 0


@dataclass(frozen=True, slots=True)
class ShardRestored:
    """A crashed shard was rebuilt from its latest checkpoint plus a
    deterministic replay of the journaled operations."""

    tick: int
    shard: int | None = None
    checkpoint_tick: int = 0
    replayed_ops: int = 0


@dataclass(frozen=True, slots=True)
class CheckpointTaken:
    """A shard's state was checkpointed (journal truncated):
    ``incremental`` distinguishes a delta segment appended to the log
    from a full base checkpoint (compaction)."""

    tick: int
    shard: int | None = None
    tasks_issued: int = 0
    incremental: bool = False


@dataclass(frozen=True, slots=True)
class ReturnDropped:
    """A fault injector dropped a volunteer's return in flight; the task
    stays issued and its lease will eventually expire."""

    tick: int
    volunteer_id: int
    task_index: int
    shard: int | None = None


@dataclass(frozen=True, slots=True)
class ReturnDelayed:
    """A fault injector delayed a return by ``delay`` ticks; it may race
    a lease expiry and arrive as a late return."""

    tick: int
    volunteer_id: int
    task_index: int
    delay: int
    shard: int | None = None


WBCEvent = Union[
    VolunteerRegistered,
    TaskIssued,
    TaskReissued,
    ResultReturned,
    VolunteerBanned,
    VolunteerDeparted,
    VolunteerCorrupted,
    RowSeated,
    RowRecycled,
    ShardCrashed,
    ShardRestoring,
    ShardRestored,
    CheckpointTaken,
    ReturnDropped,
    ReturnDelayed,
]

EVENT_TYPES: tuple[type, ...] = (
    VolunteerRegistered,
    TaskIssued,
    TaskReissued,
    ResultReturned,
    VolunteerBanned,
    VolunteerDeparted,
    VolunteerCorrupted,
    RowSeated,
    RowRecycled,
    ShardCrashed,
    ShardRestoring,
    ShardRestored,
    CheckpointTaken,
    ReturnDropped,
    ReturnDelayed,
)


class EventBus:
    """Synchronous publish/subscribe fan-out for :data:`WBCEvent` streams.

    ``clock`` is an optional zero-argument callable giving the current
    tick; components without their own clock (the front end) stamp events
    with :meth:`now`.
    """

    def __init__(self, clock: Callable[[], int] | None = None) -> None:
        self._clock = clock
        self._handlers: list[tuple[tuple[type, ...] | None, Callable[[WBCEvent], None]]] = []

    def now(self) -> int:
        """The current tick per the bus's clock source (0 without one)."""
        return self._clock() if self._clock is not None else 0

    def set_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock

    def subscribe(
        self,
        handler: Callable[[WBCEvent], None],
        event_types: Iterable[type] | None = None,
    ) -> Callable[[], None]:
        """Register *handler*; restrict to *event_types* when given.
        Returns an unsubscribe callable."""
        types = tuple(event_types) if event_types is not None else None
        entry = (types, handler)
        self._handlers.append(entry)

        def unsubscribe() -> None:
            try:
                self._handlers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, event: WBCEvent) -> None:
        """Deliver *event* to every matching subscriber, in order."""
        for types, handler in list(self._handlers):
            if types is None or isinstance(event, types):
                handler(event)

    def forward_to(self, target: "EventBus", shard: int | None = None) -> Callable[[], None]:
        """Re-publish this bus's stream onto *target*, stamping ``shard``
        on each event (the sharded router's aggregation hook)."""

        def relay(event: WBCEvent) -> None:
            if shard is not None and event.shard is None:
                event = replace(event, shard=shard)
            target.publish(event)

        return self.subscribe(relay)

    def republish(self, event: WBCEvent, shard: int | None = None) -> None:
        """Publish an event that was *already stamped* with its tick by an
        upstream bus, tagging ``shard`` when the event carries none.  The
        parallel router's aggregation hook: worker-side engine buses stamp
        ticks at publish time, the parent re-publishes the shipped events
        here so global subscribers see one stream either way."""
        if shard is not None and event.shard is None:
            event = replace(event, shard=shard)
        self.publish(event)

    @property
    def subscriber_count(self) -> int:
        return len(self._handlers)


class EventCounters:
    """Live per-type counters with tick timings.

    Tracks, for every event type seen: the total count and the first /
    last tick it occurred on.  ``per_tick_rate`` turns that into an
    events-per-tick throughput figure -- the live twin of the post-hoc
    :mod:`~repro.webcompute.metrics` forensics.
    """

    def __init__(self) -> None:
        self._counts: dict[type, int] = {}
        self._first_tick: dict[type, int] = {}
        self._last_tick: dict[type, int] = {}

    @classmethod
    def attach(cls, bus: EventBus) -> "EventCounters":
        counters = cls()
        bus.subscribe(counters.observe)
        return counters

    def observe(self, event: WBCEvent) -> None:
        etype = type(event)
        self._counts[etype] = self._counts.get(etype, 0) + 1
        if etype not in self._first_tick:
            self._first_tick[etype] = event.tick
        self._last_tick[etype] = event.tick

    # ------------------------------------------------------------------

    def count(self, event_type: type) -> int:
        return self._counts.get(event_type, 0)

    def tick_span(self, event_type: type) -> tuple[int, int] | None:
        """(first, last) tick the type occurred on; None if never seen."""
        if event_type not in self._first_tick:
            return None
        return (self._first_tick[event_type], self._last_tick[event_type])

    def per_tick_rate(self, event_type: type) -> float:
        """Mean events per tick over the type's active span."""
        span = self.tick_span(event_type)
        if span is None:
            return 0.0
        first, last = span
        return self.count(event_type) / (last - first + 1)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def summary(self) -> dict[str, dict[str, int | float]]:
        """JSON-able dump: per event-type count, tick span, and rate."""
        out: dict[str, dict[str, int | float]] = {}
        for etype, n in sorted(self._counts.items(), key=lambda kv: kv[0].__name__):
            first, last = self._first_tick[etype], self._last_tick[etype]
            out[etype.__name__] = {
                "count": n,
                "first_tick": first,
                "last_tick": last,
                "per_tick_rate": self.per_tick_rate(etype),
            }
        return out


class EventLog:
    """Bounded capture of the raw event stream (newest last).

    >>> bus = EventBus()
    >>> log = EventLog.attach(bus, maxlen=2)
    >>> for t in (1, 2, 3):
    ...     bus.publish(VolunteerBanned(tick=t, volunteer_id=t, strikes=2))
    >>> [e.tick for e in log.events]
    [2, 3]
    """

    def __init__(self, maxlen: int | None = None) -> None:
        self._events: deque[WBCEvent] = deque(maxlen=maxlen)

    @classmethod
    def attach(
        cls,
        bus: EventBus,
        maxlen: int | None = None,
        event_types: Iterable[type] | None = None,
    ) -> "EventLog":
        log = cls(maxlen=maxlen)
        bus.subscribe(log.record, event_types)
        return log

    def record(self, event: WBCEvent) -> None:
        """Append one event (the subscription handler)."""
        self._events.append(event)

    @property
    def events(self) -> list[WBCEvent]:
        return list(self._events)

    def of_type(self, event_type: type) -> list[WBCEvent]:
        return [e for e in self._events if isinstance(e, event_type)]

    def __len__(self) -> int:
        return len(self._events)
