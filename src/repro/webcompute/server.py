"""The WBC server: a thin service facade over one
:class:`~repro.webcompute.engine.AllocationEngine`.

This is the component a project head would actually run.  The cycle
(Section 4): volunteers register; each visit hands the volunteer the next
task on its row (one add on the cached contract); returns are recorded,
sample-verified, and attributed; errant volunteers are banned; departures
recycle rows through the front end with epoch bookkeeping so attribution
survives reassignment.

The allocation/attribution logic lives in the engine; the facade pins the
single-server configuration (identity index codec, one engine, one event
bus) and keeps the historical public surface (``.allocator``,
``.frontend``, ``.ledger``) stable.  For the horizontally-scaled variant
see :class:`~repro.webcompute.sharding.ShardedWBCServer`, which runs many
engines behind the same protocol.

The server is deliberately synchronous and deterministic -- the
:mod:`~repro.webcompute.simulation` module drives it with simulated
volunteers and a seeded clock.
"""

from __future__ import annotations

from repro.apf.base import AdditivePairingFunction
from repro.webcompute.engine import AllocationEngine
from repro.webcompute.events import EventBus
from repro.webcompute.frontend import FrontEnd
from repro.webcompute.ledger import AccountabilityLedger, LedgerReport
from repro.webcompute.allocator import TaskAllocator
from repro.webcompute.task import Task
from repro.webcompute.volunteer import VolunteerProfile

__all__ = ["WBCServer"]


class WBCServer:
    """An accountable web-computing server over an additive PF.

    >>> from repro.apf.families import TSharp
    >>> server = WBCServer(TSharp())
    >>> vid = server.register(VolunteerProfile("alice", speed=2.0))
    >>> task = server.request_task(vid)
    >>> server.submit_result(vid, task.index, task.expected_result)
    >>> server.ledger.record_of(vid).returned
    1
    """

    def __init__(
        self,
        apf: AdditivePairingFunction,
        verification_rate: float = 0.1,
        ban_after_strikes: int = 2,
        seed: int = 0,
        lease_ticks: int | None = None,
    ) -> None:
        self.engine = AllocationEngine(
            apf,
            verification_rate=verification_rate,
            ban_after_strikes=ban_after_strikes,
            seed=seed,
            lease_ticks=lease_ticks,
        )

    # -- component views (stable public surface) -----------------------

    @property
    def allocator(self) -> TaskAllocator:
        return self.engine.allocator

    @property
    def frontend(self) -> FrontEnd:
        return self.engine.frontend

    @property
    def ledger(self) -> AccountabilityLedger:
        return self.engine.ledger

    @property
    def bus(self) -> EventBus:
        """The structured event stream (see :mod:`repro.webcompute.events`)."""
        return self.engine.bus

    # ------------------------------------------------------------------

    @property
    def clock(self) -> int:
        return self.engine.clock

    def tick(self) -> int:
        """Advance the server clock by one tick (the simulation's driver)."""
        return self.engine.tick()

    @property
    def max_task_index(self) -> int:
        """Largest task index ever issued: the memory-footprint metric the
        paper's APF-compactness discussion optimizes.  Tracked across
        departures (unlike the allocator's live view)."""
        return self.engine.max_task_index

    @property
    def apf_name(self) -> str:
        return self.engine.apf_name

    # ------------------------------------------------------------------

    def register(self, profile: VolunteerProfile) -> int:
        """Admit one volunteer; returns its id.  Registration computes and
        caches the row contract -- the only APF evaluation this volunteer
        ever costs the server."""
        return self.engine.register(profile)

    def register_round(self, profiles: list[VolunteerProfile]) -> list[int]:
        """Admit a batch; within the round, faster declared speeds receive
        smaller rows (smaller rows = smaller strides = denser task
        indices)."""
        return self.engine.register_round(profiles)

    def depart(self, volunteer_id: int) -> None:
        """Volunteer leaves; its row is recycled (successor resumes from the
        first unissued serial, so no task index is ever double-issued)."""
        self.engine.depart(volunteer_id)

    # ------------------------------------------------------------------

    def request_task(self, volunteer_id: int) -> Task:
        """Hand *volunteer_id* its next task."""
        return self.engine.request_task(volunteer_id)

    def submit_result(self, volunteer_id: int, task_index: int, result: int) -> None:
        """Accept a result.  The submitted task must attribute (via the APF
        inverse + epochs) to the submitting volunteer -- a mismatch is the
        accountability scheme catching a forged submission."""
        self.engine.submit_result(volunteer_id, task_index, result)

    def reap_expired(self) -> list[Task]:
        """Reissue expired-lease tasks to idle volunteers (see
        :meth:`~repro.webcompute.engine.AllocationEngine.reap_expired`)."""
        return self.engine.reap_expired()

    def mark_corrupted(self, volunteer_id: int, error_rate: float) -> VolunteerProfile:
        """Flip a volunteer malicious mid-run (the fault injector's hook)."""
        return self.engine.mark_corrupted(volunteer_id, error_rate)

    def attribute(self, task_index: int) -> int:
        """Who is responsible for *task_index*?  ``T^-1`` then epochs."""
        return self.engine.attribute(task_index)

    # ------------------------------------------------------------------

    def profile_of(self, volunteer_id: int) -> VolunteerProfile:
        return self.engine.profile_of(volunteer_id)

    def is_banned(self, volunteer_id: int) -> bool:
        return self.engine.is_banned(volunteer_id)

    def report(self) -> LedgerReport:
        return self.engine.report()

    def __repr__(self) -> str:
        return (
            f"<WBCServer apf={self.engine.apf_name} "
            f"seated={self.engine.seated_count} "
            f"max_task_index={self.engine.max_task_index}>"
        )
