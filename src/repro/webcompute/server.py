"""The WBC server: allocator + front end + ledger, glued.

This is the component a project head would actually run.  The cycle
(Section 4): volunteers register; each visit hands the volunteer the next
task on its row (one add on the cached contract); returns are recorded,
sample-verified, and attributed; errant volunteers are banned; departures
recycle rows through the front end with epoch bookkeeping so attribution
survives reassignment.

The server is deliberately synchronous and deterministic -- the
:mod:`~repro.webcompute.simulation` module drives it with simulated
volunteers and a seeded clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apf.base import AdditivePairingFunction
from repro.errors import AllocationError, DomainError
from repro.webcompute.allocator import TaskAllocator
from repro.webcompute.frontend import FrontEnd
from repro.webcompute.ledger import AccountabilityLedger, LedgerReport
from repro.webcompute.task import Task
from repro.webcompute.volunteer import VolunteerProfile

__all__ = ["WBCServer"]


class WBCServer:
    """An accountable web-computing server over an additive PF.

    >>> from repro.apf.families import TSharp
    >>> server = WBCServer(TSharp())
    >>> vid = server.register(VolunteerProfile("alice", speed=2.0))
    >>> task = server.request_task(vid)
    >>> server.submit_result(vid, task.index, task.expected_result)
    >>> server.ledger.record_of(vid).returned
    1
    """

    def __init__(
        self,
        apf: AdditivePairingFunction,
        verification_rate: float = 0.1,
        ban_after_strikes: int = 2,
        seed: int = 0,
    ) -> None:
        self.allocator = TaskAllocator(apf)
        self.frontend = FrontEnd()
        self.ledger = AccountabilityLedger(
            verification_rate=verification_rate,
            ban_after_strikes=ban_after_strikes,
            rng=random.Random(seed),
        )
        self._profiles: dict[int, VolunteerProfile] = {}
        self._next_volunteer_id = 1
        self._clock = 0
        self._max_task_index = 0

    # ------------------------------------------------------------------

    @property
    def clock(self) -> int:
        return self._clock

    def tick(self) -> int:
        """Advance the server clock by one tick (the simulation's driver)."""
        self._clock += 1
        return self._clock

    @property
    def max_task_index(self) -> int:
        """Largest task index ever issued: the memory-footprint metric the
        paper's APF-compactness discussion optimizes.  Tracked across
        departures (unlike the allocator's live view)."""
        return self._max_task_index

    # ------------------------------------------------------------------

    def register(self, profile: VolunteerProfile) -> int:
        """Admit one volunteer; returns its id.  Registration computes and
        caches the row contract -- the only APF evaluation this volunteer
        ever costs the server."""
        return self.register_round([profile])[0]

    def register_round(self, profiles: list[VolunteerProfile]) -> list[int]:
        """Admit a batch; within the round, faster declared speeds receive
        smaller rows (smaller rows = smaller strides = denser task
        indices)."""
        ids = []
        arrivals = []
        for profile in profiles:
            vid = self._next_volunteer_id
            self._next_volunteer_id += 1
            self._profiles[vid] = profile
            if not profile.is_faulty:
                self.ledger.note_honest(vid)
            ids.append(vid)
            arrivals.append((vid, profile.speed))
        assignments = self.frontend.admit(arrivals)
        self.allocator.register_rows(
            [(a.row, a.start_serial) for a in assignments]
        )
        return ids

    def depart(self, volunteer_id: int) -> None:
        """Volunteer leaves; its row is recycled (successor resumes from the
        first unissued serial, so no task index is ever double-issued).

        Raises :class:`~repro.errors.AllocationError` for an unknown (never
        registered) volunteer id -- same contract as :meth:`request_task` --
        and for a volunteer that already departed."""
        if volunteer_id not in self._profiles:
            raise AllocationError(f"unknown volunteer {volunteer_id}")
        row = self.frontend.depart(volunteer_id)
        self.allocator.release_row(row)

    # ------------------------------------------------------------------

    def request_task(self, volunteer_id: int) -> Task:
        """Hand *volunteer_id* its next task."""
        profile = self._profiles.get(volunteer_id)
        if profile is None:
            raise AllocationError(f"unknown volunteer {volunteer_id}")
        if self.ledger.is_banned(volunteer_id):
            raise AllocationError(f"volunteer {volunteer_id} is banned")
        row = self.frontend.row_of(volunteer_id)
        contract = self.allocator.contract(row)
        serial = contract.next_serial
        index = self.allocator.next_task(row)
        self.frontend.note_issued(row, serial)
        task = Task(
            index=index,
            volunteer_id=volunteer_id,
            serial=serial,
            issued_at=self._clock,
        )
        self.ledger.record_issue(task)
        if index > self._max_task_index:
            self._max_task_index = index
        return task

    def submit_result(self, volunteer_id: int, task_index: int, result: int) -> None:
        """Accept a result.  The submitted task must attribute (via the APF
        inverse + epochs) to the submitting volunteer -- a mismatch is the
        accountability scheme catching a forged submission."""
        row, serial = self.allocator.attribute(task_index)
        owner = self.frontend.volunteer_for(row, serial)
        if owner != volunteer_id:
            raise AllocationError(
                f"task {task_index} attributes to volunteer {owner}, "
                f"not {volunteer_id} (forged or misdirected submission)"
            )
        self.ledger.record_return(task_index, result, self._clock)

    def attribute(self, task_index: int) -> int:
        """Who is responsible for *task_index*?  ``T^-1`` then epochs."""
        row, serial = self.allocator.attribute(task_index)
        return self.frontend.volunteer_for(row, serial)

    # ------------------------------------------------------------------

    def profile_of(self, volunteer_id: int) -> VolunteerProfile:
        try:
            return self._profiles[volunteer_id]
        except KeyError:
            raise AllocationError(f"unknown volunteer {volunteer_id}") from None

    def report(self) -> LedgerReport:
        return self.ledger.report()

    def __repr__(self) -> str:
        return (
            f"<WBCServer apf={self.allocator.apf.name} "
            f"seated={self.frontend.seated_count} "
            f"max_task_index={self._max_task_index}>"
        )
