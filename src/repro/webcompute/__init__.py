"""Accountable web computing (Section 4 end to end).

* :mod:`~repro.webcompute.task` -- verifiable work units;
* :mod:`~repro.webcompute.volunteer` -- honest/careless/malicious models;
* :mod:`~repro.webcompute.allocator` -- APF task allocation with cached
  per-row contracts;
* :mod:`~repro.webcompute.frontend` -- dynamic arrivals/departures, speed
  seating, epoch-based attribution across row reassignment;
* :mod:`~repro.webcompute.ledger` -- sampled verification, strikes, bans;
* :mod:`~repro.webcompute.events` -- the typed event bus every state
  transition publishes on (the observability layer);
* :mod:`~repro.webcompute.engine` -- the allocation/attribution core
  (allocator + front end + ledger behind a narrow interface);
* :mod:`~repro.webcompute.server` -- the single-engine service facade;
* :mod:`~repro.webcompute.sharding` -- S engine shards behind one global
  index space composed with the square-shell pairing function;
* :mod:`~repro.webcompute.simulation` -- seeded project runs, APF-family
  and shard-scaling comparisons;
* :mod:`~repro.webcompute.replication` -- the majority-vote replication
  baseline the accountability scheme is cheaper than;
* :mod:`~repro.webcompute.persistence` -- JSON snapshot/restore of the
  full server state ("stored for subsequent appearances");
* :mod:`~repro.webcompute.recovery` -- shard checkpoints, op journals,
  deterministic replay, and retry backoff (crash tolerance);
* :mod:`~repro.webcompute.faults` -- the seeded fault injector and the
  ``--faults`` spec grammar (chaos harness);
* :mod:`~repro.webcompute.shardworker` -- the worker-process side of the
  parallel execution mode (``ShardedWBCServer(workers=N)``).
"""

from __future__ import annotations

from repro.webcompute.task import Task, TaskStatus, correct_result
from repro.webcompute.volunteer import Behavior, VolunteerProfile
from repro.webcompute.allocator import RowContract, TaskAllocator
from repro.webcompute.frontend import Epoch, FrontEnd, RowAssignment
from repro.webcompute.ledger import (
    AccountabilityLedger,
    LedgerReport,
    VolunteerRecord,
)
from repro.webcompute.events import (
    CheckpointTaken,
    EventBus,
    EventCounters,
    EventLog,
    ResultReturned,
    ReturnDelayed,
    ReturnDropped,
    RowRecycled,
    RowSeated,
    ShardCrashed,
    ShardRestored,
    ShardRestoring,
    TaskIssued,
    TaskReissued,
    VolunteerBanned,
    VolunteerCorrupted,
    VolunteerDeparted,
    VolunteerRegistered,
)
from repro.webcompute.engine import AllocationEngine, IndexCodec
from repro.webcompute.faults import FaultInjector, FaultSpec, ReturnFate, ScheduledFault
from repro.webcompute.recovery import (
    Backoff,
    CheckpointStore,
    ShardCheckpoint,
    apply_op,
    replay,
)
from repro.webcompute.replication import ReplicationOutcome, ReplicationSimulation
from repro.webcompute.metrics import (
    AccountabilityMetrics,
    VolunteerForensics,
    compute_metrics,
    live_summary,
    volunteer_forensics,
)
from repro.webcompute.persistence import dumps, loads, restore, snapshot
from repro.webcompute.server import WBCServer
from repro.webcompute.shardworker import EngineSpec, WorkerDiedError, WorkerHandle
from repro.webcompute.sharding import (
    AttributionPath,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    ShardPolicy,
    ShardedWBCServer,
)
from repro.webcompute.simulation import (
    SimulationConfig,
    SimulationOutcome,
    WBCSimulation,
    run_family_comparison,
    run_shard_comparison,
)

__all__ = [
    "Task",
    "TaskStatus",
    "correct_result",
    "Behavior",
    "VolunteerProfile",
    "RowContract",
    "TaskAllocator",
    "Epoch",
    "FrontEnd",
    "RowAssignment",
    "AccountabilityLedger",
    "LedgerReport",
    "VolunteerRecord",
    "EventBus",
    "EventCounters",
    "EventLog",
    "VolunteerRegistered",
    "TaskIssued",
    "TaskReissued",
    "ResultReturned",
    "VolunteerBanned",
    "VolunteerDeparted",
    "VolunteerCorrupted",
    "RowSeated",
    "RowRecycled",
    "ShardCrashed",
    "ShardRestoring",
    "ShardRestored",
    "CheckpointTaken",
    "ReturnDropped",
    "ReturnDelayed",
    "AllocationEngine",
    "IndexCodec",
    "FaultSpec",
    "FaultInjector",
    "ScheduledFault",
    "ReturnFate",
    "Backoff",
    "CheckpointStore",
    "ShardCheckpoint",
    "apply_op",
    "replay",
    "WBCServer",
    "EngineSpec",
    "WorkerDiedError",
    "WorkerHandle",
    "ShardedWBCServer",
    "ShardPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "AttributionPath",
    "snapshot",
    "AccountabilityMetrics",
    "VolunteerForensics",
    "compute_metrics",
    "volunteer_forensics",
    "live_summary",
    "restore",
    "dumps",
    "loads",
    "ReplicationOutcome",
    "ReplicationSimulation",
    "SimulationConfig",
    "SimulationOutcome",
    "WBCSimulation",
    "run_family_comparison",
    "run_shard_comparison",
]
