"""The task-allocation function wrapper (Section 4).

The paper's scheme: index tasks, volunteers, and per-volunteer serials by
positive integers and link them with a PF ``T`` -- "the t-th task that
volunteer v receives to compute is task T(v, t)".  Practicality demands
that ``T``, its inverse ``T^-1``, and the successor gap all be easy to
compute, which is why the scheme centers on *additive* PFs.

:class:`TaskAllocator` realizes the system-level point the paper makes
explicitly: "a volunteer's stride need be computed only when s/he registers
at the website and can be stored for subsequent appearances."  Rows are
registered once, yielding a cached
:class:`~repro.numbertheory.progressions.ArithmeticProgression` contract;
subsequent allocations are one add.  ``attribute`` inverts any task index
back to ``(row, serial)`` -- the accountability primitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.apf.base import AdditivePairingFunction
from repro.errors import AllocationError, ConfigurationError, DomainError
from repro.numbertheory.progressions import ArithmeticProgression

__all__ = ["RowContract", "TaskAllocator"]


@dataclass(slots=True)
class RowContract:
    """Cached per-row allocation state: the stored ``(B_v, S_v)`` pair plus
    the next serial to hand out."""

    row: int
    progression: ArithmeticProgression
    next_serial: int = 1

    @property
    def base(self) -> int:
        return self.progression.base

    @property
    def stride(self) -> int:
        return self.progression.stride

    def issued_count(self) -> int:
        return self.next_serial - 1


class TaskAllocator:
    """Allocates global task indices along APF rows.

    >>> from repro.apf.families import TSharp
    >>> alloc = TaskAllocator(TSharp())
    >>> contract = alloc.register_row(3)
    >>> (contract.base, contract.stride)
    (6, 8)
    >>> alloc.next_task(3), alloc.next_task(3)
    (6, 14)
    >>> alloc.attribute(14)
    (3, 2)
    """

    def __init__(
        self,
        apf: AdditivePairingFunction,
        clock: Callable[[], int] | None = None,
    ) -> None:
        if not isinstance(apf, AdditivePairingFunction):
            raise ConfigurationError(
                f"allocator needs an AdditivePairingFunction, got {type(apf).__name__}"
            )
        # reprolint: allow[R003] the APF is configuration, not run state;
        # restore_state requires a same-APF instance (checked by name)
        self.apf = apf
        # on construction; delta bookkeeping is rebuilt by restore_state
        self._clock_fn = clock if clock is not None else (lambda: 0)
        self._contracts: dict[int, RowContract] = {}
        # Delta-protocol dirty tracking: tick of each row's last mutation
        # (registration or serial advance) vs. tick of its release.  The two
        # maps are kept disjoint so applying a delta is order-free: a row is
        # either upserted or removed, never both.
        self._changed_at: dict[int, int] = {}
        self._released_at: dict[int, int] = {}

    # ------------------------------------------------------------------

    def register_row(self, row: int, start_serial: int = 1) -> RowContract:
        """Compute and cache row *row*'s base and stride (the registration-
        time work).  ``start_serial`` supports row reassignment: a successor
        volunteer taking over a departed row continues from the first
        unissued serial."""
        if isinstance(row, bool) or not isinstance(row, int) or row <= 0:
            raise DomainError(f"row must be a positive int, got {row!r}")
        if row in self._contracts:
            raise AllocationError(f"row {row} is already registered")
        if isinstance(start_serial, bool) or not isinstance(start_serial, int) or start_serial <= 0:
            raise DomainError(f"start_serial must be a positive int, got {start_serial!r}")
        contract = RowContract(
            row=row,
            progression=self.apf.progression(row),
            next_serial=start_serial,
        )
        self._contracts[row] = contract
        self._changed_at[row] = self._clock_fn()
        self._released_at.pop(row, None)
        return contract

    def register_rows(
        self, assignments: list[tuple[int, int]]
    ) -> list[RowContract]:
        """Batch registration: one ``(row, start_serial)`` pair per incoming
        volunteer of an admission round.

        All-or-nothing: the whole batch is validated (domains, duplicates
        within the batch, collisions with already-registered rows) before
        any contract is cached, so a bad entry mid-round cannot leave the
        allocator half-registered.

        >>> from repro.apf.families import TSharp
        >>> alloc = TaskAllocator(TSharp())
        >>> [c.row for c in alloc.register_rows([(1, 1), (2, 1)])]
        [1, 2]
        """
        pairs = list(assignments)
        seen: set[int] = set()
        for row, start_serial in pairs:
            if isinstance(row, bool) or not isinstance(row, int) or row <= 0:
                raise DomainError(f"row must be a positive int, got {row!r}")
            if (
                isinstance(start_serial, bool)
                or not isinstance(start_serial, int)
                or start_serial <= 0
            ):
                raise DomainError(
                    f"start_serial must be a positive int, got {start_serial!r}"
                )
            if row in self._contracts:
                raise AllocationError(f"row {row} is already registered")
            if row in seen:
                raise AllocationError(f"row {row} appears twice in one batch")
            seen.add(row)
        contracts = [
            RowContract(
                row=row,
                progression=self.apf.progression(row),
                next_serial=start_serial,
            )
            for row, start_serial in pairs
        ]
        now = self._clock_fn()
        for contract in contracts:
            self._contracts[contract.row] = contract
            self._changed_at[contract.row] = now
            self._released_at.pop(contract.row, None)
        return contracts

    def release_row(self, row: int) -> int:
        """Unregister *row* (volunteer departure); returns the next unissued
        serial so a successor can resume the row without re-issuing tasks."""
        contract = self._contracts.pop(row, None)
        if contract is None:
            raise AllocationError(f"row {row} is not registered")
        self._changed_at.pop(row, None)
        self._released_at[row] = self._clock_fn()
        return contract.next_serial

    def is_registered(self, row: int) -> bool:
        return row in self._contracts

    def contract(self, row: int) -> RowContract:
        try:
            return self._contracts[row]
        except KeyError:
            raise AllocationError(f"row {row} is not registered") from None

    # ------------------------------------------------------------------

    def next_task(self, row: int) -> int:
        """The next global task index for *row*: one add on the cached
        contract (no APF evaluation after registration)."""
        contract = self.contract(row)
        index = contract.progression.term(contract.next_serial)
        contract.next_serial += 1
        self._changed_at[row] = self._clock_fn()
        return index

    def peek_task(self, row: int, serial: int) -> int:
        """``T(row, serial)`` without consuming the serial."""
        return self.contract(row).progression.term(serial)

    def attribute(self, task_index: int) -> tuple[int, int]:
        """Invert the allocation: which ``(row, serial)`` does *task_index*
        belong to?  Pure APF inverse -- works even for rows never registered
        here, which is what makes post-hoc auditing possible."""
        if isinstance(task_index, bool) or not isinstance(task_index, int) or task_index <= 0:
            raise DomainError(f"task_index must be a positive int, got {task_index!r}")
        return self.apf.unpair(task_index)

    # ------------------------------------------------------------------

    @property
    def registered_rows(self) -> list[int]:
        return sorted(self._contracts)

    # -- snapshot / restore state (the persistence seam) ---------------

    def snapshot_state(self) -> list[list[int]]:
        """Every live contract as a compact JSON-able row
        ``[row, base, stride, next_serial]``, sorted by row.  (Per-field
        dicts were the v1 format; :meth:`restore_state` accepts both.)"""
        return [
            [c.row, c.base, c.stride, c.next_serial]
            for c in (self._contracts[row] for row in sorted(self._contracts))
        ]

    def snapshot_delta(self, since_tick: int) -> dict[str, Any]:
        """Rows mutated at or after *since_tick*, plus rows released since
        then.  ``>=`` (not ``>``) keeps a torn tick safe: re-shipping an
        unchanged row is harmless because :meth:`apply_delta` upserts."""
        return {
            "rows": [
                [c.row, c.base, c.stride, c.next_serial]
                for c in (
                    self._contracts[row]
                    for row in sorted(self._contracts)
                    if self._changed_at.get(row, since_tick) >= since_tick
                )
            ],
            "released": sorted(
                row for row, t in self._released_at.items() if t >= since_tick
            ),
        }

    def apply_delta(self, delta: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot_delta` dict into live state.  Upsert-only
        on the ``rows`` side and remove-only on the ``released`` side, so
        applying the same delta twice is a no-op."""
        now = self._clock_fn()
        for row in delta["released"]:
            self._contracts.pop(row, None)
            self._changed_at.pop(row, None)
            self._released_at[row] = now
        for row, base, stride, next_serial in delta["rows"]:
            self._contracts[row] = RowContract(
                row=row,
                progression=ArithmeticProgression(base, stride),
                next_serial=next_serial,
            )
            self._changed_at[row] = now
            self._released_at.pop(row, None)

    def restore_state(self, contracts: list[Any]) -> None:
        """Rebuild the contract cache from a :meth:`snapshot_state` list
        (stored bases/strides are trusted, not recomputed -- restoring must
        not re-pay the registration-time APF evaluations).  Accepts both the
        compact ``[row, base, stride, next_serial]`` rows and the v1
        per-field dicts."""
        self._contracts = {}
        for c in contracts:
            if isinstance(c, dict):
                row, base, stride, nxt = c["row"], c["base"], c["stride"], c["next_serial"]
            else:
                row, base, stride, nxt = c
            self._contracts[row] = RowContract(
                row=row,
                progression=ArithmeticProgression(base, stride),
                next_serial=nxt,
            )
        # Conservatively mark everything dirty at the restored clock: the
        # first post-restore delta over-includes, later ones are incremental.
        now = self._clock_fn()
        self._changed_at = {row: now for row in self._contracts}
        self._released_at = {}

    def max_issued_index(self) -> int:
        """The largest task index issued so far -- the memory-footprint
        proxy the paper's compactness discussion is about."""
        best = 0
        for contract in self._contracts.values():
            if contract.next_serial > 1:
                best = max(best, contract.progression.term(contract.next_serial - 1))
        return best
