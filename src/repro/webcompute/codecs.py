"""Named PF-backed index codecs for the sharded service.

A *codec* here is a composer: a true
:class:`~repro.core.base.PairingFunction` that folds
``(shard_no, local_index)`` into one global task index (and back, for
attribution).  :class:`~repro.webcompute.sharding.ShardedWBCServer`
accepts either a ``composer`` instance or -- through this registry -- a
``codec`` *name*, which is what the CLI (``wbc --codec``) and
:class:`~repro.webcompute.simulation.SimulationConfig` plumb through.

Not every registered mapping qualifies: a composer must be a bijection
(``attribute`` must be total on whatever integers clients hand back, so
injective-only storage mappings are out), and the additive PFs are out
too -- their whole design charges exponential stride growth against the
*row* coordinate, which here is the shard number.  The registry is
therefore an explicit allowlist over the shell-walking families, plus
the parameterized ``binprop-B`` ratios resolved through the core
registry.

The interesting tradeoff (measured by the ``codec_shootout`` benchmark
scenario): square shells charge ``~max(S, local)**2`` global addresses,
while a binary-proportional composer with ratio ``b`` charges
``~local**2 / b`` once ``local`` dominates -- ``log2(b)`` bits of index
width won back for the common few-shards/many-tasks workload.
"""

from __future__ import annotations

from repro.core.base import PairingFunction
from repro.core.registry import get_pairing
from repro.errors import ConfigurationError

__all__ = ["DEFAULT_CODEC", "available_codecs", "composer_for"]

#: The codec ``ShardedWBCServer`` uses when none is named: the paper's
#: own square-shell composition, bit-identical to the pre-codec server.
DEFAULT_CODEC = "square-shell"

#: The allowlisted fixed codec names (each resolves through the core
#: registry; every entry is a surjective shell-walking PF with an exact
#: inverse and polynomial growth in both coordinates).
_CODEC_NAMES = (
    "square-shell",
    "square-shell-twin",
    "diagonal",
    "diagonal-twin",
    "szudzik",
    "rosenberg-strong",
    "binprop-2",
    "binprop-4",
    "binprop-16",
)


def available_codecs() -> list[str]:
    """The fixed codec names, sorted (any ``binprop-B`` ratio is also
    accepted by :func:`composer_for`)."""
    return sorted(_CODEC_NAMES)


def composer_for(name: str) -> PairingFunction:
    """Resolve a codec *name* to a fresh composer instance.

    Accepts the fixed allowlist plus any parameterized ``binprop-B``;
    anything else -- including registered mappings that exist but do not
    qualify as composers -- raises
    :class:`~repro.errors.ConfigurationError`.

    >>> composer_for("szudzik").pair(1, 1)
    1
    >>> composer_for("binprop-8").name
    'binprop-8'
    """
    if name not in _CODEC_NAMES and not name.startswith("binprop-"):
        raise ConfigurationError(
            f"unknown index codec {name!r}; known: {', '.join(available_codecs())} "
            "plus parameterized binprop-B"
        )
    composer = get_pairing(name)
    if not isinstance(composer, PairingFunction) or not composer.surjective:
        raise ConfigurationError(
            f"codec {name!r} is not a surjective pairing function"
        )  # pragma: no cover - allowlist guards this
    return composer
