"""The allocation/attribution core of the web-computing service.

:class:`AllocationEngine` is the Section-4 cycle with the service shell
peeled off: allocator (cached APF row contracts) + front end (seating,
recycling, epochs) + ledger (sampled verification, strikes, bans), behind
a narrow public interface.  :class:`~repro.webcompute.server.WBCServer`
is now a thin facade over one engine;
:class:`~repro.webcompute.sharding.ShardedWBCServer` runs several engines
side by side and composes their index spaces with a square-shell pairing
function.

Two seams make the engine shard-able:

* **Index codec** -- every task index leaving the engine passes through
  ``codec.encode`` and every index entering passes through
  ``codec.decode``.  The identity codec (the default) reproduces the
  single-server behavior exactly; a shard's codec is
  ``encode = pair(shard_no, .)`` / ``decode = unpair`` with the
  Rosenberg--Strong square-shell PF, so the *ledger itself* records the
  globally-attributable indices and ground-truth verification stays
  consistent with what volunteers compute.
* **Event bus** -- every state transition publishes a typed event
  (:mod:`~repro.webcompute.events`); the metrics layer and the simulation
  driver subscribe instead of reaching into private state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.apf.base import AdditivePairingFunction
from repro.errors import AllocationError, ConfigurationError
from repro.webcompute.allocator import TaskAllocator
from repro.webcompute.events import (
    EventBus,
    TaskIssued,
    TaskReissued,
    VolunteerCorrupted,
    VolunteerDeparted,
    VolunteerRegistered,
)
from repro.webcompute.frontend import FrontEnd
from repro.webcompute.ledger import AccountabilityLedger, CounterRNG, LedgerReport
from repro.webcompute.task import Task
from repro.webcompute.volunteer import Behavior, VolunteerProfile

__all__ = ["IndexCodec", "IDENTITY_CODEC", "AllocationEngine"]


@dataclass(frozen=True, slots=True)
class IndexCodec:
    """A bijection between the engine's local index space and the index
    space its callers see.  ``decode`` must invert ``encode`` exactly and
    raise :class:`~repro.errors.AllocationError` for indices outside the
    engine's slice of the global space."""

    encode: Callable[[int], int]
    decode: Callable[[int], int]


IDENTITY_CODEC = IndexCodec(encode=lambda index: index, decode=lambda index: index)


class AllocationEngine:
    """The accountable allocation core over one additive PF.

    >>> from repro.apf.families import TSharp
    >>> engine = AllocationEngine(TSharp())
    >>> vid = engine.register(VolunteerProfile("alice", speed=2.0))
    >>> task = engine.request_task(vid)
    >>> engine.submit_result(vid, task.index, task.expected_result)
    >>> engine.ledger.record_of(vid).returned
    1
    """

    def __init__(
        self,
        apf: AdditivePairingFunction,
        verification_rate: float = 0.1,
        ban_after_strikes: int = 2,
        seed: int = 0,
        *,
        codec: IndexCodec | None = None,
        bus: EventBus | None = None,
        lease_ticks: int | None = None,
    ) -> None:
        if lease_ticks is not None and (
            isinstance(lease_ticks, bool)
            or not isinstance(lease_ticks, int)
            or lease_ticks <= 0
        ):
            raise ConfigurationError(
                f"lease_ticks must be a positive int or None, got {lease_ticks!r}"
            )
        self.lease_ticks = lease_ticks
        # reprolint: allow[R003] wiring, not state: the codec is pure and
        # the restore caller passes the same one to the constructor
        self.codec = codec if codec is not None else IDENTITY_CODEC
        # reprolint: allow[R003] the bus is observer plumbing; snapshots
        # capture domain state only, subscribers re-attach after restore
        self.bus = bus if bus is not None else EventBus()
        self.bus.set_clock(lambda: self._clock)
        self.allocator = TaskAllocator(apf, clock=lambda: self._clock)
        self.frontend = FrontEnd(bus=self.bus, clock=lambda: self._clock)
        self.ledger = AccountabilityLedger(
            verification_rate=verification_rate,
            ban_after_strikes=ban_after_strikes,
            rng=CounterRNG(seed),
            bus=self.bus,
            clock=lambda: self._clock,
        )
        self._profiles: dict[int, VolunteerProfile] = {}
        self._profiles_changed: dict[int, int] = {}
        self._next_volunteer_id = 1
        self._clock = 0
        self._max_task_index = 0

    # ------------------------------------------------------------------

    @property
    def apf(self) -> AdditivePairingFunction:
        return self.allocator.apf

    @property
    def apf_name(self) -> str:
        return self.allocator.apf.name

    @property
    def clock(self) -> int:
        return self._clock

    # reprolint: allow[R005] the clock advance is journaled by owning
    # stores, and the bus stamps every event with the clock already
    def tick(self) -> int:
        """Advance the engine clock by one tick."""
        self._clock += 1
        return self._clock

    @property
    def max_task_index(self) -> int:
        """Largest (encoded) task index ever issued: the memory-footprint
        metric the paper's APF-compactness discussion optimizes.  Tracked
        across departures (unlike the allocator's live view)."""
        return self._max_task_index

    @property
    def next_volunteer_id(self) -> int:
        return self._next_volunteer_id

    @property
    def seated_count(self) -> int:
        return self.frontend.seated_count

    # ------------------------------------------------------------------

    def register(self, profile: VolunteerProfile) -> int:
        """Admit one volunteer; returns its id."""
        return self.register_round([profile])[0]

    def validate_round(
        self,
        profiles: list[VolunteerProfile],
        ids: list[int] | None = None,
    ) -> None:
        """The validation half of :meth:`register_round`, with no state
        change: raises :class:`~repro.errors.AllocationError` exactly when
        the same arguments would make :meth:`register_round` raise before
        mutating.  A router seating one logical round across several
        engines calls this on every bucket first, so a rejection cannot
        tear the round -- no engine is touched until all buckets pass."""
        if ids is not None:
            if len(ids) != len(profiles):
                raise AllocationError(
                    f"got {len(ids)} ids for {len(profiles)} profiles"
                )
            for vid in ids:
                if isinstance(vid, bool) or not isinstance(vid, int) or vid <= 0:
                    raise AllocationError(
                        f"volunteer id must be a positive int, got {vid!r}"
                    )
                if vid in self._profiles:
                    raise AllocationError(f"volunteer {vid} is already registered")
            if len(set(ids)) != len(ids):
                raise AllocationError("duplicate volunteer id in one round")

    def register_round(
        self,
        profiles: list[VolunteerProfile],
        ids: list[int] | None = None,
    ) -> list[int]:
        """Admit a batch; within the round, faster declared speeds receive
        smaller rows.  ``ids`` lets a router (the sharded server) assign
        globally-unique volunteer ids; by default the engine mints its own.
        """
        self.validate_round(profiles, ids)
        assigned: list[int] = []
        arrivals = []
        for i, profile in enumerate(profiles):
            if ids is None:
                vid = self._next_volunteer_id
                self._next_volunteer_id += 1
            else:
                vid = ids[i]
                self._next_volunteer_id = max(self._next_volunteer_id, vid + 1)
            self._profiles[vid] = profile
            self._profiles_changed[vid] = self._clock
            if not profile.is_faulty:
                self.ledger.note_honest(vid)
            assigned.append(vid)
            arrivals.append((vid, profile.speed))
        assignments = self.frontend.admit(arrivals)
        self.allocator.register_rows(
            [(a.row, a.start_serial) for a in assignments]
        )
        for vid, profile, assignment in zip(assigned, profiles, assignments):
            self.bus.publish(
                VolunteerRegistered(
                    tick=self._clock,
                    volunteer_id=vid,
                    row=assignment.row,
                    start_serial=assignment.start_serial,
                    speed=profile.speed,
                )
            )
        return assigned

    def depart(self, volunteer_id: int) -> None:
        """Volunteer leaves; its row is recycled (successor resumes from the
        first unissued serial, so no task index is ever double-issued).

        Raises :class:`~repro.errors.AllocationError` for an unknown (never
        registered) volunteer id -- same contract as :meth:`request_task` --
        and for a volunteer that already departed."""
        if volunteer_id not in self._profiles:
            raise AllocationError(f"unknown volunteer {volunteer_id}")
        row = self.frontend.depart(volunteer_id)
        resume = self.allocator.release_row(row)
        self.bus.publish(
            VolunteerDeparted(
                tick=self._clock,
                volunteer_id=volunteer_id,
                row=row,
                resume_serial=resume,
                banned=self.ledger.is_banned(volunteer_id),
            )
        )

    # ------------------------------------------------------------------

    def request_task(self, volunteer_id: int) -> Task:
        """Hand *volunteer_id* its next task (index already encoded into
        the caller-visible space)."""
        profile = self._profiles.get(volunteer_id)
        if profile is None:
            raise AllocationError(f"unknown volunteer {volunteer_id}")
        if self.ledger.is_banned(volunteer_id):
            raise AllocationError(f"volunteer {volunteer_id} is banned")
        row = self.frontend.row_of(volunteer_id)
        contract = self.allocator.contract(row)
        serial = contract.next_serial
        index = self.codec.encode(self.allocator.next_task(row))
        self.frontend.note_issued(row, serial)
        task = Task(
            index=index,
            volunteer_id=volunteer_id,
            serial=serial,
            issued_at=self._clock,
            lease_expires_at=(
                self._clock + self.lease_ticks
                if self.lease_ticks is not None
                else None
            ),
        )
        self.ledger.record_issue(task)
        if index > self._max_task_index:
            self._max_task_index = index
        self.bus.publish(
            TaskIssued(
                tick=self._clock,
                volunteer_id=volunteer_id,
                task_index=index,
                row=row,
                serial=serial,
            )
        )
        return task

    def submit_result(self, volunteer_id: int, task_index: int, result: int) -> None:
        """Accept a result.  The submitted task must attribute (via the APF
        inverse + epochs) to the submitting volunteer -- a mismatch is the
        accountability scheme catching a forged submission.  The one
        sanctioned exception is a lease reissue: the recorded reissue
        target may also return the task, but attribution (and hence
        responsibility for the original serial) still names the original
        assignee."""
        owner = self.attribute(task_index)
        if owner != volunteer_id:
            task = self.ledger.task(task_index)
            if task.reissued_to != volunteer_id:
                raise AllocationError(
                    f"task {task_index} attributes to volunteer {owner}, "
                    f"not {volunteer_id} (forged or misdirected submission)"
                )
        self.ledger.record_return(
            task_index, result, self._clock, submitter=volunteer_id
        )

    def reap_expired(self) -> list[Task]:
        """Reissue every outstanding task whose lease has expired to a new
        volunteer, deterministically: candidates are seated, non-banned
        volunteers with no outstanding assignment, scanned in ascending id
        order; the expired task's current assignee is never re-picked.
        Tasks with no eligible target stay with their current assignee
        (they will be reaped again next time).  Returns the reissued tasks.
        """
        outstanding = self.ledger.outstanding_tasks()
        expired = [t for t in outstanding if t.lease_expired(self._clock)]
        if not expired:
            return []
        busy = {t.current_assignee for t in outstanding}
        reissued: list[Task] = []
        for task in expired:
            previous = task.current_assignee
            target = None
            for vid in self.frontend.seated_volunteers():
                if vid == previous or vid in busy or self.ledger.is_banned(vid):
                    continue
                target = vid
                break
            if target is None:
                continue
            new_lease = (
                self._clock + self.lease_ticks
                if self.lease_ticks is not None
                else None
            )
            self.ledger.record_reissue(
                task.index, target, self._clock, new_lease_expires_at=new_lease
            )
            busy.add(target)
            row, serial = self.locate(task.index)
            self.bus.publish(
                TaskReissued(
                    tick=self._clock,
                    task_index=task.index,
                    from_volunteer=previous,
                    to_volunteer=target,
                    row=row,
                    serial=serial,
                )
            )
            reissued.append(task)
        return reissued

    def mark_corrupted(self, volunteer_id: int, error_rate: float) -> VolunteerProfile:
        """A fault injector flipped *volunteer_id* malicious mid-run: swap
        in a corrupted profile, drop the ledger's honest oracle tag (a
        later ban is a correct ban), and publish the change."""
        profile = self.profile_of(volunteer_id)
        corrupted = VolunteerProfile(
            name=profile.name,
            speed=profile.speed,
            behavior=Behavior.MALICIOUS,
            error_rate=error_rate,
        )
        self._profiles[volunteer_id] = corrupted
        self._profiles_changed[volunteer_id] = self._clock
        self.ledger.note_corrupted(volunteer_id)
        self.bus.publish(
            VolunteerCorrupted(
                tick=self._clock,
                volunteer_id=volunteer_id,
                error_rate=error_rate,
            )
        )
        return corrupted

    def locate(self, task_index: int) -> tuple[int, int]:
        """The allocation coordinates ``(row, serial)`` behind a
        caller-visible task index: codec decode, then ``T^-1``."""
        return self.allocator.attribute(self.codec.decode(task_index))

    def attribute(self, task_index: int) -> int:
        """Who is responsible for *task_index*?  Decode, ``T^-1``, epochs."""
        row, serial = self.locate(task_index)
        return self.frontend.volunteer_for(row, serial)

    # ------------------------------------------------------------------

    def profile_of(self, volunteer_id: int) -> VolunteerProfile:
        try:
            return self._profiles[volunteer_id]
        except KeyError:
            raise AllocationError(f"unknown volunteer {volunteer_id}") from None

    def profiles(self) -> dict[int, VolunteerProfile]:
        """Every registered profile by volunteer id (a copy)."""
        return dict(self._profiles)

    def volunteer_ids(self) -> list[int]:
        """Every volunteer id ever registered on this engine, ascending."""
        return sorted(self._profiles)

    def is_banned(self, volunteer_id: int) -> bool:
        return self.ledger.is_banned(volunteer_id)

    def report(self) -> LedgerReport:
        return self.ledger.report()

    # -- snapshot / restore state (the persistence seam) ---------------

    def snapshot_state(self) -> dict[str, Any]:
        """The engine's *complete* persistent state as a JSON-able dict:
        engine scalars plus every component's own snapshot (allocator
        contracts, front-end epochs, ledger tasks/records, verification
        RNG).  This is the seam both :mod:`~repro.webcompute.persistence`
        and shard crash recovery restore from; an earlier version captured
        only the scalars, which silently lost any in-flight task -- a
        restored engine would re-issue its index."""
        return {
            "clock": self._clock,
            "max_task_index": self._max_task_index,
            "next_volunteer_id": self._next_volunteer_id,
            "lease_ticks": self.lease_ticks,
            "profiles": {
                str(vid): p.to_state() for vid, p in self._profiles.items()
            },
            "contracts": self.allocator.snapshot_state(),
            "frontend": self.frontend.snapshot_state(),
            "ledger": self.ledger.snapshot_state(),
            "verification_rate": self.ledger.verification_rate,
            "ban_after_strikes": self.ledger.ban_after_strikes,
            "rng_state": self.ledger.rng_state(),
        }

    def snapshot_delta(self, since_tick: int) -> dict[str, Any]:
        """Everything that changed at or after *since_tick* as a JSON-able
        delta: scalars ship whole (they are tiny and idempotent to
        re-apply), components contribute their own ``snapshot_delta``, and
        ``tasks_issued`` denormalizes the audit count so a checkpoint store
        can track coverage without materializing state.  ``>=`` (not ``>``)
        keeps a delta cut mid-tick safe: re-shipped rows are upserts."""
        return {
            "since": since_tick,
            "clock": self._clock,
            "tasks_issued": self.ledger.tasks_issued_count(),
            "max_task_index": self._max_task_index,
            "next_volunteer_id": self._next_volunteer_id,
            "lease_ticks": self.lease_ticks,
            "verification_rate": self.ledger.verification_rate,
            "ban_after_strikes": self.ledger.ban_after_strikes,
            "profiles": {
                str(vid): self._profiles[vid].to_state()
                for vid, t in sorted(self._profiles_changed.items())
                if t >= since_tick
            },
            "contracts": self.allocator.snapshot_delta(since_tick),
            "frontend": self.frontend.snapshot_delta(since_tick),
            "ledger": self.ledger.snapshot_delta(since_tick),
        }

    # reprolint: allow[R005] folding a delta replays history: events were
    # already emitted when the original commands first ran
    def apply_delta(self, delta: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot_delta` dict into live state.  Applying
        the base state then every delta in log order must land bit-identical
        to the engine the deltas were cut from (the recovery differential
        tests pin this, and pin :func:`~repro.webcompute.recovery.fold_delta`
        against this method)."""
        self._clock = delta["clock"]
        self._max_task_index = delta["max_task_index"]
        self._next_volunteer_id = delta["next_volunteer_id"]
        self.lease_ticks = delta["lease_ticks"]
        for key, p in delta["profiles"].items():
            vid = int(key)
            self._profiles[vid] = VolunteerProfile.from_state(p)
            self._profiles_changed[vid] = self._clock
        self.allocator.apply_delta(delta["contracts"])
        self.frontend.apply_delta(delta["frontend"])
        self.ledger.apply_delta(delta["ledger"])
        self.ledger.verification_rate = delta["verification_rate"]
        self.ledger.ban_after_strikes = delta["ban_after_strikes"]

    # reprolint: allow[R005] replay must not re-publish history: events
    # were already emitted when the journaled commands first ran
    def restore_state(self, state: dict[str, Any]) -> None:
        """Rebuild from a :meth:`snapshot_state` dict.  Component keys are
        restored when present, so the scalar-only dict that
        :mod:`~repro.webcompute.persistence` used to pass (and still may,
        for staged restores that set component state separately) keeps
        working."""
        self._clock = state["clock"]
        self._max_task_index = state["max_task_index"]
        self._next_volunteer_id = state["next_volunteer_id"]
        self.lease_ticks = state.get("lease_ticks", self.lease_ticks)
        self._profiles = {
            int(vid): VolunteerProfile.from_state(p)
            for vid, p in state["profiles"].items()
        }
        self._profiles_changed = {vid: self._clock for vid in self._profiles}
        if "contracts" in state:
            self.allocator.restore_state(state["contracts"])
        if "frontend" in state:
            self.frontend.restore_state(state["frontend"])
        if "ledger" in state:
            self.ledger.restore_state(state["ledger"])
        if "verification_rate" in state:
            self.ledger.verification_rate = state["verification_rate"]
        if "ban_after_strikes" in state:
            self.ledger.ban_after_strikes = state["ban_after_strikes"]
        if "rng_state" in state:
            self.ledger.set_rng_state(state["rng_state"])

    def __repr__(self) -> str:
        return (
            f"<AllocationEngine apf={self.apf_name} "
            f"seated={self.frontend.seated_count} "
            f"max_task_index={self._max_task_index}>"
        )
