"""Worker-process execution of engine shards (the parallel half of
:mod:`~repro.webcompute.sharding`).

A :class:`~repro.webcompute.engine.AllocationEngine` is deterministic and
journal-replayable, which makes it *shippable*: the sharded router can run
each shard's engine in a separate OS process and drive it with exactly the
ops it would otherwise journal.  This module holds everything that crosses
the process boundary:

* :func:`shard_codec` -- builds a shard's
  :class:`~repro.webcompute.engine.IndexCodec` from ``(composer, shard)``.
  The codec's closures are *not* picklable, so the parent never ships a
  codec; it ships the pair of values and both sides rebuild the same
  bijection from them (the parent for its serial mode, the worker for its
  hosted engines).
* :class:`EngineSpec` -- the picklable recipe for one shard's engine
  (APF, composer, shard number, ledger knobs, seed).  ``build()`` runs on
  the worker side and must produce an engine bit-identical to the one the
  serial router would construct.
* :func:`worker_main` -- the worker process loop: applies journal-grammar
  ops to its hosted engines, answers read-only queries, rebuilds a shard
  via the streaming-restore protocol (``restore_begin`` installs the base
  checkpoint, ``restore_apply`` folds delta segments and replays journaled
  ops in arrival order, ``restore_finish`` promotes the engine and attaches
  its event tap), and returns every event its engines published (the
  parent re-publishes them onto the global bus, so the typed event stream
  survives the process boundary).
* :class:`WorkerHandle` -- the parent-side endpoint: one child process +
  one duplex pipe, with split ``start``/``finish`` so the router can fan a
  batch out to every worker before collecting any reply (the overlap that
  makes multi-core sharding actually parallel).

Protocol: one request message, one reply.  Every reply is
``(status, payload, events)`` where ``events`` is the ordered list of
``(shard, event)`` pairs the hosted engines published since the previous
reply.  A worker process dying surfaces as :class:`WorkerDiedError` on the
parent side; the router maps that onto the existing
``crash_shard``/``restore_shard`` fault path, so a real process death is
indistinguishable from an injected crash.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any

from repro.apf.base import AdditivePairingFunction
from repro.core.base import PairingFunction
from repro.errors import AllocationError, RecoveryError, ShardDownError
from repro.webcompute.engine import AllocationEngine, IndexCodec
from repro.webcompute.recovery import apply_op
from repro.webcompute.volunteer import VolunteerProfile

__all__ = ["shard_codec", "EngineSpec", "WorkerHandle", "WorkerDiedError", "worker_main"]


class WorkerDiedError(ShardDownError):
    """The worker process behind a shard died mid-conversation.  A
    transient :class:`~repro.errors.ShardDownError`: the router crashes
    the hosted shards and the caller retries after ``restore_shard``."""


def shard_codec(composer: PairingFunction, shard: int) -> IndexCodec:
    """Shard *shard*'s slice of the global index space: row ``shard + 1``
    of *composer* (1-indexed, like everything in the paper).  Built from
    plain values so the serial router and the worker process construct
    the identical bijection independently."""
    shard_no = shard + 1

    def encode(local: int) -> int:
        return composer.pair(shard_no, local)

    def decode(global_index: int) -> int:
        x, y = composer.unpair(global_index)
        if x != shard_no:
            raise AllocationError(
                f"task {global_index} belongs to shard {x - 1}, not {shard}"
            )
        return y

    return IndexCodec(encode=encode, decode=decode)


@dataclass(frozen=True, slots=True)
class EngineSpec:
    """The picklable recipe for one shard's engine.  ``build()`` must
    reproduce exactly what the serial router's ``_fresh_engine`` builds:
    same seed offset, same codec, same ledger knobs."""

    apf: AdditivePairingFunction
    composer: PairingFunction
    shard: int
    verification_rate: float
    ban_after_strikes: int
    seed: int
    lease_ticks: int | None

    def build(self) -> AllocationEngine:
        return AllocationEngine(
            self.apf,
            verification_rate=self.verification_rate,
            ban_after_strikes=self.ban_after_strikes,
            seed=self.seed + self.shard,
            codec=shard_codec(self.composer, self.shard),
            lease_ticks=self.lease_ticks,
        )


# ----------------------------------------------------------------------
# Worker-side op and query dispatch
# ----------------------------------------------------------------------


def _apply_live_op(engine: AllocationEngine, op: list[Any]) -> Any:
    """Apply one journal-grammar op to a live engine and return its
    result (the journal replay path discards results; the live path
    ships them back to the router)."""
    kind = op[0]
    if kind == "tick":
        return engine.tick()
    if kind == "register":
        profiles = [VolunteerProfile.from_state(p) for p in op[1]]
        return engine.register_round(profiles, ids=list(op[2]))
    if kind == "validate_register":
        profiles = [VolunteerProfile.from_state(p) for p in op[1]]
        engine.validate_round(profiles, ids=list(op[2]))
        return None
    if kind == "depart":
        return engine.depart(op[1])
    if kind == "request":
        return engine.request_task(op[1])
    if kind == "submit":
        return engine.submit_result(op[1], op[2], op[3])
    if kind == "reap":
        return engine.reap_expired()
    if kind == "corrupt":
        return engine.mark_corrupted(op[1], op[2])
    if kind == "attribute_many":
        return [engine.attribute(index) for index in op[1]]
    raise RecoveryError(f"unknown worker op {kind!r}")


_QUERIES = {
    "clock": lambda e: e.clock,
    "seated_count": lambda e: e.seated_count,
    "max_task_index": lambda e: e.max_task_index,
    "report": lambda e: e.report(),
    "is_banned": lambda e, vid: e.is_banned(vid),
    "profile_of": lambda e, vid: e.profile_of(vid),
    "attribute": lambda e, index: e.attribute(index),
    "locate": lambda e, index: e.locate(index),
    "task": lambda e, index: e.ledger.task(index),
    "snapshot_state": lambda e: e.snapshot_state(),
    "snapshot_delta": lambda e, since: e.snapshot_delta(since),
    "seated_volunteers": lambda e: e.frontend.seated_volunteers(),
    "row_of": lambda e, vid: e.frontend.row_of(vid),
    "volunteer_for": lambda e, row, serial: e.frontend.volunteer_for(row, serial),
    "allocator_attribute": lambda e, local: e.allocator.attribute(local),
}


def worker_main(conn, specs: dict[int, EngineSpec]) -> None:
    """The worker process body: host the engines described by *specs*
    and serve the router until a ``stop`` message or a closed pipe.

    Every reply carries the ordered ``(shard, event)`` stream published
    since the previous reply; restore attaches the event tap only *after*
    journal replay, so replayed history is never re-published -- the same
    discipline as the serial ``restore_shard``."""
    engines: dict[int, AllocationEngine] = {}
    restoring: dict[int, AllocationEngine] = {}
    pending_events: list[tuple[int, Any]] = []

    def attach(shard: int, engine: AllocationEngine) -> None:
        engine.bus.subscribe(lambda event, _s=shard: pending_events.append((_s, event)))

    for shard in sorted(specs):
        engine = specs[shard].build()
        attach(shard, engine)
        engines[shard] = engine

    def drain() -> list[tuple[int, Any]]:
        out = pending_events[:]
        pending_events.clear()
        return out

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        try:
            if kind == "ops":
                groups = []
                for shard, ops in message[1]:
                    engine = engines.get(shard)
                    if engine is None:
                        groups.append(
                            (
                                shard,
                                [
                                    (False, ShardDownError(f"shard {shard} is not hosted"))
                                    for _ in ops
                                ],
                            )
                        )
                        continue
                    results = []
                    for op in ops:
                        try:
                            results.append((True, _apply_live_op(engine, op)))
                        except Exception as exc:  # per-op outcome, shipped back
                            results.append((False, exc))
                    groups.append((shard, results))
                reply = ("ok", groups, drain())
            elif kind == "call":
                _kind, shard, name, args = message
                engine = engines.get(shard)
                if engine is None:
                    raise ShardDownError(f"shard {shard} is not hosted")
                reply = ("ok", _QUERIES[name](engine, *args), drain())
            elif kind == "restore_begin":
                _kind, shard, spec, state = message
                engine = spec.build()
                engine.restore_state(state)
                restoring[shard] = engine
                reply = ("ok", None, drain())
            elif kind == "restore_apply":
                _kind, shard, items = message
                engine = restoring.get(shard)
                if engine is None:
                    raise RecoveryError(f"shard {shard} is not restoring here")
                applied = 0
                for item_kind, item in items:
                    if item_kind == "delta":
                        engine.apply_delta(item)
                    else:
                        try:
                            apply_op(engine, item)
                        except Exception as exc:
                            raise RecoveryError(
                                f"journal replay diverged at op {applied} "
                                f"({item[0]!r}): {exc}"
                            ) from exc
                        applied += 1
                reply = ("ok", applied, drain())
            elif kind == "restore_finish":
                shard = message[1]
                engine = restoring.pop(shard, None)
                if engine is None:
                    raise RecoveryError(f"shard {shard} is not restoring here")
                attach(shard, engine)
                engines[shard] = engine
                issued = engine.ledger.tasks_issued_count()
                reply = ("ok", (issued, engine.clock), drain())
            elif kind == "drop":
                engines.pop(message[1], None)
                restoring.pop(message[1], None)
                reply = ("ok", None, drain())
            elif kind == "stop":
                conn.send(("ok", None, drain()))
                return
            else:
                raise RecoveryError(f"unknown worker message {kind!r}")
        except Exception as exc:
            reply = ("err", exc, drain())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


class WorkerHandle:
    """Parent-side endpoint for one worker process.

    ``start``/``finish`` are split so the router can ship a batch to every
    worker before collecting any reply -- with one round of pickling on
    each side, the engines crunch their shards concurrently.  Any pipe
    failure marks the handle dead and raises :class:`WorkerDiedError`;
    the router maps that onto the shard-crash path.
    """

    def __init__(self, specs: dict[int, EngineSpec]) -> None:
        ctx = multiprocessing.get_context()
        self.connection, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=worker_main, args=(child, specs), daemon=True
        )
        self.process.start()
        child.close()
        self.alive = True
        self._awaiting = False

    def _die(self) -> WorkerDiedError:
        self.alive = False
        self._awaiting = False
        return WorkerDiedError(
            f"worker process pid={self.process.pid} died; its shards are "
            "crashed -- restore them and retry"
        )

    def start(self, message: tuple) -> None:
        """Ship one request without waiting for the reply."""
        if not self.alive:
            raise WorkerDiedError("worker process is not running")
        if self._awaiting:
            raise RecoveryError("worker has an outstanding request")
        try:
            self.connection.send(message)
        except (BrokenPipeError, OSError):
            raise self._die() from None
        self._awaiting = True

    def finish(self) -> tuple:
        """Collect the reply to the outstanding :meth:`start`."""
        if not self.alive:
            raise WorkerDiedError("worker process is not running")
        if not self._awaiting:
            raise RecoveryError("no outstanding request to finish")
        self._awaiting = False
        try:
            return self.connection.recv()
        except (EOFError, OSError):
            raise self._die() from None

    def request(self, message: tuple) -> tuple:
        """One synchronous round trip."""
        self.start(message)
        return self.finish()

    def close(self) -> None:
        """Stop the worker (graceful ``stop``, then terminate)."""
        if self.alive:
            try:
                self.request(("stop",))
            except (WorkerDiedError, RecoveryError):
                pass
            self.alive = False
        if self.process.is_alive():
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=1.0)
        self.connection.close()
