"""The dynamic front end of the accountability scheme ([13], sketched in
Section 4).

A pure-APF allocation handles arrivals but not departures: "If a volunteer
departs, his/her tasks will never be computed -- unless a new volunteer
arrives to take their places and compute their tasks.  Such reassignment
would demand added mechanisms to retain accountability."  The front end is
that mechanism, plus the speed policy: "it also ensures that faster
volunteers are always assigned smaller indices."

Implementation:

* **Row pool** -- rows vacated by departures are recycled before fresh rows
  are minted; among free rows, arrivals are seated so that *faster*
  volunteers get *smaller* rows.  When several volunteers arrive in one
  admission round they are ranked by declared speed and seated in that
  order (fastest -> smallest free row).
* **Epochs** -- accountability across reassignment.  Each (row, tenure)
  pair is an :class:`Epoch` with a serial range; the table
  ``row -> [epochs]`` answers "who held row v when serial t was issued",
  so ``T^-1`` attribution stays exact even after any number of departures
  and reseatings.  This is the "added mechanism" the paper alludes to.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import AllocationError, DomainError
from repro.webcompute.events import EventBus, RowRecycled, RowSeated

__all__ = ["Epoch", "RowAssignment", "FrontEnd"]


@dataclass(slots=True)
class Epoch:
    """One volunteer's tenure on one row: serials ``first_serial ..
    last_serial`` (``None`` while the tenure is open)."""

    row: int
    volunteer_id: int
    first_serial: int
    last_serial: int | None = None

    def covers(self, serial: int) -> bool:
        if serial < self.first_serial:
            return False
        return self.last_serial is None or serial <= self.last_serial


def _decode_epoch(row: int, e: Any) -> Epoch:
    """Decode one persisted epoch: compact ``[volunteer_id, first_serial,
    last_serial]`` row or v1 per-field dict."""
    if isinstance(e, dict):
        return Epoch(
            row=row,
            volunteer_id=e["volunteer_id"],
            first_serial=e["first_serial"],
            last_serial=e["last_serial"],
        )
    vid, first, last = e
    return Epoch(row=row, volunteer_id=vid, first_serial=first, last_serial=last)


@dataclass(frozen=True, slots=True)
class RowAssignment:
    """The front end's answer to an admission: the row plus the serial the
    incoming volunteer must start from (1 for a fresh row; the first
    unissued serial for a recycled row)."""

    row: int
    start_serial: int


class FrontEnd:
    """Row seating, recycling, and epoch-based attribution.

    >>> fe = FrontEnd()
    >>> fe.admit([(101, 1.0), (102, 9.9)])   # one round: faster -> smaller
    [RowAssignment(row=2, start_serial=1), RowAssignment(row=1, start_serial=1)]
    >>> fe.row_of(102)
    1

    An optional :class:`~repro.webcompute.events.EventBus` receives a
    :class:`~repro.webcompute.events.RowSeated` per admission and a
    :class:`~repro.webcompute.events.RowRecycled` per departure -- the
    row-pool half of the observability layer.
    """

    def __init__(
        self,
        bus: EventBus | None = None,
        clock: Callable[[], int] | None = None,
    ) -> None:
        # reprolint: allow[R003] observer plumbing, re-attached after restore
        self.bus = bus
        # on construction; delta bookkeeping is rebuilt by restore_state
        self._clock_fn = clock if clock is not None else (lambda: 0)
        self._free_rows: list[int] = []  # min-heap of recycled rows
        self._next_fresh_row = 1
        self._row_resume_serial: dict[int, int] = {}
        self._row_of_volunteer: dict[int, int] = {}
        self._epochs: dict[int, list[Epoch]] = {}
        self._issued_serials: dict[int, int] = {}  # row -> last issued serial
        # Delta-protocol dirty tracking.  Rows: tick of last epoch/serial
        # mutation.  Seats: tick a volunteer was seated vs. unseated -- the
        # two maps stay disjoint so applying a delta is order-free.
        self._row_changed: dict[int, int] = {}
        self._seat_changed: dict[int, int] = {}
        self._unseated_at: dict[int, int] = {}

    # ------------------------------------------------------------------

    def _take_smallest_row(self) -> int:
        if self._free_rows:
            return heapq.heappop(self._free_rows)
        row = self._next_fresh_row
        self._next_fresh_row += 1
        return row

    def admit(self, arrivals: list[tuple[int, float]]) -> list[RowAssignment]:
        """Seat an admission round.

        *arrivals* is ``[(volunteer_id, declared_speed), ...]``; within the
        round, faster volunteers receive smaller rows (the paper's speed
        policy).  Returns assignments in the *input* order.
        """
        if not arrivals:
            return []
        seen: set[int] = set()
        for vid, speed in arrivals:
            if isinstance(vid, bool) or not isinstance(vid, int):
                raise DomainError(f"volunteer id must be an int, got {vid!r}")
            if vid in self._row_of_volunteer:
                raise AllocationError(f"volunteer {vid} is already seated")
            if vid in seen:
                raise AllocationError(f"volunteer {vid} appears twice in one round")
            if not speed > 0.0:
                raise DomainError(f"speed must be positive, got {speed!r}")
            seen.add(vid)
        # Fastest first; ties broken by id for determinism.
        ranked = sorted(arrivals, key=lambda a: (-a[1], a[0]))
        assignment_of: dict[int, RowAssignment] = {}
        now = self._clock_fn()
        for vid, _speed in ranked:
            row = self._take_smallest_row()
            start = self._row_resume_serial.get(row, 1)
            assignment_of[vid] = RowAssignment(row=row, start_serial=start)
            self._row_of_volunteer[vid] = row
            self._row_changed[row] = now
            self._seat_changed[vid] = now
            self._unseated_at.pop(vid, None)
            recycled = bool(self._epochs.get(row))
            self._epochs.setdefault(row, []).append(
                Epoch(row=row, volunteer_id=vid, first_serial=start)
            )
            self._issued_serials.setdefault(row, start - 1)
            if self.bus is not None:
                self.bus.publish(
                    RowSeated(
                        tick=self.bus.now(),
                        row=row,
                        volunteer_id=vid,
                        start_serial=start,
                        recycled=recycled,
                    )
                )
        return [assignment_of[vid] for vid, _ in arrivals]

    def depart(self, volunteer_id: int) -> int:
        """Unseat a volunteer; the row returns to the pool, the open epoch
        closes at the last issued serial.  Returns the vacated row."""
        row = self._row_of_volunteer.pop(volunteer_id, None)
        if row is None:
            raise AllocationError(f"volunteer {volunteer_id} is not seated")
        last = self._issued_serials.get(row, 0)
        epochs = self._epochs.get(row)
        if not epochs:  # pragma: no cover - admit() always opens an epoch
            raise AllocationError(f"row {row} has no open epoch to close")
        open_epoch = epochs[-1]
        open_epoch.last_serial = last
        self._row_resume_serial[row] = last + 1
        heapq.heappush(self._free_rows, row)
        now = self._clock_fn()
        self._row_changed[row] = now
        self._seat_changed.pop(volunteer_id, None)
        self._unseated_at[volunteer_id] = now
        if self.bus is not None:
            self.bus.publish(
                RowRecycled(tick=self.bus.now(), row=row, resume_serial=last + 1)
            )
        return row

    # ------------------------------------------------------------------

    def note_issued(self, row: int, serial: int) -> None:
        """Record that serial *serial* of row *row* was issued (the server
        calls this on every allocation so departures close epochs at the
        right boundary)."""
        current = self._issued_serials.get(row, 0)
        if serial != current + 1:
            raise AllocationError(
                f"row {row}: serial {serial} issued out of order (expected {current + 1})"
            )
        self._issued_serials[row] = serial
        self._row_changed[row] = self._clock_fn()

    def row_of(self, volunteer_id: int) -> int:
        try:
            return self._row_of_volunteer[volunteer_id]
        except KeyError:
            raise AllocationError(f"volunteer {volunteer_id} is not seated") from None

    def is_seated(self, volunteer_id: int) -> bool:
        return volunteer_id in self._row_of_volunteer

    def seated_volunteers(self) -> list[int]:
        """Currently seated volunteer ids, ascending (the lease reaper's
        candidate pool for reissue targets)."""
        return sorted(self._row_of_volunteer)

    def volunteer_for(self, row: int, serial: int) -> int:
        """Attribution across reassignment: who held *row* when *serial*
        was issued?  Epoch lookup; raises if the serial was never issued
        under any tenure."""
        epochs = self._epochs.get(row)
        if not epochs:
            raise AllocationError(f"row {row} has never been assigned")
        for epoch in epochs:
            if epoch.covers(serial):
                return epoch.volunteer_id
        raise AllocationError(
            f"serial {serial} of row {row} was not issued under any epoch"
        )

    @property
    def seated_count(self) -> int:
        return len(self._row_of_volunteer)

    @property
    def highest_row_minted(self) -> int:
        return self._next_fresh_row - 1

    def epochs_of_row(self, row: int) -> list[Epoch]:
        return list(self._epochs.get(row, []))

    # -- snapshot / restore state (the persistence seam) ---------------

    def snapshot_state(self) -> dict[str, Any]:
        """The front end's complete persistent state as a JSON-able dict.
        Epochs use the compact ``[volunteer_id, first_serial, last_serial]``
        row format (per-field dicts were the v1 format; :meth:`restore_state`
        accepts both)."""
        return {
            "free_rows": sorted(self._free_rows),
            "next_fresh_row": self._next_fresh_row,
            "row_resume_serial": {
                str(r): s for r, s in self._row_resume_serial.items()
            },
            "row_of_volunteer": {
                str(v): r for v, r in self._row_of_volunteer.items()
            },
            "issued_serials": {
                str(r): s for r, s in self._issued_serials.items()
            },
            "epochs": {
                str(row): [
                    [e.volunteer_id, e.first_serial, e.last_serial]
                    for e in epochs
                ]
                for row, epochs in self._epochs.items()
            },
        }

    def snapshot_delta(self, since_tick: int) -> dict[str, Any]:
        """Rows and seats mutated at or after *since_tick*.  The (small)
        free-row pool and fresh-row cursor ship whole in every delta; a
        changed row ships its resume/issued serials plus its full epoch
        list (epoch mutation = append or close, so the row is marked dirty
        either way)."""
        rows: dict[str, Any] = {}
        for row, t in sorted(self._row_changed.items()):
            if t < since_tick:
                continue
            rows[str(row)] = {
                "resume": self._row_resume_serial.get(row),
                "issued": self._issued_serials.get(row),
                "epochs": [
                    [e.volunteer_id, e.first_serial, e.last_serial]
                    for e in self._epochs.get(row, [])
                ],
            }
        return {
            "free_rows": sorted(self._free_rows),
            "next_fresh_row": self._next_fresh_row,
            "rows": rows,
            "seats": {
                str(v): self._row_of_volunteer[v]
                for v, t in sorted(self._seat_changed.items())
                if t >= since_tick
            },
            "unseated": sorted(
                v for v, t in self._unseated_at.items() if t >= since_tick
            ),
        }

    def apply_delta(self, delta: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot_delta` dict into live state.  ``None``
        serials are skipped (resume/issued keys never revert to absent), and
        seat/unseat maps are disjoint, so application is order-free and
        idempotent."""
        now = self._clock_fn()
        self._free_rows = list(delta["free_rows"])
        heapq.heapify(self._free_rows)
        self._next_fresh_row = delta["next_fresh_row"]
        for key, info in delta["rows"].items():
            row = int(key)
            if info["resume"] is not None:
                self._row_resume_serial[row] = info["resume"]
            if info["issued"] is not None:
                self._issued_serials[row] = info["issued"]
            self._epochs[row] = [
                Epoch(row=row, volunteer_id=v, first_serial=f, last_serial=l)
                for v, f, l in info["epochs"]
            ]
            self._row_changed[row] = now
        for vid in delta["unseated"]:
            self._row_of_volunteer.pop(vid, None)
            self._seat_changed.pop(vid, None)
            self._unseated_at[vid] = now
        for key, row in delta["seats"].items():
            vid = int(key)
            self._row_of_volunteer[vid] = row
            self._seat_changed[vid] = now
            self._unseated_at.pop(vid, None)

    def restore_state(self, state: dict[str, Any]) -> None:
        """Rebuild seating/epoch state from a :meth:`snapshot_state` dict.
        Accepts both compact epoch rows and the v1 per-field dicts."""
        self._free_rows = list(state["free_rows"])
        heapq.heapify(self._free_rows)
        self._next_fresh_row = state["next_fresh_row"]
        self._row_resume_serial = {
            int(r): s for r, s in state["row_resume_serial"].items()
        }
        self._row_of_volunteer = {
            int(v): r for v, r in state["row_of_volunteer"].items()
        }
        self._issued_serials = {
            int(r): s for r, s in state["issued_serials"].items()
        }
        self._epochs = {
            int(row): [_decode_epoch(int(row), e) for e in epochs]
            for row, epochs in state["epochs"].items()
        }
        # Conservatively mark everything dirty at the restored clock.
        now = self._clock_fn()
        touched = (
            set(self._epochs)
            | set(self._issued_serials)
            | set(self._row_resume_serial)
        )
        self._row_changed = {row: now for row in touched}
        self._seat_changed = {v: now for v in self._row_of_volunteer}
        self._unseated_at = {}
