"""Snapshot / restore for the WBC server.

Section 4's system argument leans on state that *survives visits*: "a
volunteer's stride need be computed only when s/he registers at the
website and can be stored for subsequent appearances".  A real project
head also restarts the server; this module serializes the whole
accountability state -- contracts, epochs, ledger, clock -- to a plain
JSON-able dict and restores it bit-for-bit.

Scope: the snapshot captures *server* state (what the website must
remember).  Simulated volunteer behavior objects are reconstructed from
their profiles; in a real deployment those are remote humans anyway.

The round-trip guarantee, enforced by tests: after ``restore(snapshot(s))``
every observable behavior -- next task per volunteer, attribution of any
historical task, ban status, report counters -- is identical.
"""

from __future__ import annotations

import json
from typing import Any

from repro.apf.base import AdditivePairingFunction
from repro.core.registry import get_pairing
from repro.errors import ConfigurationError
from repro.numbertheory.progressions import ArithmeticProgression
from repro.webcompute.allocator import RowContract
from repro.webcompute.frontend import Epoch
from repro.webcompute.ledger import VolunteerRecord
from repro.webcompute.server import WBCServer
from repro.webcompute.task import Task, TaskStatus
from repro.webcompute.volunteer import Behavior, VolunteerProfile

__all__ = ["snapshot", "restore", "dumps", "loads"]

_FORMAT_VERSION = 1


def snapshot(server: WBCServer) -> dict[str, Any]:
    """The server's complete persistent state as a JSON-able dict.

    The APF is stored *by registry name*, so only registry-resolvable
    allocation functions (``apf-sharp``, ``apf-star``, ``apf-bracket-C``,
    ``apf-power-K``, ``apf-exponential``) are snapshot-able; a custom
    :class:`~repro.apf.constructor.ConstructedAPF` raises here rather than
    producing an unrestorable snapshot.
    """
    allocator = server.allocator
    try:
        resolved = get_pairing(allocator.apf.name)
    except ConfigurationError:
        raise ConfigurationError(
            f"APF {allocator.apf.name!r} is not registry-resolvable; "
            "register it before snapshotting"
        ) from None
    del resolved
    frontend = server.frontend
    ledger = server.ledger
    return {
        "version": _FORMAT_VERSION,
        "apf": allocator.apf.name,
        "clock": server.clock,
        "max_task_index": server.max_task_index,
        "next_volunteer_id": server._next_volunteer_id,
        "verification_rate": ledger.verification_rate,
        "ban_after_strikes": ledger.ban_after_strikes,
        "rng_state": _encode_rng_state(ledger._rng.getstate()),
        "profiles": {
            str(vid): {
                "name": p.name,
                "speed": p.speed,
                "behavior": p.behavior.value,
                "error_rate": p.error_rate,
            }
            for vid, p in server._profiles.items()
        },
        "contracts": [
            {
                "row": c.row,
                "base": c.base,
                "stride": c.stride,
                "next_serial": c.next_serial,
            }
            for c in allocator._contracts.values()
        ],
        "frontend": {
            "free_rows": sorted(frontend._free_rows),
            "next_fresh_row": frontend._next_fresh_row,
            "row_resume_serial": {
                str(r): s for r, s in frontend._row_resume_serial.items()
            },
            "row_of_volunteer": {
                str(v): r for v, r in frontend._row_of_volunteer.items()
            },
            "issued_serials": {
                str(r): s for r, s in frontend._issued_serials.items()
            },
            "epochs": {
                str(row): [
                    {
                        "volunteer_id": e.volunteer_id,
                        "first_serial": e.first_serial,
                        "last_serial": e.last_serial,
                    }
                    for e in epochs
                ]
                for row, epochs in frontend._epochs.items()
            },
        },
        "ledger": {
            "honest_ids": sorted(ledger._honest_ids),
            "bad_returns": ledger._bad_returns,
            "bad_caught": ledger._bad_caught,
            "records": [
                {
                    "volunteer_id": r.volunteer_id,
                    "issued": r.issued,
                    "returned": r.returned,
                    "verified": r.verified,
                    "strikes": r.strikes,
                    "banned": r.banned,
                    "banned_at": r.banned_at,
                }
                for r in ledger._records.values()
            ],
            "tasks": [
                {
                    "index": t.index,
                    "volunteer_id": t.volunteer_id,
                    "serial": t.serial,
                    "issued_at": t.issued_at,
                    "status": t.status.value,
                    "returned_at": t.returned_at,
                    "reported_result": t.reported_result,
                }
                for t in ledger._tasks.values()
            ],
        },
    }


def _encode_rng_state(state) -> list:
    """random.Random state -> JSON-able nested lists."""
    version, internal, gauss = state
    return [version, list(internal), gauss]


def _decode_rng_state(encoded):
    version, internal, gauss = encoded
    return (version, tuple(internal), gauss)


def restore(data: dict[str, Any]) -> WBCServer:
    """Rebuild a server from a :func:`snapshot` dict."""
    if data.get("version") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported snapshot version {data.get('version')!r}"
        )
    apf = get_pairing(data["apf"])
    if not isinstance(apf, AdditivePairingFunction):
        raise ConfigurationError(f"snapshot APF {data['apf']!r} is not additive")
    server = WBCServer(
        apf,
        verification_rate=data["verification_rate"],
        ban_after_strikes=data["ban_after_strikes"],
    )
    server._clock = data["clock"]
    server._max_task_index = data["max_task_index"]
    server._next_volunteer_id = data["next_volunteer_id"]
    server.ledger._rng.setstate(_decode_rng_state(data["rng_state"]))

    for vid_str, p in data["profiles"].items():
        server._profiles[int(vid_str)] = VolunteerProfile(
            name=p["name"],
            speed=p["speed"],
            behavior=Behavior(p["behavior"]),
            error_rate=p["error_rate"],
        )

    for c in data["contracts"]:
        server.allocator._contracts[c["row"]] = RowContract(
            row=c["row"],
            progression=ArithmeticProgression(c["base"], c["stride"]),
            next_serial=c["next_serial"],
        )

    fe = server.frontend
    import heapq

    fe._free_rows = list(data["frontend"]["free_rows"])
    heapq.heapify(fe._free_rows)
    fe._next_fresh_row = data["frontend"]["next_fresh_row"]
    fe._row_resume_serial = {
        int(r): s for r, s in data["frontend"]["row_resume_serial"].items()
    }
    fe._row_of_volunteer = {
        int(v): r for v, r in data["frontend"]["row_of_volunteer"].items()
    }
    fe._issued_serials = {
        int(r): s for r, s in data["frontend"]["issued_serials"].items()
    }
    fe._epochs = {
        int(row): [
            Epoch(
                row=int(row),
                volunteer_id=e["volunteer_id"],
                first_serial=e["first_serial"],
                last_serial=e["last_serial"],
            )
            for e in epochs
        ]
        for row, epochs in data["frontend"]["epochs"].items()
    }

    ledger = server.ledger
    ledger._honest_ids = set(data["ledger"]["honest_ids"])
    ledger._bad_returns = data["ledger"]["bad_returns"]
    ledger._bad_caught = data["ledger"]["bad_caught"]
    for r in data["ledger"]["records"]:
        ledger._records[r["volunteer_id"]] = VolunteerRecord(
            volunteer_id=r["volunteer_id"],
            issued=r["issued"],
            returned=r["returned"],
            verified=r["verified"],
            strikes=r["strikes"],
            banned=r["banned"],
            banned_at=r["banned_at"],
        )
    for t in data["ledger"]["tasks"]:
        task = Task(
            index=t["index"],
            volunteer_id=t["volunteer_id"],
            serial=t["serial"],
            issued_at=t["issued_at"],
        )
        task.status = TaskStatus(t["status"])
        task.returned_at = t["returned_at"]
        task.reported_result = t["reported_result"]
        ledger._tasks[t["index"]] = task
    return server


def dumps(server: WBCServer) -> str:
    """Snapshot as a JSON string."""
    return json.dumps(snapshot(server), sort_keys=True)


def loads(text: str) -> WBCServer:
    """Restore from a JSON string."""
    return restore(json.loads(text))
