"""Snapshot / restore for the WBC server.

Section 4's system argument leans on state that *survives visits*: "a
volunteer's stride need be computed only when s/he registers at the
website and can be stored for subsequent appearances".  A real project
head also restarts the server; this module serializes the whole
accountability state -- contracts, epochs, ledger, clock -- to a plain
JSON-able dict and restores it bit-for-bit.

Layering: each component owns its own persistent representation
(``snapshot_state`` / ``restore_state`` on the allocator, front end,
ledger, and engine); this module only *composes* those dicts into the
versioned envelope.  No private state is touched -- the lint gate keeps
it that way.

Scope: the snapshot captures *server* state (what the website must
remember).  Simulated volunteer behavior objects are reconstructed from
their profiles; in a real deployment those are remote humans anyway.

The round-trip guarantee, enforced by tests: after ``restore(snapshot(s))``
every observable behavior -- next task per volunteer, attribution of any
historical task, ban status, report counters -- is identical.

Envelope history:

* **v1** re-keyed the engine snapshot field-by-field into a flat layout.
  That coupling was an *envelope-drift* bug: any state the engine later
  learned to snapshot was silently dropped by the re-keying, breaking the
  round-trip guarantee without any test noticing.
* **v2** delegates wholesale -- ``{"engine": engine.snapshot_state()}``
  plus the registry name and the constructor knobs.  New engine state
  flows through untouched, and a completeness test diffs the envelope's
  engine keys against a live ``snapshot_state()`` to keep it that way.
  v1 snapshots still load through a migration shim (the components
  themselves accept both the v1 dict row formats and the v2 compact
  tuples).
"""

from __future__ import annotations

import json
from typing import Any

from repro.apf.base import AdditivePairingFunction
from repro.core.registry import get_pairing
from repro.errors import ConfigurationError
from repro.webcompute.server import WBCServer

__all__ = ["snapshot", "restore", "dumps", "loads"]

_FORMAT_VERSION = 2

# The keys a v1 envelope spread flat at the top level; the migration shim
# re-assembles the engine dict from exactly these (``lease_ticks`` is
# additive over early v1 and read back with a default).
_V1_ENGINE_KEYS = (
    "clock",
    "max_task_index",
    "next_volunteer_id",
    "profiles",
    "contracts",
    "frontend",
    "ledger",
    "verification_rate",
    "ban_after_strikes",
    "rng_state",
)


def snapshot(server: WBCServer) -> dict[str, Any]:
    """The server's complete persistent state as a JSON-able dict.

    The APF is stored *by registry name*, so only registry-resolvable
    allocation functions (``apf-sharp``, ``apf-star``, ``apf-bracket-C``,
    ``apf-power-K``, ``apf-exponential``) are snapshot-able; a custom
    :class:`~repro.apf.constructor.ConstructedAPF` raises here rather than
    producing an unrestorable snapshot.
    """
    engine = server.engine
    apf_name = engine.apf_name
    try:
        resolved = get_pairing(apf_name)
    except ConfigurationError:
        raise ConfigurationError(
            f"APF {apf_name!r} is not registry-resolvable; "
            "register it before snapshotting"
        ) from None
    del resolved
    engine_state = engine.snapshot_state()
    # Wholesale delegation: whatever the engine snapshots is what the
    # envelope stores.  The constructor knobs ride along at the top level
    # because ``restore`` needs them *before* it has an engine to ask.
    return {
        "version": _FORMAT_VERSION,
        "apf": apf_name,
        "verification_rate": engine_state["verification_rate"],
        "ban_after_strikes": engine_state["ban_after_strikes"],
        "lease_ticks": engine_state["lease_ticks"],
        "engine": engine_state,
    }


def _engine_state_of(data: dict[str, Any]) -> dict[str, Any]:
    """The engine-state dict inside an envelope, migrating v1's flat
    layout; unknown versions are rejected."""
    version = data.get("version")
    if version == 2:
        return data["engine"]
    if version == 1:
        state = {key: data[key] for key in _V1_ENGINE_KEYS}
        state["lease_ticks"] = data.get("lease_ticks")
        return state
    raise ConfigurationError(f"unsupported snapshot version {version!r}")


def restore(data: dict[str, Any]) -> WBCServer:
    """Rebuild a server from a :func:`snapshot` dict (v2 or v1)."""
    engine_state = _engine_state_of(data)
    apf = get_pairing(data["apf"])
    if not isinstance(apf, AdditivePairingFunction):
        raise ConfigurationError(f"snapshot APF {data['apf']!r} is not additive")
    server = WBCServer(
        apf,
        verification_rate=data["verification_rate"],
        ban_after_strikes=data["ban_after_strikes"],
        lease_ticks=data.get("lease_ticks"),
    )
    server.engine.restore_state(engine_state)
    return server


def dumps(server: WBCServer) -> str:
    """Snapshot as a JSON string."""
    return json.dumps(snapshot(server), sort_keys=True)


def loads(text: str) -> WBCServer:
    """Restore from a JSON string."""
    return restore(json.loads(text))
