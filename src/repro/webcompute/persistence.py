"""Snapshot / restore for the WBC server.

Section 4's system argument leans on state that *survives visits*: "a
volunteer's stride need be computed only when s/he registers at the
website and can be stored for subsequent appearances".  A real project
head also restarts the server; this module serializes the whole
accountability state -- contracts, epochs, ledger, clock -- to a plain
JSON-able dict and restores it bit-for-bit.

Layering: each component owns its own persistent representation
(``snapshot_state`` / ``restore_state`` on the allocator, front end,
ledger, and engine); this module only *composes* those dicts into the
versioned envelope.  No private state is touched -- the lint gate keeps
it that way.

Scope: the snapshot captures *server* state (what the website must
remember).  Simulated volunteer behavior objects are reconstructed from
their profiles; in a real deployment those are remote humans anyway.

The round-trip guarantee, enforced by tests: after ``restore(snapshot(s))``
every observable behavior -- next task per volunteer, attribution of any
historical task, ban status, report counters -- is identical.
"""

from __future__ import annotations

import json
from typing import Any

from repro.apf.base import AdditivePairingFunction
from repro.core.registry import get_pairing
from repro.errors import ConfigurationError
from repro.webcompute.server import WBCServer

__all__ = ["snapshot", "restore", "dumps", "loads"]

_FORMAT_VERSION = 1


def snapshot(server: WBCServer) -> dict[str, Any]:
    """The server's complete persistent state as a JSON-able dict.

    The APF is stored *by registry name*, so only registry-resolvable
    allocation functions (``apf-sharp``, ``apf-star``, ``apf-bracket-C``,
    ``apf-power-K``, ``apf-exponential``) are snapshot-able; a custom
    :class:`~repro.apf.constructor.ConstructedAPF` raises here rather than
    producing an unrestorable snapshot.
    """
    engine = server.engine
    apf_name = engine.apf_name
    try:
        resolved = get_pairing(apf_name)
    except ConfigurationError:
        raise ConfigurationError(
            f"APF {apf_name!r} is not registry-resolvable; "
            "register it before snapshotting"
        ) from None
    del resolved
    # The engine snapshot is complete (scalars + allocator + frontend +
    # ledger + RNG); the envelope just re-keys it into the v1 layout and
    # adds the registry name.  ``lease_ticks`` is additive over v1 and is
    # read back with a default, so pre-lease snapshots stay loadable.
    engine_state = engine.snapshot_state()
    return {
        "version": _FORMAT_VERSION,
        "apf": apf_name,
        "clock": engine_state["clock"],
        "max_task_index": engine_state["max_task_index"],
        "next_volunteer_id": engine_state["next_volunteer_id"],
        "lease_ticks": engine_state["lease_ticks"],
        "verification_rate": engine_state["verification_rate"],
        "ban_after_strikes": engine_state["ban_after_strikes"],
        "rng_state": engine_state["rng_state"],
        "profiles": engine_state["profiles"],
        "contracts": engine_state["contracts"],
        "frontend": engine_state["frontend"],
        "ledger": engine_state["ledger"],
    }


def restore(data: dict[str, Any]) -> WBCServer:
    """Rebuild a server from a :func:`snapshot` dict."""
    if data.get("version") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported snapshot version {data.get('version')!r}"
        )
    apf = get_pairing(data["apf"])
    if not isinstance(apf, AdditivePairingFunction):
        raise ConfigurationError(f"snapshot APF {data['apf']!r} is not additive")
    server = WBCServer(
        apf,
        verification_rate=data["verification_rate"],
        ban_after_strikes=data["ban_after_strikes"],
        lease_ticks=data.get("lease_ticks"),
    )
    server.engine.restore_state(
        {
            "clock": data["clock"],
            "max_task_index": data["max_task_index"],
            "next_volunteer_id": data["next_volunteer_id"],
            "lease_ticks": data.get("lease_ticks"),
            "profiles": data["profiles"],
            "contracts": data["contracts"],
            "frontend": data["frontend"],
            "ledger": data["ledger"],
            "verification_rate": data["verification_rate"],
            "ban_after_strikes": data["ban_after_strikes"],
            "rng_state": data["rng_state"],
        }
    )
    return server


def dumps(server: WBCServer) -> str:
    """Snapshot as a JSON string."""
    return json.dumps(snapshot(server), sort_keys=True)


def loads(text: str) -> WBCServer:
    """Restore from a JSON string."""
    return restore(json.loads(text))
