"""Majority-vote replication: the heavyweight alternative the paper's
accountability scheme is designed to avoid.

Section 4 positions the PF-based ledger as "computationally lightweight":
it does not prevent bad results, it *attributes* them, so persistent
offenders get banned while the project pays only a sampled-verification
overhead.  The classical alternative -- replicate every task across ``r``
volunteers and accept the majority answer -- buys per-task correctness but
multiplies the computation bill by ``r``.

:class:`ReplicationSimulation` implements that baseline over the *same*
volunteer behavior models, so
``benchmarks/bench_wbc_accountability.py``-style comparisons can quantify
the tradeoff:

* **work overhead** -- replication does ``r`` computations per task vs the
  ledger's ``1 + verification_rate`` equivalent checks;
* **bad results accepted** -- replication accepts a bad answer only when
  faulty volunteers collide on a replica majority (random corruption makes
  that vanishingly rare); tasks with no strict majority are *re-issued* to
  fresh replicas, adding work; the ledger accepts whatever slipped past
  the sample *but* bans the producers, so its acceptance rate decays over
  time.

The simulation is deliberately simple (no arrival/departure churn): the
comparison is about per-task economics, not membership dynamics.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.webcompute.task import correct_result
from repro.webcompute.volunteer import VolunteerProfile

__all__ = ["ReplicationOutcome", "ReplicationSimulation"]


@dataclass(frozen=True, slots=True)
class ReplicationOutcome:
    """What a replication run produced."""

    replication_factor: int
    tasks_decided: int
    computations_performed: int
    bad_results_produced: int
    bad_results_accepted: int
    reissues: int

    @property
    def work_overhead(self) -> float:
        """Computations per decided task (>= the replication factor; the
        excess is re-issue work on majority-less replica sets)."""
        if self.tasks_decided == 0:
            return 0.0
        return self.computations_performed / self.tasks_decided

    @property
    def acceptance_error_rate(self) -> float:
        """Fraction of decided tasks whose accepted answer is wrong."""
        if self.tasks_decided == 0:
            return 0.0
        return self.bad_results_accepted / self.tasks_decided


class ReplicationSimulation:
    """Run ``tasks`` decisions, each computed by ``replication_factor``
    volunteers sampled (seeded) from the population.  An answer is
    accepted only with a *strict* replica majority; otherwise the task is
    re-issued to a fresh sample, up to ``max_reissues`` times, after which
    the modal-minimum answer is accepted (and the acceptance counted
    honestly, bad or not).

    >>> volunteers = [VolunteerProfile(f"v{i}") for i in range(5)]
    >>> sim = ReplicationSimulation(volunteers, replication_factor=3, seed=1)
    >>> outcome = sim.run(tasks=50)
    >>> outcome.bad_results_accepted
    0
    """

    def __init__(
        self,
        volunteers: list[VolunteerProfile],
        replication_factor: int = 3,
        seed: int = 0,
        max_reissues: int = 3,
    ) -> None:
        if not volunteers:
            raise ConfigurationError("need at least one volunteer")
        if (
            isinstance(replication_factor, bool)
            or not isinstance(replication_factor, int)
            or replication_factor < 1
        ):
            raise ConfigurationError(
                f"replication_factor must be a positive int, got {replication_factor!r}"
            )
        if replication_factor > len(volunteers):
            raise ConfigurationError(
                "replication_factor cannot exceed the population size "
                f"({replication_factor} > {len(volunteers)})"
            )
        if isinstance(max_reissues, bool) or not isinstance(max_reissues, int) or max_reissues < 0:
            raise ConfigurationError(
                f"max_reissues must be a nonnegative int, got {max_reissues!r}"
            )
        self.volunteers = list(volunteers)
        self.replication_factor = replication_factor
        self.max_reissues = max_reissues
        self._rng = random.Random(seed)

    def run(self, tasks: int) -> ReplicationOutcome:
        """Decide *tasks* tasks; returns the outcome record."""
        if isinstance(tasks, bool) or not isinstance(tasks, int) or tasks <= 0:
            raise ConfigurationError(f"tasks must be a positive int, got {tasks!r}")
        r = self.replication_factor
        computations = 0
        bad_produced = 0
        bad_accepted = 0
        reissues = 0
        for task_no in range(1, tasks + 1):
            task_index = task_no  # plain sequential indices; allocation is
            # not the subject here, the replicas are.
            truth = correct_result(task_index)
            accepted: int | None = None
            last_answers: list[int] = []
            for attempt in range(self.max_reissues + 1):
                replicas = self._rng.sample(self.volunteers, r)
                answers: list[int] = []
                for volunteer in replicas:
                    answer = volunteer.compute(task_index, self._rng)
                    computations += 1
                    if answer != truth:
                        bad_produced += 1
                    answers.append(answer)
                last_answers = answers
                counts = Counter(answers)
                answer, count = counts.most_common(1)[0]
                if count > r // 2:  # strict majority
                    accepted = answer
                    break
                reissues += 1
            if accepted is None:
                # Retry budget exhausted: accept the modal-minimum answer
                # of the last round (an honest protocol would escalate;
                # counting it keeps the economics fair).
                counts = Counter(last_answers)
                best = max(counts.values())
                accepted = min(a for a, c in counts.items() if c == best)
            if accepted != truth:
                bad_accepted += 1
        return ReplicationOutcome(
            replication_factor=r,
            tasks_decided=tasks,
            computations_performed=computations,
            bad_results_produced=bad_produced,
            bad_results_accepted=bad_accepted,
            reissues=reissues,
        )
