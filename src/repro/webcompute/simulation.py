"""Seeded discrete-time simulation of a web-computing project.

Drives a :class:`~repro.webcompute.server.WBCServer` -- or, with
``shards > 1``, a :class:`~repro.webcompute.sharding.ShardedWBCServer` --
with a synthetic volunteer population: arrivals (optionally in waves),
per-volunteer speeds (tasks completed per tick, realized stochastically),
honest / careless / malicious behavior, and optional mid-run departures.

The driver observes the run through the structured event layer: it
subscribes to the server's bus and reads completions, voluntary
departures, and bans off the typed event stream -- the same stream an
operator's dashboard would watch -- instead of keeping parallel private
counters.  Only the invariant a *driver* must check from outside
(attribution round-trips against the simulation's own ground truth)
remains hand-counted.

Everything is parameterized by :class:`SimulationConfig` and driven by a
single seed, so any reported number is exactly reproducible.  The outputs
(:class:`SimulationOutcome`) are the paper's quantities of interest:

* accountability -- every bad result attributes to its true producer; the
  strike policy bans persistent offenders; honest volunteers are never
  banned (verification compares against recomputable ground truth, so there
  are no false strikes);
* compactness -- the largest task index issued, per APF family, for the
  same workload (the memory-management argument of Section 4.2).  With
  sharding, that index lives in the *composed* global space, so the same
  column also measures the composition overhead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.apf.base import AdditivePairingFunction
from repro.errors import (
    AllocationError,
    ConfigurationError,
    DomainError,
    ReproError,
    ShardDownError,
)
from repro.webcompute.events import (
    CheckpointTaken,
    EventCounters,
    ResultReturned,
    ReturnDelayed,
    ReturnDropped,
    ShardCrashed,
    ShardRestored,
    VolunteerDeparted,
)
from repro.webcompute.faults import FaultInjector, FaultSpec
from repro.webcompute.recovery import Backoff
from repro.webcompute.server import WBCServer
from repro.webcompute.sharding import ShardedWBCServer
from repro.webcompute.task import Task
from repro.webcompute.volunteer import Behavior, VolunteerProfile

__all__ = [
    "SimulationConfig",
    "SimulationOutcome",
    "WBCSimulation",
    "run_family_comparison",
    "run_shard_comparison",
]


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Knobs for one simulated project run."""

    ticks: int = 200
    initial_volunteers: int = 20
    careless_fraction: float = 0.15
    malicious_fraction: float = 0.10
    careless_error_rate: float = 0.25
    malicious_error_rate: float = 0.9
    verification_rate: float = 0.2
    ban_after_strikes: int = 2
    departure_rate: float = 0.002  # per volunteer per tick
    arrival_rate: float = 0.05  # expected new volunteers per tick
    min_speed: float = 0.2
    max_speed: float = 3.0
    seed: int = 2002  # the venue year; any int works
    shards: int = 1  # > 1 drives a ShardedWBCServer
    lease_ticks: int | None = None  # task-lease length (None = no leases)
    checkpoint_every: int | None = None  # periodic shard checkpoints
    compact_every: int | None = 8  # full rebase after this many deltas
    faults: str = ""  # FaultSpec grammar (see repro.webcompute.faults)
    workers: int | None = None  # worker processes (None = in-process)
    codec: str | None = None  # index codec name (None = square-shell)

    def __post_init__(self) -> None:
        if self.ticks <= 0 or self.initial_volunteers <= 0:
            raise ConfigurationError("ticks and initial_volunteers must be positive")
        if not 0.0 <= self.careless_fraction + self.malicious_fraction <= 1.0:
            raise ConfigurationError("behavior fractions must sum to <= 1")
        if not 0.0 < self.min_speed <= self.max_speed:
            raise ConfigurationError("need 0 < min_speed <= max_speed")
        if isinstance(self.shards, bool) or not isinstance(self.shards, int) or self.shards < 1:
            raise ConfigurationError(f"shards must be a positive int, got {self.shards!r}")
        if self.workers is not None and (
            isinstance(self.workers, bool)
            or not isinstance(self.workers, int)
            or self.workers < 1
        ):
            raise ConfigurationError(
                f"workers must be a positive int or None, got {self.workers!r}"
            )
        if self.codec is not None:
            from repro.webcompute.codecs import composer_for

            composer_for(self.codec)  # fail fast on an unknown codec name
        spec = FaultSpec.parse(self.faults)  # fail fast on a bad grammar
        for fault in spec.scheduled:
            if fault.kind in ("crash", "restore"):
                if self.shards < 2:
                    raise ConfigurationError(
                        f"{fault.kind}@ faults need shards >= 2 "
                        f"(got shards={self.shards})"
                    )
                if fault.arg >= self.shards:
                    raise ConfigurationError(
                        f"{fault.kind}@{fault.tick}:{fault.arg} targets a "
                        f"nonexistent shard (shards={self.shards})"
                    )


@dataclass(frozen=True, slots=True)
class SimulationOutcome:
    """What one run produced."""

    apf_name: str
    ticks: int
    volunteers_total: int
    tasks_completed: int
    bad_results_returned: int
    bad_results_caught: int
    faulty_banned: int
    honest_banned: int
    departures: int
    max_task_index: int
    attribution_checks: int
    attribution_failures: int
    shards: int = 1
    tasks_reissued: int = 0
    late_returns: int = 0
    shard_crashes: int = 0
    shard_restores: int = 0
    checkpoints_taken: int = 0
    returns_dropped: int = 0
    returns_delayed: int = 0
    returns_retried: int = 0
    returns_abandoned: int = 0

    @property
    def density(self) -> float:
        """Tasks completed per unit of task-index space consumed -- the
        compactness payoff (higher is better)."""
        if self.max_task_index == 0:
            return 0.0
        return self.tasks_completed / self.max_task_index


@dataclass(slots=True)
class _PendingReturn:
    """One computed result waiting to be (re)submitted: a fault-delayed
    return, or a return that raced a crashed shard and is backing off."""

    volunteer_id: int
    task: Task
    result: int
    due: int
    backoff: Backoff = field(default_factory=Backoff)
    retried: bool = False


class WBCSimulation:
    """One reproducible project run against one APF (and, with
    ``config.shards > 1``, several engine shards).

    Fault handling: a ``config.faults`` spec drives a seeded
    :class:`~repro.webcompute.faults.FaultInjector`.  The injector's RNG
    is separate from the arrival/work RNG streams, so a run with
    scheduled faults only (crash/restore) consumes *identical* arrival,
    behavior, and work randomness as the fault-free run -- the basis of
    the crash-recovery differential test."""

    def __init__(self, apf: AdditivePairingFunction, config: SimulationConfig) -> None:
        self.config = config
        if config.shards > 1 or config.workers is not None or config.codec is not None:
            self.server: WBCServer | ShardedWBCServer = ShardedWBCServer(
                apf,
                shards=config.shards,
                verification_rate=config.verification_rate,
                ban_after_strikes=config.ban_after_strikes,
                seed=config.seed,
                codec=config.codec,
                lease_ticks=config.lease_ticks,
                checkpoint_every=config.checkpoint_every,
                compact_every=config.compact_every,
                workers=config.workers,
            )
        else:
            self.server = WBCServer(
                apf,
                verification_rate=config.verification_rate,
                ban_after_strikes=config.ban_after_strikes,
                seed=config.seed,
                lease_ticks=config.lease_ticks,
            )
        self.injector = FaultInjector(FaultSpec.parse(config.faults), seed=config.seed)
        # Observability taps: aggregate typed counters, plus one filtered
        # count (voluntary departures) the aggregates cannot express.
        self.counters = EventCounters.attach(self.server.bus)
        self._voluntary_departures = 0
        self.server.bus.subscribe(self._on_departure, [VolunteerDeparted])
        self._rng = random.Random(config.seed ^ 0xA5A5A5A5)
        self._work_rng = random.Random(config.seed ^ 0x5A5A5A5A)
        self._active: list[int] = []
        self._in_flight: dict[int, Task] = {}  # volunteer -> outstanding task
        self._pending_returns: list[_PendingReturn] = []
        self._profile_count = 0
        self._attribution_checks = 0
        self._attribution_failures = 0
        self._returns_retried = 0
        self._returns_abandoned = 0

    def _on_departure(self, event: VolunteerDeparted) -> None:
        if not event.banned:
            self._voluntary_departures += 1

    # ------------------------------------------------------------------

    def _make_profile(self) -> VolunteerProfile:
        self._profile_count += 1
        roll = self._rng.random()
        cfg = self.config
        speed = self._rng.uniform(cfg.min_speed, cfg.max_speed)
        name = f"v{self._profile_count}"
        if roll < cfg.malicious_fraction:
            return VolunteerProfile(
                name, speed=speed, behavior=Behavior.MALICIOUS,
                error_rate=cfg.malicious_error_rate,
            )
        if roll < cfg.malicious_fraction + cfg.careless_fraction:
            return VolunteerProfile(
                name, speed=speed, behavior=Behavior.CARELESS,
                error_rate=cfg.careless_error_rate,
            )
        return VolunteerProfile(name, speed=speed)

    def _admit(self, count: int) -> None:
        profiles = [self._make_profile() for _ in range(count)]
        if not profiles:
            return
        ids = self.server.register_round(profiles)
        self._active.extend(ids)

    # -- fault plumbing ------------------------------------------------

    def _reachable(self, vid: int) -> bool:
        """Whether *vid*'s shard is up (always true for a single server)."""
        server = self.server
        if isinstance(server, ShardedWBCServer):
            return server.is_shard_alive(server.shard_of(vid))
        return True

    def _check_attribution(self, task: Task) -> None:
        """The accountability invariant, checked on every computed
        result: attribution must name the task's *original* assignee --
        under a lease reissue that is still the original volunteer, never
        the reissue target."""
        self._attribution_checks += 1
        if self.server.attribute(task.index) != task.volunteer_id:
            self._attribution_failures += 1

    def _submit_or_queue(self, pending: _PendingReturn) -> None:
        """Deliver one computed result.  A down shard re-queues it on the
        backoff schedule (until exhausted); a conflict -- the task was
        already returned by the other assignee after a reissue race --
        abandons it (the ledger keeps the first return)."""
        try:
            self.server.submit_result(
                pending.volunteer_id, pending.task.index, pending.result
            )
        except ShardDownError:
            if pending.backoff.exhausted:
                self._returns_abandoned += 1
                return
            pending.retried = True
            pending.due = pending.backoff.next_retry_tick(self.server.clock)
            self._pending_returns.append(pending)
            return
        except DomainError:
            self._returns_abandoned += 1
            return
        if pending.retried:
            self._returns_retried += 1

    def _apply_scheduled_faults(self) -> None:
        """Fire this tick's scheduled faults (corrupt, then crash, then
        restore -- so a crash+restore pair scheduled on the same tick is
        a lossless bounce)."""
        server = self.server
        for fault in self.injector.scheduled_at(server.clock):
            if fault.kind == "corrupt":
                candidates = [
                    vid
                    for vid in self._active
                    if self._reachable(vid) and not server.profile_of(vid).is_faulty
                ]
                for vid in self.injector.corruption_targets(fault.arg, candidates):
                    server.mark_corrupted(vid, self.config.malicious_error_rate)
            elif fault.kind == "crash":
                assert isinstance(server, ShardedWBCServer)  # enforced by config
                server.crash_shard(fault.arg)
            elif fault.kind == "restore":
                assert isinstance(server, ShardedWBCServer)
                server.restore_shard(fault.arg)

    def _check_attributions(self, tasks: list[Task]) -> None:
        """Bulk form of :meth:`_check_attribution`: one batched
        ``attribute_many`` round-trip for the tick's completed tasks.
        ``attribute_many`` raises on *any* bad index, so a failure falls
        back to per-task attribution to count exactly which ones failed."""
        if not tasks:
            return
        self._attribution_checks += len(tasks)
        server = self.server
        assert isinstance(server, ShardedWBCServer)
        try:
            owners = server.attribute_many([task.index for task in tasks])
        except ReproError:
            for task in tasks:
                try:
                    owner = server.attribute(task.index)
                except ReproError:
                    self._attribution_failures += 1
                    continue
                if owner != task.volunteer_id:
                    self._attribution_failures += 1
            return
        for task, owner in zip(tasks, owners):
            if owner != task.volunteer_id:
                self._attribution_failures += 1

    def _work_phase_batched(self) -> None:
        """The work phase restructured for worker-process mode: the same
        per-volunteer decisions as the serial loop, but the server calls
        are batched (``request_tasks`` / ``attribute_many`` /
        ``submit_results``) so each tick costs a constant number of
        worker round-trips instead of one per volunteer.

        Determinism: ``self._work_rng`` and the fault injector are drawn
        in the same volunteer order as the serial loop, and without
        leases every ban lands on the volunteer whose own return caused
        it (after that volunteer's work for the tick), so splitting the
        tick into request / work / submit phases cannot change any
        decision the serial loop would have made."""
        server = self.server
        assert isinstance(server, ShardedWBCServer)
        workable: list[int] = []
        need: list[int] = []
        for vid in list(self._active):
            if not self._reachable(vid):
                continue
            if server.is_banned(vid):
                # Banned volunteers are ejected from the project.
                try:
                    server.depart(vid)
                except AllocationError:  # pragma: no cover - defensive
                    pass
                self._active.remove(vid)
                self._in_flight.pop(vid, None)
                continue
            workable.append(vid)
            if vid not in self._in_flight:
                need.append(vid)
        for vid, issued in zip(need, server.request_tasks(need)):
            if isinstance(issued, ShardDownError):
                continue  # raced a dying worker; sit this tick out
            if isinstance(issued, Exception):
                raise issued
            self._in_flight[vid] = issued
        to_check: list[Task] = []
        ready: list[_PendingReturn] = []
        for vid in workable:
            task = self._in_flight.get(vid)
            if task is None:
                continue
            profile = server.profile_of(vid)
            if self._work_rng.random() >= min(1.0, profile.speed):
                continue
            result = profile.compute(task.index, self._work_rng)
            fate = self.injector.return_fate()
            del self._in_flight[vid]
            if fate.dropped:
                # The result is lost in flight; the task stays issued
                # and its lease will expire and reissue.
                server.bus.publish(
                    ReturnDropped(
                        tick=server.clock,
                        volunteer_id=vid,
                        task_index=task.index,
                    )
                )
                continue
            to_check.append(task)
            if fate.delay > 0:
                server.bus.publish(
                    ReturnDelayed(
                        tick=server.clock,
                        volunteer_id=vid,
                        task_index=task.index,
                        delay=fate.delay,
                    )
                )
                self._pending_returns.append(
                    _PendingReturn(
                        volunteer_id=vid,
                        task=task,
                        result=result,
                        due=server.clock + fate.delay,
                    )
                )
                continue
            ready.append(
                _PendingReturn(
                    volunteer_id=vid,
                    task=task,
                    result=result,
                    due=server.clock,
                )
            )
        self._check_attributions(to_check)
        outcomes = server.submit_results(
            [(p.volunteer_id, p.task.index, p.result) for p in ready]
        )
        for pending, outcome in zip(ready, outcomes):
            if outcome is None:
                if pending.retried:  # pragma: no cover - fresh returns
                    self._returns_retried += 1
                continue
            if isinstance(outcome, ShardDownError):
                if pending.backoff.exhausted:  # pragma: no cover - defensive
                    self._returns_abandoned += 1
                    continue
                pending.retried = True
                pending.due = pending.backoff.next_retry_tick(server.clock)
                self._pending_returns.append(pending)
                continue
            if isinstance(outcome, DomainError):
                self._returns_abandoned += 1
                continue
            raise outcome

    def close(self) -> None:
        """Shut down worker processes (no-op for in-process servers)."""
        if isinstance(self.server, ShardedWBCServer):
            self.server.close()

    # ------------------------------------------------------------------

    def run(self) -> SimulationOutcome:
        cfg = self.config
        server = self.server
        self._admit(cfg.initial_volunteers)
        for _ in range(cfg.ticks):
            server.tick()
            self._apply_scheduled_faults()
            # Retry queue: deliver returns that came due this tick
            # (delayed in flight, or backing off after racing a crash).
            due = [p for p in self._pending_returns if p.due <= server.clock]
            if due:
                self._pending_returns = [
                    p for p in self._pending_returns if p.due > server.clock
                ]
                for pending in due:
                    self._submit_or_queue(pending)
            # Lease reaper: expired tasks are reissued shard-locally; the
            # sim hands each reissued task to its new assignee if that
            # volunteer is free (otherwise the lease just expires again).
            if cfg.lease_ticks is not None:
                for task in server.reap_expired():
                    target = task.reissued_to
                    if target in self._active and target not in self._in_flight:
                        self._in_flight[target] = task
            # Arrivals: Bernoulli approximation of a Poisson stream.
            if self._rng.random() < cfg.arrival_rate:
                self._admit(1)
            # Departures (volunteers with no outstanding task can leave).
            for vid in list(self._active):
                if vid in self._in_flight or not self._reachable(vid):
                    continue
                if self._rng.random() < cfg.departure_rate:
                    server.depart(vid)
                    self._active.remove(vid)
            # Work: each active volunteer advances; speed s means the
            # volunteer finishes its task this tick with probability
            # min(1, s) (coarse but monotone in s and fully seeded).
            if cfg.workers is not None:
                self._work_phase_batched()
                continue
            for vid in list(self._active):
                if not self._reachable(vid):
                    continue
                if server.is_banned(vid):
                    # Banned volunteers are ejected from the project.
                    try:
                        server.depart(vid)
                    except AllocationError:  # pragma: no cover - defensive
                        pass
                    self._active.remove(vid)
                    self._in_flight.pop(vid, None)
                    continue
                profile = server.profile_of(vid)
                task = self._in_flight.get(vid)
                if task is None:
                    task = server.request_task(vid)
                    self._in_flight[vid] = task
                if self._work_rng.random() < min(1.0, profile.speed):
                    result = profile.compute(task.index, self._work_rng)
                    fate = self.injector.return_fate()
                    del self._in_flight[vid]
                    if fate.dropped:
                        # The result is lost in flight; the task stays
                        # issued and its lease will expire and reissue.
                        server.bus.publish(
                            ReturnDropped(
                                tick=server.clock,
                                volunteer_id=vid,
                                task_index=task.index,
                            )
                        )
                        continue
                    self._check_attribution(task)
                    if fate.delay > 0:
                        server.bus.publish(
                            ReturnDelayed(
                                tick=server.clock,
                                volunteer_id=vid,
                                task_index=task.index,
                                delay=fate.delay,
                            )
                        )
                        self._pending_returns.append(
                            _PendingReturn(
                                volunteer_id=vid,
                                task=task,
                                result=result,
                                due=server.clock + fate.delay,
                            )
                        )
                        continue
                    self._submit_or_queue(
                        _PendingReturn(
                            volunteer_id=vid,
                            task=task,
                            result=result,
                            due=server.clock,
                        )
                    )
        report = server.report()
        faulty_banned = report.volunteers_banned - report.honest_volunteers_banned
        return SimulationOutcome(
            apf_name=server.apf_name,
            ticks=cfg.ticks,
            volunteers_total=self._profile_count,
            tasks_completed=self.counters.count(ResultReturned),
            bad_results_returned=report.bad_results_returned,
            bad_results_caught=report.bad_results_caught,
            faulty_banned=faulty_banned,
            honest_banned=report.honest_volunteers_banned,
            departures=self._voluntary_departures,
            max_task_index=server.max_task_index,
            attribution_checks=self._attribution_checks,
            attribution_failures=self._attribution_failures,
            shards=cfg.shards,
            tasks_reissued=report.tasks_reissued,
            late_returns=report.late_returns,
            shard_crashes=self.counters.count(ShardCrashed),
            shard_restores=self.counters.count(ShardRestored),
            checkpoints_taken=self.counters.count(CheckpointTaken),
            returns_dropped=self.counters.count(ReturnDropped),
            returns_delayed=self.counters.count(ReturnDelayed),
            returns_retried=self._returns_retried,
            returns_abandoned=self._returns_abandoned,
        )


def run_family_comparison(
    apfs: list[AdditivePairingFunction], config: SimulationConfig
) -> list[SimulationOutcome]:
    """Run the *same* seeded workload against several APF families.

    Behavior, arrivals, departures and per-tick work all derive from the
    config seed, so the only variable across rows is the allocation
    function -- the compactness column (``max_task_index``) is therefore a
    controlled comparison, the Section 4.2 tradeoff made measurable.
    """
    return [WBCSimulation(apf, config).run() for apf in apfs]


def run_shard_comparison(
    apf: AdditivePairingFunction,
    config: SimulationConfig,
    shard_counts: list[int],
) -> list[SimulationOutcome]:
    """Run the same seeded workload at several shard counts.

    Arrival, behavior, and work streams derive only from the config seed,
    so the rows expose exactly what sharding costs (the global-index
    footprint of the square-shell composition) and what it preserves
    (accountability: zero attribution failures at every scale).
    """
    return [
        WBCSimulation(apf, replace(config, shards=shards)).run()
        for shards in shard_counts
    ]
