"""Command-line interface: ``python -m repro <command>`` or ``repro-pf``.

Commands
--------
``figure N``
    Print the regenerated paper figure (N in 2..6).
``table NAME ROWS COLS``
    Print any registered mapping's sample table (Figure 1 template).
``pair NAME X Y`` / ``unpair NAME Z``
    One-shot evaluation of a mapping or its inverse.
``spread NAME N [N ...]``
    Spread values S(N) with the Theta(n log n) lower bound alongside.
``strides NAME X_MAX``
    Base/stride table for an additive PF.
``crossover BIG SMALL LIMIT``
    Stride-dominance crossover between two APFs.
``wbc [--apf NAME] [--ticks T] [--seed S]``
    Run the accountable web-computing simulation and print its report.
``encode X [X ...]`` / ``decode Z``
    Godel tuple codec: any finite tuple of positive ints <-> one int.
``locality NAME``
    Row/column jump profiles and corner-block density of a mapping.
``report``
    One-command reproduction report: the key measured tables of
    EXPERIMENTS.md (figure checks, spread table, crossovers, WBC footprint).
``list``
    Registered mapping names.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.registry import available_names, get_pairing
from repro.render.tables import render_pf_table, render_rows_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pf",
        description="Pairing functions for extendible arrays and accountable web computing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="print a regenerated paper figure")
    fig.add_argument("number", type=int, choices=[2, 3, 4, 5, 6])

    table = sub.add_parser("table", help="print a mapping's sample table")
    table.add_argument("name")
    table.add_argument("rows", type=int)
    table.add_argument("cols", type=int)

    pair = sub.add_parser("pair", help="evaluate mapping(x, y)")
    pair.add_argument("name")
    pair.add_argument("x", type=int)
    pair.add_argument("y", type=int)

    unpair = sub.add_parser("unpair", help="invert a mapping at z")
    unpair.add_argument("name")
    unpair.add_argument("z", type=int)

    spread = sub.add_parser("spread", help="spread S(n) with the lower bound")
    spread.add_argument("name")
    spread.add_argument("ns", type=int, nargs="+")

    strides = sub.add_parser("strides", help="APF base/stride table")
    strides.add_argument("name")
    strides.add_argument("x_max", type=int)

    crossover = sub.add_parser("crossover", help="APF stride-dominance crossover")
    crossover.add_argument("big")
    crossover.add_argument("small")
    crossover.add_argument("limit", type=int)

    wbc = sub.add_parser("wbc", help="run the web-computing simulation")
    wbc.add_argument("--apf", default="apf-sharp")
    wbc.add_argument("--ticks", type=int, default=200)
    wbc.add_argument("--volunteers", type=int, default=20)
    wbc.add_argument("--seed", type=int, default=2002)
    wbc.add_argument("--shards", type=int, default=1,
                     help="engine shards (>1 runs the sharded server)")
    wbc.add_argument("--faults", default="",
                     help="fault spec, e.g. 'crash@40:1,restore@55:1,"
                          "corrupt@20:2,drop=0.05,delay=0.1:3'")
    wbc.add_argument("--lease-ticks", type=int, default=None,
                     help="task-lease length in ticks (expired tasks are "
                          "reissued; default: no leases)")
    wbc.add_argument("--checkpoint-every", type=int, default=None,
                     help="checkpoint shards every N ticks (sharded only)")
    wbc.add_argument("--compact-every", type=int, default=8,
                     help="rewrite a full checkpoint base after N "
                          "incremental delta segments (sharded only; "
                          "0 = never compact)")
    wbc.add_argument("--codec", default=None,
                     help="index codec composing (shard, local) into the "
                          "global task index (square-shell, szudzik, "
                          "rosenberg-strong, binprop-B, ...); implies the "
                          "sharded server")
    wbc.add_argument("--workers", type=int, default=None,
                     help="run shards in N worker processes "
                          "(default: in-process, serial)")

    encode = sub.add_parser("encode", help="encode a tuple of positive ints")
    encode.add_argument("values", type=int, nargs="*")

    decode = sub.add_parser("decode", help="decode an integer to its tuple")
    decode.add_argument("z", type=int)

    locality = sub.add_parser("locality", help="jump profiles and block density")
    locality.add_argument("name")
    locality.add_argument("--window", type=int, default=16)

    sub.add_parser("report", help="print the paper-reproduction report")

    sub.add_parser("list", help="list registered mapping names")

    lint = sub.add_parser(
        "lint", help="run reprolint, the project's AST invariant analyzer"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    lint.add_argument("--json", action="store_true", help="machine-readable report")
    lint.add_argument("--rules", help="comma-separated rule codes to run")
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rules table and exit"
    )
    lint.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=True,
        help="reuse cached per-file results (default)",
    )
    lint.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="ignore and do not write the incremental cache",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for files needing analysis (0 = one per CPU)",
    )
    lint.add_argument(
        "--changed",
        action="store_true",
        help="report findings only for files changed per git (analysis "
        "stays project-wide so cross-module rules see every summary)",
    )
    return parser


def _cmd_figure(number: int) -> str:
    from repro.render import figure2, figure3, figure4, figure5, figure6

    return {2: figure2, 3: figure3, 4: figure4, 5: figure5, 6: figure6}[number]()


def _cmd_spread(name: str, ns: list[int]) -> str:
    from repro.core.spread import spread_curve

    curve = spread_curve(get_pairing(name), ns)
    rows = [
        (p.n, p.spread, p.lower_bound, f"{p.utilization:.4f}", f"{p.overhead_vs_bound:.3f}")
        for p in curve.points
    ]
    return render_rows_table(
        ["n", "S(n)", "lower bound D(n)", "utilization", "S(n)/D(n)"],
        rows,
        title=f"spread of {name}",
    )


def _cmd_strides(name: str, x_max: int) -> str:
    from repro.apf.base import AdditivePairingFunction

    apf = get_pairing(name)
    if not isinstance(apf, AdditivePairingFunction):
        raise SystemExit(f"{name} is not an additive PF")
    rows = [(x, apf.group_of(x) if hasattr(apf, "group_of") else "-", apf.base(x), apf.stride(x)) for x in range(1, x_max + 1)]
    return render_rows_table(["x", "g", "B_x", "S_x"], rows, title=f"strides of {name}")


def _cmd_crossover(big_name: str, small_name: str, limit: int) -> str:
    from repro.apf.analysis import dominance_crossover
    from repro.apf.base import AdditivePairingFunction

    big, small = get_pairing(big_name), get_pairing(small_name)
    if not isinstance(big, AdditivePairingFunction) or not isinstance(
        small, AdditivePairingFunction
    ):
        raise SystemExit("crossover requires two additive PFs")
    x0 = dominance_crossover(big, small, limit)
    if x0 is None:
        return f"{big_name} does not dominate {small_name} at x = {limit}"
    return (
        f"{big_name}.stride(x) >= {small_name}.stride(x) for all x in "
        f"[{x0}, {limit}] (first such x0 = {x0})"
    )


def _cmd_wbc(
    apf_name: str,
    ticks: int,
    volunteers: int,
    seed: int,
    shards: int = 1,
    faults: str = "",
    lease_ticks: int | None = None,
    checkpoint_every: int | None = None,
    workers: int | None = None,
    compact_every: int | None = 8,
    codec: str | None = None,
) -> str:
    from repro.apf.base import AdditivePairingFunction
    from repro.webcompute.simulation import SimulationConfig, WBCSimulation

    apf = get_pairing(apf_name)
    if not isinstance(apf, AdditivePairingFunction):
        raise SystemExit(f"{apf_name} is not an additive PF")
    config = SimulationConfig(
        ticks=ticks,
        initial_volunteers=volunteers,
        seed=seed,
        shards=shards,
        faults=faults,
        lease_ticks=lease_ticks,
        checkpoint_every=checkpoint_every,
        compact_every=compact_every,
        workers=workers,
        codec=codec,
    )
    sim = WBCSimulation(apf, config)
    try:
        outcome = sim.run()
    finally:
        sim.close()
    rows = [
        ("tasks completed", outcome.tasks_completed),
        ("bad results returned", outcome.bad_results_returned),
        ("bad results caught", outcome.bad_results_caught),
        ("faulty volunteers banned", outcome.faulty_banned),
        ("honest volunteers banned", outcome.honest_banned),
        ("departures", outcome.departures),
        ("max task index", outcome.max_task_index),
        ("task-space density", f"{outcome.density:.3e}"),
        ("attribution failures", outcome.attribution_failures),
    ]
    if outcome.shards > 1:
        rows.insert(0, ("engine shards", outcome.shards))
    if codec is not None:
        rows.insert(0, ("index codec", codec))
    if workers is not None:
        rows.insert(1, ("worker processes", workers))
    if lease_ticks is not None:
        rows.append(("tasks reissued", outcome.tasks_reissued))
        rows.append(("late returns", outcome.late_returns))
    if faults or checkpoint_every is not None:
        rows.append(("shard crashes", outcome.shard_crashes))
        rows.append(("shard restores", outcome.shard_restores))
        rows.append(("checkpoints taken", outcome.checkpoints_taken))
        rows.append(("returns dropped", outcome.returns_dropped))
        rows.append(("returns delayed", outcome.returns_delayed))
        rows.append(("returns retried", outcome.returns_retried))
        rows.append(("returns abandoned", outcome.returns_abandoned))
    return render_rows_table(
        ["metric", "value"], rows, title=f"WBC simulation over {apf_name} ({ticks} ticks)"
    )


def _cmd_locality(name: str, window: int) -> str:
    from repro.core.locality import block_span, col_jump_profile, row_jump_profile

    mapping = get_pairing(name)
    rows = []
    for r in (1, 2, window // 2):
        p = row_jump_profile(mapping, r, window)
        rows.append(("row", r, f"{p.mean:.1f}", p.maximum, p.constant))
    for c in (1, 2, window // 2):
        p = col_jump_profile(mapping, c, window)
        rows.append(("col", c, f"{p.mean:.1f}", p.maximum, p.constant))
    low, high, density = block_span(mapping, 1, 1, max(2, window // 4))
    table = render_rows_table(
        ["walk", "index", "mean |jump|", "max", "constant"],
        rows,
        title=f"locality of {name} (window {window})",
    )
    return table + f"\ncorner block: addresses {low}..{high}, density {density:.3f}"


def _cmd_report() -> str:
    """The one-command reproduction summary (the EXPERIMENTS.md core)."""
    from repro.apf.analysis import dominance_crossover
    from repro.apf.families import TBracket, TSharp, TStar
    from repro.core.diagonal import DiagonalPairing
    from repro.core.hyperbolic import HyperbolicPairing
    from repro.core.squareshell import SquareShellPairing
    from repro.numbertheory.lattice import spread_lower_bound
    from repro.render.figures import (
        figure2_data,
        figure3_data,
        figure4_data,
        figure5_data,
        figure6_data,
    )

    sections: list[str] = []

    # Figures: regenerate and self-check sizes.
    checks = [
        ("Figure 2 (diagonal 8x8)", figure2_data(), 8 * 8),
        ("Figure 3 (square-shell 8x8)", figure3_data(), 8 * 8),
        ("Figure 4 (hyperbolic 8x7)", figure4_data(), 8 * 7),
    ]
    fig_rows = []
    for label, data, cells in checks:
        flat = [v for row in data for v in row]
        fig_rows.append((label, f"{len(flat)}/{cells} values", "regenerated"))
    fig_rows.append(
        ("Figure 5 (lattice xy<=16)", f"{sum(figure5_data())} points", "regenerated")
    )
    fig6 = figure6_data()
    count6 = sum(len(values) for rows in fig6.values() for _x, _g, values in rows)
    fig_rows.append(("Figure 6 (APF samples)", f"{count6} values", "regenerated"))
    sections.append(
        render_rows_table(["figure", "content", "status"], fig_rows, title="Figures")
    )

    # Spread table.
    mappings = [DiagonalPairing(), SquareShellPairing(), HyperbolicPairing()]
    ns = [16, 64, 256, 1024]
    spread_rows = []
    for n in ns:
        row = [n] + [m.spread(n) for m in mappings] + [spread_lower_bound(n)]
        spread_rows.append(row)
    sections.append(
        render_rows_table(
            ["n", "D", "A_1,1", "H", "bound D(n)"],
            spread_rows,
            title="Spread S(n) vs the Theta(n log n) lower bound (H meets it exactly)",
        )
    )

    # Crossovers.
    sharp = TSharp()
    cross_rows = []
    for c, paper in ((1, 5), (2, 11), (3, 25)):
        measured = dominance_crossover(TBracket(c), sharp, 500)
        cross_rows.append((f"T^<{c}> vs T#", paper, measured))
    sections.append(
        render_rows_table(
            ["comparison", "paper x0", "measured x0"],
            cross_rows,
            title="Stride-dominance crossovers (T^<3>: single violation at x=32)",
        )
    )

    # WBC footprint.
    from repro.webcompute.simulation import SimulationConfig, run_family_comparison

    config = SimulationConfig(ticks=150, initial_volunteers=20, seed=2002)
    outcomes = run_family_comparison([TBracket(1), TBracket(3), sharp, TStar()], config)
    wbc_rows = [
        (o.apf_name, o.tasks_completed, o.max_task_index, f"{o.density:.2e}")
        for o in outcomes
    ]
    sections.append(
        render_rows_table(
            ["APF", "tasks", "max task index", "density"],
            wbc_rows,
            title="WBC footprint (same seeded workload)",
        )
    )
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "figure":
        print(_cmd_figure(args.number))
    elif args.command == "table":
        print(render_pf_table(get_pairing(args.name), args.rows, args.cols))
    elif args.command == "pair":
        print(get_pairing(args.name).pair(args.x, args.y))
    elif args.command == "unpair":
        x, y = get_pairing(args.name).unpair(args.z)
        print(f"{x} {y}")
    elif args.command == "spread":
        print(_cmd_spread(args.name, args.ns))
    elif args.command == "strides":
        print(_cmd_strides(args.name, args.x_max))
    elif args.command == "crossover":
        print(_cmd_crossover(args.big, args.small, args.limit))
    elif args.command == "wbc":
        print(
            _cmd_wbc(
                args.apf,
                args.ticks,
                args.volunteers,
                args.seed,
                args.shards,
                args.faults,
                args.lease_ticks,
                args.checkpoint_every,
                args.workers,
                args.compact_every if args.compact_every != 0 else None,
                args.codec,
            )
        )
    elif args.command == "encode":
        from repro.encoding import TupleCodec

        print(TupleCodec().encode(args.values))
    elif args.command == "decode":
        from repro.encoding import TupleCodec

        values = TupleCodec().decode(args.z)
        print(" ".join(map(str, values)) if values else "()")
    elif args.command == "locality":
        print(_cmd_locality(args.name, args.window))
    elif args.command == "report":
        print(_cmd_report())
    elif args.command == "list":
        for name in available_names():
            print(name)
        print("(plus parameterized: aspect-AxB, binprop-B, apf-bracket-C, apf-power-K)")
    elif args.command == "lint":
        from repro.staticcheck.runner import run_cli as lint_cli

        lint_argv = list(args.paths)
        if args.json:
            lint_argv.append("--json")
        if args.rules:
            lint_argv.extend(["--rules", args.rules])
        if args.list_rules:
            lint_argv.append("--list-rules")
        if not args.cache:
            lint_argv.append("--no-cache")
        if args.jobs:
            lint_argv.extend(["--jobs", str(args.jobs)])
        if args.changed:
            lint_argv.append("--changed")
        return lint_cli(lint_argv)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
