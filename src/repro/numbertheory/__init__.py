"""Number-theoretic substrate used throughout the reproduction.

This subpackage is deliberately dependency-light (pure Python integers, with
optional numpy batch paths) and exact: everything operates on arbitrary-
precision ``int``.  The pairing-function layers in :mod:`repro.core` and
:mod:`repro.apf` build exclusively on the primitives exported here.

Contents
--------
:mod:`~repro.numbertheory.bits`
    Powers of two, ``ilog2``, 2-adic valuation -- the machinery behind the
    additive pairing functions of Section 4.
:mod:`~repro.numbertheory.integers`
    Integer square roots, triangular numbers and their inverses, binomial
    coefficients -- the machinery behind the diagonal PF of Section 2.
:mod:`~repro.numbertheory.divisors`
    Divisor enumeration and the divisor-count function ``delta(n)`` of
    equation (3.4), plus a sieve for batch computation.
:mod:`~repro.numbertheory.divisor_sums`
    The summatory divisor function ``D(n) = sum_{k<=n} delta(k)`` via the
    Dirichlet hyperbola method, and its inverse by binary search -- the
    machinery behind the hyperbolic PF of Section 3.2.3.
:mod:`~repro.numbertheory.lattice`
    Lattice points under the hyperbola ``xy = n`` (Figure 5) and the
    Theta(n log n) compactness lower bound.
:mod:`~repro.numbertheory.progressions`
    Arithmetic progressions and the odd-integer decomposition of Lemma 4.1.
"""

from __future__ import annotations

from repro.numbertheory.bits import (
    bit_length,
    ilog2,
    is_power_of_two,
    next_power_of_two,
    two_adic_valuation,
    odd_part,
)
from repro.numbertheory.integers import (
    isqrt_exact,
    binomial,
    triangular,
    triangular_root,
    is_perfect_square,
    ceil_div,
    ceil_sqrt,
)
from repro.numbertheory.divisors import (
    divisors,
    divisors_descending,
    divisor_count,
    divisor_count_sieve,
    divisor_list_sieve,
    divisor_pairs,
    factorize,
)
from repro.numbertheory.divisor_sums import (
    divisor_summatory,
    divisor_summatory_naive,
    smallest_n_with_summatory_at_least,
)
from repro.numbertheory.lattice import (
    lattice_points_under_hyperbola,
    count_lattice_points_under_hyperbola,
    hyperbola_staircase,
    spread_lower_bound,
)
from repro.numbertheory.valuations import (
    decompose_radix,
    radix_valuation,
    unit_part,
)
from repro.numbertheory.progressions import (
    ArithmeticProgression,
    odd_residues,
    decompose_odd,
    recompose_odd,
)

__all__ = [
    "bit_length",
    "ilog2",
    "is_power_of_two",
    "next_power_of_two",
    "two_adic_valuation",
    "odd_part",
    "isqrt_exact",
    "binomial",
    "triangular",
    "triangular_root",
    "is_perfect_square",
    "ceil_div",
    "ceil_sqrt",
    "divisors",
    "divisors_descending",
    "divisor_count",
    "divisor_count_sieve",
    "divisor_list_sieve",
    "divisor_pairs",
    "factorize",
    "divisor_summatory",
    "divisor_summatory_naive",
    "smallest_n_with_summatory_at_least",
    "lattice_points_under_hyperbola",
    "count_lattice_points_under_hyperbola",
    "hyperbola_staircase",
    "spread_lower_bound",
    "decompose_radix",
    "radix_valuation",
    "unit_part",
    "ArithmeticProgression",
    "odd_residues",
    "decompose_odd",
    "recompose_odd",
]
