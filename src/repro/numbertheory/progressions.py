"""Arithmetic progressions and the odd-integer decomposition of Lemma 4.1.

Lemma 4.1 (Niven & Zuckerman): *for any positive integer c, every odd
integer can be written in precisely one of the 2**(c-1) forms*

    ``2**c * n + 1,  2**c * n + 3,  ...,  2**c * n + (2**c - 1)``

*for some nonnegative n*.  In other words the odd integers partition into
the ``2**(c-1)`` arithmetic progressions of stride ``2**c`` whose residues
are the odd residues mod ``2**c``.  Procedure APF-Constructor hands one such
progression to each member of a group, which is why every APF row is an
arithmetic progression -- the property the whole of Section 4 trades on.

:class:`ArithmeticProgression` is also the *contract object* the
web-computing layer stores per volunteer: base + stride, with O(1)
membership testing and term indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import DomainError

__all__ = [
    "ArithmeticProgression",
    "odd_residues",
    "decompose_odd",
    "recompose_odd",
]


@dataclass(frozen=True, slots=True)
class ArithmeticProgression:
    """The progression ``base, base + stride, base + 2*stride, ...``.

    Both ``base`` and ``stride`` must be positive -- these model task
    indices, which the paper draws from ``N = {1, 2, ...}``.
    """

    base: int
    stride: int

    def __post_init__(self) -> None:
        if isinstance(self.base, bool) or not isinstance(self.base, int):
            raise DomainError(f"base must be an int, got {type(self.base).__name__}")
        if isinstance(self.stride, bool) or not isinstance(self.stride, int):
            raise DomainError(
                f"stride must be an int, got {type(self.stride).__name__}"
            )
        if self.base <= 0:
            raise DomainError(f"base must be positive, got {self.base}")
        if self.stride <= 0:
            raise DomainError(f"stride must be positive, got {self.stride}")

    def term(self, t: int) -> int:
        """The *t*-th term (1-indexed): ``base + (t - 1) * stride``.

        >>> ArithmeticProgression(3, 4).term(1)
        3
        >>> ArithmeticProgression(3, 4).term(5)
        19
        """
        if isinstance(t, bool) or not isinstance(t, int) or t <= 0:
            raise DomainError(f"t must be a positive int, got {t!r}")
        return self.base + (t - 1) * self.stride

    def index_of(self, value: int) -> int:
        """The 1-based index *t* with ``term(t) == value``.

        Raises :class:`DomainError` if *value* is not in the progression.

        >>> ArithmeticProgression(3, 4).index_of(19)
        5
        """
        if isinstance(value, bool) or not isinstance(value, int):
            raise DomainError(f"value must be an int, got {type(value).__name__}")
        offset = value - self.base
        if offset < 0 or offset % self.stride != 0:
            raise DomainError(f"{value} is not a term of {self}")
        return offset // self.stride + 1

    def __contains__(self, value: object) -> bool:
        if isinstance(value, bool) or not isinstance(value, int):
            return False
        offset = value - self.base
        return offset >= 0 and offset % self.stride == 0

    def terms(self, count: int) -> Iterator[int]:
        """Yield the first *count* terms.

        >>> list(ArithmeticProgression(1, 2).terms(4))
        [1, 3, 5, 7]
        """
        if isinstance(count, bool) or not isinstance(count, int) or count < 0:
            raise DomainError(f"count must be a nonnegative int, got {count!r}")
        for t in range(1, count + 1):
            yield self.term(t)

    def __str__(self) -> str:
        return f"{self.base} + {self.stride}*k (k >= 0)"


def odd_residues(c: int) -> list[int]:
    """The ``2**(c-1)`` odd residues mod ``2**c`` -- the residue classes of
    Lemma 4.1.

    >>> odd_residues(1), odd_residues(2), odd_residues(3)
    ([1], [1, 3], [1, 3, 5, 7])
    """
    if isinstance(c, bool) or not isinstance(c, int) or c <= 0:
        raise DomainError(f"c must be a positive int, got {c!r}")
    return list(range(1, 1 << c, 2))


def decompose_odd(odd: int, c: int) -> tuple[int, int]:
    """Write odd integer *odd* in its unique Lemma 4.1 form
    ``2**c * n + r`` with ``r`` an odd residue mod ``2**c``; returns
    ``(n, r)``.

    >>> decompose_odd(13, 2)
    (3, 1)
    >>> decompose_odd(13, 3)
    (1, 5)
    """
    if isinstance(odd, bool) or not isinstance(odd, int) or odd <= 0:
        raise DomainError(f"odd must be a positive int, got {odd!r}")
    if odd % 2 == 0:
        raise DomainError(f"odd must be odd, got {odd}")
    if isinstance(c, bool) or not isinstance(c, int) or c <= 0:
        raise DomainError(f"c must be a positive int, got {c!r}")
    modulus = 1 << c
    r = odd % modulus
    n = odd // modulus
    return (n, r)


def recompose_odd(n: int, r: int, c: int) -> int:
    """Inverse of :func:`decompose_odd`: ``2**c * n + r``.

    >>> recompose_odd(3, 1, 2)
    13
    """
    if isinstance(n, bool) or not isinstance(n, int) or n < 0:
        raise DomainError(f"n must be a nonnegative int, got {n!r}")
    if isinstance(c, bool) or not isinstance(c, int) or c <= 0:
        raise DomainError(f"c must be a positive int, got {c!r}")
    if isinstance(r, bool) or not isinstance(r, int) or r <= 0 or r % 2 == 0:
        raise DomainError(f"r must be a positive odd int, got {r!r}")
    if r >= (1 << c):
        raise DomainError(f"r must be < 2**c = {1 << c}, got {r}")
    return (n << c) + r
