"""General r-adic valuations.

The 2-adic valuation (:mod:`repro.numbertheory.bits`) powers the paper's
APF constructor: signatures ``2**g`` make groups recoverable from trailing
binary zeros.  Nothing in the argument is specific to 2 -- every positive
integer is uniquely ``r**v * m`` with ``r`` not dividing ``m`` -- and the
radix-r generalization (:mod:`repro.apf.radix`) needs exactly these
primitives.
"""

from __future__ import annotations

from repro.errors import DomainError

__all__ = ["radix_valuation", "unit_part", "decompose_radix"]


def _check(n: int, r: int) -> None:
    if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
        raise DomainError(f"n must be a positive int, got {n!r}")
    if isinstance(r, bool) or not isinstance(r, int) or r < 2:
        raise DomainError(f"radix must be an int >= 2, got {r!r}")


def radix_valuation(n: int, r: int) -> int:
    """The largest ``v`` with ``r**v`` dividing *n*.

    >>> radix_valuation(54, 3), radix_valuation(8, 2), radix_valuation(7, 5)
    (3, 3, 0)
    """
    _check(n, r)
    v = 0
    while n % r == 0:
        n //= r
        v += 1
    return v


def unit_part(n: int, r: int) -> int:
    """The cofactor ``m`` in ``n = r**v * m`` with ``r`` not dividing ``m``.

    >>> unit_part(54, 3), unit_part(54, 2)
    (2, 27)
    """
    _check(n, r)
    while n % r == 0:
        n //= r
    return n


def decompose_radix(n: int, r: int) -> tuple[int, int]:
    """``(v, m)`` with ``n = r**v * m`` and ``r`` not dividing ``m`` -- the
    unique decomposition that makes radix-r APF constructions bijective.

    >>> decompose_radix(54, 3)
    (3, 2)
    >>> decompose_radix(54, 3)[1] % 3 != 0
    True
    """
    _check(n, r)
    v = 0
    while n % r == 0:
        n //= r
        v += 1
    return (v, n)
