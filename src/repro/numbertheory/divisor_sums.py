"""The summatory divisor function ``D(n) = sum_{k<=n} delta(k)``.

The hyperbolic PF (3.4) opens with ``sum_{k=1}^{xy-1} delta(k)`` -- the total
number of lattice points on all hyperbolic shells strictly before shell
``xy``.  Evaluating that sum naively costs ``O(n sqrt n)``; the Dirichlet
hyperbola method brings it to ``O(sqrt n)``:

    ``D(n) = 2 * sum_{i=1}^{floor(sqrt n)} floor(n / i)  -  floor(sqrt n)**2``

which follows from counting lattice points under ``xy = n`` symmetrically
about the diagonal.  Because ``D`` is strictly increasing, the *inverse*
problem -- "which shell does address ``z`` land on?" -- is a binary search,
giving the hyperbolic PF an ``O(sqrt z * log z)`` unpair.
"""

from __future__ import annotations

from repro.errors import DomainError
from repro.numbertheory.divisors import divisor_count
from repro.numbertheory.integers import isqrt_exact

__all__ = [
    "divisor_summatory",
    "divisor_summatory_naive",
    "smallest_n_with_summatory_at_least",
]


def divisor_summatory(n: int) -> int:
    """``D(n) = sum_{k=1}^{n} delta(k)`` via the hyperbola method, ``O(sqrt n)``.

    Accepts ``n = 0`` (empty sum) so that the hyperbolic PF can write
    ``D(xy - 1)`` uniformly, including at ``xy = 1``.

    >>> [divisor_summatory(n) for n in range(9)]
    [0, 1, 3, 5, 8, 10, 14, 16, 20]
    """
    if isinstance(n, bool) or not isinstance(n, int):
        raise DomainError(f"n must be an int, got {type(n).__name__}")
    if n < 0:
        raise DomainError(f"n must be nonnegative, got {n}")
    if n == 0:
        return 0
    root = isqrt_exact(n)
    total = 0
    for i in range(1, root + 1):
        total += n // i
    return 2 * total - root * root


def divisor_summatory_naive(n: int) -> int:
    """``D(n)`` by direct summation of ``delta(k)`` -- the oracle used by
    tests to validate the hyperbola method (``O(n sqrt n)``; keep *n* small).

    >>> divisor_summatory_naive(8) == divisor_summatory(8)
    True
    """
    if isinstance(n, bool) or not isinstance(n, int):
        raise DomainError(f"n must be an int, got {type(n).__name__}")
    if n < 0:
        raise DomainError(f"n must be nonnegative, got {n}")
    return sum(divisor_count(k) for k in range(1, n + 1))


def smallest_n_with_summatory_at_least(target: int) -> int:
    """Smallest ``n >= 1`` with ``D(n) >= target`` (for ``target >= 1``).

    This is the shell-location step of the hyperbolic PF's inverse: address
    ``z`` lies on shell ``n`` exactly when ``D(n-1) < z <= D(n)``.

    The search brackets ``n`` by exponential doubling and then bisects.
    Since ``D(n) >= n``, the answer is at most ``target``, and since
    ``D(n) ~ n ln n`` the doubling phase terminates in ``O(log target)``
    steps; each probe costs ``O(sqrt n)``.

    >>> [smallest_n_with_summatory_at_least(t) for t in (1, 2, 3, 4, 5, 6, 9)]
    [1, 2, 2, 3, 3, 4, 5]
    """
    if isinstance(target, bool) or not isinstance(target, int):
        raise DomainError(f"target must be an int, got {type(target).__name__}")
    if target <= 0:
        raise DomainError(f"target must be positive, got {target}")
    lo, hi = 1, 1
    while divisor_summatory(hi) < target:
        lo = hi + 1
        hi *= 2
    # Invariant: D(lo - 1) < target <= D(hi).
    while lo < hi:
        mid = (lo + hi) // 2
        if divisor_summatory(mid) >= target:
            hi = mid
        else:
            lo = mid + 1
    return lo
