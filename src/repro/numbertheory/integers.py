"""Exact integer arithmetic helpers: square roots, triangular numbers,
binomial coefficients.

The diagonal pairing function (2.1) is ``D(x, y) = C(x+y-1, 2) + y``; its
inverse needs the *triangular root* -- the largest ``s`` with
``s(s+1)/2 <= z`` -- which we compute exactly from ``math.isqrt`` with no
floating point anywhere (floats would silently corrupt results beyond
2**53, and the whole point of a Python reproduction is exact bignums).
"""

from __future__ import annotations

import math

from repro.errors import DomainError

__all__ = [
    "isqrt_exact",
    "ceil_sqrt",
    "is_perfect_square",
    "binomial",
    "triangular",
    "triangular_root",
    "ceil_div",
]


def isqrt_exact(n: int) -> int:
    """Floor of the square root of a nonnegative integer, exactly.

    Thin validated wrapper over :func:`math.isqrt`; kept as a named function
    so that every exact-arithmetic call site in the library reads uniformly.

    >>> [isqrt_exact(k) for k in (0, 1, 3, 4, 8, 9, 10**30)]
    [0, 1, 1, 2, 2, 3, 1000000000000000]
    """
    if isinstance(n, bool) or not isinstance(n, int):
        raise DomainError(f"n must be an int, got {type(n).__name__}")
    if n < 0:
        raise DomainError(f"n must be nonnegative, got {n}")
    return math.isqrt(n)


def ceil_sqrt(n: int) -> int:
    """Ceiling of the square root of a nonnegative integer, exactly.

    >>> [ceil_sqrt(k) for k in (0, 1, 2, 4, 5, 9)]
    [0, 1, 2, 2, 3, 3]
    """
    r = isqrt_exact(n)
    return r if r * r == n else r + 1


def is_perfect_square(n: int) -> bool:
    """Whether nonnegative *n* is a perfect square.

    >>> [k for k in range(17) if is_perfect_square(k)]
    [0, 1, 4, 9, 16]
    """
    r = isqrt_exact(n)
    return r * r == n


def binomial(n: int, k: int) -> int:
    """Binomial coefficient ``C(n, k)``, with ``C(n, k) = 0`` for ``k > n``.

    The paper writes the diagonal PF as ``D(x,y) = C(x+y-1, 2) + y``; this
    helper makes that formula transcribable verbatim.

    >>> binomial(5, 2), binomial(1, 2), binomial(0, 0)
    (10, 0, 1)
    """
    if isinstance(n, bool) or not isinstance(n, int):
        raise DomainError(f"n must be an int, got {type(n).__name__}")
    if isinstance(k, bool) or not isinstance(k, int):
        raise DomainError(f"k must be an int, got {type(k).__name__}")
    if n < 0 or k < 0:
        raise DomainError(f"binomial requires nonnegative arguments, got ({n}, {k})")
    if k > n:
        return 0
    return math.comb(n, k)


def triangular(s: int) -> int:
    """The *s*-th triangular number ``s(s+1)/2`` for nonnegative *s*.

    >>> [triangular(s) for s in range(7)]
    [0, 1, 3, 6, 10, 15, 21]
    """
    if isinstance(s, bool) or not isinstance(s, int):
        raise DomainError(f"s must be an int, got {type(s).__name__}")
    if s < 0:
        raise DomainError(f"s must be nonnegative, got {s}")
    return s * (s + 1) // 2


def triangular_root(z: int) -> int:
    """Largest ``s >= 0`` with ``triangular(s) <= z``, exactly.

    Solves ``s(s+1)/2 <= z`` via ``s = floor((isqrt(8z+1) - 1) / 2)`` and then
    repairs any off-by-one defensively (isqrt is exact so the formula is too,
    but the repair loop documents and enforces the invariant).

    >>> [triangular_root(z) for z in (0, 1, 2, 3, 5, 6, 20, 21)]
    [0, 1, 1, 2, 2, 3, 5, 6]
    """
    if isinstance(z, bool) or not isinstance(z, int):
        raise DomainError(f"z must be an int, got {type(z).__name__}")
    if z < 0:
        raise DomainError(f"z must be nonnegative, got {z}")
    s = (math.isqrt(8 * z + 1) - 1) // 2
    while triangular(s + 1) <= z:  # pragma: no cover - formula is exact
        s += 1
    while triangular(s) > z:  # pragma: no cover - formula is exact
        s -= 1
    return s


def ceil_div(a: int, b: int) -> int:
    """Ceiling division ``ceil(a / b)`` for integers with positive *b*.

    >>> [ceil_div(a, 3) for a in range(1, 8)]
    [1, 1, 1, 2, 2, 2, 3]
    """
    if isinstance(b, bool) or not isinstance(b, int) or b <= 0:
        raise DomainError(f"b must be a positive int, got {b!r}")
    if isinstance(a, bool) or not isinstance(a, int):
        raise DomainError(f"a must be an int, got {type(a).__name__}")
    return -(-a // b)
