"""Divisor enumeration and the divisor-count function ``delta(n)``.

The hyperbolic pairing function (3.4) enumerates each shell ``xy = c`` "in
reverse lexicographic order" of its 2-part factorizations -- i.e. by
descending first coordinate.  Computing ``H(x, y)`` therefore needs, for
``n = x*y``:

* ``delta(n)`` -- the number of divisors of ``n`` (the shell size), and
* the rank of ``x`` among the divisors of ``n`` in descending order.

Both come from trial division up to ``sqrt(n)`` (``O(sqrt n)`` per call);
for dense sweeps :func:`divisor_count_sieve` computes ``delta(1..n)`` in
``O(n log n)`` total, the batch idiom preferred for benchmark workloads.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import DomainError
from repro.numbertheory.integers import isqrt_exact

__all__ = [
    "divisors",
    "divisors_descending",
    "divisor_count",
    "divisor_count_sieve",
    "divisor_list_sieve",
    "divisor_pairs",
    "factorize",
]


def _require_positive(n: int, name: str = "n") -> int:
    if isinstance(n, bool) or not isinstance(n, int):
        raise DomainError(f"{name} must be an int, got {type(n).__name__}")
    if n <= 0:
        raise DomainError(f"{name} must be positive, got {n}")
    return n


def divisors(n: int) -> list[int]:
    """All positive divisors of *n* in increasing order.

    Trial division up to ``sqrt(n)``: the small divisors are found in order
    and each contributes its cofactor to the tail.

    >>> divisors(12)
    [1, 2, 3, 4, 6, 12]
    >>> divisors(1)
    [1]
    >>> divisors(49)
    [1, 7, 49]
    """
    _require_positive(n)
    small: list[int] = []
    large: list[int] = []
    root = isqrt_exact(n)
    for d in range(1, root + 1):
        if n % d == 0:
            small.append(d)
            q = n // d
            if q != d:
                large.append(q)
    large.reverse()
    return small + large


def divisors_descending(n: int) -> list[int]:
    """All positive divisors of *n* in decreasing order.

    This is the enumeration order of the hyperbolic PF's shells: the pair
    ``(d, n // d)`` with the largest ``d`` comes first ("reverse
    lexicographic order" in the paper's terms).

    >>> divisors_descending(12)
    [12, 6, 4, 3, 2, 1]
    """
    ds = divisors(n)
    ds.reverse()
    return ds


def divisor_count(n: int) -> int:
    """``delta(n)``: the number of positive divisors of *n*.

    >>> [divisor_count(k) for k in range(1, 13)]
    [1, 2, 2, 3, 2, 4, 2, 4, 3, 4, 2, 6]
    """
    _require_positive(n)
    count = 0
    root = isqrt_exact(n)
    for d in range(1, root + 1):
        if n % d == 0:
            count += 2
    if root * root == n:
        count -= 1
    return count


def divisor_count_sieve(limit: int) -> list[int]:
    """``delta(k)`` for every ``k`` in ``1..limit`` as a list of length
    ``limit + 1`` (index 0 unused, set to 0).

    Classic ``O(limit log limit)`` sieve: each ``d`` increments all of its
    multiples.  Used by sweep-style benchmarks and by property tests as an
    independent oracle for :func:`divisor_count`.

    >>> divisor_count_sieve(6)
    [0, 1, 2, 2, 3, 2, 4]
    """
    if isinstance(limit, bool) or not isinstance(limit, int):
        raise DomainError(f"limit must be an int, got {type(limit).__name__}")
    if limit < 0:
        raise DomainError(f"limit must be nonnegative, got {limit}")
    counts = [0] * (limit + 1)
    for d in range(1, limit + 1):
        for multiple in range(d, limit + 1, d):
            counts[multiple] += 1
    return counts


def divisor_list_sieve(limit: int) -> list[list[int]]:
    """The full divisor lists of every ``k`` in ``1..limit``: entry ``k`` is
    ``divisors(k)`` (ascending); entry 0 is empty.

    ``O(limit log limit)`` time and space -- the batch companion to
    :func:`divisors` for window sweeps (e.g. generating large hyperbolic-PF
    tables, where per-cell trial division would dominate).

    >>> divisor_list_sieve(6)[6]
    [1, 2, 3, 6]
    >>> divisor_list_sieve(6)[4]
    [1, 2, 4]
    """
    if isinstance(limit, bool) or not isinstance(limit, int):
        raise DomainError(f"limit must be an int, got {type(limit).__name__}")
    if limit < 0:
        raise DomainError(f"limit must be nonnegative, got {limit}")
    lists: list[list[int]] = [[] for _ in range(limit + 1)]
    for d in range(1, limit + 1):
        for multiple in range(d, limit + 1, d):
            lists[multiple].append(d)
    return lists


def divisor_pairs(n: int) -> Iterator[tuple[int, int]]:
    """The 2-part factorizations ``(x, y)`` of *n* with ``x * y == n``, in
    the hyperbolic PF's shell order: descending ``x``.

    >>> list(divisor_pairs(6))
    [(6, 1), (3, 2), (2, 3), (1, 6)]
    >>> list(divisor_pairs(4))
    [(4, 1), (2, 2), (1, 4)]
    """
    for d in divisors_descending(n):
        yield (d, n // d)


def factorize(n: int) -> dict[int, int]:
    """Prime factorization of *n* as ``{prime: exponent}``.

    Plain trial division -- entirely adequate for the magnitudes exercised
    here, and an independent route to ``delta(n) = prod(e+1)`` for tests.

    >>> factorize(360)
    {2: 3, 3: 2, 5: 1}
    >>> factorize(1)
    {}
    """
    _require_positive(n)
    factors: dict[int, int] = {}
    remaining = n
    for p in (2, 3):
        while remaining % p == 0:
            factors[p] = factors.get(p, 0) + 1
            remaining //= p
    # Wheel over 6k +/- 1 candidates.
    candidate = 5
    while candidate * candidate <= remaining:
        for p in (candidate, candidate + 2):
            while remaining % p == 0:
                factors[p] = factors.get(p, 0) + 1
                remaining //= p
        candidate += 6
    if remaining > 1:
        factors[remaining] = factors.get(remaining, 0) + 1
    return factors
