"""Lattice points under the hyperbola ``xy = n`` (Figure 5) and the
compactness lower bound of Section 3.2.3.

The paper's optimality argument for the hyperbolic PF runs through a single
geometric fact: the union of the positions of *all* arrays with at most
``n`` cells is exactly the set of positive lattice points ``(x, y)`` with
``x * y <= n`` (Figure 5 draws this for ``n = 16``), and that set has
``Theta(n log n)`` points.  Since every array contains position ``(1, 1)``,
*some* array with ``<= n`` cells is spread over ``Omega(n log n)``
addresses no matter which PF is used -- the bound the hyperbolic PF meets.

Note the count of lattice points under ``xy = n`` is precisely the
summatory divisor function ``D(n)`` of
:mod:`repro.numbertheory.divisor_sums`; both views are exposed and
cross-checked in tests.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import DomainError
from repro.numbertheory.divisor_sums import divisor_summatory

__all__ = [
    "lattice_points_under_hyperbola",
    "count_lattice_points_under_hyperbola",
    "hyperbola_staircase",
    "spread_lower_bound",
]


def _require_positive(n: int, name: str = "n") -> int:
    if isinstance(n, bool) or not isinstance(n, int):
        raise DomainError(f"{name} must be an int, got {type(n).__name__}")
    if n <= 0:
        raise DomainError(f"{name} must be positive, got {n}")
    return n


def lattice_points_under_hyperbola(n: int) -> Iterator[tuple[int, int]]:
    """Yield every positive lattice point ``(x, y)`` with ``x * y <= n``,
    row by row (``x`` ascending, then ``y`` ascending).

    This is the aggregate position set of Figure 5 (there, ``n = 16``).

    >>> list(lattice_points_under_hyperbola(3))
    [(1, 1), (1, 2), (1, 3), (2, 1), (3, 1)]
    """
    _require_positive(n)
    for x in range(1, n + 1):
        width = n // x
        for y in range(1, width + 1):
            yield (x, y)


def count_lattice_points_under_hyperbola(n: int) -> int:
    """``|{(x, y) in N x N : xy <= n}|`` -- equal to ``D(n)``, computed in
    ``O(sqrt n)`` by the hyperbola method.

    >>> count_lattice_points_under_hyperbola(16)
    50
    >>> count_lattice_points_under_hyperbola(1)
    1
    """
    _require_positive(n)
    return divisor_summatory(n)


def hyperbola_staircase(n: int) -> list[int]:
    """The row widths of the region under ``xy = n``: entry ``x-1`` is
    ``floor(n / x)``, the number of lattice points in row ``x``.

    Rendering Figure 5 is exactly drawing this staircase.

    >>> hyperbola_staircase(16)
    [16, 8, 5, 4, 3, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1]
    """
    _require_positive(n)
    return [n // x for x in range(1, n + 1)]


def spread_lower_bound(n: int) -> int:
    """A lower bound on ``max_shape S(n)`` achievable by *any* PF storing all
    arrays of at most *n* cells: the number of lattice points under the
    hyperbola, ``D(n) = Theta(n log n)``.

    Argument (Section 3.2.3): all positions ``(x, y)`` with ``xy <= n``
    belong to some array with ``<= n`` cells (namely the ``x * y`` array
    itself); a PF is injective, so the images of these ``D(n)`` positions
    are ``D(n)`` distinct addresses, hence the largest is ``>= D(n)``.
    Since every array contains ``(1, 1)``, some single array with ``<= n``
    positions reaches an address ``>= D(n) / something``; the paper states
    the clean form ``Omega(n log n)``, and ``D(n)`` is the exact constant-
    free count this module returns.

    >>> spread_lower_bound(16)
    50
    """
    return count_lattice_points_under_hyperbola(n)
