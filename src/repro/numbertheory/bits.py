"""Bit-level integer primitives.

The additive pairing functions of Section 4 are built from powers of two:
group sizes are ``2**kappa(g)``, signatures are ``2**g``, and the inverse
mapping recovers a volunteer's group from the *2-adic valuation* (number of
trailing zero bits) of a task index.  This module collects those primitives
with strict domain checking.

All functions operate on exact Python integers of arbitrary size.
"""

from __future__ import annotations

from repro.errors import DomainError

__all__ = [
    "bit_length",
    "ilog2",
    "is_power_of_two",
    "next_power_of_two",
    "two_adic_valuation",
    "odd_part",
]


def _require_positive(n: int, name: str = "n") -> int:
    """Validate that *n* is a positive ``int`` and return it.

    ``bool`` is rejected despite being an ``int`` subclass: a ``True`` slipping
    into an index computation is almost always a bug at the call site.
    """
    if isinstance(n, bool) or not isinstance(n, int):
        raise DomainError(f"{name} must be an int, got {type(n).__name__}")
    if n <= 0:
        raise DomainError(f"{name} must be positive, got {n}")
    return n


def bit_length(n: int) -> int:
    """Number of bits needed to represent positive *n* (``n.bit_length()``).

    >>> bit_length(1), bit_length(2), bit_length(255), bit_length(256)
    (1, 2, 8, 9)
    """
    return _require_positive(n).bit_length()


def ilog2(n: int) -> int:
    """Floor of the base-2 logarithm of positive *n*.

    This is the paper's ``floor(log x)`` (footnote a: "all logarithms have
    base 2"), used to compute the group index of the APF ``T#`` in (4.5).

    >>> ilog2(1), ilog2(2), ilog2(3), ilog2(4), ilog2(1023)
    (0, 1, 1, 2, 9)
    """
    return _require_positive(n).bit_length() - 1


def is_power_of_two(n: int) -> bool:
    """Whether positive *n* is an exact power of two.

    >>> [k for k in range(1, 20) if is_power_of_two(k)]
    [1, 2, 4, 8, 16]
    """
    _require_positive(n)
    return n & (n - 1) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two that is ``>= n`` (for positive *n*).

    >>> [next_power_of_two(k) for k in (1, 2, 3, 4, 5, 17)]
    [1, 2, 4, 4, 8, 32]
    """
    _require_positive(n)
    return 1 << (n - 1).bit_length()


def two_adic_valuation(n: int) -> int:
    """The exponent of the largest power of 2 dividing positive *n*.

    This is the key to inverting any APF built by Procedure APF-Constructor:
    "the trailing 0's of each image integer k = T(x, y) identify x's group g"
    (proof of Theorem 4.2).

    >>> [two_adic_valuation(k) for k in (1, 2, 3, 4, 12, 96)]
    [0, 1, 0, 2, 2, 5]
    """
    _require_positive(n)
    return (n & -n).bit_length() - 1


def odd_part(n: int) -> int:
    """The odd integer *m* such that ``n = 2**v * m`` (*v* the valuation).

    Every positive integer is uniquely a power of two times an odd number;
    this uniqueness is what makes the APF constructor produce bijections.

    >>> [odd_part(k) for k in (1, 2, 3, 12, 96)]
    [1, 1, 3, 3, 3]
    """
    _require_positive(n)
    return n >> ((n & -n).bit_length() - 1)
