"""Regeneration of the paper's figures as data + text.

Each ``figure_N_data`` function returns the exact content of the paper's
figure (asserted against hard-coded paper values in the test suite); each
``figure_N`` function renders it as monospace text the way the paper
displays it (shell highlighting included).  The figure benchmarks time the
data functions and assert their content.

* Figure 2 -- 8x8 sample of the diagonal PF ``D``, shell ``x+y = 6``.
* Figure 3 -- 8x8 sample of the square-shell PF ``A_{1,1}``, shell
  ``max(x,y) = 5``.
* Figure 4 -- 8x7 sample of the hyperbolic PF ``H``, shell ``xy = 6``.
* Figure 5 -- the aggregate positions of all arrays with <= 16 cells: the
  lattice staircase under ``xy = 16``.
* Figure 6 -- sample values of ``T^<1>``, ``T^<3>``, ``T#``, ``T*`` at the
  paper's chosen rows (x = 14, 15, 28, 29).
"""

from __future__ import annotations

from repro.apf.families import TBracket, TSharp, TStar
from repro.core.diagonal import DiagonalPairing
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.squareshell import SquareShellPairing
from repro.errors import DomainError
from repro.numbertheory.lattice import hyperbola_staircase
from repro.render.tables import render_grid, render_rows_table

__all__ = [
    "figure2_data",
    "figure2",
    "figure3_data",
    "figure3",
    "figure4_data",
    "figure4",
    "figure5_data",
    "figure5",
    "figure6_data",
    "figure6",
]


# ----------------------------------------------------------------------
# Figure 2: diagonal PF
# ----------------------------------------------------------------------


def figure2_data(rows: int = 8, cols: int = 8) -> list[list[int]]:
    """The table of Figure 2 (defaults to the paper's 8x8 window)."""
    return DiagonalPairing().table(rows, cols)


def figure2(rows: int = 8, cols: int = 8, highlight_shell: int = 6) -> str:
    """Figure 2 as text, highlighting the shell ``x + y = highlight_shell``."""
    body = render_grid(
        figure2_data(rows, cols), highlight=lambda x, y: x + y == highlight_shell
    )
    return f"Figure 2: the diagonal PF D (shell x+y={highlight_shell} highlighted)\n{body}"


# ----------------------------------------------------------------------
# Figure 3: square-shell PF
# ----------------------------------------------------------------------


def figure3_data(rows: int = 8, cols: int = 8) -> list[list[int]]:
    """The table of Figure 3."""
    return SquareShellPairing().table(rows, cols)


def figure3(rows: int = 8, cols: int = 8, highlight_shell: int = 5) -> str:
    """Figure 3 as text, highlighting ``max(x, y) = highlight_shell``."""
    body = render_grid(
        figure3_data(rows, cols), highlight=lambda x, y: max(x, y) == highlight_shell
    )
    return (
        f"Figure 3: the square-shell PF A_1,1 (shell max(x,y)={highlight_shell} "
        f"highlighted)\n{body}"
    )


# ----------------------------------------------------------------------
# Figure 4: hyperbolic PF
# ----------------------------------------------------------------------


def figure4_data(rows: int = 8, cols: int = 7) -> list[list[int]]:
    """The table of Figure 4 (the paper shows 8 rows x 7 columns)."""
    return HyperbolicPairing().table(rows, cols)


def figure4(rows: int = 8, cols: int = 7, highlight_shell: int = 6) -> str:
    """Figure 4 as text, highlighting ``x * y = highlight_shell``."""
    body = render_grid(
        figure4_data(rows, cols), highlight=lambda x, y: x * y == highlight_shell
    )
    return f"Figure 4: the hyperbolic PF H (shell xy={highlight_shell} highlighted)\n{body}"


# ----------------------------------------------------------------------
# Figure 5: lattice points under xy = n
# ----------------------------------------------------------------------


def figure5_data(n: int = 16) -> list[int]:
    """Row widths of the staircase under ``xy = n`` (paper draws n = 16)."""
    return hyperbola_staircase(n)


def figure5(n: int = 16) -> str:
    """Figure 5 as an ascii staircase: row x shows ``floor(n/x)`` cells."""
    if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
        raise DomainError(f"n must be a positive int, got {n!r}")
    widths = figure5_data(n)
    total = sum(widths)
    lines = [
        f"Figure 5: aggregate positions of arrays with <= {n} cells "
        f"({total} lattice points under xy = {n})"
    ]
    for x, width in enumerate(widths, start=1):
        if width == 0:  # pragma: no cover - floor(n/x) >= 1 for x <= n
            break
        lines.append(f"x={x:>3}  " + "# " * width)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 6: APF samples
# ----------------------------------------------------------------------


def figure6_data() -> dict[str, list[tuple[int, int, list[int]]]]:
    """The content of Figure 6: for each family, the paper's sample rows as
    ``(x, g, [T(x,1), ..., T(x,5)])``.

    Families and rows exactly as printed: ``T^<1>`` at x = 14, 15;
    ``T^<3>`` at x = 14, 15, 28, 29; ``T#`` at x = 28, 29; ``T*`` at
    x = 28, 29.
    """
    t1, t3, sharp, star = TBracket(1), TBracket(3), TSharp(), TStar()

    def rows(apf, xs):
        return [
            (x, apf.group_of(x), [apf.pair(x, y) for y in range(1, 6)]) for x in xs
        ]

    return {
        "T^<1>": rows(t1, [14, 15]),
        "T^<3>": rows(t3, [14, 15, 28, 29]),
        "T^#": rows(sharp, [28, 29]),
        "T^*": rows(star, [28, 29]),
    }


def figure6() -> str:
    """Figure 6 as text: one block per family."""
    blocks = []
    for family, rows in figure6_data().items():
        table_rows = [[x, g] + values for x, g, values in rows]
        blocks.append(
            render_rows_table(
                ["x", "g", "y=1", "y=2", "y=3", "y=4", "y=5"],
                table_rows,
                title=f"{family}(x, y)",
            )
        )
    return "Figure 6: sample values by several APFs\n\n" + "\n\n".join(blocks)
