"""Text rendering of pairing-function sample tables (the paper's Figure 1
template).

Every figure in the paper is a small table of PF values, sometimes with one
shell highlighted (Figures 2-4 bracket the shells ``x+y = 6``,
``max(x,y) = 5``, ``xy = 6``).  This module renders such tables as aligned
monospace text, with optional per-cell highlighting via a predicate --
pure string work, shared by the CLI, the examples, and the figure
regeneration benchmarks.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.base import StorageMapping
from repro.errors import DomainError

__all__ = ["render_grid", "render_pf_table", "render_rows_table"]

Highlight = Callable[[int, int], bool]


def render_grid(
    values: Sequence[Sequence[int]],
    highlight: Highlight | None = None,
    trailing_ellipsis: bool = True,
) -> str:
    """Render a rectangular grid of integers, aligning columns.

    *highlight* receives 1-indexed ``(x, y)`` and marks cells with
    brackets, reproducing the paper's shell highlighting.

    >>> print(render_grid([[1, 3], [2, 5]], trailing_ellipsis=False))
    1  3
    2  5
    """
    if not values or not values[0]:
        raise DomainError("grid must be non-empty")
    cols = len(values[0])
    if any(len(row) != cols for row in values):
        raise DomainError("grid rows must have equal length")
    rendered: list[list[str]] = []
    for x, row in enumerate(values, start=1):
        out_row = []
        for y, v in enumerate(row, start=1):
            text = str(v)
            if highlight is not None and highlight(x, y):
                text = f"[{text}]"
            out_row.append(text)
        rendered.append(out_row)
    widths = [max(len(rendered[i][j]) for i in range(len(rendered))) for j in range(cols)]
    lines = []
    for out_row in rendered:
        cells = [cell.rjust(width) for cell, width in zip(out_row, widths)]
        line = "  ".join(cells)
        if trailing_ellipsis:
            line += "  ..."
        lines.append(line)
    if trailing_ellipsis:
        lines.append(" ".join(["..."] * min(cols, 4)))
    return "\n".join(lines)


def render_pf_table(
    mapping: StorageMapping,
    rows: int,
    cols: int,
    highlight: Highlight | None = None,
    title: str | None = None,
) -> str:
    """Render ``mapping``'s Figure 1-style sample table.

    >>> from repro.core import DiagonalPairing
    >>> out = render_pf_table(DiagonalPairing(), 2, 2)
    >>> "1  3" in out
    True
    """
    table = mapping.table(rows, cols)
    body = render_grid(table, highlight=highlight)
    header = title if title is not None else f"{mapping.name}  ({rows} x {cols} sample)"
    return f"{header}\n{body}"


def render_rows_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a generic report table (used for Figure 6's ``x | g | values``
    blocks and the benchmark summaries)."""
    if not headers:
        raise DomainError("headers must be non-empty")
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise DomainError("row width must match headers")
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows)) if str_rows else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
