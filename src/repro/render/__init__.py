"""Text rendering of PF tables and the paper's figures."""

from __future__ import annotations

from repro.render.tables import render_grid, render_pf_table, render_rows_table
from repro.render.figures import (
    figure2,
    figure2_data,
    figure3,
    figure3_data,
    figure4,
    figure4_data,
    figure5,
    figure5_data,
    figure6,
    figure6_data,
)

__all__ = [
    "render_grid",
    "render_pf_table",
    "render_rows_table",
    "figure2",
    "figure2_data",
    "figure3",
    "figure3_data",
    "figure4",
    "figure4_data",
    "figure5",
    "figure5_data",
    "figure6",
    "figure6_data",
]
