"""d-dimensional extendible arrays (Section 3: "Extending this work to
higher dimensionalities is immediate").

:class:`ExtendibleNdArray` is the d-dimensional analogue of
:class:`~repro.arrays.extendible.ExtendibleArray`: cells live at the
addresses chosen by an :class:`~repro.core.ndim.IteratedPairing`, so
growing or shrinking the array along *any* axis is pure bookkeeping --
**no stored element ever moves**, in any number of dimensions.

This is exactly the paper's "immediate" extension made concrete, and it is
where the iteration's compactness structure becomes visible: the axis
order in the iterated PF determines which axes are cheap to spread along
(the benchmark ``bench_ndim.py`` measures this).
"""

from __future__ import annotations

from itertools import product
from typing import Any, Iterator, Sequence

from repro.arrays.address_space import AddressSpace
from repro.core.ndim import IteratedPairing
from repro.errors import ConfigurationError, DomainError

__all__ = ["ExtendibleNdArray"]


class ExtendibleNdArray:
    """A dynamically reshapable d-dimensional array stored through an
    iterated pairing function.

    >>> from repro.core.squareshell import SquareShellPairing
    >>> from repro.core.ndim import IteratedPairing
    >>> cube = ExtendibleNdArray(
    ...     IteratedPairing(3, SquareShellPairing()), shape=(2, 2, 2), fill=0)
    >>> cube[1, 2, 1] = 7
    >>> cube.grow(axis=2)
    >>> cube.shape, cube[1, 2, 1], cube.space.traffic.moves
    ((2, 2, 3), 7, 0)
    """

    def __init__(
        self,
        mapping: IteratedPairing,
        shape: Sequence[int],
        fill: Any = None,
        space: AddressSpace | None = None,
    ) -> None:
        if not isinstance(mapping, IteratedPairing):
            raise ConfigurationError(
                f"mapping must be an IteratedPairing, got {type(mapping).__name__}"
            )
        sizes = tuple(shape)
        if len(sizes) != mapping.dimensions:
            raise DomainError(
                f"shape arity {len(sizes)} != mapping dimensions {mapping.dimensions}"
            )
        zero = all(s == 0 for s in sizes)
        if not zero and any(
            isinstance(s, bool) or not isinstance(s, int) or s <= 0 for s in sizes
        ):
            raise DomainError(f"shape must be all-zero or all-positive, got {sizes}")
        self.mapping = mapping
        self.space = space if space is not None else AddressSpace()
        self._shape = sizes
        self._fill = fill
        if fill is not None and not zero:
            for point in self._all_points():
                self.space.write(mapping.pair(point), fill)

    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def dimensions(self) -> int:
        return self.mapping.dimensions

    @property
    def size(self) -> int:
        out = 1
        for s in self._shape:
            out *= s
        return out

    def _all_points(self) -> Iterator[tuple[int, ...]]:
        return product(*(range(1, s + 1) for s in self._shape))

    def _check_point(self, point: Sequence[int]) -> tuple[int, ...]:
        coords = tuple(point)
        if len(coords) != len(self._shape):
            raise DomainError(
                f"expected {len(self._shape)} indices, got {len(coords)}"
            )
        for c, s in zip(coords, self._shape):
            if isinstance(c, bool) or not isinstance(c, int):
                raise DomainError(f"indices must be ints, got {c!r}")
            if not 1 <= c <= s:
                raise DomainError(f"index {coords} outside shape {self._shape}")
        return coords

    def _check_axis(self, axis: int) -> int:
        if isinstance(axis, bool) or not isinstance(axis, int):
            raise DomainError(f"axis must be an int, got {axis!r}")
        if not 0 <= axis < len(self._shape):
            raise DomainError(
                f"axis {axis} out of range for {len(self._shape)}-d array"
            )
        return axis

    # ------------------------------------------------------------------
    # Element access (1-indexed per axis)
    # ------------------------------------------------------------------

    def __getitem__(self, point: tuple[int, ...]) -> Any:
        coords = self._check_point(point)
        return self.space.read_or(self.mapping.pair(coords), self._fill)

    def __setitem__(self, point: tuple[int, ...], value: Any) -> None:
        coords = self._check_point(point)
        self.space.write(self.mapping.pair(coords), value)

    def address_of(self, point: Sequence[int]) -> int:
        coords = self._check_point(point)
        return self.mapping.pair(coords)

    # ------------------------------------------------------------------
    # Reshaping along any axis
    # ------------------------------------------------------------------

    def _boundary_points(self, axis: int, index: int) -> Iterator[tuple[int, ...]]:
        """All points whose *axis* coordinate equals *index* within the
        current shape (the slab touched by a grow/shrink)."""
        ranges = [
            range(1, s + 1) if i != axis else (index,)
            for i, s in enumerate(self._shape)
        ]
        return product(*ranges)

    def grow(self, axis: int) -> None:
        """Extend *axis* by one; O(slab) fill writes, zero moves."""
        axis = self._check_axis(axis)
        if self.size == 0:
            raise DomainError("cannot grow a 0-size array; use resize")
        new_shape = list(self._shape)
        new_shape[axis] += 1
        self._shape = tuple(new_shape)
        if self._fill is not None:
            for point in self._boundary_points(axis, self._shape[axis]):
                self.space.write(self.mapping.pair(point), self._fill)

    def shrink(self, axis: int) -> None:
        """Trim *axis* by one, erasing the freed slab; zero moves."""
        axis = self._check_axis(axis)
        if self._shape[axis] <= 1:
            raise DomainError(f"cannot shrink axis {axis} below size 1")
        for point in self._boundary_points(axis, self._shape[axis]):
            self.space.erase(self.mapping.pair(point))
        new_shape = list(self._shape)
        new_shape[axis] -= 1
        self._shape = tuple(new_shape)

    def resize(self, shape: Sequence[int]) -> None:
        """Reshape to *shape* by single-step grows/shrinks per axis;
        surviving cells keep values and addresses."""
        target = tuple(shape)
        if len(target) != len(self._shape):
            raise DomainError(
                f"resize arity {len(target)} != array arity {len(self._shape)}"
            )
        if any(isinstance(s, bool) or not isinstance(s, int) or s <= 0 for s in target):
            raise DomainError(f"target shape must be positive, got {target}")
        if self.size == 0:
            self._shape = tuple(1 for _ in target)
            if self._fill is not None:
                self.space.write(self.mapping.pair(self._shape), self._fill)
        for axis, want in enumerate(target):
            while self._shape[axis] < want:
                self.grow(axis)
            while self._shape[axis] > want:
                self.shrink(axis)

    # ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[tuple[int, ...], Any]]:
        for point in self._all_points():
            yield point, self.space.read_or(self.mapping.pair(point), self._fill)

    def storage_report(self) -> dict[str, Any]:
        return {
            "mapping": self.mapping.name,
            "shape": self._shape,
            "cells": self.size,
            "high_water_mark": self.space.high_water_mark,
            "utilization": self.space.utilization,
            "traffic": self.space.traffic.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"<ExtendibleNdArray {'x'.join(map(str, self._shape))} via "
            f"{self.mapping.name} hwm={self.space.high_water_mark}>"
        )
