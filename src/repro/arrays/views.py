"""Row / column / block access over extendible arrays -- the Section 3
Aside's access modes, with the APF fast path.

The Aside: the PF work "aimed at giving one a broad range of ways of
accessing one's arrays/tables: by position, by row/column, by block (at
varying computational costs)".  This module provides those access modes
over :class:`~repro.arrays.extendible.ExtendibleArray`:

* :func:`row_view` / :func:`col_view` -- iterate a logical row/column
  with its backing addresses.  When the storage mapping is an *additive*
  PF, the row view needs **no per-cell pairing calls at all**: the row is
  an arithmetic progression, so the walk is `base, base+stride, ...` --
  Stockmeyer's "additive traversal" [16], realized.
* :func:`block_view` -- iterate a rectangular block.
* :func:`traversal_cost` -- count the pairing-function evaluations each
  access mode needs, separating the *addressing* cost the paper talks
  about from the memory traffic the AddressSpace already counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.apf.base import AdditivePairingFunction
from repro.arrays.extendible import ExtendibleArray
from repro.errors import DomainError

__all__ = ["AddressedCell", "row_view", "col_view", "block_view", "traversal_cost"]


@dataclass(frozen=True, slots=True)
class AddressedCell:
    """One cell of a view: logical position, backing address, value."""

    x: int
    y: int
    address: int
    value: Any


def _check_array(arr: ExtendibleArray) -> None:
    if not isinstance(arr, ExtendibleArray):
        raise DomainError(f"expected an ExtendibleArray, got {type(arr).__name__}")


def row_view(arr: ExtendibleArray, x: int) -> Iterator[AddressedCell]:
    """Iterate row *x* left-to-right.

    Additive fast path: one ``progression`` lookup, then pure integer
    stepping -- zero further PF evaluations (the system benefit of APFs).

    >>> from repro.apf.families import TSharp
    >>> arr = ExtendibleArray(TSharp(), 3, 4, fill=0)
    >>> [c.address for c in row_view(arr, 3)]
    [6, 14, 22, 30]
    """
    _check_array(arr)
    rows, cols = arr.shape
    if not 1 <= x <= rows:
        raise DomainError(f"row {x} outside shape {arr.shape}")
    mapping = arr.mapping
    if isinstance(mapping, AdditivePairingFunction):
        progression = mapping.progression(x)
        address = progression.base
        for y in range(1, cols + 1):
            yield AddressedCell(
                x=x, y=y, address=address, value=arr.space.read_or(address, arr._fill)
            )
            address += progression.stride
    else:
        for y in range(1, cols + 1):
            address = mapping.pair(x, y)
            yield AddressedCell(
                x=x, y=y, address=address, value=arr.space.read_or(address, arr._fill)
            )


def col_view(arr: ExtendibleArray, y: int) -> Iterator[AddressedCell]:
    """Iterate column *y* top-to-bottom (always per-cell pairing: columns
    of an APF are *not* progressions -- the asymmetry is the design)."""
    _check_array(arr)
    rows, cols = arr.shape
    if not 1 <= y <= cols:
        raise DomainError(f"column {y} outside shape {arr.shape}")
    for x in range(1, rows + 1):
        address = arr.mapping.pair(x, y)
        yield AddressedCell(
            x=x, y=y, address=address, value=arr.space.read_or(address, arr._fill)
        )


def block_view(
    arr: ExtendibleArray, x0: int, y0: int, height: int, width: int
) -> Iterator[AddressedCell]:
    """Iterate the ``height x width`` block anchored at ``(x0, y0)``,
    row-major, using the additive row fast path where available."""
    _check_array(arr)
    rows, cols = arr.shape
    if height <= 0 or width <= 0:
        raise DomainError("block dimensions must be positive")
    if not (1 <= x0 and x0 + height - 1 <= rows and 1 <= y0 and y0 + width - 1 <= cols):
        raise DomainError(
            f"block {height}x{width}@({x0},{y0}) outside shape {arr.shape}"
        )
    mapping = arr.mapping
    additive = isinstance(mapping, AdditivePairingFunction)
    for x in range(x0, x0 + height):
        if additive:
            progression = mapping.progression(x)
            address = progression.term(y0)
            for y in range(y0, y0 + width):
                yield AddressedCell(
                    x=x, y=y, address=address,
                    value=arr.space.read_or(address, arr._fill),
                )
                address += progression.stride
        else:
            for y in range(y0, y0 + width):
                address = mapping.pair(x, y)
                yield AddressedCell(
                    x=x, y=y, address=address,
                    value=arr.space.read_or(address, arr._fill),
                )


def traversal_cost(arr: ExtendibleArray, mode: str, index: int = 1) -> int:
    """Number of pairing-function evaluations needed to walk one row
    (``mode="row"``), one column (``"col"``), or the whole array
    (``"all"``) -- the addressing-cost axis of the Aside.

    Additive rows cost 1 evaluation (the contract lookup); everything else
    costs one per cell.

    >>> from repro.apf.families import TSharp
    >>> from repro.core.squareshell import SquareShellPairing
    >>> apf_arr = ExtendibleArray(TSharp(), 8, 8, fill=0)
    >>> pf_arr = ExtendibleArray(SquareShellPairing(), 8, 8, fill=0)
    >>> traversal_cost(apf_arr, "row"), traversal_cost(pf_arr, "row")
    (1, 8)
    """
    _check_array(arr)
    rows, cols = arr.shape
    additive = isinstance(arr.mapping, AdditivePairingFunction)
    if mode == "row":
        return 1 if additive else cols
    if mode == "col":
        return rows
    if mode == "all":
        return rows if additive else rows * cols
    raise DomainError(f"unknown mode {mode!r} (expected row/col/all)")
