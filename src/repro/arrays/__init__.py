"""Extendible-array substrate (Section 3 end to end).

* :mod:`~repro.arrays.address_space` -- the instrumented flat memory;
* :mod:`~repro.arrays.extendible` -- PF-backed arrays (zero-move reshapes);
* :mod:`~repro.arrays.naive` -- the full-remap baseline the paper criticizes;
* :mod:`~repro.arrays.hashed` -- the hashing Aside ([14]: <2n slots,
  O(1) expected access);
* :mod:`~repro.arrays.ndarray` -- the d-dimensional extendible array
  ("Extending this work to higher dimensionalities is immediate");
* :mod:`~repro.arrays.workloads` -- reproducible reshape scripts;
* :mod:`~repro.arrays.metrics` -- side-by-side comparison records.
"""

from __future__ import annotations

from repro.arrays.address_space import AddressSpace, TrafficCounters
from repro.arrays.extendible import ExtendibleArray
from repro.arrays.naive import NaiveRowMajorArray
from repro.arrays.hashed import HashedArrayStore, ProbeStats
from repro.arrays.ndarray import ExtendibleNdArray
from repro.arrays.workloads import (
    ReshapeKind,
    ReshapeOp,
    apply_workload,
    column_growth,
    random_walk,
    square_growth,
    staircase_growth,
)
from repro.arrays.metrics import WorkloadResult, run_comparison
from repro.arrays.snapshots import (
    dumps_array,
    loads_array,
    restore_array,
    snapshot_array,
)
from repro.arrays.views import (
    AddressedCell,
    block_view,
    col_view,
    row_view,
    traversal_cost,
)

__all__ = [
    "AddressSpace",
    "TrafficCounters",
    "ExtendibleArray",
    "NaiveRowMajorArray",
    "ExtendibleNdArray",
    "HashedArrayStore",
    "ProbeStats",
    "ReshapeKind",
    "ReshapeOp",
    "apply_workload",
    "column_growth",
    "random_walk",
    "square_growth",
    "staircase_growth",
    "WorkloadResult",
    "AddressedCell",
    "block_view",
    "col_view",
    "row_view",
    "traversal_cost",
    "snapshot_array",
    "restore_array",
    "dumps_array",
    "loads_array",
    "run_comparison",
]
