"""PF-backed extendible arrays: the Section 3 use case, end to end.

An :class:`ExtendibleArray` is a logical 2-D array of some current shape
``rows x cols`` whose cells live in an :class:`~repro.arrays.address_space.
AddressSpace` at the addresses chosen by a storage mapping:

    cell ``(x, y)``  ->  address ``mapping.pair(x, y)``

Because a PF assigns each position of ``N x N`` a *fixed* address, growing
or shrinking the array is purely a bookkeeping change: **no stored element
ever moves**.  That is the paper's core observation -- language processors
that remap on every reshape "do Omega(n^2) work to accommodate O(n)
changes", while a PF-mapped array does zero data movement (compare
:class:`~repro.arrays.naive.NaiveRowMajorArray`).

The price is address-space spread, which is exactly what the mapping's
spread function predicts; :meth:`ExtendibleArray.storage_report` measures
the realized value so benchmarks can compare it with theory.

Supported reshapings (the paper's repertoire): append/delete rows and
columns at the high ends.  Deletion erases the freed cells' addresses --
the freed addresses are reused automatically if the array grows back,
again with no movement.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.arrays.address_space import AddressSpace
from repro.core.base import StorageMapping
from repro.errors import ConfigurationError, DomainError
from repro.perf.batch import pair_many

__all__ = ["ExtendibleArray"]


class ExtendibleArray:
    """A dynamically reshapable 2-D array stored through a pairing function.

    Parameters
    ----------
    mapping:
        Any :class:`~repro.core.base.StorageMapping`; the PFs of
        :mod:`repro.core` and the APFs of :mod:`repro.apf` all qualify.
    rows, cols:
        Initial logical shape (may be ``0 x 0``).
    fill:
        Value stored in newly allocated cells (``None`` leaves the cells
        unwritten -- reads then return ``default``).
    space:
        Optionally share / inspect an existing address space.

    >>> from repro.core import SquareShellPairing
    >>> arr = ExtendibleArray(SquareShellPairing(), rows=2, cols=2, fill=0)
    >>> arr[1, 1] = 10
    >>> arr.append_col()              # grow: nothing moves
    >>> arr.shape, arr[1, 1]
    ((2, 3), 10)
    >>> arr.space.traffic.moves
    0
    """

    def __init__(
        self,
        mapping: StorageMapping,
        rows: int = 0,
        cols: int = 0,
        fill: Any = None,
        space: AddressSpace | None = None,
    ) -> None:
        if not isinstance(mapping, StorageMapping):
            raise ConfigurationError(
                f"mapping must be a StorageMapping, got {type(mapping).__name__}"
            )
        if isinstance(rows, bool) or not isinstance(rows, int) or rows < 0:
            raise DomainError(f"rows must be a nonnegative int, got {rows!r}")
        if isinstance(cols, bool) or not isinstance(cols, int) or cols < 0:
            raise DomainError(f"cols must be a nonnegative int, got {cols!r}")
        if (rows == 0) != (cols == 0):
            raise DomainError(
                f"shape must be 0x0 or fully positive, got {rows}x{cols}"
            )
        self.mapping = mapping
        self.space = space if space is not None else AddressSpace()
        self._rows = rows
        self._cols = cols
        self._fill = fill
        if fill is not None and rows > 0:
            xs = [x for x in range(1, rows + 1) for _ in range(cols)]
            ys = [y for _ in range(rows) for y in range(1, cols + 1)]
            for address in self._addresses_of(xs, ys):
                self.space.write(address, fill)

    # ------------------------------------------------------------------

    def _addresses_of(self, xs, ys) -> list[int]:
        """Addresses of a coordinate batch through the perf layer's batch
        dispatcher (vectorized kernel when the mapping has one and the
        coordinates fit its exact-safe window; exact scalar loop else)."""
        return [int(z) for z in pair_many(self.mapping, xs, ys).reshape(-1)]

    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self._rows, self._cols)

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def cols(self) -> int:
        return self._cols

    @property
    def size(self) -> int:
        return self._rows * self._cols

    def _check_position(self, x: int, y: int) -> tuple[int, int]:
        if isinstance(x, bool) or not isinstance(x, int):
            raise DomainError(f"row index must be an int, got {type(x).__name__}")
        if isinstance(y, bool) or not isinstance(y, int):
            raise DomainError(f"col index must be an int, got {type(y).__name__}")
        if not (1 <= x <= self._rows and 1 <= y <= self._cols):
            raise DomainError(
                f"position ({x}, {y}) outside current shape {self._rows}x{self._cols}"
            )
        return x, y

    # ------------------------------------------------------------------
    # Element access (1-indexed, like the paper)
    # ------------------------------------------------------------------

    def __getitem__(self, pos: tuple[int, int]) -> Any:
        x, y = self._check_position(*pos)
        return self.space.read_or(self.mapping.pair(x, y), self._fill)

    def __setitem__(self, pos: tuple[int, int], value: Any) -> None:
        x, y = self._check_position(*pos)
        self.space.write(self.mapping.pair(x, y), value)

    def get(self, x: int, y: int, default: Any = None) -> Any:
        """Like ``arr[x, y]`` but with an explicit default for unwritten
        cells (ignores the constructor ``fill``)."""
        x, y = self._check_position(x, y)
        return self.space.read_or(self.mapping.pair(x, y), default)

    def address_of(self, x: int, y: int) -> int:
        """The memory address backing cell ``(x, y)`` -- stable across every
        reshaping that keeps the cell alive."""
        x, y = self._check_position(x, y)
        return self.mapping.pair(x, y)

    # ------------------------------------------------------------------
    # Reshaping -- the whole point
    # ------------------------------------------------------------------

    def append_row(self) -> None:
        """Grow by one row.  O(cols) writes when a fill value is set;
        zero writes otherwise; zero moves always."""
        if self._rows == 0:
            raise DomainError("cannot append a row to a 0x0 array; use resize")
        self._rows += 1
        if self._fill is not None:
            x = self._rows
            for address in self._addresses_of([x], list(range(1, self._cols + 1))):
                self.space.write(address, self._fill)

    def append_col(self) -> None:
        """Grow by one column (O(rows) fills, zero moves)."""
        if self._cols == 0:
            raise DomainError("cannot append a column to a 0x0 array; use resize")
        self._cols += 1
        if self._fill is not None:
            y = self._cols
            for address in self._addresses_of(list(range(1, self._rows + 1)), [y]):
                self.space.write(address, self._fill)

    def delete_row(self) -> None:
        """Shrink by one row, erasing the freed cells (O(cols) erases,
        zero moves)."""
        if self._rows <= 1:
            raise DomainError("cannot delete the last row")
        x = self._rows
        for address in self._addresses_of([x], list(range(1, self._cols + 1))):
            self.space.erase(address)
        self._rows -= 1

    def delete_col(self) -> None:
        """Shrink by one column (O(rows) erases, zero moves)."""
        if self._cols <= 1:
            raise DomainError("cannot delete the last column")
        y = self._cols
        for address in self._addresses_of(list(range(1, self._rows + 1)), [y]):
            self.space.erase(address)
        self._cols -= 1

    def resize(self, rows: int, cols: int) -> None:
        """Reshape to ``rows x cols`` by repeated single-step grows/shrinks.

        Existing cells in the intersection of old and new shapes keep both
        their values and their addresses -- zero moves, always.
        """
        if isinstance(rows, bool) or not isinstance(rows, int) or rows <= 0:
            raise DomainError(f"rows must be a positive int, got {rows!r}")
        if isinstance(cols, bool) or not isinstance(cols, int) or cols <= 0:
            raise DomainError(f"cols must be a positive int, got {cols!r}")
        if self._rows == 0:
            self._rows, self._cols = 1, 1
            if self._fill is not None:
                self.space.write(self.mapping.pair(1, 1), self._fill)
        while self._rows < rows:
            self.append_row()
        while self._rows > rows:
            self.delete_row()
        while self._cols < cols:
            self.append_col()
        while self._cols > cols:
            self.delete_col()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[tuple[int, int], Any]]:
        """Yield ``((x, y), value)`` for every cell, row-major."""
        for x in range(1, self._rows + 1):
            for y in range(1, self._cols + 1):
                yield (x, y), self.space.read_or(self.mapping.pair(x, y), self._fill)

    def to_lists(self) -> list[list[Any]]:
        """Materialize the logical array as nested lists (row-major)."""
        return [
            [self.space.read_or(self.mapping.pair(x, y), self._fill) for y in range(1, self._cols + 1)]
            for x in range(1, self._rows + 1)
        ]

    def storage_report(self) -> dict[str, Any]:
        """The Section 3 metrics, measured: realized spread (high-water
        mark), cell count, utilization, traffic counters, and the mapping's
        theoretical spread for the current cell count."""
        n = max(1, self.size)
        return {
            "mapping": self.mapping.name,
            "shape": self.shape,
            "cells": self.size,
            "high_water_mark": self.space.high_water_mark,
            "utilization": self.space.utilization,
            "theoretical_spread": self.mapping.spread(n),
            "theoretical_shape_spread": (
                self.mapping.spread_for_shape(self._rows, self._cols)
                if self.size > 0
                else 0
            ),
            "traffic": self.space.traffic.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"<ExtendibleArray {self._rows}x{self._cols} via {self.mapping.name} "
            f"hwm={self.space.high_water_mark}>"
        )
