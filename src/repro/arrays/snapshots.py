"""Snapshot / restore for extendible arrays.

A PF-stored table is long-lived by design -- the point of zero-move
reshaping is to keep data in place across a workload's whole history --
so persisting one across process restarts is a natural operation.  The
snapshot captures the mapping *by registry name*, the logical shape, the
fill, and the live cells keyed by **logical position** (not address): on
restore the addresses are recomputed through the mapping, which doubles as
an end-to-end consistency check of the mapping's determinism.

JSON-able values only (the test suite round-trips ints, strings, None,
and nested lists).
"""

from __future__ import annotations

import json
from typing import Any

from repro.arrays.extendible import ExtendibleArray
from repro.core.registry import get_pairing
from repro.errors import ConfigurationError

__all__ = ["snapshot_array", "restore_array", "dumps_array", "loads_array"]

_FORMAT_VERSION = 1


def snapshot_array(arr: ExtendibleArray) -> dict[str, Any]:
    """The array's logical state as a JSON-able dict.

    Raises :class:`ConfigurationError` when the mapping is not
    registry-resolvable (an unrestorable snapshot is worse than an error).
    """
    if not isinstance(arr, ExtendibleArray):
        raise ConfigurationError(
            f"expected an ExtendibleArray, got {type(arr).__name__}"
        )
    try:
        get_pairing(arr.mapping.name)
    except ConfigurationError:
        raise ConfigurationError(
            f"mapping {arr.mapping.name!r} is not registry-resolvable; "
            "register it before snapshotting"
        ) from None
    rows, cols = arr.shape
    cells = []
    for x in range(1, rows + 1):
        for y in range(1, cols + 1):
            address = arr.mapping.pair(x, y)
            if arr.space.occupied(address):
                cells.append([x, y, arr.space.read(address)])
    return {
        "version": _FORMAT_VERSION,
        "mapping": arr.mapping.name,
        "rows": rows,
        "cols": cols,
        "fill": arr._fill,
        "cells": cells,
    }


def restore_array(data: dict[str, Any]) -> ExtendibleArray:
    """Rebuild an array from a :func:`snapshot_array` dict."""
    if data.get("version") != _FORMAT_VERSION:
        raise ConfigurationError(f"unsupported snapshot version {data.get('version')!r}")
    mapping = get_pairing(data["mapping"])
    arr = ExtendibleArray(
        mapping,
        rows=data["rows"],
        cols=data["cols"],
        fill=data["fill"],
    )
    for x, y, value in data["cells"]:
        arr[x, y] = value
    return arr


def dumps_array(arr: ExtendibleArray) -> str:
    """Snapshot as a JSON string."""
    return json.dumps(snapshot_array(arr), sort_keys=True)


def loads_array(text: str) -> ExtendibleArray:
    """Restore from a JSON string (values come back as JSON types;
    tuples become lists, as JSON dictates)."""
    return restore_array(json.loads(text))
