"""Side-by-side storage metrics for the array experiments.

Gathers the Section 3 story into one comparable record per implementation:

* **moves** -- data-movement work (the naive baseline's Omega(n^2));
* **high-water mark** -- realized address spread (the PF's price);
* **utilization** -- live cells / high-water mark;
* **slots per cell** -- the hashing scheme's <2 guarantee.

Used by ``benchmarks/bench_extendible_vs_naive.py`` and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.arrays.extendible import ExtendibleArray
from repro.arrays.naive import NaiveRowMajorArray
from repro.arrays.workloads import ReshapeOp, apply_workload
from repro.core.base import StorageMapping

__all__ = ["WorkloadResult", "run_comparison"]


@dataclass(frozen=True, slots=True)
class WorkloadResult:
    """Outcome of replaying one workload against one implementation."""

    implementation: str
    steps: int
    final_shape: tuple[int, int]
    cells: int
    moves: int
    writes: int
    erases: int
    high_water_mark: int
    utilization: float

    @property
    def moves_per_step(self) -> float:
        """Average data movement per reshape step: ~0 for PF arrays,
        Theta(shape size) for the naive baseline on column reshapes."""
        if self.steps == 0:
            return 0.0
        return self.moves / self.steps


def _result_from(impl_name: str, array, steps: int) -> WorkloadResult:
    report = array.storage_report()
    traffic = report["traffic"]
    return WorkloadResult(
        implementation=impl_name,
        steps=steps,
        final_shape=report["shape"],
        cells=report["cells"],
        moves=traffic["moves"],
        writes=traffic["writes"],
        erases=traffic["erases"],
        high_water_mark=report["high_water_mark"],
        utilization=report["utilization"],
    )


def run_comparison(
    mappings: Sequence[StorageMapping],
    workload: Sequence[ReshapeOp],
    fill: object = 0,
) -> list[WorkloadResult]:
    """Replay *workload* (starting from a fresh 1x1 array) against a
    PF-backed array for every mapping in *mappings* plus the naive
    row-major baseline; returns one :class:`WorkloadResult` per run.

    The PF rows demonstrate "moves == 0"; the naive row shows the
    remapping cost; spreads land where each mapping's theory says.
    """
    results: list[WorkloadResult] = []
    for mapping in mappings:
        arr = ExtendibleArray(mapping, rows=1, cols=1, fill=fill)
        steps = apply_workload(arr, workload)
        results.append(_result_from(mapping.name, arr, steps))
    naive = NaiveRowMajorArray(rows=1, cols=1, fill=fill)
    steps = apply_workload(naive, workload)
    results.append(_result_from("naive-row-major", naive, steps))
    return results
