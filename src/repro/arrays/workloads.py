"""Reshape workload generation for the extendible-array experiments.

The paper's complaint about naive remapping is phrased in workload terms:
"one does Omega(n^2) work to accommodate O(n) changes".  To measure that, we
need reproducible reshape scripts.  A workload is simply a sequence of
:class:`ReshapeOp` steps; this module provides

* scripted growth patterns (row-then-column staircases, pure column growth,
  square growth) that mirror how linear-algebra codes and relational tables
  actually evolve, and
* a seeded random walk over shapes (the adversarial mix).

Workloads are pure data, so the same script can be replayed against an
:class:`~repro.arrays.extendible.ExtendibleArray`, a
:class:`~repro.arrays.naive.NaiveRowMajorArray`, or a
:class:`~repro.arrays.hashed.HashedArrayStore` adapter, and the traffic
counters compared like for like.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from repro.errors import ConfigurationError, DomainError

__all__ = [
    "ReshapeOp",
    "ReshapeKind",
    "staircase_growth",
    "column_growth",
    "square_growth",
    "random_walk",
    "apply_workload",
    "bulk_touch",
    "ReshapableArray",
]


class ReshapeKind(enum.Enum):
    APPEND_ROW = "append-row"
    APPEND_COL = "append-col"
    DELETE_ROW = "delete-row"
    DELETE_COL = "delete-col"


@dataclass(frozen=True, slots=True)
class ReshapeOp:
    """One reshape step.  ``repeat`` compresses runs of the same step."""

    kind: ReshapeKind
    repeat: int = 1

    def __post_init__(self) -> None:
        if isinstance(self.repeat, bool) or not isinstance(self.repeat, int):
            raise DomainError(f"repeat must be an int, got {type(self.repeat).__name__}")
        if self.repeat <= 0:
            raise DomainError(f"repeat must be positive, got {self.repeat}")


class ReshapableArray(Protocol):
    """Anything replayable: the structural interface shared by
    :class:`ExtendibleArray` and :class:`NaiveRowMajorArray`."""

    def append_row(self) -> None: ...

    def append_col(self) -> None: ...

    def delete_row(self) -> None: ...

    def delete_col(self) -> None: ...

    @property
    def shape(self) -> tuple[int, int]: ...


def staircase_growth(steps: int) -> list[ReshapeOp]:
    """Alternate row/column appends *steps* times: the canonical "table that
    grows in both dimensions" script.  Starting from 1x1 it visits roughly
    square shapes throughout.

    >>> [op.kind.value for op in staircase_growth(3)]
    ['append-row', 'append-col', 'append-row']
    """
    if isinstance(steps, bool) or not isinstance(steps, int) or steps <= 0:
        raise DomainError(f"steps must be a positive int, got {steps!r}")
    ops = []
    for i in range(steps):
        kind = ReshapeKind.APPEND_ROW if i % 2 == 0 else ReshapeKind.APPEND_COL
        ops.append(ReshapeOp(kind))
    return ops


def column_growth(cols: int) -> list[ReshapeOp]:
    """Append *cols* columns: the naive layout's worst case (every append
    changes the row-major pitch and remaps the whole array).

    >>> [op.repeat for op in column_growth(5)]
    [5]
    """
    if isinstance(cols, bool) or not isinstance(cols, int) or cols <= 0:
        raise DomainError(f"cols must be a positive int, got {cols!r}")
    return [ReshapeOp(ReshapeKind.APPEND_COL, repeat=cols)]


def square_growth(target_side: int) -> list[ReshapeOp]:
    """Grow from 1x1 to ``target_side x target_side`` one row+column at a
    time -- the shape family the square-shell PF stores perfectly."""
    if isinstance(target_side, bool) or not isinstance(target_side, int) or target_side <= 1:
        raise DomainError(f"target_side must be an int > 1, got {target_side!r}")
    ops = []
    for _ in range(target_side - 1):
        ops.append(ReshapeOp(ReshapeKind.APPEND_ROW))
        ops.append(ReshapeOp(ReshapeKind.APPEND_COL))
    return ops


def random_walk(
    steps: int,
    seed: int = 0,
    grow_bias: float = 0.7,
    max_side: int = 512,
) -> list[ReshapeOp]:
    """A seeded random reshape walk: each step grows (probability
    *grow_bias*) or shrinks a uniformly chosen dimension, clamped to keep
    both sides in ``[1, max_side]`` so replays never underflow.

    The walk is generated against a simulated shape starting at 1x1, so the
    resulting script is always legal to replay from a fresh 1x1 array.
    """
    if isinstance(steps, bool) or not isinstance(steps, int) or steps <= 0:
        raise DomainError(f"steps must be a positive int, got {steps!r}")
    if not 0.0 <= grow_bias <= 1.0:
        raise ConfigurationError(f"grow_bias must be in [0, 1], got {grow_bias}")
    rng = random.Random(seed)
    rows = cols = 1
    ops: list[ReshapeOp] = []
    for _ in range(steps):
        grow = rng.random() < grow_bias
        dim_is_row = rng.random() < 0.5
        if grow:
            if dim_is_row and rows < max_side:
                ops.append(ReshapeOp(ReshapeKind.APPEND_ROW))
                rows += 1
            elif cols < max_side:
                ops.append(ReshapeOp(ReshapeKind.APPEND_COL))
                cols += 1
            elif rows < max_side:
                ops.append(ReshapeOp(ReshapeKind.APPEND_ROW))
                rows += 1
            else:
                # Both dimensions saturated: shrink instead of growing past
                # the clamp.
                ops.append(ReshapeOp(ReshapeKind.DELETE_ROW))
                rows -= 1
        else:
            if dim_is_row and rows > 1:
                ops.append(ReshapeOp(ReshapeKind.DELETE_ROW))
                rows -= 1
            elif cols > 1:
                ops.append(ReshapeOp(ReshapeKind.DELETE_COL))
                cols -= 1
            elif rows > 1:
                ops.append(ReshapeOp(ReshapeKind.DELETE_ROW))
                rows -= 1
            else:
                ops.append(ReshapeOp(ReshapeKind.APPEND_ROW))
                rows += 1
    return ops


def bulk_touch(array, positions: Sequence[tuple[int, int]], value) -> int:
    """Write *value* to every ``(x, y)`` in *positions* (the write phase of
    an access workload), batching address computation through the perf
    layer when the array exposes its mapping and address space (the
    PF-backed :class:`~repro.arrays.extendible.ExtendibleArray` does;
    baselines fall back to item assignment).  Returns the write count.

    >>> from repro.arrays.extendible import ExtendibleArray
    >>> from repro.core.squareshell import SquareShellPairing
    >>> arr = ExtendibleArray(SquareShellPairing(), rows=2, cols=2)
    >>> bulk_touch(arr, [(1, 1), (2, 2)], 7)
    2
    >>> arr[2, 2]
    7
    """
    positions = list(positions)
    if not positions:
        return 0
    rows, cols = array.shape
    for x, y in positions:
        if isinstance(x, bool) or not isinstance(x, int) or isinstance(y, bool) or not isinstance(y, int):
            raise DomainError(f"positions must be int pairs, got ({x!r}, {y!r})")
        if not (1 <= x <= rows and 1 <= y <= cols):
            raise DomainError(
                f"position ({x}, {y}) outside current shape {rows}x{cols}"
            )
    mapping = getattr(array, "mapping", None)
    space = getattr(array, "space", None)
    if mapping is not None and space is not None:
        from repro.perf.batch import pair_many

        addresses = pair_many(
            mapping, [p[0] for p in positions], [p[1] for p in positions]
        )
        for address in addresses.reshape(-1):
            space.write(int(address), value)
    else:
        for x, y in positions:
            array[x, y] = value
    return len(positions)


def apply_workload(array: ReshapableArray, ops: Iterable[ReshapeOp]) -> int:
    """Replay *ops* against *array*; returns the number of elementary
    reshape steps executed (expanding ``repeat``)."""
    dispatch = {
        ReshapeKind.APPEND_ROW: lambda: array.append_row(),
        ReshapeKind.APPEND_COL: lambda: array.append_col(),
        ReshapeKind.DELETE_ROW: lambda: array.delete_row(),
        ReshapeKind.DELETE_COL: lambda: array.delete_col(),
    }
    steps = 0
    for op in ops:
        action = dispatch[op.kind]
        for _ in range(op.repeat):
            action()
            steps += 1
    return steps
