"""The naive remapping baseline the paper criticizes.

Section 3's motivation: "the language processors I am aware of implement
the capability quite naively, by completely remapping an array/table with
each reshaping.  This is, of course, very wasteful of time, since one does
Omega(n^2) work to accommodate O(n) changes."

:class:`NaiveRowMajorArray` is that implementation: a row-major layout in a
*compact* prefix of memory (cell ``(x, y)`` at address ``(x-1)*cols + y``),
which must move essentially every element whenever the column count -- the
row-major pitch -- changes.  Deleting or appending a *row* is cheap in
row-major order; the expensive operations are column reshapes, and a mixed
workload hits them constantly.

It shares the :class:`~repro.arrays.address_space.AddressSpace` substrate
with :class:`~repro.arrays.extendible.ExtendibleArray`, so the two report
identical, directly comparable traffic counters: the benchmark story is
*moves = 0* for the PF array vs *moves = Theta(n)* per column reshape here
(hence Omega(n^2) for n reshapes), with the PF paying instead in address
spread.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.arrays.address_space import AddressSpace
from repro.errors import DomainError

__all__ = ["NaiveRowMajorArray"]


class NaiveRowMajorArray:
    """A compact row-major array that fully remaps on column reshapes.

    >>> arr = NaiveRowMajorArray(rows=2, cols=2, fill=0)
    >>> arr[2, 2] = 5
    >>> arr.append_col()
    >>> arr[2, 2], arr.space.traffic.moves > 0
    (5, True)
    """

    def __init__(
        self,
        rows: int = 0,
        cols: int = 0,
        fill: Any = None,
        space: AddressSpace | None = None,
    ) -> None:
        if isinstance(rows, bool) or not isinstance(rows, int) or rows < 0:
            raise DomainError(f"rows must be a nonnegative int, got {rows!r}")
        if isinstance(cols, bool) or not isinstance(cols, int) or cols < 0:
            raise DomainError(f"cols must be a nonnegative int, got {cols!r}")
        if (rows == 0) != (cols == 0):
            raise DomainError(f"shape must be 0x0 or fully positive, got {rows}x{cols}")
        self.space = space if space is not None else AddressSpace()
        self._rows = rows
        self._cols = cols
        self._fill = fill
        if fill is not None:
            for x in range(1, rows + 1):
                for y in range(1, cols + 1):
                    self.space.write(self._address(x, y, cols), fill)

    # ------------------------------------------------------------------

    @staticmethod
    def _address(x: int, y: int, cols: int) -> int:
        """Row-major address with pitch *cols* (1-indexed)."""
        return (x - 1) * cols + y

    @property
    def shape(self) -> tuple[int, int]:
        return (self._rows, self._cols)

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def cols(self) -> int:
        return self._cols

    @property
    def size(self) -> int:
        return self._rows * self._cols

    def _check_position(self, x: int, y: int) -> tuple[int, int]:
        if isinstance(x, bool) or not isinstance(x, int):
            raise DomainError(f"row index must be an int, got {type(x).__name__}")
        if isinstance(y, bool) or not isinstance(y, int):
            raise DomainError(f"col index must be an int, got {type(y).__name__}")
        if not (1 <= x <= self._rows and 1 <= y <= self._cols):
            raise DomainError(
                f"position ({x}, {y}) outside current shape {self._rows}x{self._cols}"
            )
        return x, y

    def __getitem__(self, pos: tuple[int, int]) -> Any:
        x, y = self._check_position(*pos)
        return self.space.read_or(self._address(x, y, self._cols), self._fill)

    def __setitem__(self, pos: tuple[int, int], value: Any) -> None:
        x, y = self._check_position(*pos)
        self.space.write(self._address(x, y, self._cols), value)

    def address_of(self, x: int, y: int) -> int:
        x, y = self._check_position(x, y)
        return self._address(x, y, self._cols)

    # ------------------------------------------------------------------
    # Reshaping: the pitch change forces a global remap
    # ------------------------------------------------------------------

    def _remap_pitch(self, new_cols: int, kept_cols: int) -> None:
        """Move every surviving cell from pitch ``self._cols`` to pitch
        ``new_cols`` -- the Omega(current size) remapping step.

        Iteration order is chosen so a move never lands on a not-yet-moved
        source: shrinking pitch walks forward (targets trail sources),
        growing pitch walks backward (targets lead sources).
        """
        old_cols = self._cols
        rows = self._rows
        positions: Iterator[tuple[int, int]]
        if new_cols < old_cols:
            positions = (
                (x, y) for x in range(1, rows + 1) for y in range(1, kept_cols + 1)
            )
        else:
            positions = (
                (x, y)
                for x in range(rows, 0, -1)
                for y in range(kept_cols, 0, -1)
            )
        for x, y in positions:
            src = self._address(x, y, old_cols)
            dst = self._address(x, y, new_cols)
            if src == dst:
                continue
            if self.space.occupied(src):
                self.space.move(src, dst)
            elif self.space.occupied(dst):
                # Source cell was never written: the stale value at dst (if
                # any) belongs to the old layout and must not leak through.
                self.space.erase(dst)

    def append_row(self) -> None:
        """Cheap in row-major order: no pitch change, no moves."""
        if self._rows == 0:
            raise DomainError("cannot append a row to a 0x0 array; use resize")
        self._rows += 1
        if self._fill is not None:
            for y in range(1, self._cols + 1):
                self.space.write(self._address(self._rows, y, self._cols), self._fill)

    def delete_row(self) -> None:
        """Cheap: erase the tail row."""
        if self._rows <= 1:
            raise DomainError("cannot delete the last row")
        for y in range(1, self._cols + 1):
            self.space.erase(self._address(self._rows, y, self._cols))
        self._rows -= 1

    def append_col(self) -> None:
        """Pitch grows: every cell beyond row 1 moves -- Theta(size) work."""
        if self._cols == 0:
            raise DomainError("cannot append a column to a 0x0 array; use resize")
        new_cols = self._cols + 1
        self._remap_pitch(new_cols, kept_cols=self._cols)
        self._cols = new_cols
        if self._fill is not None:
            for x in range(1, self._rows + 1):
                self.space.write(self._address(x, new_cols, new_cols), self._fill)

    def delete_col(self) -> None:
        """Pitch shrinks: every surviving cell beyond row 1 moves."""
        if self._cols <= 1:
            raise DomainError("cannot delete the last column")
        new_cols = self._cols - 1
        # Erase the dropped column first so it cannot collide post-remap.
        for x in range(1, self._rows + 1):
            self.space.erase(self._address(x, self._cols, self._cols))
        self._remap_pitch(new_cols, kept_cols=new_cols)
        self._cols = new_cols

    def resize(self, rows: int, cols: int) -> None:
        """Reshape via single steps (mirrors ``ExtendibleArray.resize``)."""
        if isinstance(rows, bool) or not isinstance(rows, int) or rows <= 0:
            raise DomainError(f"rows must be a positive int, got {rows!r}")
        if isinstance(cols, bool) or not isinstance(cols, int) or cols <= 0:
            raise DomainError(f"cols must be a positive int, got {cols!r}")
        if self._rows == 0:
            self._rows, self._cols = 1, 1
            if self._fill is not None:
                self.space.write(1, self._fill)
        while self._rows < rows:
            self.append_row()
        while self._rows > rows:
            self.delete_row()
        while self._cols < cols:
            self.append_col()
        while self._cols > cols:
            self.delete_col()

    # ------------------------------------------------------------------

    def to_lists(self) -> list[list[Any]]:
        return [
            [
                self.space.read_or(self._address(x, y, self._cols), self._fill)
                for y in range(1, self._cols + 1)
            ]
            for x in range(1, self._rows + 1)
        ]

    def storage_report(self) -> dict[str, Any]:
        """Same shape as ``ExtendibleArray.storage_report`` for side-by-side
        comparison; the naive layout is perfectly compact but pays in moves."""
        return {
            "mapping": "naive-row-major",
            "shape": self.shape,
            "cells": self.size,
            "high_water_mark": self.space.high_water_mark,
            "utilization": self.space.utilization,
            "theoretical_spread": self.size,
            "theoretical_shape_spread": self.size,
            "traffic": self.space.traffic.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"<NaiveRowMajorArray {self._rows}x{self._cols} "
            f"moves={self.space.traffic.moves}>"
        )
