"""Hash-based storage for extendible arrays -- the Section 3 "Aside".

The paper notes that if one only ever accesses an extendible array *by
position*, hashing beats pairing functions: the schemes of Rosenberg &
Stockmeyer [14] use **fewer than 2n memory locations** for an n-cell array
of any aspect ratio, with **O(1) expected** and **O(log log n) worst-case**
access time.

This module reproduces the *resource profile* of that scheme with a
self-contained open-addressing hash store:

* cells are keyed by the Cantor code of their position (an exact integer,
  so no Python-hash nondeterminism);
* the probe sequence is linear probing under a multiplicative (Knuth)
  hash;
* the table rebuilds at load factor 0.6 into a table of exactly
  ``ceil(1.9 * (live + 1))`` slots -- so **capacity stays below 2n** (the
  [14] space bound) while leaving ~14% growth headroom between rebuilds,
  which keeps inserts amortized O(1) and expected probes O(1)
  (linear probing at load <= 0.6 expects under ~2 probes);
* deletions use tombstones, with shrink rebuilds keeping the bound tight.

Substitution note (documented in DESIGN.md): [14]'s specific multi-level
construction -- which achieves a *deterministic* O(log log n) worst case --
is its own paper; what this reproduction exercises is the claim quoted in
*this* paper: the <2n space bound and O(1) expected access, both of which
the probe-count statistics expose directly (see
``benchmarks/bench_hashing.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.diagonal import DiagonalPairing
from repro.errors import DomainError

__all__ = ["HashedArrayStore", "ProbeStats"]

_EMPTY = object()
_TOMBSTONE = object()

# Knuth's multiplicative constant (golden-ratio reciprocal), 64-bit.
_KNUTH = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


@dataclass(slots=True)
class ProbeStats:
    """Cumulative probe counts (one probe = one slot inspection)."""

    operations: int = 0
    probes: int = 0
    max_probes_single_op: int = 0
    rebuilds: int = 0

    @property
    def mean_probes(self) -> float:
        """Average probes per operation -- the O(1) expected-time claim
        shows up as this staying bounded as n grows."""
        if self.operations == 0:
            return 0.0
        return self.probes / self.operations

    def record(self, probes: int) -> None:
        self.operations += 1
        self.probes += probes
        if probes > self.max_probes_single_op:
            self.max_probes_single_op = probes


class HashedArrayStore:
    """Position-keyed storage for a 2-D extendible array in < 2n slots.

    >>> store = HashedArrayStore()
    >>> store.put(3, 7, "v")
    >>> store.get(3, 7)
    'v'
    >>> store.capacity <= max(2 * len(store), store._MIN_CAPACITY)  # < 2n
    True
    """

    _MIN_CAPACITY = 8

    def __init__(self) -> None:
        self._keys: list[Any] = [_EMPTY] * self._MIN_CAPACITY
        self._values: list[Any] = [None] * self._MIN_CAPACITY
        self._live = 0
        self._used = 0  # live + tombstones
        self._encoder = DiagonalPairing()
        self.stats = ProbeStats()

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    @property
    def capacity(self) -> int:
        """Current slot count.  Invariant: ``live / capacity <= 1/2`` (so
        capacity never exceeds ``2n`` for long -- shrink happens on rebuild)."""
        return len(self._keys)

    @property
    def load_factor(self) -> float:
        return self._live / len(self._keys)

    # ------------------------------------------------------------------

    def _key(self, x: int, y: int) -> int:
        if isinstance(x, bool) or not isinstance(x, int) or x <= 0:
            raise DomainError(f"x must be a positive int, got {x!r}")
        if isinstance(y, bool) or not isinstance(y, int) or y <= 0:
            raise DomainError(f"y must be a positive int, got {y!r}")
        return self._encoder._pair(x, y)

    def _slot_sequence(self, key: int) -> Iterator[int]:
        capacity = len(self._keys)
        h = ((key * _KNUTH) & _MASK64) % capacity
        for i in range(capacity):
            yield (h + i) % capacity

    def _rebuild(self, new_capacity: int) -> None:
        old_keys, old_values = self._keys, self._values
        self._keys = [_EMPTY] * new_capacity
        self._values = [None] * new_capacity
        self._used = 0
        live = 0
        for k, v in zip(old_keys, old_values):
            if k is not _EMPTY and k is not _TOMBSTONE:
                for slot in self._slot_sequence(k):
                    if self._keys[slot] is _EMPTY:
                        self._keys[slot] = k
                        self._values[slot] = v
                        break
                live += 1
        self._live = live
        self._used = live
        self.stats.rebuilds += 1

    def _maybe_grow(self) -> None:
        # Rebuild before used (live + tombstones) exceeds 60% of capacity:
        # linear probing stays O(1) expected.  The rebuild target is sized
        # from the *live* count at just under 2 slots per cell, which is
        # what keeps the [14] space bound: capacity < 2n at all times while
        # the ~14% gap between 1/1.9 and 0.6 load amortizes rebuild cost.
        if 10 * (self._used + 1) > 6 * len(self._keys):
            target = max(self._MIN_CAPACITY, (19 * (self._live + 1) + 9) // 10)
            self._rebuild(target)

    # ------------------------------------------------------------------

    def put(self, x: int, y: int, value: Any) -> None:
        """Insert or overwrite the value at position ``(x, y)``."""
        key = self._key(x, y)
        self._maybe_grow()
        probes = 0
        first_tombstone = -1
        for slot in self._slot_sequence(key):
            probes += 1
            k = self._keys[slot]
            if k is _EMPTY:
                target = first_tombstone if first_tombstone >= 0 else slot
                if target == slot:
                    self._used += 1
                self._keys[target] = key
                self._values[target] = value
                self._live += 1
                self.stats.record(probes)
                return
            if k is _TOMBSTONE:
                if first_tombstone < 0:
                    first_tombstone = slot
                continue
            if k == key:
                self._values[slot] = value
                self.stats.record(probes)
                return
        raise AssertionError("open-addressing invariant violated: table full")

    def get(self, x: int, y: int, default: Any = None) -> Any:
        """Value at ``(x, y)``, or *default* if absent."""
        key = self._key(x, y)
        probes = 0
        for slot in self._slot_sequence(key):
            probes += 1
            k = self._keys[slot]
            if k is _EMPTY:
                self.stats.record(probes)
                return default
            if k is not _TOMBSTONE and k == key:
                self.stats.record(probes)
                return self._values[slot]
        self.stats.record(probes)
        return default

    def contains(self, x: int, y: int) -> bool:
        sentinel = object()
        return self.get(x, y, sentinel) is not sentinel

    def delete(self, x: int, y: int) -> bool:
        """Remove the cell; returns whether it was present."""
        key = self._key(x, y)
        probes = 0
        for slot in self._slot_sequence(key):
            probes += 1
            k = self._keys[slot]
            if k is _EMPTY:
                self.stats.record(probes)
                return False
            if k is not _TOMBSTONE and k == key:
                self._keys[slot] = _TOMBSTONE
                self._values[slot] = None
                self._live -= 1
                self.stats.record(probes)
                # Restore the <2n bound if deletions shrank the live set far
                # below capacity.
                if (
                    len(self._keys) > self._MIN_CAPACITY
                    and 8 * self._live < len(self._keys)
                ):
                    self._rebuild(max(self._MIN_CAPACITY, 4 * (self._live + 1)))
                return True
        self.stats.record(probes)
        return False

    # ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[tuple[int, int], Any]]:
        """All ``((x, y), value)`` pairs, in table order."""
        for k, v in zip(self._keys, self._values):
            if k is not _EMPTY and k is not _TOMBSTONE:
                yield self._encoder._unpair(k), v

    def space_report(self) -> dict[str, Any]:
        """The [14] resource claims, measured."""
        return {
            "live_cells": self._live,
            "capacity": self.capacity,
            "capacity_per_cell": (self.capacity / self._live) if self._live else 0.0,
            "load_factor": self.load_factor,
            "mean_probes": self.stats.mean_probes,
            "max_probes": self.stats.max_probes_single_op,
            "rebuilds": self.stats.rebuilds,
        }

    def __repr__(self) -> str:
        return (
            f"<HashedArrayStore live={self._live} capacity={self.capacity} "
            f"mean_probes={self.stats.mean_probes:.2f}>"
        )
